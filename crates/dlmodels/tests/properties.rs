//! Property tests on the layer IR and model aggregates.

use dlmodels::layer::Layer;
use dlmodels::{paper_benchmarks, Precision};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Conv parameter/FLOP formulas: doubling output channels doubles
    /// weights and MACs; stride reduces output elements, never FLOPs per
    /// output element.
    #[test]
    fn conv_scaling_laws(cin in 1u64..64, cout in 1u64..64, k in 1u64..6,
                         h in 8u64..64, stride in 1u64..3) {
        let base = Layer::conv2d("c", cin, cout, k, stride, h, h, 1, false);
        let double = Layer::conv2d("c", cin, 2 * cout, k, stride, h, h, 1, false);
        prop_assert_eq!(double.params, 2 * base.params);
        prop_assert!((double.flops_fwd - 2.0 * base.flops_fwd).abs() < 1.0);
        prop_assert_eq!(double.out_elems, 2 * base.out_elems);
        // Output shrinks with stride.
        let strided = Layer::conv2d("c", cin, cout, k, 2, h, h, 1, false);
        prop_assert!(strided.out_elems <= base.out_elems);
    }

    /// Depthwise conv always costs fewer FLOPs and params than the dense
    /// conv of the same shape (the MobileNet design premise).
    #[test]
    fn depthwise_cheaper_than_dense(c in 2u64..128, h in 8u64..64) {
        let dw = Layer::dwconv("dw", c, 3, 1, h, h);
        let dense = Layer::conv2d("d", c, c, 3, 1, h, h, 1, false);
        prop_assert!(dw.params < dense.params);
        prop_assert!(dw.flops_fwd < dense.flops_fwd);
    }

    /// Linear layers: FLOPs scale with tokens, params do not.
    #[test]
    fn linear_token_scaling(din in 1u64..512, dout in 1u64..512, t in 1u64..64) {
        let one = Layer::linear("l", din, dout, 1, true);
        let many = Layer::linear("l", din, dout, t, true);
        prop_assert_eq!(one.params, many.params);
        prop_assert!((many.flops_fwd - one.flops_fwd * t as f64).abs() < 1.0);
    }

    /// Memory traffic is monotone in batch and halves from fp32 to fp16
    /// asymptotically (weights are batch-independent).
    #[test]
    fn mem_traffic_monotone(cin in 1u64..32, cout in 1u64..32, b1 in 1u64..16, extra in 1u64..16) {
        let l = Layer::conv2d("c", cin, cout, 3, 1, 16, 16, 1, false);
        let small = l.mem_bytes_fwd(b1, Precision::Fp16);
        let big = l.mem_bytes_fwd(b1 + extra, Precision::Fp16);
        prop_assert!(big > small);
        prop_assert!(l.mem_bytes_fwd(b1, Precision::Fp32) > small);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BERT aggregates behave across arbitrary widths: params grow ~
    /// quadratically in hidden size, FLOPs superlinearly in sequence.
    #[test]
    fn bert_scaling(layers in 1u64..6, heads_pow in 0u32..3, seq in 64u64..256) {
        let heads = 1u64 << heads_pow;
        let hidden = heads * 64;
        let m = dlmodels::nlp::bert(dlmodels::Benchmark::BertBase, "t", layers, hidden, heads, seq);
        let m2 = dlmodels::nlp::bert(dlmodels::Benchmark::BertBase, "t", layers, hidden * 2, heads * 2, seq);
        prop_assert!(m2.param_count() > 2 * m.param_count());
        let short = dlmodels::nlp::bert(dlmodels::Benchmark::BertBase, "t", layers, hidden, heads, seq / 2);
        prop_assert!(m.flops_fwd_per_sample() > 2.0 * short.flops_fwd_per_sample());
    }
}

/// Cross-model invariants over the real zoo.
#[test]
fn zoo_invariants() {
    for m in paper_benchmarks() {
        // Gradients are exactly param_count x element size.
        assert_eq!(
            m.gradient_bytes(Precision::Fp16),
            m.param_count() as f64 * 2.0
        );
        // Checkpoints are larger than the fp16 weights (fp32 + moments).
        assert!(m.checkpoint_bytes() > m.param_bytes(Precision::Fp16));
        // A training step is 3x forward.
        assert_eq!(m.flops_step_per_sample(), 3.0 * m.flops_fwd_per_sample());
        // Every layer has coherent shapes.
        for l in &m.layers {
            assert!(l.flops_fwd >= 0.0);
            assert!(l.out_elems > 0 || l.flops_fwd == 0.0 || l.params > 0);
        }
        // For the classification CNNs the derived weighted-layer count
        // tracks the reported depth (BERT reports encoder blocks and YOLO
        // reports fused modules, so only the CNNs are comparable).
        if matches!(
            m.benchmark,
            dlmodels::Benchmark::MobileNetV2 | dlmodels::Benchmark::ResNet50
        ) {
            let d = m.derived_depth() as f64;
            let r = m.reported_depth as f64;
            assert!(
                (d - r).abs() / r < 0.15,
                "{}: derived {d} vs reported {r}",
                m.name
            );
        }
    }
}
