//! Property tests on the layer IR and model aggregates.
//!
//! Invariants covered (testkit, 256 cases for the layer-formula block —
//! they are cheap — and 64 for BERT aggregates, raised from 32 under
//! proptest):
//! * conv parameter/FLOP scaling laws (channels double => params double);
//! * depthwise conv is strictly cheaper than dense at equal shape;
//! * linear FLOPs scale with tokens, params do not;
//! * memory traffic is monotone in batch and precision width;
//! * BERT params grow superquadratically in hidden size, FLOPs
//!   superlinearly in sequence length.

use dlmodels::layer::Layer;
use dlmodels::{paper_benchmarks, Precision};
use testkit::{prop_assert, prop_assert_eq, property, u32_in, u64_in};

property! {
    /// Conv parameter/FLOP formulas: doubling output channels doubles
    /// weights and MACs; stride reduces output elements, never FLOPs per
    /// output element.
    #[cases(256)]
    fn conv_scaling_laws(cin in u64_in(1..64), cout in u64_in(1..64), k in u64_in(1..6),
                         h in u64_in(8..64), stride in u64_in(1..3)) {
        let base = Layer::conv2d("c", cin, cout, k, stride, h, h, 1, false);
        let double = Layer::conv2d("c", cin, 2 * cout, k, stride, h, h, 1, false);
        prop_assert_eq!(double.params, 2 * base.params);
        prop_assert!((double.flops_fwd - 2.0 * base.flops_fwd).abs() < 1.0);
        prop_assert_eq!(double.out_elems, 2 * base.out_elems);
        // Output shrinks with stride.
        let strided = Layer::conv2d("c", cin, cout, k, 2, h, h, 1, false);
        prop_assert!(strided.out_elems <= base.out_elems);
    }

    /// Depthwise conv always costs fewer FLOPs and params than the dense
    /// conv of the same shape (the MobileNet design premise).
    #[cases(256)]
    fn depthwise_cheaper_than_dense(c in u64_in(2..128), h in u64_in(8..64)) {
        let dw = Layer::dwconv("dw", c, 3, 1, h, h);
        let dense = Layer::conv2d("d", c, c, 3, 1, h, h, 1, false);
        prop_assert!(dw.params < dense.params);
        prop_assert!(dw.flops_fwd < dense.flops_fwd);
    }

    /// Linear layers: FLOPs scale with tokens, params do not.
    #[cases(256)]
    fn linear_token_scaling(din in u64_in(1..512), dout in u64_in(1..512), t in u64_in(1..64)) {
        let one = Layer::linear("l", din, dout, 1, true);
        let many = Layer::linear("l", din, dout, t, true);
        prop_assert_eq!(one.params, many.params);
        prop_assert!((many.flops_fwd - one.flops_fwd * t as f64).abs() < 1.0);
    }

    /// Memory traffic is monotone in batch and halves from fp32 to fp16
    /// asymptotically (weights are batch-independent).
    #[cases(256)]
    fn mem_traffic_monotone(cin in u64_in(1..32), cout in u64_in(1..32),
                            b1 in u64_in(1..16), extra in u64_in(1..16)) {
        let l = Layer::conv2d("c", cin, cout, 3, 1, 16, 16, 1, false);
        let small = l.mem_bytes_fwd(b1, Precision::Fp16);
        let big = l.mem_bytes_fwd(b1 + extra, Precision::Fp16);
        prop_assert!(big > small);
        prop_assert!(l.mem_bytes_fwd(b1, Precision::Fp32) > small);
    }

    /// BERT aggregates behave across arbitrary widths: params grow ~
    /// quadratically in hidden size, FLOPs superlinearly in sequence.
    #[cases(64)]
    fn bert_scaling(layers in u64_in(1..6), heads_pow in u32_in(0..3), seq in u64_in(64..256)) {
        let heads = 1u64 << heads_pow;
        let hidden = heads * 64;
        let m = dlmodels::nlp::bert(dlmodels::Benchmark::BertBase, "t", layers, hidden, heads, seq);
        let m2 = dlmodels::nlp::bert(dlmodels::Benchmark::BertBase, "t", layers, hidden * 2, heads * 2, seq);
        prop_assert!(m2.param_count() > 2 * m.param_count());
        let short = dlmodels::nlp::bert(dlmodels::Benchmark::BertBase, "t", layers, hidden, heads, seq / 2);
        prop_assert!(m.flops_fwd_per_sample() > 2.0 * short.flops_fwd_per_sample());
    }
}

/// Cross-model invariants over the real zoo.
#[test]
fn zoo_invariants() {
    for m in paper_benchmarks() {
        // Gradients are exactly param_count x element size.
        assert_eq!(
            m.gradient_bytes(Precision::Fp16),
            m.param_count() as f64 * 2.0
        );
        // Checkpoints are larger than the fp16 weights (fp32 + moments).
        assert!(m.checkpoint_bytes() > m.param_bytes(Precision::Fp16));
        // A training step is 3x forward.
        assert_eq!(m.flops_step_per_sample(), 3.0 * m.flops_fwd_per_sample());
        // Every layer has coherent shapes.
        for l in &m.layers {
            assert!(l.flops_fwd >= 0.0);
            assert!(l.out_elems > 0 || l.flops_fwd == 0.0 || l.params > 0);
        }
        // For the classification CNNs the derived weighted-layer count
        // tracks the reported depth (BERT reports encoder blocks and YOLO
        // reports fused modules, so only the CNNs are comparable).
        if matches!(
            m.benchmark,
            dlmodels::Benchmark::MobileNetV2 | dlmodels::Benchmark::ResNet50
        ) {
            let d = m.derived_depth() as f64;
            let r = m.reported_depth as f64;
            assert!(
                (d - r).abs() / r < 0.15,
                "{}: derived {d} vs reported {r}",
                m.name
            );
        }
    }
}
