//! Dataset and preprocessing models.
//!
//! A dataset is characterized by what the *training pipeline* sees: number
//! of samples per epoch, bytes read from storage per sample, CPU
//! preprocessing cost per sample (JPEG decode + augmentation for vision,
//! tokenization for NLP), and the tensor volume shipped to the GPU. These
//! drive the storage study (Fig 15) and the CPU-utilization contrast
//! between vision and NLP workloads (Fig 13).

use desim::Dur;

/// A synthetic stand-in for one of the paper's datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    pub name: String,
    /// Training samples per epoch.
    pub samples: u64,
    /// Average on-disk bytes per sample (compressed).
    pub disk_bytes_per_sample: f64,
    /// CPU core-time to decode + augment one sample.
    pub cpu_per_sample: Dur,
    /// Decoded in-host-memory bytes per sample (page-cache footprint).
    pub decoded_bytes_per_sample: f64,
}

impl DatasetSpec {
    /// Total on-disk footprint.
    pub fn disk_bytes(&self) -> f64 {
        self.samples as f64 * self.disk_bytes_per_sample
    }
}

/// ImageNet-1k (ILSVRC-2012) train split: 1.28 M JPEGs averaging ~110 KB;
/// decode + random-resized-crop + flip + normalize costs a few core-ms.
pub fn imagenet() -> DatasetSpec {
    DatasetSpec {
        name: "ImageNet".to_string(),
        samples: 1_281_167,
        disk_bytes_per_sample: 110e3,
        cpu_per_sample: Dur::from_micros(1500),
        decoded_bytes_per_sample: 3.0 * 224.0 * 224.0 * 4.0,
    }
}

/// COCO 2017 train: 118 k images averaging ~160 KB; YOLO's mosaic
/// augmentation is notably heavier per image than classification crops.
pub fn coco() -> DatasetSpec {
    DatasetSpec {
        name: "Coco".to_string(),
        samples: 118_287,
        disk_bytes_per_sample: 160e3,
        cpu_per_sample: Dur::from_micros(4000),
        decoded_bytes_per_sample: 3.0 * 640.0 * 640.0 * 4.0,
    }
}

/// SQuAD v1.1 train: ~88 k question/paragraph pairs; tokenization to a
/// fixed 384-token window is cheap and the on-disk form is tiny text.
pub fn squad(seq_len: u64) -> DatasetSpec {
    DatasetSpec {
        name: "SQuAD v1.1".to_string(),
        samples: 88_524,
        disk_bytes_per_sample: 2.2e3,
        cpu_per_sample: Dur::from_micros(120),
        decoded_bytes_per_sample: seq_len as f64 * 8.0, // ids + mask, i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_fits_page_cache_but_not_small_ram() {
        let d = imagenet();
        let total = d.disk_bytes();
        assert!(total > 100e9 && total < 200e9, "ImageNet ~141 GB: {total}");
    }

    #[test]
    fn vision_costs_more_cpu_than_nlp() {
        assert!(imagenet().cpu_per_sample > squad(384).cpu_per_sample * 10);
        assert!(coco().cpu_per_sample > imagenet().cpu_per_sample);
    }

    #[test]
    fn squad_is_tiny_on_disk() {
        let d = squad(384);
        assert!(d.disk_bytes() < 1e9, "SQuAD is megabytes, not gigabytes");
    }

    #[test]
    fn sample_counts_match_published() {
        assert_eq!(imagenet().samples, 1_281_167);
        assert_eq!(coco().samples, 118_287);
        assert!(squad(384).samples > 87_000);
    }
}
