//! Numeric precision and optimizer-state accounting.
//!
//! All the paper's experiments use NVIDIA mixed-precision (FP16) training
//! with PyTorch AMP unless the Fig 16 software-optimization study says
//! otherwise. Precision determines the bytes per parameter/activation
//! element, the communication volume of gradient synchronization, and —
//! with Adam — the optimizer-state footprint that the ZeRO sharding study
//! (Fig 16) partitions.


/// Numeric precision of training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Plain FP32 training.
    Fp32,
    /// Mixed precision (FP16 compute/storage + FP32 master weights).
    Fp16,
}

impl Precision {
    /// Bytes per parameter / activation element as stored on the GPU.
    pub fn bytes_per_element(self) -> f64 {
        match self {
            Precision::Fp32 => 4.0,
            Precision::Fp16 => 2.0,
        }
    }

    /// Bytes per gradient element exchanged by data-parallel workers.
    pub fn gradient_bytes_per_param(self) -> f64 {
        self.bytes_per_element()
    }
}

/// Adam under AMP: FP32 master copy (4) + first moment (4) + second
/// moment (4) = 12 bytes per parameter, *in addition to* the FP16 weights
/// and gradients.
pub const OPTIMIZER_BYTES_PER_PARAM_AMP: f64 = 12.0;

/// Adam at FP32: moments only (the weights are already the master copy).
pub const OPTIMIZER_BYTES_PER_PARAM_FP32: f64 = 8.0;

/// Optimizer-state bytes per parameter for a precision.
pub fn optimizer_bytes_per_param(precision: Precision) -> f64 {
    match precision {
        Precision::Fp32 => OPTIMIZER_BYTES_PER_PARAM_FP32,
        Precision::Fp16 => OPTIMIZER_BYTES_PER_PARAM_AMP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(Precision::Fp32.bytes_per_element(), 4.0);
        assert_eq!(Precision::Fp16.bytes_per_element(), 2.0);
    }

    #[test]
    fn amp_optimizer_state_is_larger() {
        // Counter-intuitive but true: AMP keeps an extra FP32 master copy.
        assert_eq!(optimizer_bytes_per_param(Precision::Fp16), 12.0);
        assert_eq!(optimizer_bytes_per_param(Precision::Fp32), 8.0);
        assert!(optimizer_bytes_per_param(Precision::Fp16) > optimizer_bytes_per_param(Precision::Fp32));
    }

    #[test]
    fn gradient_volume_halves_under_fp16() {
        let f32v = Precision::Fp32.gradient_bytes_per_param();
        let f16v = Precision::Fp16.gradient_bytes_per_param();
        assert_eq!(f32v / f16v, 2.0);
    }
}
