//! The paper's NLP benchmarks: BERT-base and BERT-large fine-tuned for
//! SQuAD v1.1 question answering.
//!
//! The descriptor builds the full transformer stack — embeddings, `L`
//! encoder blocks (multi-head self-attention + feed-forward), and the SQuAD
//! span-prediction head — with parameter totals pinned to the published
//! 110 M (base) and 340 M (large).

use crate::data;
use crate::layer::Layer;
use crate::model::{Benchmark, Domain, ModelDesc};

/// BERT WordPiece vocabulary size.
pub const BERT_VOCAB: u64 = 30_522;
/// Maximum position embeddings.
pub const BERT_MAX_POS: u64 = 512;
/// Token-type (segment) vocabulary.
pub const BERT_TYPES: u64 = 2;

/// Construct a BERT encoder for SQuAD fine-tuning.
///
/// * `layers` — encoder blocks (12 for base, 24 for large),
/// * `hidden` — model width (768 / 1024),
/// * `heads` — attention heads (12 / 16),
/// * `seq` — fine-tuning sequence length (the paper uses 384).
pub fn bert(
    benchmark: Benchmark,
    name: &str,
    layers: u64,
    hidden: u64,
    heads: u64,
    seq: u64,
) -> ModelDesc {
    let intermediate = 4 * hidden;
    // Embeddings: word + position + token-type, then LayerNorm.
    let mut ls: Vec<Layer> = vec![
        Layer::embedding("embeddings.word", BERT_VOCAB, hidden, seq),
        Layer::embedding("embeddings.position", BERT_MAX_POS, hidden, seq),
        Layer::embedding("embeddings.token_type", BERT_TYPES, hidden, seq),
        Layer::layernorm("embeddings.ln", hidden, seq),
    ];

    for i in 0..layers {
        let p = |s: &str| format!("encoder.{i}.{s}");
        // Self-attention projections.
        ls.push(Layer::linear(p("attn.q"), hidden, hidden, seq, true));
        ls.push(Layer::linear(p("attn.k"), hidden, hidden, seq, true));
        ls.push(Layer::linear(p("attn.v"), hidden, hidden, seq, true));
        ls.push(Layer::attention_core(p("attn.core"), hidden, heads, seq));
        ls.push(Layer::softmax(p("attn.softmax"), heads * seq * seq));
        ls.push(Layer::linear(p("attn.out"), hidden, hidden, seq, true));
        ls.push(Layer::elementwise(p("attn.residual"), hidden * seq));
        ls.push(Layer::layernorm(p("attn.ln"), hidden, seq));
        // Feed-forward.
        ls.push(Layer::linear(p("ffn.up"), hidden, intermediate, seq, true));
        ls.push(Layer::elementwise(p("ffn.gelu"), intermediate * seq));
        ls.push(Layer::linear(p("ffn.down"), intermediate, hidden, seq, true));
        ls.push(Layer::elementwise(p("ffn.residual"), hidden * seq));
        ls.push(Layer::layernorm(p("ffn.ln"), hidden, seq));
    }

    // Pooler (kept by HF checkpoints) + SQuAD span head (start/end logits).
    ls.push(Layer::linear("pooler", hidden, hidden, 1, true));
    ls.push(Layer::linear("qa_outputs", hidden, 2, seq, true));

    ModelDesc {
        benchmark,
        name: name.to_string(),
        domain: Domain::Nlp,
        dataset: data::squad(seq),
        layers: ls,
        reported_depth: layers as u32,
        activation_overhead: 2.39,
        input_elems_per_sample: seq * 2, // ids + attention mask
    }
}

/// BERT-base (12 × 768, 12 heads): ~110 M parameters.
pub fn bert_base(seq: u64) -> ModelDesc {
    bert(Benchmark::BertBase, "BERT", 12, 768, 12, seq)
}

/// BERT-large (24 × 1024, 16 heads): ~340 M parameters.
pub fn bert_large(seq: u64) -> ModelDesc {
    bert(Benchmark::BertLarge, "BERT-L", 24, 1024, 16, seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_params_near_110m() {
        let m = bert_base(384);
        let p = m.param_count() as f64;
        // google-bert/bert-base-uncased: 109,482,240 (+ QA head).
        assert!((p - 109.5e6).abs() / 109.5e6 < 0.01, "BERT-base params {p}");
    }

    #[test]
    fn bert_large_params_near_340m() {
        let m = bert_large(384);
        let p = m.param_count() as f64;
        // bert-large-uncased: 335,141,888 (+ QA head).
        assert!((p - 335.1e6).abs() / 335.1e6 < 0.01, "BERT-large params {p}");
    }

    #[test]
    fn large_is_13x_resnet_as_paper_notes() {
        // Paper §V-C2: BERT-large has 340 M parameters, 13× ResNet-50's.
        let ratio = bert_large(384).param_count() as f64
            / crate::vision::resnet50().param_count() as f64;
        assert!((ratio - 13.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn reported_depths_are_encoder_counts() {
        assert_eq!(bert_base(384).reported_depth, 12);
        assert_eq!(bert_large(384).reported_depth, 24);
    }

    #[test]
    fn flops_scale_roughly_with_params_and_seq() {
        let base = bert_base(384);
        // Rule of thumb: forward ≈ 2 × params × tokens FLOPs (plus
        // attention quadratic term).
        let expected = 2.0 * base.param_count() as f64 * 384.0;
        let actual = base.flops_fwd_per_sample();
        assert!(
            actual > 0.8 * expected && actual < 1.6 * expected,
            "fwd {actual} vs 2PT {expected}"
        );
    }

    #[test]
    fn attention_memory_grows_quadratically_with_seq() {
        let short = bert_base(128);
        let long = bert_base(512);
        let a = short.activation_bytes_per_sample(crate::precision::Precision::Fp16);
        let b = long.activation_bytes_per_sample(crate::precision::Precision::Fp16);
        // 4x seq should be >4x activations (quadratic attention maps).
        assert!(b / a > 4.5, "ratio {}", b / a);
    }

    #[test]
    fn nlp_models_use_squad() {
        assert_eq!(bert_base(384).dataset.name, "SQuAD v1.1");
        assert_eq!(bert_large(384).dataset.name, "SQuAD v1.1");
    }

    #[test]
    fn seq_len_affects_flops_not_params() {
        let a = bert_base(128);
        let b = bert_base(384);
        assert_eq!(a.param_count(), b.param_count());
        assert!(b.flops_fwd_per_sample() > 2.5 * a.flops_fwd_per_sample());
    }
}
