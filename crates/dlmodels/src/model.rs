//! The model descriptor: a named stack of layers plus the aggregate
//! quantities a training simulation needs.

use crate::data::DatasetSpec;
use crate::layer::Layer;
use crate::precision::{optimizer_bytes_per_param, Precision};

/// Application domain (Table II column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    ComputerVision,
    Nlp,
}

/// Which paper benchmark a model descriptor instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    MobileNetV2,
    ResNet50,
    YoloV5L,
    BertBase,
    BertLarge,
}

impl Benchmark {
    pub fn all() -> [Benchmark; 5] {
        [
            Benchmark::MobileNetV2,
            Benchmark::ResNet50,
            Benchmark::YoloV5L,
            Benchmark::BertBase,
            Benchmark::BertLarge,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            Benchmark::MobileNetV2 => "MobileNetV2",
            Benchmark::ResNet50 => "ResNet-50",
            Benchmark::YoloV5L => "YOLOv5-L",
            Benchmark::BertBase => "BERT",
            Benchmark::BertLarge => "BERT-L",
        }
    }
}

/// An analytic model of one benchmark network.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDesc {
    pub benchmark: Benchmark,
    pub name: String,
    pub domain: Domain,
    pub dataset: DatasetSpec,
    pub layers: Vec<Layer>,
    /// The architectural depth as reported in Table II (e.g. encoder blocks
    /// for BERT, module count for YOLOv5).
    pub reported_depth: u32,
    /// Multiplier on the theoretical stored-activation footprint to account
    /// for framework bookkeeping (autograd graph, dropout masks, workspace)
    /// — calibrated so published maximum batch sizes reproduce.
    pub activation_overhead: f64,
    /// Per-sample H2D input elements (e.g. 3·224·224 for ImageNet crops).
    pub input_elems_per_sample: u64,
}

impl ModelDesc {
    /// Total learnable parameters.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Weighted-layer depth derived from the layer stack.
    pub fn derived_depth(&self) -> u32 {
        self.layers
            .iter()
            .filter(|l| l.kind.counts_as_depth())
            .count() as u32
    }

    /// Forward FLOPs per sample.
    pub fn flops_fwd_per_sample(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_fwd).sum()
    }

    /// Training-step FLOPs per sample (forward + backward ≈ 3× forward).
    pub fn flops_step_per_sample(&self) -> f64 {
        3.0 * self.flops_fwd_per_sample()
    }

    /// Bytes of gradients exchanged by data-parallel training per step.
    pub fn gradient_bytes(&self, precision: Precision) -> f64 {
        self.param_count() as f64 * precision.gradient_bytes_per_param()
    }

    /// Bytes of parameters as stored on each GPU.
    pub fn param_bytes(&self, precision: Precision) -> f64 {
        self.param_count() as f64 * precision.bytes_per_element()
    }

    /// Optimizer-state bytes (Adam) per full replica.
    pub fn optimizer_bytes(&self, precision: Precision) -> f64 {
        self.param_count() as f64 * optimizer_bytes_per_param(precision)
    }

    /// Stored-activation bytes per sample (for the backward pass),
    /// including the calibrated framework overhead.
    pub fn activation_bytes_per_sample(&self, precision: Precision) -> f64 {
        let elems: u64 = self.layers.iter().map(|l| l.out_elems).sum();
        elems as f64 * precision.bytes_per_element() * self.activation_overhead
    }

    /// Bytes a checkpoint writes to storage (FP32 weights + optimizer
    /// moments, PyTorch convention).
    pub fn checkpoint_bytes(&self) -> f64 {
        self.param_count() as f64 * (4.0 + 8.0)
    }

    /// Per-sample bytes copied host→device per step.
    pub fn h2d_bytes_per_sample(&self, precision: Precision) -> f64 {
        self.input_elems_per_sample as f64 * precision.bytes_per_element()
    }

    /// Table II row: `(label, domain, dataset, params, depth)`.
    pub fn table2_row(&self) -> (String, &'static str, String, u64, u32) {
        let domain = match self.domain {
            Domain::ComputerVision => "Computer Vision",
            Domain::Nlp => "NLP (Q&A)",
        };
        (
            self.benchmark.label().to_string(),
            domain,
            self.dataset.name.clone(),
            self.param_count(),
            self.reported_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    fn tiny_model() -> ModelDesc {
        ModelDesc {
            benchmark: Benchmark::ResNet50,
            name: "tiny".into(),
            domain: Domain::ComputerVision,
            dataset: crate::data::imagenet(),
            layers: vec![
                Layer::conv2d("c1", 3, 8, 3, 1, 8, 8, 1, false),
                Layer::linear("fc", 8 * 8 * 8, 10, 1, true),
            ],
            reported_depth: 2,
            activation_overhead: 1.0,
            input_elems_per_sample: 3 * 8 * 8,
        }
    }

    #[test]
    fn aggregates_sum_layers() {
        let m = tiny_model();
        assert_eq!(m.param_count(), 3 * 3 * 3 * 8 + 512 * 10 + 10);
        assert_eq!(m.derived_depth(), 2);
        assert!(m.flops_fwd_per_sample() > 0.0);
        assert_eq!(m.flops_step_per_sample(), 3.0 * m.flops_fwd_per_sample());
    }

    #[test]
    fn gradient_bytes_follow_precision() {
        let m = tiny_model();
        assert_eq!(
            m.gradient_bytes(Precision::Fp32),
            2.0 * m.gradient_bytes(Precision::Fp16)
        );
    }

    #[test]
    fn checkpoint_is_fp32_weights_plus_moments() {
        let m = tiny_model();
        assert_eq!(m.checkpoint_bytes(), m.param_count() as f64 * 12.0);
    }

    #[test]
    fn activation_overhead_multiplies() {
        let mut m = tiny_model();
        let base = m.activation_bytes_per_sample(Precision::Fp16);
        m.activation_overhead = 2.0;
        assert_eq!(m.activation_bytes_per_sample(Precision::Fp16), 2.0 * base);
    }

    #[test]
    fn benchmark_labels() {
        assert_eq!(Benchmark::BertLarge.label(), "BERT-L");
        assert_eq!(Benchmark::all().len(), 5);
    }
}
