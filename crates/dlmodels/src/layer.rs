//! The layer intermediate representation.
//!
//! Every benchmark is a sequence of [`Layer`]s. A layer knows its
//! parameter count, its per-sample forward FLOPs, the per-sample
//! activation elements it produces (kept for backward), and a *kernel
//! class* that maps to an achievable-efficiency on tensor-core hardware.
//! Constructors compute these from the layer's shape, so model definitions
//! read like network configuration files and the totals are derivable —
//! and testable — quantities.

use crate::precision::Precision;

/// What kind of kernel a layer runs — determines achievable compute
/// efficiency on a V100 and whether the layer is typically memory-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Dense convolution (im2col/implicit GEMM on tensor cores).
    Conv,
    /// Depthwise convolution — very low arithmetic intensity.
    DepthwiseConv,
    /// Fully connected / GEMM.
    Linear,
    /// Attention score/context batched GEMMs.
    Attention,
    /// Embedding table lookup.
    Embedding,
    /// Batch/layer normalization.
    Norm,
    /// Elementwise op (activation, residual add, dropout).
    Elementwise,
    /// Pooling.
    Pool,
    /// Softmax.
    Softmax,
}

impl LayerKind {
    /// Achievable fraction of peak FLOPs for this kernel class on a V100
    /// (tensor cores for GEMM-like kernels, CUDA cores otherwise).
    pub fn compute_efficiency(self) -> f64 {
        match self {
            LayerKind::Conv => 0.42,
            LayerKind::DepthwiseConv => 0.05,
            LayerKind::Linear => 0.55,
            LayerKind::Attention => 0.35,
            LayerKind::Embedding => 0.10,
            LayerKind::Norm => 0.08,
            LayerKind::Elementwise => 0.10,
            LayerKind::Pool => 0.10,
            LayerKind::Softmax => 0.08,
        }
    }

    /// Whether this layer counts toward the network "depth" as reported in
    /// the paper's Table II (weighted layers: conv/linear/attention blocks;
    /// normalization and elementwise glue do not count).
    pub fn counts_as_depth(self) -> bool {
        matches!(
            self,
            LayerKind::Conv | LayerKind::DepthwiseConv | LayerKind::Linear | LayerKind::Attention
        )
    }
}

/// One layer of a benchmark model.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    pub name: String,
    pub kind: LayerKind,
    /// Learnable parameters.
    pub params: u64,
    /// Forward FLOPs per sample (MAC = 2 FLOPs).
    pub flops_fwd: f64,
    /// Activation elements produced per sample (stored for backward).
    pub out_elems: u64,
    /// Input activation elements per sample (read by this layer).
    pub in_elems: u64,
}

impl Layer {
    /// HBM traffic per sample for the forward pass: read inputs + weights,
    /// write outputs.
    pub fn mem_bytes_fwd(&self, batch: u64, precision: Precision) -> f64 {
        let e = precision.bytes_per_element();
        (self.in_elems + self.out_elems) as f64 * batch as f64 * e + self.params as f64 * e
    }

    /// Forward FLOPs for a batch.
    pub fn flops(&self, batch: u64) -> f64 {
        self.flops_fwd * batch as f64
    }

    // ---- constructors -----------------------------------------------------

    /// Dense 2-D convolution. `h`/`w` are the *input* spatial dims.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        name: impl Into<String>,
        cin: u64,
        cout: u64,
        k: u64,
        stride: u64,
        h: u64,
        w: u64,
        groups: u64,
        bias: bool,
    ) -> Layer {
        assert!(groups >= 1 && cin.is_multiple_of(groups));
        let (ho, wo) = (h.div_ceil(stride), w.div_ceil(stride));
        let weights = k * k * (cin / groups) * cout;
        let params = weights + if bias { cout } else { 0 };
        let macs = (weights * ho * wo) as f64;
        let kind = if groups == cin && cin == cout {
            LayerKind::DepthwiseConv
        } else {
            LayerKind::Conv
        };
        Layer {
            name: name.into(),
            kind,
            params,
            flops_fwd: 2.0 * macs,
            out_elems: cout * ho * wo,
            in_elems: cin * h * w,
        }
    }

    /// Depthwise conv: groups == channels.
    pub fn dwconv(name: impl Into<String>, c: u64, k: u64, stride: u64, h: u64, w: u64) -> Layer {
        Layer::conv2d(name, c, c, k, stride, h, w, c, false)
    }

    /// Fully connected layer over `tokens` positions per sample.
    pub fn linear(name: impl Into<String>, din: u64, dout: u64, tokens: u64, bias: bool) -> Layer {
        let params = din * dout + if bias { dout } else { 0 };
        Layer {
            name: name.into(),
            kind: LayerKind::Linear,
            params,
            flops_fwd: 2.0 * (din * dout * tokens) as f64,
            out_elems: dout * tokens,
            in_elems: din * tokens,
        }
    }

    /// The two batched GEMMs of scaled dot-product attention (QKᵀ and
    /// attn·V) over a `seq`-token sample. Projections are separate
    /// [`Layer::linear`] layers.
    pub fn attention_core(name: impl Into<String>, hidden: u64, heads: u64, seq: u64) -> Layer {
        // QK^T: seq x seq x hidden MACs; attn V: same again.
        let macs = 2.0 * (seq * seq * hidden) as f64;
        Layer {
            name: name.into(),
            kind: LayerKind::Attention,
            params: 0,
            flops_fwd: 2.0 * macs,
            out_elems: heads * seq * seq + hidden * seq,
            in_elems: 3 * hidden * seq,
        }
    }

    /// Embedding lookup for `tokens` ids into a `vocab × dim` table.
    pub fn embedding(name: impl Into<String>, vocab: u64, dim: u64, tokens: u64) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Embedding,
            params: vocab * dim,
            flops_fwd: 0.0,
            out_elems: dim * tokens,
            in_elems: tokens,
        }
    }

    /// Batch-norm (2 params per channel) over a feature map.
    pub fn batchnorm(name: impl Into<String>, c: u64, h: u64, w: u64) -> Layer {
        let elems = c * h * w;
        Layer {
            name: name.into(),
            kind: LayerKind::Norm,
            params: 2 * c,
            flops_fwd: 4.0 * elems as f64,
            out_elems: elems,
            in_elems: elems,
        }
    }

    /// Layer-norm over `tokens × dim`.
    pub fn layernorm(name: impl Into<String>, dim: u64, tokens: u64) -> Layer {
        let elems = dim * tokens;
        Layer {
            name: name.into(),
            kind: LayerKind::Norm,
            params: 2 * dim,
            flops_fwd: 5.0 * elems as f64,
            out_elems: elems,
            in_elems: elems,
        }
    }

    /// Elementwise op (activation / residual add / dropout) over `elems`.
    pub fn elementwise(name: impl Into<String>, elems: u64) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Elementwise,
            params: 0,
            flops_fwd: elems as f64,
            out_elems: elems,
            in_elems: elems,
        }
    }

    /// Pooling over an input map down to `(ho, wo)`.
    pub fn pool(name: impl Into<String>, c: u64, h: u64, w: u64, ho: u64, wo: u64) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Pool,
            params: 0,
            flops_fwd: (c * h * w) as f64,
            out_elems: c * ho * wo,
            in_elems: c * h * w,
        }
    }

    /// Softmax over `elems`.
    pub fn softmax(name: impl Into<String>, elems: u64) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Softmax,
            params: 0,
            flops_fwd: 5.0 * elems as f64,
            out_elems: elems,
            in_elems: elems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_params_and_flops() {
        // 3x3 conv, 64->128, 56x56 input, stride 1.
        let l = Layer::conv2d("c", 64, 128, 3, 1, 56, 56, 1, false);
        assert_eq!(l.params, 3 * 3 * 64 * 128);
        let expected_macs = (3 * 3 * 64 * 128 * 56 * 56) as f64;
        assert_eq!(l.flops_fwd, 2.0 * expected_macs);
        assert_eq!(l.out_elems, 128 * 56 * 56);
        assert_eq!(l.kind, LayerKind::Conv);
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let l = Layer::conv2d("c", 3, 64, 7, 2, 224, 224, 1, false);
        assert_eq!(l.out_elems, 64 * 112 * 112);
    }

    #[test]
    fn depthwise_detection_and_cost() {
        let l = Layer::dwconv("dw", 32, 3, 1, 112, 112);
        assert_eq!(l.kind, LayerKind::DepthwiseConv);
        assert_eq!(l.params, 3 * 3 * 32);
        // Depthwise: k*k MACs per output element.
        assert_eq!(l.flops_fwd, 2.0 * (9 * 32 * 112 * 112) as f64);
    }

    #[test]
    fn linear_shapes() {
        let l = Layer::linear("fc", 2048, 1000, 1, true);
        assert_eq!(l.params, 2048 * 1000 + 1000);
        assert_eq!(l.flops_fwd, 2.0 * (2048 * 1000) as f64);
    }

    #[test]
    fn linear_over_tokens_multiplies_flops_not_params() {
        let a = Layer::linear("a", 768, 768, 1, true);
        let b = Layer::linear("b", 768, 768, 384, true);
        assert_eq!(a.params, b.params);
        assert_eq!(b.flops_fwd, a.flops_fwd * 384.0);
    }

    #[test]
    fn attention_core_has_no_params() {
        let l = Layer::attention_core("attn", 768, 12, 384);
        assert_eq!(l.params, 0);
        assert!(l.flops_fwd > 0.0);
        assert!(l.out_elems > 12 * 384 * 384, "keeps attention maps");
    }

    #[test]
    fn embedding_is_flop_free() {
        let l = Layer::embedding("emb", 30522, 768, 384);
        assert_eq!(l.params, 30522 * 768);
        assert_eq!(l.flops_fwd, 0.0);
    }

    #[test]
    fn mem_bytes_scale_with_batch_and_precision() {
        let l = Layer::conv2d("c", 64, 64, 3, 1, 56, 56, 1, false);
        let b1 = l.mem_bytes_fwd(1, Precision::Fp16);
        let b4 = l.mem_bytes_fwd(4, Precision::Fp16);
        let b1_32 = l.mem_bytes_fwd(1, Precision::Fp32);
        assert!(b4 > 3.0 * b1 && b4 < 4.0 * b1, "weights don't scale with batch");
        assert_eq!(b1_32, b1 * 2.0);
    }

    #[test]
    fn depth_counting_rules() {
        assert!(LayerKind::Conv.counts_as_depth());
        assert!(LayerKind::Linear.counts_as_depth());
        assert!(!LayerKind::Norm.counts_as_depth());
        assert!(!LayerKind::Elementwise.counts_as_depth());
    }

    #[test]
    fn efficiency_ordering_is_sane() {
        assert!(LayerKind::Linear.compute_efficiency() > LayerKind::Conv.compute_efficiency());
        assert!(LayerKind::Conv.compute_efficiency() > LayerKind::DepthwiseConv.compute_efficiency());
    }
}
