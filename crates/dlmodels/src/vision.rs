//! The paper's computer-vision benchmarks, built layer-by-layer:
//! ResNet-50 and MobileNetV2 on ImageNet, YOLOv5-L on COCO.
//!
//! Parameter totals are pinned by tests to the published counts
//! (torchvision / Ultralytics): ResNet-50 25.56 M, MobileNetV2 3.50 M,
//! YOLOv5-L ≈ 46.5 M — the paper's Table II quotes 25.6 M / 3.4 M / 47 M.

use crate::data;
use crate::layer::Layer;
use crate::model::{Benchmark, Domain, ModelDesc};

/// A shape-tracking layer-stack builder.
struct Stack {
    layers: Vec<Layer>,
    c: u64,
    h: u64,
    w: u64,
}

impl Stack {
    fn new(c: u64, h: u64, w: u64) -> Stack {
        Stack {
            layers: Vec::new(),
            c,
            h,
            w,
        }
    }

    fn shape(&self) -> (u64, u64, u64) {
        (self.c, self.h, self.w)
    }

    fn set_shape(&mut self, c: u64, h: u64, w: u64) {
        self.c = c;
        self.h = h;
        self.w = w;
    }

    /// conv + batch-norm (+ activation) — the ubiquitous vision building
    /// block. `act` adds an elementwise activation layer.
    fn conv_bn(&mut self, name: &str, cout: u64, k: u64, stride: u64, groups: u64, act: bool) {
        self.layers.push(Layer::conv2d(
            format!("{name}.conv"),
            self.c,
            cout,
            k,
            stride,
            self.h,
            self.w,
            groups,
            false,
        ));
        self.h = self.h.div_ceil(stride);
        self.w = self.w.div_ceil(stride);
        self.c = cout;
        self.layers
            .push(Layer::batchnorm(format!("{name}.bn"), self.c, self.h, self.w));
        if act {
            self.layers
                .push(Layer::elementwise(format!("{name}.act"), self.c * self.h * self.w));
        }
    }

    fn dwconv_bn(&mut self, name: &str, k: u64, stride: u64, act: bool) {
        let c = self.c;
        self.conv_bn(name, c, k, stride, c, act);
    }

    fn residual_add(&mut self, name: &str) {
        self.layers
            .push(Layer::elementwise(format!("{name}.add"), self.c * self.h * self.w));
    }

    fn finish(self) -> Vec<Layer> {
        self.layers
    }
}

/// ResNet-50 for 224×224 ImageNet classification (25.557 M params).
pub fn resnet50() -> ModelDesc {
    let mut s = Stack::new(3, 224, 224);
    s.conv_bn("stem", 64, 7, 2, 1, true);
    s.layers.push(Layer::pool("stem.maxpool", 64, 112, 112, 56, 56));
    s.set_shape(64, 56, 56);

    // (width, blocks, stride of first block)
    for (stage, &(width, blocks, stride)) in
        [(64u64, 3u64, 1u64), (128, 4, 2), (256, 6, 2), (512, 3, 2)]
            .iter()
            .enumerate()
    {
        for b in 0..blocks {
            let name = format!("layer{}.{}", stage + 1, b);
            let stride = if b == 0 { stride } else { 1 };
            bottleneck(&mut s, &name, width, stride);
        }
    }

    s.layers.push(Layer::pool("avgpool", 2048, 7, 7, 1, 1));
    s.layers.push(Layer::linear("fc", 2048, 1000, 1, true));

    ModelDesc {
        benchmark: Benchmark::ResNet50,
        name: "ResNet-50".to_string(),
        domain: Domain::ComputerVision,
        dataset: data::imagenet(),
        layers: s.finish(),
        reported_depth: 50,
        activation_overhead: 1.4,
        input_elems_per_sample: 3 * 224 * 224,
    }
}

/// A ResNet bottleneck: 1×1 reduce → 3×3 → 1×1 expand (×4), with a
/// projection shortcut when the shape changes.
fn bottleneck(s: &mut Stack, name: &str, width: u64, stride: u64) {
    let (cin, h, w) = s.shape();
    let cout = width * 4;
    s.conv_bn(&format!("{name}.a"), width, 1, 1, 1, true);
    s.conv_bn(&format!("{name}.b"), width, 3, stride, 1, true);
    s.conv_bn(&format!("{name}.c"), cout, 1, 1, 1, false);
    if cin != cout || stride != 1 {
        // Downsample path operates on the block input shape.
        s.layers.push(Layer::conv2d(
            format!("{name}.down.conv"),
            cin,
            cout,
            1,
            stride,
            h,
            w,
            1,
            false,
        ));
        s.layers.push(Layer::batchnorm(
            format!("{name}.down.bn"),
            cout,
            h.div_ceil(stride),
            w.div_ceil(stride),
        ));
    }
    s.residual_add(name);
    s.layers
        .push(Layer::elementwise(format!("{name}.relu"), s.c * s.h * s.w));
}

/// MobileNetV2 for 224×224 ImageNet classification (3.505 M params).
pub fn mobilenet_v2() -> ModelDesc {
    let mut s = Stack::new(3, 224, 224);
    s.conv_bn("stem", 32, 3, 2, 1, true);

    // (expansion t, output channels c, repeats n, first stride s)
    let settings: [(u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut idx = 0;
    for &(t, c, n, first_stride) in &settings {
        for i in 0..n {
            let stride = if i == 0 { first_stride } else { 1 };
            inverted_residual(&mut s, &format!("ir{idx}"), t, c, stride);
            idx += 1;
        }
    }

    s.conv_bn("head", 1280, 1, 1, 1, true);
    s.layers.push(Layer::pool("avgpool", 1280, 7, 7, 1, 1));
    s.layers.push(Layer::linear("classifier", 1280, 1000, 1, true));

    ModelDesc {
        benchmark: Benchmark::MobileNetV2,
        name: "MobileNetV2".to_string(),
        domain: Domain::ComputerVision,
        dataset: data::imagenet(),
        layers: s.finish(),
        reported_depth: 53,
        activation_overhead: 1.4,
        input_elems_per_sample: 3 * 224 * 224,
    }
}

/// MobileNetV2's inverted residual with linear bottleneck.
fn inverted_residual(s: &mut Stack, name: &str, t: u64, cout: u64, stride: u64) {
    let cin = s.c;
    if t != 1 {
        s.conv_bn(&format!("{name}.expand"), cin * t, 1, 1, 1, true);
    }
    s.dwconv_bn(&format!("{name}.dw"), 3, stride, true);
    s.conv_bn(&format!("{name}.project"), cout, 1, 1, 1, false);
    if stride == 1 && cin == cout {
        s.residual_add(name);
    }
}

/// YOLOv5-L (release v5 architecture, 640×640 COCO, width/depth multiple
/// 1.0): CSP backbone with SPP, PANet head, three detection scales
/// (≈ 46.5 M params; the paper's Table II rounds to 47 M).
pub fn yolov5l() -> ModelDesc {
    let mut s = Stack::new(3, 640, 640);

    // Focus: space-to-depth slice (3 -> 12 channels at 320x320) + Conv 64.
    s.layers
        .push(Layer::elementwise("focus.slice", 12 * 320 * 320));
    s.set_shape(12, 320, 320);
    s.conv_bn("focus", 64, 3, 1, 1, true);

    s.conv_bn("b1", 128, 3, 2, 1, true); // 160
    c3(&mut s, "c3_1", 128, 3, true);
    s.conv_bn("b2", 256, 3, 2, 1, true); // 80
    c3(&mut s, "c3_2", 256, 9, true);
    let p3 = s.shape(); // 256 x 80 x 80
    s.conv_bn("b3", 512, 3, 2, 1, true); // 40
    c3(&mut s, "c3_3", 512, 9, true);
    let p4 = s.shape(); // 512 x 40 x 40
    s.conv_bn("b4", 1024, 3, 2, 1, true); // 20
    spp(&mut s, "spp", 1024);
    c3(&mut s, "c3_4", 1024, 3, true);

    // PANet head.
    s.conv_bn("h1", 512, 1, 1, 1, true); // 512 x 20
    let h1 = s.shape();
    // upsample to 40 and concat with p4 -> 1024 x 40.
    s.layers.push(Layer::elementwise("up1", 512 * 40 * 40));
    s.set_shape(512 + p4.0, 40, 40);
    c3(&mut s, "c3_5", 512, 3, false);
    s.conv_bn("h2", 256, 1, 1, 1, true);
    let h2 = s.shape();
    // upsample to 80 and concat with p3 -> 512 x 80.
    s.layers.push(Layer::elementwise("up2", 256 * 80 * 80));
    s.set_shape(256 + p3.0, 80, 80);
    c3(&mut s, "c3_6", 256, 3, false);
    let d_small = s.shape(); // 256 x 80 x 80 (P3 detect input)

    s.conv_bn("h3", 256, 3, 2, 1, true); // down to 40
    s.set_shape(256 + h2.0, 40, 40); // concat with h2
    c3(&mut s, "c3_7", 512, 3, false);
    let d_medium = s.shape(); // 512 x 40

    s.conv_bn("h4", 512, 3, 2, 1, true); // down to 20
    s.set_shape(512 + h1.0, 20, 20); // concat with h1
    c3(&mut s, "c3_8", 1024, 3, false);
    let d_large = s.shape(); // 1024 x 20

    // Detect: 1x1 convs to 3 anchors x (80 classes + 5).
    for (i, (c, h, w)) in [d_small, d_medium, d_large].into_iter().enumerate() {
        s.layers.push(Layer::conv2d(
            format!("detect.{i}"),
            c,
            255,
            1,
            1,
            h,
            w,
            1,
            true,
        ));
    }

    ModelDesc {
        benchmark: Benchmark::YoloV5L,
        name: "YOLOv5-L".to_string(),
        domain: Domain::ComputerVision,
        dataset: data::coco(),
        layers: s.finish(),
        reported_depth: 392,
        activation_overhead: 1.6,
        input_elems_per_sample: 3 * 640 * 640,
    }
}

/// YOLOv5 C3 module: two 1×1 branches, `n` bottlenecks on one, 1×1 fuse.
fn c3(s: &mut Stack, name: &str, cout: u64, n: u64, shortcut: bool) {
    let cin = s.c;
    let c_ = cout / 2;
    let (h, w) = (s.h, s.w);
    // cv1 branch feeds the bottleneck chain.
    s.conv_bn(&format!("{name}.cv1"), c_, 1, 1, 1, true);
    for i in 0..n {
        // Bottleneck: 1x1 then 3x3 at equal width.
        s.conv_bn(&format!("{name}.m{i}.cv1"), c_, 1, 1, 1, true);
        s.conv_bn(&format!("{name}.m{i}.cv2"), c_, 3, 1, 1, true);
        if shortcut {
            s.residual_add(&format!("{name}.m{i}"));
        }
    }
    // cv2 branch straight from the module input.
    s.layers.push(Layer::conv2d(
        format!("{name}.cv2.conv"),
        cin,
        c_,
        1,
        1,
        h,
        w,
        1,
        false,
    ));
    s.layers
        .push(Layer::batchnorm(format!("{name}.cv2.bn"), c_, h, w));
    // Fuse.
    s.set_shape(2 * c_, h, w);
    s.conv_bn(&format!("{name}.cv3"), cout, 1, 1, 1, true);
}

/// YOLOv5 SPP: 1×1 reduce, three parallel max-pools, 1×1 fuse.
fn spp(s: &mut Stack, name: &str, cout: u64) {
    let cin = s.c;
    let c_ = cin / 2;
    s.conv_bn(&format!("{name}.cv1"), c_, 1, 1, 1, true);
    for k in [5u64, 9, 13] {
        s.layers.push(Layer::pool(
            format!("{name}.pool{k}"),
            c_,
            s.h,
            s.w,
            s.h,
            s.w,
        ));
    }
    s.set_shape(c_ * 4, s.h, s.w);
    s.conv_bn(&format!("{name}.cv2"), cout, 1, 1, 1, true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_param_count_matches_torchvision() {
        let m = resnet50();
        let p = m.param_count();
        // torchvision: 25,557,032.
        assert!(
            (p as f64 - 25_557_032.0).abs() / 25_557_032.0 < 0.01,
            "ResNet-50 params {p}"
        );
    }

    #[test]
    fn resnet50_depth_is_50() {
        let m = resnet50();
        // Weighted depth by the paper's convention excludes the downsample
        // projections: 1 stem + 48 block convs + 1 fc = 50. Our derived
        // count includes the 4 projections.
        assert_eq!(m.reported_depth, 50);
        assert_eq!(m.derived_depth(), 54);
    }

    #[test]
    fn resnet50_forward_flops_near_published() {
        let m = resnet50();
        let gflops = m.flops_fwd_per_sample() / 1e9;
        // Published 4.09 GMACs = 8.18 GFLOPs (+ our BN/elementwise extras).
        assert!((7.8..9.2).contains(&gflops), "ResNet-50 fwd {gflops} GFLOPs");
    }

    #[test]
    fn mobilenet_param_count_matches_torchvision() {
        let m = mobilenet_v2();
        let p = m.param_count();
        // torchvision: 3,504,872.
        assert!(
            (p as f64 - 3_504_872.0).abs() / 3_504_872.0 < 0.01,
            "MobileNetV2 params {p}"
        );
    }

    #[test]
    fn mobilenet_depth_is_53() {
        let m = mobilenet_v2();
        assert_eq!(m.derived_depth(), 53, "1 stem + 50 block convs + head + fc");
    }

    #[test]
    fn mobilenet_flops_near_published() {
        let m = mobilenet_v2();
        let gflops = m.flops_fwd_per_sample() / 1e9;
        // Published 0.3 GMACs = 0.6 GFLOPs; BN/act add a little.
        assert!((0.55..0.75).contains(&gflops), "MobileNetV2 fwd {gflops}");
    }

    #[test]
    fn mobilenet_has_2x_fewer_ops_than_resnet_per_param_claim() {
        // Paper (§V-B1): V2 is faster with ~2x fewer operations than V1 and
        // 30% fewer parameters; against ResNet-50 it is ~7x smaller.
        let mb = mobilenet_v2();
        let rn = resnet50();
        assert!(rn.param_count() as f64 / mb.param_count() as f64 > 6.0);
        assert!(rn.flops_fwd_per_sample() / mb.flops_fwd_per_sample() > 8.0);
    }

    #[test]
    fn yolov5l_param_count_near_published() {
        let m = yolov5l();
        let p = m.param_count() as f64;
        // Ultralytics v5l: 46.5 M (Table II: 47 M).
        assert!((p - 46.5e6).abs() / 46.5e6 < 0.05, "YOLOv5-L params {p}");
    }

    #[test]
    fn yolov5l_flops_near_published() {
        let m = yolov5l();
        let gflops = m.flops_fwd_per_sample() / 1e9;
        // Ultralytics: 109.1 GFLOPs at 640.
        assert!((95.0..125.0).contains(&gflops), "YOLOv5-L fwd {gflops}");
    }

    #[test]
    fn vision_models_use_imagenet_or_coco() {
        assert_eq!(resnet50().dataset.name, "ImageNet");
        assert_eq!(mobilenet_v2().dataset.name, "ImageNet");
        assert_eq!(yolov5l().dataset.name, "Coco");
    }

    #[test]
    fn depthwise_layers_present_in_mobilenet_only() {
        use crate::layer::LayerKind;
        let has_dw = |m: &crate::model::ModelDesc| {
            m.layers.iter().any(|l| l.kind == LayerKind::DepthwiseConv)
        };
        assert!(has_dw(&mobilenet_v2()));
        assert!(!has_dw(&resnet50()));
    }
}
