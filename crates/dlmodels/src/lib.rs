//! `dlmodels` — analytic models of the paper's five DL benchmarks.
//!
//! Each benchmark (Table II) is built layer-by-layer from a small layer IR
//! ([`layer::Layer`]) with closed-form parameter / FLOP / memory-traffic /
//! activation formulas:
//!
//! | Benchmark | Domain | Dataset | Params | Depth |
//! |---|---|---|---|---|
//! | MobileNetV2 | vision | ImageNet | 3.4 M | 53 |
//! | ResNet-50 | vision | ImageNet | 25.6 M | 50 |
//! | YOLOv5-L | vision | COCO | 47 M | 392 |
//! | BERT-base | NLP (Q&A) | SQuAD v1.1 | 110 M | 12 |
//! | BERT-large | NLP (Q&A) | SQuAD v1.1 | 340 M | 24 |
//!
//! Unit tests pin the generated totals to the published values, so the
//! model definitions are verifiable rather than asserted.
//!
//! FLOP convention: one multiply-accumulate counts as **2 FLOPs**
//! (so ResNet-50 forward ≈ 8.2 GFLOPs ≡ the usually quoted 4.1 GMACs).
//!
//! The crate is pure (no simulator dependencies): it reports *what* a
//! training step must do; `devices` + `training` decide how long it takes.

pub mod data;
pub mod inference;
pub mod layer;
pub mod model;
pub mod nlp;
pub mod precision;
pub mod vision;

pub use data::DatasetSpec;
pub use inference::InferenceProfile;
pub use layer::{Layer, LayerKind};
pub use model::{Benchmark, Domain, ModelDesc};
pub use precision::{Precision, OPTIMIZER_BYTES_PER_PARAM_AMP, OPTIMIZER_BYTES_PER_PARAM_FP32};

/// All five paper benchmarks, in Table II order.
pub fn paper_benchmarks() -> Vec<ModelDesc> {
    vec![
        vision::mobilenet_v2(),
        vision::resnet50(),
        vision::yolov5l(),
        nlp::bert_base(384),
        nlp::bert_large(384),
    ]
}
