//! Forward-only inference cost profiles, derived from the same layer
//! stacks as the training models.
//!
//! Serving a benchmark differs from training it in three ways the profile
//! captures: only the forward pass runs (no backward, no optimizer), no
//! activation is *stored* for autograd (the calibrated
//! [`ModelDesc::activation_overhead`] does not apply — activations are
//! streamed through HBM once), and the weights are read once per batch
//! rather than updated. The profile is pure arithmetic — FLOPs and bytes
//! per batch — so the crate stays simulator-free; `scheduler::serve`
//! converts it to latency against a concrete GPU roofline.

use crate::model::{Benchmark, ModelDesc};
use crate::paper_benchmarks;
use crate::precision::Precision;

/// The aggregate forward-pass cost of one benchmark, per sample and per
/// batch. Batch-size-parameterized: fixed terms (weight streaming, kernel
/// launches) amortize over the batch, per-sample terms scale linearly.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceProfile {
    pub benchmark: Benchmark,
    /// Forward FLOPs per sample (2 FLOPs per MAC, as everywhere).
    pub flops_per_sample: f64,
    /// Activation bytes streamed through HBM per sample — raw layer
    /// outputs, without the training-time autograd overhead multiplier.
    pub act_bytes_per_sample: f64,
    /// Weight bytes read once per batch.
    pub weight_bytes: f64,
    /// Host→device input bytes per sample.
    pub h2d_bytes_per_sample: f64,
    /// Weighted-layer depth: one kernel launch per counted layer.
    pub weighted_layers: u32,
}

impl InferenceProfile {
    /// Derive the profile from a model's layer stack at the given serving
    /// precision.
    pub fn of(model: &ModelDesc, precision: Precision) -> InferenceProfile {
        let elems: u64 = model.layers.iter().map(|l| l.out_elems).sum();
        InferenceProfile {
            benchmark: model.benchmark,
            flops_per_sample: model.flops_fwd_per_sample(),
            act_bytes_per_sample: elems as f64 * precision.bytes_per_element(),
            weight_bytes: model.param_bytes(precision),
            h2d_bytes_per_sample: model.h2d_bytes_per_sample(precision),
            weighted_layers: model.derived_depth(),
        }
    }

    /// The fp16 serving profile of one paper benchmark (the precision
    /// every deployed V100 service would use: tensor cores, half the
    /// weight traffic).
    pub fn for_benchmark(benchmark: Benchmark) -> InferenceProfile {
        let model = paper_benchmarks()
            .into_iter()
            .find(|m| m.benchmark == benchmark)
            .expect("every benchmark has a paper model");
        InferenceProfile::of(&model, Precision::Fp16)
    }

    /// Forward FLOPs for a batch.
    pub fn flops(&self, batch: u32) -> f64 {
        f64::from(batch) * self.flops_per_sample
    }

    /// HBM bytes for a batch: weights once, activations per sample.
    pub fn bytes(&self, batch: u32) -> f64 {
        self.weight_bytes + f64::from(batch) * self.act_bytes_per_sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_exist_for_all_benchmarks_and_are_positive() {
        for b in Benchmark::all() {
            let p = InferenceProfile::for_benchmark(b);
            assert_eq!(p.benchmark, b);
            assert!(p.flops_per_sample > 0.0, "{b:?}");
            assert!(p.act_bytes_per_sample > 0.0, "{b:?}");
            assert!(p.weight_bytes > 0.0, "{b:?}");
            assert!(p.h2d_bytes_per_sample > 0.0, "{b:?}");
            assert!(p.weighted_layers > 0, "{b:?}");
        }
    }

    #[test]
    fn forward_flops_match_the_training_model() {
        for m in paper_benchmarks() {
            let p = InferenceProfile::of(&m, Precision::Fp16);
            assert_eq!(p.flops_per_sample, m.flops_fwd_per_sample());
            // Forward-only is a third of a training step.
            assert_eq!(3.0 * p.flops(1), m.flops_step_per_sample());
        }
    }

    #[test]
    fn inference_skips_the_autograd_overhead() {
        for m in paper_benchmarks() {
            let p = InferenceProfile::of(&m, Precision::Fp16);
            let training = m.activation_bytes_per_sample(Precision::Fp16);
            assert!(
                p.act_bytes_per_sample <= training,
                "{:?}: serving activations must not exceed training's stored set",
                m.benchmark
            );
        }
    }

    #[test]
    fn batch_cost_is_affine_in_batch_size() {
        let p = InferenceProfile::for_benchmark(Benchmark::ResNet50);
        assert_eq!(p.flops(8), 8.0 * p.flops(1));
        let fixed = p.bytes(0);
        assert_eq!(fixed, p.weight_bytes);
        assert_eq!(p.bytes(8) - fixed, 8.0 * (p.bytes(1) - fixed));
    }

    #[test]
    fn heavier_models_cost_more() {
        let mobile = InferenceProfile::for_benchmark(Benchmark::MobileNetV2);
        let bert_l = InferenceProfile::for_benchmark(Benchmark::BertLarge);
        assert!(bert_l.flops_per_sample > 10.0 * mobile.flops_per_sample);
        assert!(bert_l.weight_bytes > 10.0 * mobile.weight_bytes);
    }
}
