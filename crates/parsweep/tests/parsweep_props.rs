//! Property suite for the work-stealing sweep executor (testkit):
//!
//! * every job runs exactly once, whatever the thread count and however
//!   job durations interleave;
//! * results and reductions are merged in canonical (submission) order,
//!   not completion order — parallel output is byte-identical to serial;
//! * a worker panic propagates to the caller tagged with the job label,
//!   after every remaining job has still run.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use testkit::{property, prop_assert, prop_assert_eq, tuple2, u8_in, u64_in, usize_in, vec_of};

/// Burn a few deterministic-but-variable cycles so workers genuinely
/// interleave and steal from each other.
fn spin(units: u64) -> u64 {
    let mut acc = 0x9E3779B97F4A7C15u64;
    for i in 0..units * 500 {
        acc = acc.rotate_left(7) ^ i;
        std::hint::black_box(acc);
    }
    acc
}

property! {
    /// Exactly-once execution: per-job counters all read 1 afterwards,
    /// and the result vector is the identity permutation of the inputs.
    #[cases(24)]
    fn all_jobs_run_exactly_once(input in tuple2(vec_of(u64_in(0..20), 0..40), usize_in(1..9))) {
        let (durations, threads) = input;
        let n = durations.len();
        let counters: Arc<Vec<AtomicU32>> =
            Arc::new((0..n).map(|_| AtomicU32::new(0)).collect());
        let jobs: Vec<parsweep::Job<'_, usize>> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let counters = Arc::clone(&counters);
                parsweep::Job::new(format!("job{i}"), move || {
                    spin(d);
                    counters[i].fetch_add(1, Ordering::SeqCst);
                    i
                })
            })
            .collect();
        let results = parsweep::run(threads, jobs);
        prop_assert_eq!(results, (0..n).collect::<Vec<_>>());
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::SeqCst), 1, "job {} ran {} times", i, c.load(Ordering::SeqCst));
        }
    }

    /// Reduce order is canonical under randomized job durations: the fold
    /// sees results in submission order even when later-submitted jobs
    /// finish first, so parallel reduction equals the serial reduction.
    #[cases(24)]
    fn reduce_order_is_canonical(input in tuple2(vec_of(u64_in(0..20), 1..30), usize_in(1..9))) {
        let (durations, threads) = input;
        let mk_jobs = || -> Vec<parsweep::Job<'_, String>> {
            durations
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    parsweep::Job::new(format!("job{i}"), move || {
                        spin(d);
                        format!("{i}:{d};")
                    })
                })
                .collect()
        };
        let parallel = parsweep::run_reduce(threads, mk_jobs(), String::new(), |mut a, s| {
            a.push_str(&s);
            a
        });
        let serial = parsweep::run_reduce(1, mk_jobs(), String::new(), |mut a, s| {
            a.push_str(&s);
            a
        });
        prop_assert_eq!(parallel, serial);
    }

    /// A panicking job propagates with its label; every other job still
    /// runs to completion first (no stranded queue entries).
    #[cases(16)]
    fn worker_panic_propagates_with_label(
        input in tuple2(tuple2(usize_in(0..12), u8_in(1..9)), vec_of(u64_in(0..12), 12..13))
    ) {
        let ((bad, threads), durations) = input;
        let ran: Arc<Vec<AtomicU32>> =
            Arc::new((0..durations.len()).map(|_| AtomicU32::new(0)).collect());
        let jobs: Vec<parsweep::Job<'_, ()>> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let ran = Arc::clone(&ran);
                parsweep::Job::new(format!("sweep-unit-{i}"), move || {
                    spin(d);
                    ran[i].fetch_add(1, Ordering::SeqCst);
                    if i == bad {
                        panic!("injected failure in unit {i}");
                    }
                })
            })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parsweep::run(usize::from(threads), jobs)
        }))
        .expect_err("the injected panic must surface");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string payload".into());
        prop_assert!(msg.contains(&format!("sweep-unit-{bad}")), "label missing from: {}", msg);
        prop_assert!(msg.contains("injected failure"), "payload missing from: {}", msg);
        for (i, c) in ran.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::SeqCst), 1, "job {} did not run", i);
        }
    }
}
