//! `parsweep` — deterministic parallel execution of independent jobs.
//!
//! Every expensive computation in this workspace is a *sweep*: a batch of
//! independent seeded simulations (probe pricing, candidate-configuration
//! ranking, policy replays, table generation) whose individual results are
//! pure functions of their inputs. This crate runs such a batch across a
//! work-stealing thread pool and merges the results **in canonical job
//! order**, so the output of [`run`] is byte-identical to serial execution
//! regardless of thread count or scheduling interleaving:
//!
//! * each job is pure, so *what* it computes cannot depend on *where* or
//!   *when* it runs;
//! * results carry their job index and are reassembled by index, so the
//!   merge order cannot depend on completion order;
//! * a panic in any job is captured and re-raised (tagged with the job's
//!   label) after every other job has finished, deterministically for the
//!   lowest-indexed failing job.
//!
//! The pool is std-only (scoped threads, mutex deques, one mpsc channel)
//! to keep the workspace hermetic. Jobs are distributed round-robin onto
//! per-worker deques; an idle worker pops from its own queue front and
//! steals from the *back* of a sibling's queue, so long jobs migrate to
//! idle cores without a central contended queue.
//!
//! ```
//! let squares = parsweep::map(4, (0u64..8).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Process-wide default worker count override (0 = unset). Set by the
/// `--jobs N` flags of the repro/bench binaries.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override what [`default_jobs`] returns for the rest of the process
/// (0 clears the override). How `repro --jobs N` reaches every sweep
/// call site without threading a parameter through each table.
pub fn set_default_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Worker count used when the caller does not pass one explicitly:
/// [`set_default_jobs`] override, else the `PARSWEEP_JOBS` environment
/// variable, else [`std::thread::available_parallelism`].
///
/// Thread count never affects results — only wall-clock — so consulting
/// ambient configuration here is safe.
pub fn default_jobs() -> usize {
    let n = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if n > 0 {
        return n;
    }
    if let Ok(v) = std::env::var("PARSWEEP_JOBS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One unit of sweep work: a label (for panic attribution) and a closure.
pub struct Job<'a, R> {
    label: String,
    work: Box<dyn FnOnce() -> R + Send + 'a>,
}

impl<'a, R> Job<'a, R> {
    pub fn new(label: impl Into<String>, work: impl FnOnce() -> R + Send + 'a) -> Job<'a, R> {
        Job {
            label: label.into(),
            work: Box::new(work),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Outcome of one executed job, tagged for deterministic reassembly.
enum Done<R> {
    Ok(usize, R),
    Panicked(usize, String, String),
}

fn payload_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn execute<R>(idx: usize, job: Job<'_, R>) -> Done<R> {
    let Job { label, work } = job;
    match catch_unwind(AssertUnwindSafe(work)) {
        Ok(r) => Done::Ok(idx, r),
        Err(p) => Done::Panicked(idx, label, payload_text(p.as_ref())),
    }
}

/// Run `jobs` on up to `threads` workers and return the results **in job
/// order**. `threads <= 1` (or a single job) runs inline on the calling
/// thread; both paths produce identical output.
///
/// # Panics
/// If any job panics, re-panics after all jobs have run, with a message
/// naming the lowest-indexed failing job's label and original payload.
pub fn run<R: Send>(threads: usize, jobs: Vec<Job<'_, R>>) -> Vec<R> {
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));

    let mut done: Vec<Option<Done<R>>> = (0..n).map(|_| None).collect();
    if threads <= 1 {
        for (idx, (job, slot)) in jobs.into_iter().zip(done.iter_mut()).enumerate() {
            *slot = Some(execute(idx, job));
        }
        return reassemble(done);
    }

    // Round-robin deal onto per-worker deques. Worker `w` pops its own
    // queue front (FIFO in index order, which keeps the common case
    // cache-friendly) and steals from the back of queue `w+1, w+2, ...`
    // when its own is dry. Jobs never spawn jobs, so "every queue empty"
    // is a correct termination condition.
    let queues: Vec<Mutex<VecDeque<(usize, Job<'_, R>)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (idx, job) in jobs.into_iter().enumerate() {
        queues[idx % threads].lock().unwrap().push_back((idx, job));
    }

    let (tx, rx) = mpsc::channel::<Done<R>>();
    std::thread::scope(|scope| {
        for me in 0..threads {
            let queues = &queues;
            let tx = tx.clone();
            scope.spawn(move || loop {
                let claimed = {
                    let mut own = queues[me].lock().unwrap();
                    own.pop_front()
                }
                .or_else(|| {
                    (1..queues.len()).find_map(|k| {
                        queues[(me + k) % queues.len()].lock().unwrap().pop_back()
                    })
                });
                match claimed {
                    Some((idx, job)) => {
                        // A send error means the receiver is gone, which
                        // only happens if the parent panicked; die quietly.
                        if tx.send(execute(idx, job)).is_err() {
                            return;
                        }
                    }
                    None => return,
                }
            });
        }
        drop(tx);
        for d in rx {
            let idx = match &d {
                Done::Ok(i, _) | Done::Panicked(i, _, _) => *i,
            };
            done[idx] = Some(d);
        }
    });
    reassemble(done)
}

fn reassemble<R>(done: Vec<Option<Done<R>>>) -> Vec<R> {
    let mut out = Vec::with_capacity(done.len());
    let mut first_panic: Option<(String, String)> = None;
    for d in done {
        match d.expect("every job executes exactly once") {
            Done::Ok(_, r) => out.push(r),
            Done::Panicked(_, label, msg) => {
                if first_panic.is_none() {
                    first_panic = Some((label, msg));
                }
            }
        }
    }
    if let Some((label, msg)) = first_panic {
        panic!("parsweep job `{label}` panicked: {msg}");
    }
    out
}

/// Map `f` over `items` in parallel, preserving input order. The sweep
/// workhorse: each item becomes one [`Job`] labeled by its index.
pub fn map<T: Send, R: Send>(
    threads: usize,
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let f = &f;
    run(
        threads,
        items
            .into_iter()
            .enumerate()
            .map(|(i, t)| Job::new(format!("map[{i}]"), move || f(t)))
            .collect(),
    )
}

/// Run `jobs` in parallel and fold the results **in job order** (never
/// completion order) — the reduce a caller writes against serial
/// execution works unchanged.
pub fn run_reduce<R: Send, A>(
    threads: usize,
    jobs: Vec<Job<'_, R>>,
    init: A,
    reduce: impl FnMut(A, R) -> A,
) -> A {
    run(threads, jobs).into_iter().fold(init, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_arrive_in_job_order() {
        for threads in [1, 2, 4, 9] {
            let jobs: Vec<Job<'_, usize>> = (0..23)
                .map(|i| Job::new(format!("j{i}"), move || i * 10))
                .collect();
            let got = run(threads, jobs);
            assert_eq!(got, (0..23).map(|i| i * 10).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_matches_serial() {
        let items: Vec<u64> = (0..50).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        assert_eq!(map(4, items, |x| x * x + 1), serial);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(map(16, vec![7u32], |x| x + 1), vec![8]);
        assert_eq!(map(16, Vec::<u32>::new(), |x| x + 1), Vec::<u32>::new());
        assert_eq!(map(0, vec![1u32, 2], |x| x), vec![1, 2], "0 threads clamps to 1");
    }

    #[test]
    fn reduce_folds_in_job_order() {
        let jobs: Vec<Job<'_, String>> = (0..12)
            .map(|i| Job::new(format!("r{i}"), move || format!("{i},")))
            .collect();
        let folded = run_reduce(3, jobs, String::new(), |mut acc, s| {
            acc.push_str(&s);
            acc
        });
        assert_eq!(folded, "0,1,2,3,4,5,6,7,8,9,10,11,");
    }

    #[test]
    fn panic_carries_the_job_label() {
        let err = std::panic::catch_unwind(|| {
            run(
                2,
                vec![
                    Job::new("fine", || 1),
                    Job::new("doomed-job", || -> i32 { panic!("boom {}", 42) }),
                ],
            )
        })
        .unwrap_err();
        let msg = payload_text(err.as_ref());
        assert!(msg.contains("doomed-job"), "{msg}");
        assert!(msg.contains("boom 42"), "{msg}");
    }

    #[test]
    fn every_job_runs_despite_a_panic() {
        static RAN: AtomicU32 = AtomicU32::new(0);
        let jobs: Vec<Job<'_, ()>> = (0..8)
            .map(|i| {
                Job::new(format!("j{i}"), move || {
                    RAN.fetch_add(1, Ordering::SeqCst);
                    if i == 3 {
                        panic!("job 3 fails");
                    }
                })
            })
            .collect();
        assert!(std::panic::catch_unwind(AssertUnwindSafe(|| run(4, jobs))).is_err());
        assert_eq!(RAN.load(Ordering::SeqCst), 8, "panic must not strand queued jobs");
    }

    #[test]
    fn default_jobs_honors_override() {
        // Touch only the override (the env var would race other tests).
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
