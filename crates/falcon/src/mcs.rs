//! The Management Center Server (paper §II-D).
//!
//! In production "the best practice is not to allow users of the
//! environment to directly access the low level, physical devices"; the
//! MCS is the higher-level service that "allows users to control their own
//! environment, yet not have any access to other users' resources". The
//! model: users with roles, per-slot grants, permission-checked
//! attach/detach/reassign, and a tamper-evident audit log. It is
//! thread-safe (`std::sync::RwLock`) so concurrent tenant sessions can
//! drive it — exercised by a multi-threaded test.

use crate::chassis::{ChassisError, Falcon4016, HostId, SlotAddr};
use desim::SimTime;
use std::sync::RwLock;
use std::collections::BTreeMap;
use std::fmt;

/// A tenant identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// Access level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Full control, including other users' resources and log export.
    Admin,
    /// Self-service control of owned resources only.
    User,
}

/// MCS operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McsError {
    UnknownUser(UserId),
    PermissionDenied {
        user: UserId,
        action: &'static str,
    },
    NotGranted(SlotAddr, UserId),
    Chassis(ChassisError),
}

impl fmt::Display for McsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McsError::UnknownUser(u) => write!(f, "unknown user {}", u.0),
            McsError::PermissionDenied { user, action } => {
                write!(f, "user {} may not {action}", user.0)
            }
            McsError::NotGranted(s, u) => write!(f, "slot {s} is not granted to user {}", u.0),
            McsError::Chassis(e) => write!(f, "chassis: {e}"),
        }
    }
}

impl std::error::Error for McsError {}

impl From<ChassisError> for McsError {
    fn from(e: ChassisError) -> Self {
        McsError::Chassis(e)
    }
}

/// One audit-log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEntry {
    pub at: SimTime,
    pub user: UserId,
    pub action: String,
    pub allowed: bool,
}

struct McsState {
    users: BTreeMap<UserId, Role>,
    /// Which user each slot is granted to (resource ownership).
    grants: BTreeMap<SlotAddr, UserId>,
    chassis: Falcon4016,
    audit: Vec<AuditEntry>,
}

/// The Management Center Server.
pub struct ManagementCenter {
    state: RwLock<McsState>,
}

impl ManagementCenter {
    pub fn new(chassis: Falcon4016) -> ManagementCenter {
        ManagementCenter {
            state: RwLock::new(McsState {
                users: BTreeMap::new(),
                grants: BTreeMap::new(),
                chassis,
                audit: Vec::new(),
            }),
        }
    }

    pub fn add_user(&self, user: UserId, role: Role) {
        self.state.write().unwrap().users.insert(user, role);
    }

    fn role_of(state: &McsState, user: UserId) -> Result<Role, McsError> {
        state
            .users
            .get(&user)
            .copied()
            .ok_or(McsError::UnknownUser(user))
    }

    fn audit(state: &mut McsState, at: SimTime, user: UserId, action: String, allowed: bool) {
        state.audit.push(AuditEntry {
            at,
            user,
            action,
            allowed,
        });
    }

    /// Admin grants a slot to a user (resource assignment).
    pub fn grant(
        &self,
        at: SimTime,
        admin: UserId,
        slot: SlotAddr,
        to: UserId,
    ) -> Result<(), McsError> {
        let mut st = self.state.write().unwrap();
        let role = Self::role_of(&st, admin)?;
        let allowed = role == Role::Admin;
        Self::audit(&mut st, at, admin, format!("grant {slot} to user {}", to.0), allowed);
        if !allowed {
            return Err(McsError::PermissionDenied {
                user: admin,
                action: "grant resources",
            });
        }
        Self::role_of(&st, to)?;
        st.grants.insert(slot, to);
        Ok(())
    }

    fn check_slot_access(
        state: &McsState,
        user: UserId,
        slot: SlotAddr,
    ) -> Result<(), McsError> {
        match Self::role_of(state, user)? {
            Role::Admin => Ok(()),
            Role::User => match state.grants.get(&slot) {
                Some(&owner) if owner == user => Ok(()),
                _ => Err(McsError::NotGranted(slot, user)),
            },
        }
    }

    /// Attach a granted slot to a host, as `user`.
    pub fn attach(
        &self,
        at: SimTime,
        user: UserId,
        slot: SlotAddr,
        host: HostId,
    ) -> Result<(), McsError> {
        let mut st = self.state.write().unwrap();
        let access = Self::check_slot_access(&st, user, slot);
        Self::audit(
            &mut st,
            at,
            user,
            format!("attach {slot} to host{}", host.0),
            access.is_ok(),
        );
        access?;
        st.chassis.attach(slot, host)?;
        Ok(())
    }

    /// Detach a granted slot, as `user`.
    pub fn detach(&self, at: SimTime, user: UserId, slot: SlotAddr) -> Result<HostId, McsError> {
        let mut st = self.state.write().unwrap();
        let access = Self::check_slot_access(&st, user, slot);
        Self::audit(&mut st, at, user, format!("detach {slot}"), access.is_ok());
        access?;
        Ok(st.chassis.detach(slot)?)
    }

    /// Admin-only: mark a slot failed after a hardware event (drawer
    /// outage, slot death, BMC critical trip). Audited; the chassis keeps
    /// any existing attachment so [`force_detach`](Self::force_detach) can
    /// evacuate it.
    pub fn fail_slot(&self, at: SimTime, admin: UserId, slot: SlotAddr) -> Result<(), McsError> {
        self.admin_slot_op(at, admin, slot, "fail", |c, s| {
            c.fail_slot(s);
            Ok(())
        })
    }

    /// Admin-only: clear a slot's failed state (repair / power-back).
    pub fn repair_slot(&self, at: SimTime, admin: UserId, slot: SlotAddr) -> Result<(), McsError> {
        self.admin_slot_op(at, admin, slot, "repair", |c, s| {
            c.repair_slot(s);
            Ok(())
        })
    }

    /// Admin-only forced detach — the evacuation path for failure
    /// recovery, bypassing per-user grants (the admin acts on behalf of
    /// whichever tenant held the slot). Returns the host the slot was
    /// attached to, or `None` if it was already free. Audited as
    /// "force-detach".
    pub fn force_detach(
        &self,
        at: SimTime,
        admin: UserId,
        slot: SlotAddr,
    ) -> Result<Option<HostId>, McsError> {
        let mut st = self.state.write().unwrap();
        let role = Self::role_of(&st, admin)?;
        let allowed = role == Role::Admin;
        Self::audit(&mut st, at, admin, format!("force-detach {slot}"), allowed);
        if !allowed {
            return Err(McsError::PermissionDenied {
                user: admin,
                action: "force-detach resources",
            });
        }
        match st.chassis.detach(slot) {
            Ok(host) => Ok(Some(host)),
            Err(ChassisError::NotAttached(_)) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn admin_slot_op(
        &self,
        at: SimTime,
        admin: UserId,
        slot: SlotAddr,
        verb: &str,
        op: impl FnOnce(&mut Falcon4016, SlotAddr) -> Result<(), ChassisError>,
    ) -> Result<(), McsError> {
        let mut st = self.state.write().unwrap();
        let role = Self::role_of(&st, admin)?;
        let allowed = role == Role::Admin;
        Self::audit(&mut st, at, admin, format!("{verb} {slot}"), allowed);
        if !allowed {
            return Err(McsError::PermissionDenied {
                user: admin,
                action: "manage slot health",
            });
        }
        op(&mut st.chassis, slot)?;
        Ok(())
    }

    /// Dynamically reassign a granted slot (advanced mode only).
    pub fn reassign(
        &self,
        at: SimTime,
        user: UserId,
        slot: SlotAddr,
        to: HostId,
    ) -> Result<HostId, McsError> {
        let mut st = self.state.write().unwrap();
        let access = Self::check_slot_access(&st, user, slot);
        Self::audit(
            &mut st,
            at,
            user,
            format!("reassign {slot} to host{}", to.0),
            access.is_ok(),
        );
        access?;
        Ok(st.chassis.reassign(slot, to)?)
    }

    /// The resources visible to `user`: everything for admins, owned slots
    /// for users (isolation between tenants).
    pub fn visible_resources(&self, user: UserId) -> Result<Vec<SlotAddr>, McsError> {
        let st = self.state.read().unwrap();
        let role = Self::role_of(&st, user)?;
        let mut v: Vec<SlotAddr> = match role {
            Role::Admin => st.chassis.occupied_slots().map(|(a, _)| a).collect(),
            Role::User => st
                .grants
                .iter()
                .filter(|(_, &u)| u == user)
                .map(|(a, _)| *a)
                .collect(),
        };
        v.sort_unstable();
        Ok(v)
    }

    /// Export the audit log (admin feature, mirroring the GUI's
    /// "define event logs for export").
    pub fn export_audit(&self, user: UserId) -> Result<Vec<AuditEntry>, McsError> {
        let st = self.state.read().unwrap();
        if Self::role_of(&st, user)? != Role::Admin {
            return Err(McsError::PermissionDenied {
                user,
                action: "export the audit log",
            });
        }
        Ok(st.audit.clone())
    }

    /// Run a read-only closure against the chassis (views, inventory).
    pub fn with_chassis<R>(&self, f: impl FnOnce(&Falcon4016) -> R) -> R {
        f(&self.state.read().unwrap().chassis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chassis::{DrawerId, HostPort, Mode, SlotDevice};
    use devices::GpuSpec;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn setup() -> ManagementCenter {
        let mut c = Falcon4016::new("falcon0", Mode::Advanced);
        c.connect_host(HostPort::H1, HostId(1), DrawerId(0)).unwrap();
        c.connect_host(HostPort::H2, HostId(2), DrawerId(0)).unwrap();
        for s in 0..8 {
            c.insert_device(
                SlotAddr::new(0, s),
                SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
            )
            .unwrap();
        }
        let mcs = ManagementCenter::new(c);
        mcs.add_user(UserId(0), Role::Admin);
        mcs.add_user(UserId(1), Role::User);
        mcs.add_user(UserId(2), Role::User);
        mcs
    }

    #[test]
    fn users_only_touch_granted_resources() {
        let mcs = setup();
        let slot = SlotAddr::new(0, 0);
        mcs.grant(t(0), UserId(0), slot, UserId(1)).unwrap();
        // User 1 can attach their slot; user 2 cannot.
        mcs.attach(t(1), UserId(1), slot, HostId(1)).unwrap();
        let err = mcs.detach(t(2), UserId(2), slot).unwrap_err();
        assert_eq!(err, McsError::NotGranted(slot, UserId(2)));
        // Owner can detach.
        assert_eq!(mcs.detach(t(3), UserId(1), slot).unwrap(), HostId(1));
    }

    #[test]
    fn only_admin_grants() {
        let mcs = setup();
        let err = mcs
            .grant(t(0), UserId(1), SlotAddr::new(0, 1), UserId(1))
            .unwrap_err();
        assert!(matches!(err, McsError::PermissionDenied { .. }));
    }

    #[test]
    fn grant_to_unknown_user_fails() {
        let mcs = setup();
        let err = mcs
            .grant(t(0), UserId(0), SlotAddr::new(0, 1), UserId(99))
            .unwrap_err();
        assert_eq!(err, McsError::UnknownUser(UserId(99)));
    }

    #[test]
    fn visibility_is_isolated() {
        let mcs = setup();
        mcs.grant(t(0), UserId(0), SlotAddr::new(0, 0), UserId(1)).unwrap();
        mcs.grant(t(0), UserId(0), SlotAddr::new(0, 1), UserId(2)).unwrap();
        assert_eq!(mcs.visible_resources(UserId(1)).unwrap(), vec![SlotAddr::new(0, 0)]);
        assert_eq!(mcs.visible_resources(UserId(2)).unwrap(), vec![SlotAddr::new(0, 1)]);
        assert_eq!(mcs.visible_resources(UserId(0)).unwrap().len(), 8);
    }

    #[test]
    fn audit_records_denied_attempts() {
        let mcs = setup();
        let _ = mcs.detach(t(1), UserId(2), SlotAddr::new(0, 3));
        let log = mcs.export_audit(UserId(0)).unwrap();
        assert_eq!(log.len(), 1);
        assert!(!log[0].allowed);
        assert_eq!(log[0].user, UserId(2));
    }

    #[test]
    fn audit_export_is_admin_only() {
        let mcs = setup();
        assert!(matches!(
            mcs.export_audit(UserId(1)),
            Err(McsError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn chassis_errors_propagate() {
        let mcs = setup();
        let slot = SlotAddr::new(0, 0);
        mcs.grant(t(0), UserId(0), slot, UserId(1)).unwrap();
        // Host 9 is not cabled: chassis-level failure surfaces.
        let err = mcs.attach(t(1), UserId(1), slot, HostId(9)).unwrap_err();
        assert!(matches!(err, McsError::Chassis(ChassisError::HostNotConnected(..))));
    }

    #[test]
    fn dynamic_reassignment_through_mcs() {
        let mcs = setup();
        let slot = SlotAddr::new(0, 2);
        mcs.grant(t(0), UserId(0), slot, UserId(1)).unwrap();
        mcs.attach(t(1), UserId(1), slot, HostId(1)).unwrap();
        assert_eq!(mcs.reassign(t(2), UserId(1), slot, HostId(2)).unwrap(), HostId(1));
        mcs.with_chassis(|c| assert_eq!(c.owner_of(slot), Some(HostId(2))));
    }

    #[test]
    fn failure_recovery_is_admin_only_and_audited() {
        let mcs = setup();
        let slot = SlotAddr::new(0, 4);
        mcs.grant(t(0), UserId(0), slot, UserId(1)).unwrap();
        mcs.attach(t(1), UserId(1), slot, HostId(1)).unwrap();
        // Non-admins may neither fail nor force-detach.
        assert!(matches!(
            mcs.fail_slot(t(2), UserId(1), slot),
            Err(McsError::PermissionDenied { .. })
        ));
        assert!(matches!(
            mcs.force_detach(t(2), UserId(2), slot),
            Err(McsError::PermissionDenied { .. })
        ));
        // Admin fails the slot, evacuates it, and the tenant cannot
        // re-attach until repair.
        mcs.fail_slot(t(3), UserId(0), slot).unwrap();
        assert_eq!(mcs.force_detach(t(3), UserId(0), slot).unwrap(), Some(HostId(1)));
        assert_eq!(mcs.force_detach(t(3), UserId(0), slot).unwrap(), None, "idempotent");
        assert!(matches!(
            mcs.attach(t(4), UserId(1), slot, HostId(1)),
            Err(McsError::Chassis(ChassisError::SlotFailed(_)))
        ));
        mcs.repair_slot(t(5), UserId(0), slot).unwrap();
        mcs.attach(t(6), UserId(1), slot, HostId(1)).unwrap();
        // Every step — allowed and denied — left an audit trail.
        let log = mcs.export_audit(UserId(0)).unwrap();
        let actions: Vec<&str> = log.iter().map(|e| e.action.as_str()).collect();
        assert!(actions.iter().any(|a| a.starts_with("fail ")));
        assert!(actions.iter().any(|a| a.starts_with("repair ")));
        assert_eq!(actions.iter().filter(|a| a.starts_with("force-detach")).count(), 3);
        assert_eq!(log.iter().filter(|e| !e.allowed).count(), 2);
    }

    #[test]
    fn concurrent_tenants_cannot_cross_boundaries() {
        let mcs = std::sync::Arc::new(setup());
        for s in 0..4 {
            mcs.grant(t(0), UserId(0), SlotAddr::new(0, s), UserId(1)).unwrap();
        }
        for s in 4..8 {
            mcs.grant(t(0), UserId(0), SlotAddr::new(0, s), UserId(2)).unwrap();
        }
        std::thread::scope(|scope| {
            for (user, host, lo) in [(UserId(1), HostId(1), 0u8), (UserId(2), HostId(2), 4u8)] {
                let mcs = std::sync::Arc::clone(&mcs);
                scope.spawn(move || {
                    for s in lo..lo + 4 {
                        mcs.attach(t(1), user, SlotAddr::new(0, s), host).unwrap();
                        // Attempt to poach the other tenant's slot: denied.
                        let other = SlotAddr::new(0, (s + 4) % 8);
                        assert!(mcs.detach(t(2), user, other).is_err());
                    }
                });
            }
        });
        mcs.with_chassis(|c| {
            assert_eq!(c.slots_of(HostId(1)).len(), 4);
            assert_eq!(c.slots_of(HostId(2)).len(), 4);
        });
    }
}
