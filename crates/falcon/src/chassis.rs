//! The Falcon 4016 chassis: drawers, slots, host ports, operating modes,
//! attach/detach, and materialization into the interconnect fabric.
//!
//! Mode semantics (paper §III-B, Fig 4):
//! * **Standard, one host** — a drawer is wholly owned by one host; the
//!   same host may own both drawers (16 devices).
//! * **Standard, two hosts** — a drawer is split into fixed halves
//!   (slots 0–3 and 4–7), one host per half. A single host may also take
//!   both halves through two separate port connections.
//! * **Advanced / dynamic provisioning** — up to three hosts connect to a
//!   drawer and devices are assigned slot-by-slot, re-assignable on the
//!   fly.

use devices::{GpuSpec, NicSpec, StorageSpec};
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology};
use std::collections::BTreeMap;
use std::fmt;

/// One of the chassis's two drawers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DrawerId(pub u8);

/// A slot address within the chassis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotAddr {
    pub drawer: DrawerId,
    pub slot: u8,
}

impl SlotAddr {
    pub fn new(drawer: u8, slot: u8) -> SlotAddr {
        Self::try_new(drawer, slot).expect("Falcon 4016 is 2 drawers × 8 slots")
    }

    /// Fallible construction for addresses arriving from outside the
    /// program (trace files, management imports): out-of-range addresses
    /// become a typed error instead of a panic.
    pub fn try_new(drawer: u8, slot: u8) -> Result<SlotAddr, ChassisError> {
        if drawer >= 2 || slot >= 8 {
            return Err(ChassisError::InvalidSlot { drawer, slot });
        }
        Ok(SlotAddr {
            drawer: DrawerId(drawer),
            slot,
        })
    }
}

impl fmt::Display for SlotAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}s{}", self.drawer.0, self.slot)
    }
}

/// One of the four host ports (H1–H4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HostPort {
    H1,
    H2,
    H3,
    H4,
}

impl HostPort {
    pub fn all() -> [HostPort; 4] {
        [HostPort::H1, HostPort::H2, HostPort::H3, HostPort::H4]
    }
}

/// Identifier of a host server known to the chassis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Operating mode of a drawer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Static composition; at most two hosts per drawer in fixed halves.
    Standard,
    /// Dynamic provisioning; up to three hosts per drawer, arbitrary
    /// slot-level assignment, reassignable at run time.
    Advanced,
}

impl Mode {
    pub fn max_hosts_per_drawer(self) -> usize {
        match self {
            Mode::Standard => 2,
            Mode::Advanced => 3,
        }
    }
}

/// What occupies a slot.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotDevice {
    Gpu(GpuSpec),
    Nvme(StorageSpec),
    Nic(NicSpec),
}

impl SlotDevice {
    pub fn kind_name(&self) -> &'static str {
        match self {
            SlotDevice::Gpu(_) => "GPU",
            SlotDevice::Nvme(_) => "NVMe",
            SlotDevice::Nic(_) => "NIC",
        }
    }

    pub fn model_name(&self) -> &str {
        match self {
            SlotDevice::Gpu(g) => &g.name,
            SlotDevice::Nvme(s) => &s.name,
            SlotDevice::Nic(n) => &n.name,
        }
    }
}

/// Errors from chassis operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChassisError {
    SlotEmpty(SlotAddr),
    SlotOccupied(SlotAddr),
    HostNotConnected(HostId, DrawerId),
    PortInUse(HostPort),
    TooManyHosts {
        drawer: DrawerId,
        mode: Mode,
    },
    /// In standard two-host mode a host may only own slots in its half.
    HalfViolation {
        slot: SlotAddr,
        host: HostId,
    },
    AlreadyAttached(SlotAddr, HostId),
    NotAttached(SlotAddr),
    /// Dynamic (post-materialization) reassignment requires advanced mode.
    RequiresAdvancedMode,
    /// Standard mode: cabling another host into a drawer requires the
    /// drawer's devices to be detached first (re-composition quiesce).
    DrawerBusy(DrawerId),
    /// A slot address outside the 2-drawer × 8-slot envelope.
    InvalidSlot { drawer: u8, slot: u8 },
    /// The slot is marked failed (outage); it cannot be attached until
    /// repaired. Detach of an already-attached failed slot still works —
    /// that is the evacuation path.
    SlotFailed(SlotAddr),
    /// The chassis was already built into a fabric.
    AlreadyMaterialized,
    /// Materialization found a cabled host with no fabric node.
    NoFabricNode(HostId),
}

impl fmt::Display for ChassisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChassisError::SlotEmpty(s) => write!(f, "slot {s} is empty"),
            ChassisError::SlotOccupied(s) => write!(f, "slot {s} is occupied"),
            ChassisError::HostNotConnected(h, d) => {
                write!(f, "host {} has no port into drawer {}", h.0, d.0)
            }
            ChassisError::PortInUse(p) => write!(f, "host port {p:?} already cabled"),
            ChassisError::TooManyHosts { drawer, mode } => write!(
                f,
                "drawer {} supports at most {} hosts in {:?} mode",
                drawer.0,
                mode.max_hosts_per_drawer(),
                mode
            ),
            ChassisError::HalfViolation { slot, host } => write!(
                f,
                "standard mode: host {} may not own slot {slot} outside its half",
                host.0
            ),
            ChassisError::AlreadyAttached(s, h) => {
                write!(f, "slot {s} already attached to host {}", h.0)
            }
            ChassisError::NotAttached(s) => write!(f, "slot {s} is not attached"),
            ChassisError::RequiresAdvancedMode => {
                write!(f, "dynamic reassignment requires advanced mode")
            }
            ChassisError::DrawerBusy(d) => write!(
                f,
                "drawer {} has attached devices; detach before re-cabling in standard mode",
                d.0
            ),
            ChassisError::InvalidSlot { drawer, slot } => write!(
                f,
                "slot d{drawer}s{slot} is outside the 2-drawer x 8-slot chassis"
            ),
            ChassisError::SlotFailed(s) => write!(f, "slot {s} is failed; repair before attach"),
            ChassisError::AlreadyMaterialized => write!(f, "chassis already materialized"),
            ChassisError::NoFabricNode(h) => {
                write!(f, "no fabric node for cabled host {}", h.0)
            }
        }
    }
}

impl std::error::Error for ChassisError {}

/// Fabric nodes materialized for one occupied slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotNodes {
    /// Device-internal endpoint (GPU core / NVMe media / NIC mac).
    pub endpoint: NodeId,
    /// PCIe-facing port node, linked to the drawer switch.
    pub port: NodeId,
}

/// The Falcon 4016 chassis model.
#[derive(Debug, Clone)]
pub struct Falcon4016 {
    pub name: String,
    mode: Mode,
    slots: BTreeMap<SlotAddr, SlotDevice>,
    /// Which host each occupied slot is attached to (if any).
    attachments: BTreeMap<SlotAddr, HostId>,
    /// Slots in a failed state (drawer outage, slot death). A failed slot
    /// refuses new attaches but keeps an existing attachment visible so
    /// the management plane can evacuate (detach) it.
    failed: std::collections::BTreeSet<SlotAddr>,
    /// Cabling: host port -> (host, drawer it lands in).
    ports: BTreeMap<HostPort, (HostId, DrawerId)>,
    /// Materialized fabric nodes.
    switch_nodes: BTreeMap<DrawerId, NodeId>,
    slot_nodes: BTreeMap<SlotAddr, SlotNodes>,
    host_nodes: BTreeMap<HostId, NodeId>,
    materialized: bool,
}

impl Falcon4016 {
    pub fn new(name: impl Into<String>, mode: Mode) -> Falcon4016 {
        Falcon4016 {
            name: name.into(),
            mode,
            slots: BTreeMap::new(),
            attachments: BTreeMap::new(),
            failed: std::collections::BTreeSet::new(),
            ports: BTreeMap::new(),
            switch_nodes: BTreeMap::new(),
            slot_nodes: BTreeMap::new(),
            host_nodes: BTreeMap::new(),
            materialized: false,
        }
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Populate a slot with a device (physical insertion).
    pub fn insert_device(&mut self, addr: SlotAddr, device: SlotDevice) -> Result<(), ChassisError> {
        if self.slots.contains_key(&addr) {
            return Err(ChassisError::SlotOccupied(addr));
        }
        self.slots.insert(addr, device);
        Ok(())
    }

    /// Physically remove a device (must be detached first).
    pub fn remove_device(&mut self, addr: SlotAddr) -> Result<SlotDevice, ChassisError> {
        if self.attachments.contains_key(&addr) {
            return Err(ChassisError::AlreadyAttached(addr, self.attachments[&addr]));
        }
        self.slots
            .remove(&addr)
            .ok_or(ChassisError::SlotEmpty(addr))
    }

    pub fn device_at(&self, addr: SlotAddr) -> Option<&SlotDevice> {
        self.slots.get(&addr)
    }

    pub fn occupied_slots(&self) -> impl Iterator<Item = (SlotAddr, &SlotDevice)> {
        self.slots.iter().map(|(a, d)| (*a, d))
    }

    /// Cable a host into a drawer through a host port.
    pub fn connect_host(
        &mut self,
        port: HostPort,
        host: HostId,
        drawer: DrawerId,
    ) -> Result<(), ChassisError> {
        if self.ports.contains_key(&port) {
            return Err(ChassisError::PortInUse(port));
        }
        let hosts = self.hosts_on_drawer(drawer);
        if !hosts.contains(&host) && hosts.len() >= self.mode.max_hosts_per_drawer() {
            return Err(ChassisError::TooManyHosts {
                drawer,
                mode: self.mode,
            });
        }
        // Standard mode's fixed-half ownership is assigned when the second
        // host arrives; devices attached under the one-host rule could end
        // up in the wrong half, so re-cabling requires a quiesced drawer.
        if self.mode == Mode::Standard
            && !hosts.is_empty()
            && !hosts.contains(&host)
            && self.attachments.keys().any(|a| a.drawer == drawer)
        {
            return Err(ChassisError::DrawerBusy(drawer));
        }
        self.ports.insert(port, (host, drawer));
        Ok(())
    }

    /// Hosts with at least one port into `drawer`.
    pub fn hosts_on_drawer(&self, drawer: DrawerId) -> Vec<HostId> {
        let mut v: Vec<HostId> = self
            .ports
            .values()
            .filter(|(_, d)| *d == drawer)
            .map(|(h, _)| *h)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn host_connected(&self, host: HostId, drawer: DrawerId) -> bool {
        self.ports.values().any(|&(h, d)| h == host && d == drawer)
    }

    /// Attach the device in `addr` to `host`, enforcing the mode rules.
    pub fn attach(&mut self, addr: SlotAddr, host: HostId) -> Result<(), ChassisError> {
        if !self.slots.contains_key(&addr) {
            return Err(ChassisError::SlotEmpty(addr));
        }
        if let Some(&owner) = self.attachments.get(&addr) {
            return Err(ChassisError::AlreadyAttached(addr, owner));
        }
        if self.failed.contains(&addr) {
            return Err(ChassisError::SlotFailed(addr));
        }
        if !self.host_connected(host, addr.drawer) {
            return Err(ChassisError::HostNotConnected(host, addr.drawer));
        }
        if self.mode == Mode::Standard {
            let hosts = self.hosts_on_drawer(addr.drawer);
            if hosts.len() == 2 {
                // Fixed halves: the lexically first host owns slots 0-3.
                let half = usize::from(addr.slot >= 4);
                let expected = hosts[half.min(hosts.len() - 1)];
                if host != expected {
                    return Err(ChassisError::HalfViolation { slot: addr, host });
                }
            }
        }
        self.attachments.insert(addr, host);
        Ok(())
    }

    /// Detach the device in `addr` from its host.
    pub fn detach(&mut self, addr: SlotAddr) -> Result<HostId, ChassisError> {
        self.attachments
            .remove(&addr)
            .ok_or(ChassisError::NotAttached(addr))
    }

    /// Re-assign a device to another host *while running* — the advanced
    /// mode's dynamic provisioning. Standard mode refuses.
    pub fn reassign(&mut self, addr: SlotAddr, to: HostId) -> Result<HostId, ChassisError> {
        if self.mode != Mode::Advanced {
            return Err(ChassisError::RequiresAdvancedMode);
        }
        if !self.host_connected(to, addr.drawer) {
            return Err(ChassisError::HostNotConnected(to, addr.drawer));
        }
        let from = self.detach(addr)?;
        self.attachments.insert(addr, to);
        Ok(from)
    }

    /// Mark a slot failed (outage). Idempotent; an attached slot stays
    /// attached until the management plane evacuates it.
    pub fn fail_slot(&mut self, addr: SlotAddr) {
        self.failed.insert(addr);
    }

    /// Clear a slot's failed state (repair / drawer power-back).
    pub fn repair_slot(&mut self, addr: SlotAddr) {
        self.failed.remove(&addr);
    }

    pub fn is_failed(&self, addr: SlotAddr) -> bool {
        self.failed.contains(&addr)
    }

    /// Failed slots, sorted.
    pub fn failed_slots(&self) -> impl Iterator<Item = SlotAddr> + '_ {
        self.failed.iter().copied()
    }

    pub fn owner_of(&self, addr: SlotAddr) -> Option<HostId> {
        self.attachments.get(&addr).copied()
    }

    /// Slots attached to `host`.
    pub fn slots_of(&self, host: HostId) -> Vec<SlotAddr> {
        self.attachments
            .iter()
            .filter(|(_, &h)| h == host)
            .map(|(a, _)| *a)
            .collect()
    }

    // ---- materialization ---------------------------------------------------

    /// Build the chassis into `topo`: per-drawer switch nodes, CDFP links
    /// from each cabled host's root-complex node, and device node pairs for
    /// every occupied slot. `host_nodes` maps hosts to their root-complex
    /// nodes (created by the caller).
    pub fn materialize(
        &mut self,
        topo: &mut Topology,
        host_nodes: &BTreeMap<HostId, NodeId>,
    ) -> Result<(), ChassisError> {
        if self.materialized {
            return Err(ChassisError::AlreadyMaterialized);
        }
        for &(host, _) in self.ports.values() {
            if !host_nodes.contains_key(&host) {
                return Err(ChassisError::NoFabricNode(host));
            }
        }
        self.host_nodes = host_nodes.clone();

        // Drawer switches.
        for d in [DrawerId(0), DrawerId(1)] {
            let sw = topo.add_node(format!("{}.drawer{}.switch", self.name, d.0), NodeKind::PcieSwitch);
            self.switch_nodes.insert(d, sw);
        }

        // Host ports (CDFP cables); hosts were checked above.
        for (&port, &(host, drawer)) in &self.ports {
            let host_node = host_nodes[&host];
            let sw = self.switch_nodes[&drawer];
            topo.add_link(host_node, sw, LinkSpec::of(LinkClass::Cdfp400));
            let _ = port;
        }

        // Devices.
        for (&addr, device) in &self.slots {
            let sw = self.switch_nodes[&addr.drawer];
            let label = format!("{}.{}", self.name, addr);
            let nodes = match device {
                SlotDevice::Gpu(spec) => {
                    let g = devices::gpu::add_gpu(topo, &label, spec);
                    SlotNodes {
                        endpoint: g.core,
                        port: g.port,
                    }
                }
                SlotDevice::Nvme(spec) => {
                    let s = devices::storage::add_storage(topo, &label, spec);
                    SlotNodes {
                        endpoint: s.device,
                        port: s.port,
                    }
                }
                SlotDevice::Nic(spec) => {
                    let port = devices::nic::add_nic(topo, &label, spec);
                    SlotNodes {
                        endpoint: port,
                        port,
                    }
                }
            };
            // Slot link into the drawer switch: PCIe Gen4 x16.
            topo.add_link(nodes.port, sw, LinkSpec::of(LinkClass::PcieGen4x16));
            self.slot_nodes.insert(addr, nodes);
        }

        self.materialized = true;
        Ok(())
    }

    pub fn slot_nodes(&self, addr: SlotAddr) -> Option<SlotNodes> {
        self.slot_nodes.get(&addr).copied()
    }

    pub fn switch_node(&self, drawer: DrawerId) -> Option<NodeId> {
        self.switch_nodes.get(&drawer).copied()
    }

    pub fn is_materialized(&self) -> bool {
        self.materialized
    }

    /// All (addr, owner) attachments, sorted.
    pub fn attachments(&self) -> impl Iterator<Item = (SlotAddr, HostId)> + '_ {
        self.attachments.iter().map(|(a, h)| (*a, *h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> SlotDevice {
        SlotDevice::Gpu(GpuSpec::v100_pcie_16gb())
    }

    fn chassis(mode: Mode) -> Falcon4016 {
        Falcon4016::new("falcon0", mode)
    }

    #[test]
    fn insert_and_remove_devices() {
        let mut c = chassis(Mode::Standard);
        let a = SlotAddr::new(0, 0);
        c.insert_device(a, gpu()).unwrap();
        assert_eq!(c.insert_device(a, gpu()), Err(ChassisError::SlotOccupied(a)));
        assert_eq!(c.device_at(a).unwrap().kind_name(), "GPU");
        c.remove_device(a).unwrap();
        assert_eq!(c.remove_device(a), Err(ChassisError::SlotEmpty(a)));
    }

    #[test]
    #[should_panic(expected = "2 drawers")]
    fn slot_addr_bounds() {
        let _ = SlotAddr::new(2, 0);
    }

    #[test]
    fn try_new_reports_invalid_slots() {
        assert_eq!(
            SlotAddr::try_new(2, 0),
            Err(ChassisError::InvalidSlot { drawer: 2, slot: 0 })
        );
        assert_eq!(
            SlotAddr::try_new(0, 8),
            Err(ChassisError::InvalidSlot { drawer: 0, slot: 8 })
        );
        assert_eq!(SlotAddr::try_new(1, 7), Ok(SlotAddr::new(1, 7)));
    }

    #[test]
    fn materialize_failures_are_typed() {
        let mut topo = Topology::new();
        let mut c = chassis(Mode::Standard);
        c.connect_host(HostPort::H1, HostId(0), DrawerId(0)).unwrap();
        // Cabled host with no fabric node: typed error, chassis untouched.
        let empty = BTreeMap::new();
        assert_eq!(
            c.materialize(&mut topo, &empty),
            Err(ChassisError::NoFabricNode(HostId(0)))
        );
        assert!(!c.is_materialized());
        // Now materialize properly, then again: typed error.
        let rc = topo.add_node("host0.rc", NodeKind::RootComplex);
        let mut hosts = BTreeMap::new();
        hosts.insert(HostId(0), rc);
        c.materialize(&mut topo, &hosts).unwrap();
        assert_eq!(
            c.materialize(&mut topo, &hosts),
            Err(ChassisError::AlreadyMaterialized)
        );
    }

    #[test]
    fn attach_requires_cabled_host() {
        let mut c = chassis(Mode::Standard);
        let a = SlotAddr::new(0, 0);
        c.insert_device(a, gpu()).unwrap();
        let h = HostId(1);
        assert_eq!(
            c.attach(a, h),
            Err(ChassisError::HostNotConnected(h, DrawerId(0)))
        );
        c.connect_host(HostPort::H1, h, DrawerId(0)).unwrap();
        c.attach(a, h).unwrap();
        assert_eq!(c.owner_of(a), Some(h));
    }

    #[test]
    fn standard_mode_allows_at_most_two_hosts_per_drawer() {
        let mut c = chassis(Mode::Standard);
        c.connect_host(HostPort::H1, HostId(1), DrawerId(0)).unwrap();
        c.connect_host(HostPort::H2, HostId(2), DrawerId(0)).unwrap();
        let err = c.connect_host(HostPort::H3, HostId(3), DrawerId(0));
        assert!(matches!(err, Err(ChassisError::TooManyHosts { .. })));
    }

    #[test]
    fn advanced_mode_allows_three_hosts() {
        let mut c = chassis(Mode::Advanced);
        c.connect_host(HostPort::H1, HostId(1), DrawerId(0)).unwrap();
        c.connect_host(HostPort::H2, HostId(2), DrawerId(0)).unwrap();
        c.connect_host(HostPort::H3, HostId(3), DrawerId(0)).unwrap();
        let err = c.connect_host(HostPort::H4, HostId(4), DrawerId(0));
        assert!(matches!(err, Err(ChassisError::TooManyHosts { .. })));
    }

    #[test]
    fn one_host_may_take_two_connections_to_one_drawer() {
        // Paper §III-B2: one host can have two connections to the same
        // drawer, each giving access to four devices.
        let mut c = chassis(Mode::Standard);
        c.connect_host(HostPort::H1, HostId(1), DrawerId(0)).unwrap();
        c.connect_host(HostPort::H2, HostId(1), DrawerId(0)).unwrap();
        assert_eq!(c.hosts_on_drawer(DrawerId(0)), vec![HostId(1)]);
    }

    #[test]
    fn standard_two_host_halves_are_enforced() {
        let mut c = chassis(Mode::Standard);
        let (h1, h2) = (HostId(1), HostId(2));
        c.connect_host(HostPort::H1, h1, DrawerId(0)).unwrap();
        c.connect_host(HostPort::H2, h2, DrawerId(0)).unwrap();
        for s in 0..8 {
            c.insert_device(SlotAddr::new(0, s), gpu()).unwrap();
        }
        // h1 owns the low half, h2 the high half.
        c.attach(SlotAddr::new(0, 0), h1).unwrap();
        c.attach(SlotAddr::new(0, 7), h2).unwrap();
        assert!(matches!(
            c.attach(SlotAddr::new(0, 1), h2),
            Err(ChassisError::HalfViolation { .. })
        ));
        assert!(matches!(
            c.attach(SlotAddr::new(0, 5), h1),
            Err(ChassisError::HalfViolation { .. })
        ));
    }

    #[test]
    fn single_host_standard_mode_takes_all_sixteen() {
        let mut c = chassis(Mode::Standard);
        let h = HostId(1);
        c.connect_host(HostPort::H1, h, DrawerId(0)).unwrap();
        c.connect_host(HostPort::H2, h, DrawerId(1)).unwrap();
        for d in 0..2 {
            for s in 0..8 {
                let a = SlotAddr::new(d, s);
                c.insert_device(a, gpu()).unwrap();
                c.attach(a, h).unwrap();
            }
        }
        assert_eq!(c.slots_of(h).len(), 16);
    }

    #[test]
    fn detach_then_remove() {
        let mut c = chassis(Mode::Standard);
        let a = SlotAddr::new(1, 3);
        let h = HostId(1);
        c.connect_host(HostPort::H1, h, DrawerId(1)).unwrap();
        c.insert_device(a, gpu()).unwrap();
        c.attach(a, h).unwrap();
        assert!(matches!(c.remove_device(a), Err(ChassisError::AlreadyAttached(..))));
        assert_eq!(c.detach(a), Ok(h));
        assert_eq!(c.detach(a), Err(ChassisError::NotAttached(a)));
        c.remove_device(a).unwrap();
    }

    #[test]
    fn failed_slot_refuses_attach_but_allows_evacuation() {
        let mut c = chassis(Mode::Advanced);
        let h = HostId(1);
        c.connect_host(HostPort::H1, h, DrawerId(0)).unwrap();
        let (a, b) = (SlotAddr::new(0, 0), SlotAddr::new(0, 1));
        c.insert_device(a, gpu()).unwrap();
        c.insert_device(b, gpu()).unwrap();
        c.attach(a, h).unwrap();
        // Outage hits both slots: the attached one stays visible so it can
        // be evacuated; the free one refuses composition until repair.
        c.fail_slot(a);
        c.fail_slot(b);
        assert!(c.is_failed(a));
        assert_eq!(c.attach(b, h), Err(ChassisError::SlotFailed(b)));
        assert_eq!(c.detach(a), Ok(h), "evacuation must still detach");
        assert_eq!(c.attach(a, h), Err(ChassisError::SlotFailed(a)));
        c.repair_slot(a);
        c.repair_slot(b);
        assert_eq!(c.failed_slots().count(), 0);
        c.attach(a, h).unwrap();
        c.attach(b, h).unwrap();
    }

    #[test]
    fn reassign_only_in_advanced_mode() {
        let mut std_c = chassis(Mode::Standard);
        let a = SlotAddr::new(0, 0);
        let (h1, h2) = (HostId(1), HostId(2));
        std_c.connect_host(HostPort::H1, h1, DrawerId(0)).unwrap();
        std_c.connect_host(HostPort::H2, h2, DrawerId(0)).unwrap();
        std_c.insert_device(a, gpu()).unwrap();
        std_c.attach(a, h1).unwrap();
        assert_eq!(std_c.reassign(a, h2), Err(ChassisError::RequiresAdvancedMode));

        let mut adv = chassis(Mode::Advanced);
        adv.connect_host(HostPort::H1, h1, DrawerId(0)).unwrap();
        adv.connect_host(HostPort::H2, h2, DrawerId(0)).unwrap();
        adv.insert_device(a, gpu()).unwrap();
        adv.attach(a, h1).unwrap();
        assert_eq!(adv.reassign(a, h2), Ok(h1));
        assert_eq!(adv.owner_of(a), Some(h2));
    }

    #[test]
    fn materialize_builds_routable_fabric() {
        let mut topo = Topology::new();
        let host_rc = topo.add_node("host0.rc", NodeKind::RootComplex);
        let mut hosts = BTreeMap::new();
        hosts.insert(HostId(0), host_rc);

        let mut c = chassis(Mode::Standard);
        c.connect_host(HostPort::H1, HostId(0), DrawerId(0)).unwrap();
        for s in 0..4 {
            let a = SlotAddr::new(0, s);
            c.insert_device(a, gpu()).unwrap();
            c.attach(a, HostId(0)).unwrap();
        }
        c.insert_device(SlotAddr::new(1, 0), SlotDevice::Nvme(StorageSpec::intel_p4500_4tb()))
            .unwrap();
        c.materialize(&mut topo, &hosts).unwrap();
        assert!(c.is_materialized());

        // Host can reach each attached GPU core through the switch.
        for s in 0..4 {
            let nodes = c.slot_nodes(SlotAddr::new(0, s)).unwrap();
            let r = topo.route(host_rc, nodes.endpoint).unwrap();
            assert!(r.hop_count() >= 3, "host -> CDFP -> switch -> slot -> core");
        }
        // GPU-to-GPU inside a drawer stays on the switch (4 hops:
        // dma, slot link, slot link, dma).
        let a = c.slot_nodes(SlotAddr::new(0, 0)).unwrap();
        let b = c.slot_nodes(SlotAddr::new(0, 1)).unwrap();
        let r = topo.route(a.endpoint, b.endpoint).unwrap();
        assert_eq!(r.hop_count(), 4);
        // The un-cabled drawer 1 NVMe is not reachable from the host.
        let nv = c.slot_nodes(SlotAddr::new(1, 0)).unwrap();
        assert!(topo.route(host_rc, nv.endpoint).is_none());
    }
}
