//! The Falcon management interface's functional surface (paper §II-B):
//! resource inventory, port configuration, list/topology views, and
//! **import/export of the resource allocation as a configuration file**.

use crate::chassis::{DrawerId, Falcon4016, HostId, SlotAddr, SlotDevice};
use desim::json::{FromJson, JsonError, ToJson, Value};
use std::fmt;
use std::sync::Arc;

/// One row of the management GUI's resource list: device model, link
/// speed, vendor/device id, owner.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceRecord {
    pub slot: SlotAddr,
    pub kind: String,
    pub model: String,
    pub vendor_id: u16,
    pub device_id: u16,
    pub link_speed: String,
    pub owner: Option<HostId>,
}

/// Port configuration the resource owner can change (paper §II-B: "port
/// type and lanes of specific ports").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortConfig {
    pub lanes: u8,
    pub max_gen: u8,
}

impl Default for PortConfig {
    fn default() -> Self {
        PortConfig {
            lanes: 16,
            max_gen: 4,
        }
    }
}

impl PortConfig {
    pub fn validate(&self) -> Result<(), String> {
        if ![1, 2, 4, 8, 16].contains(&self.lanes) {
            return Err(format!("invalid lane count {}", self.lanes));
        }
        if !(1..=4).contains(&self.max_gen) {
            return Err(format!("invalid PCIe generation {}", self.max_gen));
        }
        Ok(())
    }
}

/// A serializable snapshot of the chassis's resource allocation — the
/// management GUI's "import or export resource allocation as a
/// configuration file".
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationConfig {
    pub chassis: String,
    pub assignments: Vec<Assignment>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub slot: SlotAddr,
    pub host: HostId,
}

impl AllocationConfig {
    /// Snapshot the current attachments of a chassis.
    pub fn export(chassis: &Falcon4016) -> AllocationConfig {
        AllocationConfig {
            chassis: chassis.name.clone(),
            assignments: chassis
                .attachments()
                .map(|(slot, host)| Assignment { slot, host })
                .collect(),
        }
    }

    /// Serialize to the on-disk JSON form. The cheaply clonable `Arc`
    /// mirrors how the management plane hands the same exported file to
    /// several consumers.
    pub fn to_bytes(&self) -> Arc<[u8]> {
        Arc::from(self.to_json().emit_pretty().into_bytes())
    }

    /// Parse an exported configuration file.
    pub fn from_bytes(bytes: &[u8]) -> Result<AllocationConfig, String> {
        let v = Value::parse_bytes(bytes).map_err(|e| format!("bad allocation config: {e}"))?;
        AllocationConfig::from_json(&v).map_err(|e| format!("bad allocation config: {e}"))
    }

    /// Apply this allocation to a chassis: detach everything, then attach
    /// per the file. Fails (leaving the chassis detached) if an assignment
    /// violates the chassis mode rules.
    pub fn import(&self, chassis: &mut Falcon4016) -> Result<(), String> {
        let existing: Vec<SlotAddr> = chassis.attachments().map(|(a, _)| a).collect();
        for a in existing {
            chassis.detach(a).map_err(|e| e.to_string())?;
        }
        for asg in &self.assignments {
            chassis
                .attach(asg.slot, asg.host)
                .map_err(|e| format!("applying {}: {e}", asg.slot))?;
        }
        Ok(())
    }
}

impl ToJson for SlotAddr {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("drawer", Value::from_u64(u64::from(self.drawer.0))),
            ("slot", Value::from_u64(u64::from(self.slot))),
        ])
    }
}

impl FromJson for SlotAddr {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let drawer = v.get("drawer")?.as_u8()?;
        let slot = v.get("slot")?.as_u8()?;
        if drawer >= 2 || slot >= 8 {
            return Err(JsonError::decode(format!(
                "slot address d{drawer}s{slot} outside the 2x8 chassis"
            )));
        }
        Ok(SlotAddr {
            drawer: DrawerId(drawer),
            slot,
        })
    }
}

impl ToJson for HostId {
    fn to_json(&self) -> Value {
        Value::from_u64(u64::from(self.0))
    }
}

impl FromJson for HostId {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(HostId(v.as_u32()?))
    }
}

impl ToJson for Assignment {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("slot", self.slot.to_json()),
            ("host", self.host.to_json()),
        ])
    }
}

impl FromJson for Assignment {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Assignment {
            slot: SlotAddr::from_json(v.get("slot")?)?,
            host: HostId::from_json(v.get("host")?)?,
        })
    }
}

impl ToJson for AllocationConfig {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("chassis", Value::str(&*self.chassis)),
            ("assignments", self.assignments.to_json()),
        ])
    }
}

impl FromJson for AllocationConfig {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(AllocationConfig {
            chassis: String::from_json(v.get("chassis")?)?,
            assignments: FromJson::from_json(v.get("assignments")?)?,
        })
    }
}

/// PCI vendor ids used in inventory rows.
fn vendor_of(device: &SlotDevice) -> (u16, u16) {
    match device {
        SlotDevice::Gpu(g) => {
            let dev = if g.name.contains("V100") { 0x1db5 } else { 0x15f8 };
            (0x10de, dev) // NVIDIA
        }
        SlotDevice::Nvme(_) => (0x8086, 0x0a54), // Intel
        SlotDevice::Nic(_) => (0x8086, 0x1528),  // Intel X540
    }
}

/// Produce the GUI's resource list.
pub fn resource_list(chassis: &Falcon4016) -> Vec<ResourceRecord> {
    chassis
        .occupied_slots()
        .map(|(slot, device)| {
            let (vendor_id, device_id) = vendor_of(device);
            ResourceRecord {
                slot,
                kind: device.kind_name().to_string(),
                model: device.model_name().to_string(),
                vendor_id,
                device_id,
                link_speed: "PCIe 4.0 x16".to_string(),
                owner: chassis.owner_of(slot),
            }
        })
        .collect()
}

/// The GUI's "list view": one line per resource.
pub fn list_view(chassis: &Falcon4016) -> String {
    let mut out = format!("Resources of {}\n", chassis.name);
    for r in resource_list(chassis) {
        let owner = r
            .owner
            .map_or("unassigned".to_string(), |h| format!("host{}", h.0));
        out.push_str(&format!(
            "  {} {:4} {:28} {:04x}:{:04x} {} -> {}\n",
            r.slot, r.kind, r.model, r.vendor_id, r.device_id, r.link_speed, owner
        ));
    }
    out
}

/// The GUI's "topology view": drawers with their hosts and slots.
pub fn topology_view(chassis: &Falcon4016) -> String {
    let mut out = format!("{} topology\n", chassis.name);
    for d in 0..2u8 {
        let drawer = crate::chassis::DrawerId(d);
        let hosts = chassis.hosts_on_drawer(drawer);
        let host_list = if hosts.is_empty() {
            "no hosts".to_string()
        } else {
            hosts
                .iter()
                .map(|h| format!("host{}", h.0))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!("  drawer {d} [{host_list}]\n"));
        for s in 0..8u8 {
            let addr = SlotAddr::new(d, s);
            match chassis.device_at(addr) {
                Some(dev) => {
                    let owner = chassis
                        .owner_of(addr)
                        .map_or("-".to_string(), |h| format!("host{}", h.0));
                    out.push_str(&format!("    s{s}: {} ({owner})\n", dev.model_name()));
                }
                None => out.push_str(&format!("    s{s}: empty\n")),
            }
        }
    }
    out
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.slot, self.kind, self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chassis::{DrawerId, HostPort, Mode};
    use devices::{GpuSpec, StorageSpec};

    fn sample_chassis() -> Falcon4016 {
        let mut c = Falcon4016::new("falcon0", Mode::Advanced);
        c.connect_host(HostPort::H1, HostId(1), DrawerId(0)).unwrap();
        c.connect_host(HostPort::H2, HostId(2), DrawerId(0)).unwrap();
        for s in 0..4 {
            c.insert_device(
                SlotAddr::new(0, s),
                SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
            )
            .unwrap();
        }
        c.insert_device(
            SlotAddr::new(0, 4),
            SlotDevice::Nvme(StorageSpec::intel_p4500_4tb()),
        )
        .unwrap();
        c.attach(SlotAddr::new(0, 0), HostId(1)).unwrap();
        c.attach(SlotAddr::new(0, 1), HostId(2)).unwrap();
        c
    }

    #[test]
    fn resource_list_reports_all_devices() {
        let c = sample_chassis();
        let list = resource_list(&c);
        assert_eq!(list.len(), 5);
        let gpus = list.iter().filter(|r| r.kind == "GPU").count();
        assert_eq!(gpus, 4);
        assert_eq!(list[0].owner, Some(HostId(1)));
        assert_eq!(list[2].owner, None);
        assert_eq!(list[0].vendor_id, 0x10de, "NVIDIA vendor id");
    }

    #[test]
    fn views_render() {
        let c = sample_chassis();
        let lv = list_view(&c);
        assert!(lv.contains("V100"));
        assert!(lv.contains("host1"));
        let tv = topology_view(&c);
        assert!(tv.contains("drawer 0 [host1, host2]"));
        assert!(tv.contains("s7: empty"));
    }

    #[test]
    fn allocation_roundtrip_through_json() {
        let c = sample_chassis();
        let cfg = AllocationConfig::export(&c);
        let bytes = cfg.to_bytes();
        let parsed = AllocationConfig::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, cfg);
        assert_eq!(parsed.assignments.len(), 2);
    }

    #[test]
    fn import_reapplies_allocation() {
        let mut c = sample_chassis();
        let cfg = AllocationConfig::export(&c);
        // Scramble: detach all.
        c.detach(SlotAddr::new(0, 0)).unwrap();
        c.detach(SlotAddr::new(0, 1)).unwrap();
        cfg.import(&mut c).unwrap();
        assert_eq!(c.owner_of(SlotAddr::new(0, 0)), Some(HostId(1)));
        assert_eq!(c.owner_of(SlotAddr::new(0, 1)), Some(HostId(2)));
    }

    #[test]
    fn import_rejects_invalid_assignment() {
        let mut c = sample_chassis();
        let mut cfg = AllocationConfig::export(&c);
        // Host 9 is not cabled into the drawer.
        cfg.assignments.push(Assignment {
            slot: SlotAddr::new(0, 2),
            host: HostId(9),
        });
        let err = cfg.import(&mut c).unwrap_err();
        assert!(err.contains("d0s2"), "{err}");
    }

    #[test]
    fn bad_config_bytes_rejected() {
        assert!(AllocationConfig::from_bytes(b"not json").is_err());
    }

    #[test]
    fn port_config_validation() {
        assert!(PortConfig::default().validate().is_ok());
        assert!(PortConfig { lanes: 3, max_gen: 4 }.validate().is_err());
        assert!(PortConfig { lanes: 8, max_gen: 5 }.validate().is_err());
        assert!(PortConfig { lanes: 8, max_gen: 3 }.validate().is_ok());
    }
}
