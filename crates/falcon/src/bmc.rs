//! The baseboard management controller (OpenBMC-style).
//!
//! The Falcon's BMC "manages and monitors most of the standard buses in
//! the system, as well as temperature, fan sensors, storage devices, and
//! network [and] can alert administrators to any parameters which fall
//! outside of specifications" (paper §II-B). The model here is a
//! deterministic thermal/fan loop driven by device load, with thresholds
//! that emit alert events into a queryable log.

use desim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Critical,
}

/// One entry in the BMC event log.
#[derive(Debug, Clone, PartialEq)]
pub struct BmcEvent {
    pub at: SimTime,
    pub severity: Severity,
    pub sensor: String,
    pub message: String,
}

/// A temperature sensor with warning/critical thresholds (°C).
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalSensor {
    pub name: String,
    pub ambient_c: f64,
    /// Temperature rise at 100 % load with fans at base speed.
    pub rise_at_full_load_c: f64,
    pub warning_c: f64,
    pub critical_c: f64,
}

impl ThermalSensor {
    /// Steady-state temperature at `load` (0–1) and `fan` (0–1, where 1 is
    /// maximum cooling). Higher fan speed removes up to 40 % of the rise.
    pub fn temperature(&self, load: f64, fan: f64) -> f64 {
        let load = load.clamp(0.0, 1.0);
        let fan = fan.clamp(0.0, 1.0);
        self.ambient_c + self.rise_at_full_load_c * load * (1.0 - 0.4 * fan)
    }
}

/// The BMC: sensors, fan control, and the event log.
#[derive(Debug, Clone, Default)]
pub struct Bmc {
    sensors: BTreeMap<String, ThermalSensor>,
    /// Last reported load per sensor.
    loads: BTreeMap<String, f64>,
    fan_speed: f64,
    /// Sensors whose cooling fan has failed: they see zero airflow no
    /// matter what the controller commands, so a loaded drawer runs all
    /// the way to `ambient + rise` — past the critical threshold.
    failed_fans: BTreeSet<String>,
    log: Vec<BmcEvent>,
}

impl Bmc {
    pub fn new() -> Bmc {
        Bmc {
            fan_speed: 0.3,
            ..Default::default()
        }
    }

    /// A Falcon 4016 BMC with one thermal sensor per drawer and one for the
    /// chassis (the GUI reports "temperature information: drawers and
    /// chassis").
    pub fn falcon_defaults() -> Bmc {
        let mut bmc = Bmc::new();
        for name in ["drawer0", "drawer1", "chassis"] {
            bmc.add_sensor(ThermalSensor {
                name: name.to_string(),
                ambient_c: 24.0,
                rise_at_full_load_c: 46.0,
                // At full load the settled equilibrium is ~58.6 C, so the
                // warning threshold sits below it and critical above it.
                warning_c: 55.0,
                critical_c: 70.0,
            });
        }
        bmc
    }

    pub fn add_sensor(&mut self, sensor: ThermalSensor) {
        self.loads.insert(sensor.name.clone(), 0.0);
        self.sensors.insert(sensor.name.clone(), sensor);
    }

    pub fn fan_speed(&self) -> f64 {
        self.fan_speed
    }

    /// Inject or repair a fan failure on one sensor's cooling zone. With
    /// the fan failed, that sensor cools as if airflow were zero. The
    /// flip is itself a thermal event: thresholds are re-evaluated at
    /// `at`, so a loaded drawer losing its fan raises the alert
    /// immediately rather than at the next load sample.
    pub fn set_fan_failed(&mut self, at: SimTime, sensor: &str, failed: bool) {
        if !self.sensors.contains_key(sensor) {
            return;
        }
        let prev_temp = self.temperature(sensor).expect("known sensor");
        if failed {
            self.failed_fans.insert(sensor.to_string());
        } else {
            self.failed_fans.remove(sensor);
        }
        self.settle_fans();
        self.check_thresholds(at, sensor, prev_temp);
    }

    pub fn fan_failed(&self, sensor: &str) -> bool {
        self.failed_fans.contains(sensor)
    }

    /// The airflow a sensor's zone actually receives.
    fn effective_fan(&self, sensor: &str) -> f64 {
        if self.failed_fans.contains(sensor) {
            0.0
        } else {
            self.fan_speed
        }
    }

    /// Proportional fan control: solve the fan/temperature fixed point
    /// (fan cools, target tracks the hottest sensor) by damped iteration.
    /// The loop gain is < 1 for the Falcon's sensors, so this converges;
    /// iterating to convergence avoids the oscillation a naive
    /// measure-then-react controller exhibits.
    fn settle_fans(&mut self) {
        for _ in 0..32 {
            let hottest = self.hottest_temperature();
            let target = ((hottest - 40.0) / 30.0).clamp(0.3, 1.0);
            if (target - self.fan_speed).abs() < 1e-6 {
                break;
            }
            self.fan_speed = 0.5 * self.fan_speed + 0.5 * target;
        }
    }

    /// Report a load sample for a sensor; the BMC adjusts fans and raises
    /// alerts as thresholds are crossed.
    pub fn report_load(&mut self, at: SimTime, sensor: &str, load: f64) {
        let Some(s) = self.sensors.get(sensor) else {
            return;
        };
        let prev_temp = s.temperature(self.loads[sensor], self.effective_fan(sensor));
        self.loads.insert(sensor.to_string(), load.clamp(0.0, 1.0));
        self.settle_fans();
        self.check_thresholds(at, sensor, prev_temp);
    }

    /// Emit Warning/Critical events on upward threshold crossings from
    /// `prev_temp` to the sensor's current temperature.
    fn check_thresholds(&mut self, at: SimTime, sensor: &str, prev_temp: f64) {
        let s = &self.sensors[sensor];
        let temp = s.temperature(self.loads[sensor], self.effective_fan(sensor));
        if temp >= s.critical_c && prev_temp < s.critical_c {
            self.log.push(BmcEvent {
                at,
                severity: Severity::Critical,
                sensor: sensor.to_string(),
                message: format!("{sensor} at {temp:.1}C exceeds critical {:.1}C", s.critical_c),
            });
        } else if temp >= s.warning_c && prev_temp < s.warning_c {
            self.log.push(BmcEvent {
                at,
                severity: Severity::Warning,
                sensor: sensor.to_string(),
                message: format!("{sensor} at {temp:.1}C exceeds warning {:.1}C", s.warning_c),
            });
        }
    }

    /// Current temperature of a sensor.
    pub fn temperature(&self, sensor: &str) -> Option<f64> {
        let s = self.sensors.get(sensor)?;
        Some(s.temperature(self.loads[sensor], self.effective_fan(sensor)))
    }

    pub fn hottest_temperature(&self) -> f64 {
        self.sensors
            .values()
            .map(|s| s.temperature(self.loads[&s.name], self.effective_fan(&s.name)))
            .fold(0.0, f64::max)
    }

    /// Full event log.
    pub fn events(&self) -> &[BmcEvent] {
        &self.log
    }

    /// Events at or above a severity (the GUI's filtered export).
    pub fn events_at_least(&self, severity: Severity) -> Vec<&BmcEvent> {
        self.log.iter().filter(|e| e.severity >= severity).collect()
    }

    /// Record an informational event (device hot-plug, reassignment, …).
    pub fn log_info(&mut self, at: SimTime, sensor: &str, message: impl Into<String>) {
        self.log.push(BmcEvent {
            at,
            severity: Severity::Info,
            sensor: sensor.to_string(),
            message: message.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn idle_chassis_is_cool() {
        let bmc = Bmc::falcon_defaults();
        let temp = bmc.temperature("drawer0").unwrap();
        assert!((temp - 24.0).abs() < 1e-9, "idle = ambient: {temp}");
    }

    #[test]
    fn load_raises_temperature_and_fan() {
        let mut bmc = Bmc::falcon_defaults();
        let f0 = bmc.fan_speed();
        bmc.report_load(t(1), "drawer0", 1.0);
        let temp = bmc.temperature("drawer0").unwrap();
        assert!(temp > 45.0, "{temp}");
        assert!(bmc.fan_speed() > f0);
    }

    #[test]
    fn warning_event_emitted_once_per_crossing() {
        let mut bmc = Bmc::falcon_defaults();
        bmc.report_load(t(1), "drawer0", 1.0);
        bmc.report_load(t(2), "drawer0", 1.0); // still hot: no duplicate
        let warns = bmc.events_at_least(Severity::Warning).len();
        assert_eq!(warns, 1, "events: {:?}", bmc.events());
    }

    #[test]
    fn cooling_then_reheating_emits_again() {
        let mut bmc = Bmc::falcon_defaults();
        bmc.report_load(t(1), "drawer0", 1.0);
        bmc.report_load(t(2), "drawer0", 0.0);
        bmc.report_load(t(3), "drawer0", 1.0);
        assert_eq!(bmc.events_at_least(Severity::Warning).len(), 2);
    }

    #[test]
    fn unknown_sensor_is_ignored() {
        let mut bmc = Bmc::falcon_defaults();
        bmc.report_load(t(1), "nonexistent", 1.0);
        assert!(bmc.events().is_empty());
    }

    #[test]
    fn info_log_and_ordering() {
        let mut bmc = Bmc::falcon_defaults();
        bmc.log_info(t(1), "drawer0", "GPU hot-plugged in d0s3");
        bmc.log_info(t(2), "drawer0", "GPU reassigned to host 2");
        assert_eq!(bmc.events().len(), 2);
        assert!(bmc.events()[0].at < bmc.events()[1].at);
        assert!(bmc.events_at_least(Severity::Warning).is_empty());
    }

    #[test]
    fn fan_failure_drives_a_loaded_drawer_critical() {
        let mut bmc = Bmc::falcon_defaults();
        // A healthy fan keeps full load below critical (≈58.6 C settled).
        bmc.report_load(t(1), "drawer0", 1.0);
        assert!(bmc.events_at_least(Severity::Critical).is_empty());
        // Fan failure at full load: 24 + 46·1.0·(1 − 0) = 70 ≥ critical,
        // and the flip itself raises the alert.
        bmc.set_fan_failed(t(2), "drawer0", true);
        assert!(bmc.fan_failed("drawer0"));
        assert_eq!(bmc.events_at_least(Severity::Critical).len(), 1);
        // Only the failed zone overheats; its repair restores cooling.
        assert!(bmc.temperature("drawer1").unwrap() < 60.0);
        bmc.set_fan_failed(t(3), "drawer0", false);
        assert!(bmc.temperature("drawer0").unwrap() < 70.0);
        assert_eq!(bmc.events_at_least(Severity::Critical).len(), 1, "no re-trip after repair");
    }

    #[test]
    fn fan_mitigates_temperature() {
        let s = ThermalSensor {
            name: "x".into(),
            ambient_c: 24.0,
            rise_at_full_load_c: 50.0,
            warning_c: 60.0,
            critical_c: 75.0,
        };
        assert!(s.temperature(1.0, 1.0) < s.temperature(1.0, 0.0));
    }
}
