//! `falcon` — the Falcon 4016 composable chassis and its management plane.
//!
//! The Falcon 4016 (paper §II–§III) is a 4U PCIe-Gen4 chassis with **two
//! drawers of eight slots** each, four host ports (H1–H4) cabled to host
//! servers over 400 Gb/s CDFP, and per-drawer PCIe switch ASICs. Devices
//! (GPUs, NVMe, NICs, custom PCIe 4.0 hardware) can be attached to and
//! detached from hosts — statically in *standard* mode, dynamically and
//! shared three-ways in *advanced* mode.
//!
//! Crate layout:
//! * [`chassis`] — drawers, slots, host ports, operating modes and their
//!   constraint checking, dynamic attach/detach, and materialization of the
//!   chassis into a [`fabric::Topology`].
//! * [`bmc`] — the OpenBMC-style baseboard management controller:
//!   temperature/fan/PSU sensors, thresholds, alerts, event log.
//! * [`mgmt`] — the management GUI's functional surface: resource
//!   inventory, port configuration, list/topology views, and allocation
//!   import/export as a JSON configuration file.
//! * [`mcs`] — the Management Center Server (paper §II-D): multi-user
//!   control with admin/user roles, per-resource ownership, isolation
//!   between users, and an audit log.

pub mod bmc;
pub mod chassis;
pub mod mcs;
pub mod mgmt;

pub use bmc::{Bmc, BmcEvent, Severity};
pub use chassis::{
    ChassisError, DrawerId, Falcon4016, HostId, HostPort, Mode, SlotAddr, SlotDevice,
};
pub use mcs::{McsError, ManagementCenter, Role, UserId};
pub use mgmt::{AllocationConfig, PortConfig, ResourceRecord};
