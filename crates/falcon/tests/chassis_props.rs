//! Property tests on the chassis state machine: arbitrary sequences of
//! composition operations can never violate the structural invariants of
//! the Falcon 4016.

use devices::GpuSpec;
use falcon::{ChassisError, DrawerId, Falcon4016, HostId, HostPort, Mode, SlotAddr, SlotDevice};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8),
    Remove(u8, u8),
    Connect(u8, u32, u8),
    Attach(u8, u8, u32),
    Detach(u8, u8),
    Reassign(u8, u8, u32),
}

fn ops() -> impl Strategy<Value = (bool, Vec<Op>)> {
    let op = prop_oneof![
        (0u8..2, 0u8..8).prop_map(|(d, s)| Op::Insert(d, s)),
        (0u8..2, 0u8..8).prop_map(|(d, s)| Op::Remove(d, s)),
        (0u8..4, 1u32..5, 0u8..2).prop_map(|(p, h, d)| Op::Connect(p, h, d)),
        (0u8..2, 0u8..8, 1u32..5).prop_map(|(d, s, h)| Op::Attach(d, s, h)),
        (0u8..2, 0u8..8).prop_map(|(d, s)| Op::Detach(d, s)),
        (0u8..2, 0u8..8, 1u32..5).prop_map(|(d, s, h)| Op::Reassign(d, s, h)),
    ];
    (any::<bool>(), proptest::collection::vec(op, 1..120))
}

fn port(p: u8) -> HostPort {
    HostPort::all()[p as usize]
}

fn check_invariants(c: &Falcon4016) {
    let mode = c.mode();
    // 1. Every attachment refers to an occupied slot whose host is cabled
    //    into that drawer.
    for (slot, host) in c.attachments() {
        assert!(c.device_at(slot).is_some(), "attached slot must be occupied");
        assert!(
            c.hosts_on_drawer(slot.drawer).contains(&host),
            "owner must be cabled into the drawer"
        );
    }
    // 2. Host count per drawer respects the mode.
    for d in [DrawerId(0), DrawerId(1)] {
        assert!(c.hosts_on_drawer(d).len() <= mode.max_hosts_per_drawer());
    }
    // 3. In standard mode with two hosts, halves are disjointly owned.
    if mode == Mode::Standard {
        for d in [DrawerId(0), DrawerId(1)] {
            let hosts = c.hosts_on_drawer(d);
            if hosts.len() == 2 {
                for (slot, host) in c.attachments().filter(|(s, _)| s.drawer == d) {
                    let expected = hosts[usize::from(slot.slot >= 4)];
                    assert_eq!(host, expected, "half violation at {slot}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chassis_invariants_hold((advanced, ops) in ops()) {
        let mode = if advanced { Mode::Advanced } else { Mode::Standard };
        let mut c = Falcon4016::new("prop", mode);
        for op in ops {
            // Every operation either succeeds or returns a typed error;
            // invariants hold either way.
            let _result: Result<(), ChassisError> = match op {
                Op::Insert(d, s) => c
                    .insert_device(
                        SlotAddr::new(d, s),
                        SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
                    ),
                Op::Remove(d, s) => c.remove_device(SlotAddr::new(d, s)).map(|_| ()),
                Op::Connect(p, h, d) => c.connect_host(port(p), HostId(h), DrawerId(d)),
                Op::Attach(d, s, h) => c.attach(SlotAddr::new(d, s), HostId(h)),
                Op::Detach(d, s) => c.detach(SlotAddr::new(d, s)).map(|_| ()),
                Op::Reassign(d, s, h) => {
                    c.reassign(SlotAddr::new(d, s), HostId(h)).map(|_| ())
                }
            };
            check_invariants(&c);
        }
    }

    /// Reassignment in standard mode never succeeds; in advanced mode it
    /// succeeds exactly when the slot is attached and the target is cabled.
    #[test]
    fn reassign_semantics((advanced, ops) in ops()) {
        let mode = if advanced { Mode::Advanced } else { Mode::Standard };
        let mut c = Falcon4016::new("prop", mode);
        for op in ops {
            if let Op::Reassign(d, s, h) = op {
                let addr = SlotAddr::new(d, s);
                let was_attached = c.owner_of(addr).is_some();
                let target_cabled = c.hosts_on_drawer(DrawerId(d)).contains(&HostId(h));
                let r = c.reassign(addr, HostId(h));
                if mode == Mode::Standard {
                    prop_assert_eq!(r, Err(ChassisError::RequiresAdvancedMode));
                } else if was_attached && target_cabled {
                    prop_assert!(r.is_ok());
                    prop_assert_eq!(c.owner_of(addr), Some(HostId(h)));
                } else {
                    prop_assert!(r.is_err());
                }
            } else {
                // Drive some state transitions so reassigns have targets.
                match op {
                    Op::Insert(d, s) => {
                        let _ = c.insert_device(
                            SlotAddr::new(d, s),
                            SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
                        );
                    }
                    Op::Connect(p, h, d) => {
                        let _ = c.connect_host(port(p), HostId(h), DrawerId(d));
                    }
                    Op::Attach(d, s, h) => {
                        let _ = c.attach(SlotAddr::new(d, s), HostId(h));
                    }
                    _ => {}
                }
            }
        }
    }

    /// Export/import of any reachable allocation round-trips.
    #[test]
    fn allocation_roundtrip((advanced, ops) in ops()) {
        let mode = if advanced { Mode::Advanced } else { Mode::Standard };
        let mut c = Falcon4016::new("prop", mode);
        for op in ops {
            match op {
                Op::Insert(d, s) => {
                    let _ = c.insert_device(
                        SlotAddr::new(d, s),
                        SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
                    );
                }
                Op::Connect(p, h, d) => {
                    let _ = c.connect_host(port(p), HostId(h), DrawerId(d));
                }
                Op::Attach(d, s, h) => {
                    let _ = c.attach(SlotAddr::new(d, s), HostId(h));
                }
                _ => {}
            }
        }
        let cfg = falcon::mgmt::AllocationConfig::export(&c);
        let parsed = falcon::mgmt::AllocationConfig::from_bytes(&cfg.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &cfg);
        // Re-importing the exported allocation onto the same chassis is a
        // no-op fixpoint.
        let before: Vec<_> = c.attachments().collect();
        parsed.import(&mut c).unwrap();
        let after: Vec<_> = c.attachments().collect();
        prop_assert_eq!(before, after);
    }
}
