//! Property tests on the chassis state machine: arbitrary sequences of
//! composition operations can never violate the structural invariants of
//! the Falcon 4016.
//!
//! Invariants covered (testkit, 256 cases each):
//! * attachments always reference occupied slots with cabled owners;
//! * per-drawer host counts respect the mode; standard mode keeps
//!   drawer halves disjointly owned;
//! * reassignment semantics match the mode exactly;
//! * any reachable allocation exports/imports as a fixpoint.

use devices::GpuSpec;
use falcon::{ChassisError, DrawerId, Falcon4016, HostId, HostPort, Mode, SlotAddr, SlotDevice};
use testkit::{bools, one_of, prop_assert, prop_assert_eq, property, tuple2, tuple3, u32_in, u8_in, vec_of, Gen};

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8),
    Remove(u8, u8),
    Connect(u8, u32, u8),
    Attach(u8, u8, u32),
    Detach(u8, u8),
    Reassign(u8, u8, u32),
}

fn ops() -> Gen<(bool, Vec<Op>)> {
    let op = one_of(vec![
        tuple2(u8_in(0..2), u8_in(0..8)).map(|v| Op::Insert(v.0, v.1)),
        tuple2(u8_in(0..2), u8_in(0..8)).map(|v| Op::Remove(v.0, v.1)),
        tuple3(u8_in(0..4), u32_in(1..5), u8_in(0..2)).map(|v| Op::Connect(v.0, v.1, v.2)),
        tuple3(u8_in(0..2), u8_in(0..8), u32_in(1..5)).map(|v| Op::Attach(v.0, v.1, v.2)),
        tuple2(u8_in(0..2), u8_in(0..8)).map(|v| Op::Detach(v.0, v.1)),
        tuple3(u8_in(0..2), u8_in(0..8), u32_in(1..5)).map(|v| Op::Reassign(v.0, v.1, v.2)),
    ]);
    tuple2(bools(), vec_of(op, 1..120))
}

fn port(p: u8) -> HostPort {
    HostPort::all()[p as usize]
}

fn check_invariants(c: &Falcon4016) {
    let mode = c.mode();
    // 1. Every attachment refers to an occupied slot whose host is cabled
    //    into that drawer.
    for (slot, host) in c.attachments() {
        assert!(c.device_at(slot).is_some(), "attached slot must be occupied");
        assert!(
            c.hosts_on_drawer(slot.drawer).contains(&host),
            "owner must be cabled into the drawer"
        );
    }
    // 2. Host count per drawer respects the mode.
    for d in [DrawerId(0), DrawerId(1)] {
        assert!(c.hosts_on_drawer(d).len() <= mode.max_hosts_per_drawer());
    }
    // 3. In standard mode with two hosts, halves are disjointly owned.
    if mode == Mode::Standard {
        for d in [DrawerId(0), DrawerId(1)] {
            let hosts = c.hosts_on_drawer(d);
            if hosts.len() == 2 {
                for (slot, host) in c.attachments().filter(|(s, _)| s.drawer == d) {
                    let expected = hosts[usize::from(slot.slot >= 4)];
                    assert_eq!(host, expected, "half violation at {slot}");
                }
            }
        }
    }
}

property! {
    #[cases(256)]
    fn chassis_invariants_hold(input in ops()) {
        let (advanced, ops) = input;
        let mode = if advanced { Mode::Advanced } else { Mode::Standard };
        let mut c = Falcon4016::new("prop", mode);
        for op in ops {
            // Every operation either succeeds or returns a typed error;
            // invariants hold either way.
            let _result: Result<(), ChassisError> = match op {
                Op::Insert(d, s) => c
                    .insert_device(
                        SlotAddr::new(d, s),
                        SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
                    ),
                Op::Remove(d, s) => c.remove_device(SlotAddr::new(d, s)).map(|_| ()),
                Op::Connect(p, h, d) => c.connect_host(port(p), HostId(h), DrawerId(d)),
                Op::Attach(d, s, h) => c.attach(SlotAddr::new(d, s), HostId(h)),
                Op::Detach(d, s) => c.detach(SlotAddr::new(d, s)).map(|_| ()),
                Op::Reassign(d, s, h) => {
                    c.reassign(SlotAddr::new(d, s), HostId(h)).map(|_| ())
                }
            };
            check_invariants(&c);
        }
    }

    /// Reassignment in standard mode never succeeds; in advanced mode it
    /// succeeds exactly when the slot is attached and the target is cabled.
    #[cases(256)]
    fn reassign_semantics(input in ops()) {
        let (advanced, ops) = input;
        let mode = if advanced { Mode::Advanced } else { Mode::Standard };
        let mut c = Falcon4016::new("prop", mode);
        for op in ops {
            if let Op::Reassign(d, s, h) = op {
                let addr = SlotAddr::new(d, s);
                let was_attached = c.owner_of(addr).is_some();
                let target_cabled = c.hosts_on_drawer(DrawerId(d)).contains(&HostId(h));
                let r = c.reassign(addr, HostId(h));
                if mode == Mode::Standard {
                    prop_assert_eq!(r, Err(ChassisError::RequiresAdvancedMode));
                } else if was_attached && target_cabled {
                    prop_assert!(r.is_ok());
                    prop_assert_eq!(c.owner_of(addr), Some(HostId(h)));
                } else {
                    prop_assert!(r.is_err());
                }
            } else {
                // Drive some state transitions so reassigns have targets.
                match op {
                    Op::Insert(d, s) => {
                        let _ = c.insert_device(
                            SlotAddr::new(d, s),
                            SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
                        );
                    }
                    Op::Connect(p, h, d) => {
                        let _ = c.connect_host(port(p), HostId(h), DrawerId(d));
                    }
                    Op::Attach(d, s, h) => {
                        let _ = c.attach(SlotAddr::new(d, s), HostId(h));
                    }
                    _ => {}
                }
            }
        }
    }

    /// Export/import of any reachable allocation round-trips.
    #[cases(256)]
    fn allocation_roundtrip(input in ops()) {
        let (advanced, ops) = input;
        let mode = if advanced { Mode::Advanced } else { Mode::Standard };
        let mut c = Falcon4016::new("prop", mode);
        for op in ops {
            match op {
                Op::Insert(d, s) => {
                    let _ = c.insert_device(
                        SlotAddr::new(d, s),
                        SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
                    );
                }
                Op::Connect(p, h, d) => {
                    let _ = c.connect_host(port(p), HostId(h), DrawerId(d));
                }
                Op::Attach(d, s, h) => {
                    let _ = c.attach(SlotAddr::new(d, s), HostId(h));
                }
                _ => {}
            }
        }
        let cfg = falcon::mgmt::AllocationConfig::export(&c);
        let parsed = falcon::mgmt::AllocationConfig::from_bytes(&cfg.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &cfg);
        // Re-importing the exported allocation onto the same chassis is a
        // no-op fixpoint.
        let before: Vec<_> = c.attachments().collect();
        parsed.import(&mut c).unwrap();
        let after: Vec<_> = c.attachments().collect();
        prop_assert_eq!(before, after);
    }
}
