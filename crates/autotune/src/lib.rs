//! Deterministic policy search over the scheduler's knob space.
//!
//! The five hand-written policies in `scheduler::policy` are single
//! points in the [`PolicyParams`] space. This crate searches that space
//! against a [`Portfolio`] of scenario files, using the probe cache as
//! the cost oracle and parsweep workers for throughput:
//!
//! * **Objective** — a weighted sum over each scenario's replay report:
//!   mean JCT (normalized by the fifo-first-fit baseline on the same
//!   scenario), p99 SLO attainment shortfall, Jain-fairness shortfall,
//!   and work lost to faults/preemption as a share of pool capacity.
//!   Lower is better; weights are pinned constants.
//! * **Search** — seeded successive halving over a [`lattice`] of knob
//!   values (every preset is a lattice point), then coordinate-descent
//!   refinement around the incumbent. The budget counts candidate ×
//!   scenario evaluations; every evaluation is one parsweep job, so
//!   `--jobs N` scales throughput while the winning [`TunedPolicy`] —
//!   artifact bytes included — stays byte-identical at any worker count.
//! * **Artifact** — [`TunedPolicy::to_json_string`] emits the winning
//!   params plus per-scenario scores and full provenance (seed, budget,
//!   evaluations spent, portfolio hash). The artifact file is itself a
//!   policy: `scheduler::resolve_policy("path/to/tuned.json")` loads its
//!   `params` block, so scenarios can name a tuned artifact wherever
//!   they name a preset.

use desim::json::Value;
use desim::{Dur, SimRng};
use scheduler::{
    run_scenario_with_policy, ParamPolicy, ParamsError, PolicyParams, ProbeCache, Scenario,
    ScenarioError, ScheduleReport, POLICY_NAMES,
};
use std::collections::BTreeSet;
use std::path::Path;

/// Objective weight on baseline-normalized mean JCT.
pub const W_JCT: f64 = 1.0;
/// Objective weight on SLO attainment shortfall (serving scenarios).
pub const W_SLO: f64 = 2.0;
/// Objective weight on Jain-fairness shortfall.
pub const W_FAIR: f64 = 0.5;
/// Objective weight on work lost (GPU-seconds over pool capacity).
pub const W_LOST: f64 = 1.0;

/// The scenario-level cost of one replay, lower is better.
/// `baseline_mean_jct` is fifo-first-fit's mean JCT on the same
/// scenario, so the JCT term is a dimensionless slowdown ratio and
/// scenarios of very different scale contribute comparably.
pub fn objective(report: &ScheduleReport, baseline_mean_jct: Dur) -> f64 {
    let jct = if baseline_mean_jct.as_nanos() == 0 {
        1.0
    } else {
        report.mean_jct.as_nanos() as f64 / baseline_mean_jct.as_nanos() as f64
    };
    let slo = report.serve.as_ref().map_or(0.0, |s| 1.0 - s.attainment);
    let fair = 1.0 - report.fairness;
    let mut lost = 0.0;
    if let Some(r) = &report.recovery {
        lost += r.work_lost_gpu_secs;
    }
    if let Some(m) = &report.migration {
        lost += m.work_lost_gpu_secs;
    }
    let capacity = f64::from(report.pool_gpus) * report.makespan.as_secs_f64();
    let lost_share = if capacity > 0.0 { lost / capacity } else { 0.0 };
    W_JCT * jct + W_SLO * slo + W_FAIR * fair + W_LOST * lost_share
}

/// Everything that can go wrong loading a portfolio or running a search.
#[derive(Debug)]
pub enum AutotuneError {
    Io { path: String, msg: String },
    Parse { path: String, msg: String },
    Scenario(ScenarioError),
    Params(ParamsError),
    EmptyPortfolio(String),
    MixedProbeIters { scenario: String, iters: u64, expected: u64 },
    BudgetTooSmall { budget: usize, need: usize },
}

impl std::fmt::Display for AutotuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutotuneError::Io { path, msg } => write!(f, "cannot read {path}: {msg}"),
            AutotuneError::Parse { path, msg } => write!(f, "cannot parse {path}: {msg}"),
            AutotuneError::Scenario(e) => write!(f, "{e}"),
            AutotuneError::Params(e) => write!(f, "{e}"),
            AutotuneError::EmptyPortfolio(path) => {
                write!(f, "portfolio {path} holds no scenario files")
            }
            AutotuneError::MixedProbeIters { scenario, iters, expected } => write!(
                f,
                "scenario {scenario} uses probe_iters {iters} but the portfolio opened at \
                 {expected}; probe prices are only comparable at one iteration count"
            ),
            AutotuneError::BudgetTooSmall { budget, need } => write!(
                f,
                "budget {budget} cannot even score the five presets ({need} evaluations needed)"
            ),
        }
    }
}

impl std::error::Error for AutotuneError {}

impl From<ScenarioError> for AutotuneError {
    fn from(e: ScenarioError) -> AutotuneError {
        AutotuneError::Scenario(e)
    }
}

impl From<ParamsError> for AutotuneError {
    fn from(e: ParamsError) -> AutotuneError {
        AutotuneError::Params(e)
    }
}

/// The scenario set a search optimizes against, in file-name order.
/// All scenarios must agree on `probe_iters` (one shared cost oracle).
pub struct Portfolio {
    pub scenarios: Vec<Scenario>,
    hash: u64,
}

impl Portfolio {
    /// Load every `*.json` under `dir` (non-recursive, lexicographic
    /// file-name order, the `collect_scenario_files` convention), parse
    /// and validate each as a [`Scenario`].
    pub fn load_dir(dir: &Path) -> Result<Portfolio, AutotuneError> {
        let io = |msg: String| AutotuneError::Io { path: dir.display().to_string(), msg };
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| io(e.to_string()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        let mut scenarios = Vec::new();
        for f in &files {
            let text = std::fs::read_to_string(f).map_err(|e| AutotuneError::Io {
                path: f.display().to_string(),
                msg: e.to_string(),
            })?;
            let sc = Scenario::from_json_str(&text).map_err(|e| AutotuneError::Parse {
                path: f.display().to_string(),
                msg: e.to_string(),
            })?;
            scenarios.push(sc);
        }
        Portfolio::from_scenarios(scenarios, &dir.display().to_string())
    }

    /// Validate and fingerprint an in-memory scenario set.
    pub fn from_scenarios(
        scenarios: Vec<Scenario>,
        origin: &str,
    ) -> Result<Portfolio, AutotuneError> {
        if scenarios.is_empty() {
            return Err(AutotuneError::EmptyPortfolio(origin.to_string()));
        }
        let expected = scenarios[0].config.probe_iters;
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for sc in &scenarios {
            sc.validate()?;
            if sc.config.probe_iters != expected {
                return Err(AutotuneError::MixedProbeIters {
                    scenario: sc.name.clone(),
                    iters: sc.config.probe_iters,
                    expected,
                });
            }
            hash = fnv1a(sc.to_json_string().as_bytes(), hash);
        }
        Ok(Portfolio { scenarios, hash })
    }

    /// FNV-1a over the canonical JSON of every scenario, in order —
    /// stamped into artifacts so a tuned policy names exactly the
    /// portfolio that produced it.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    pub fn probe_iters(&self) -> u64 {
        self.scenarios[0].config.probe_iters
    }
}

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The value lattice the halving phase samples from and the descent
/// phase steps along. Every preset is a lattice point (asserted by the
/// property suite), so the search space strictly contains the
/// hand-written policies.
pub mod lattice {
    use super::PolicyParams;

    /// `(field, grid)` for every f64 knob, in [`PolicyParams`] field
    /// order. The boolean `evict_for_slo` is the eleventh axis.
    pub const GRIDS: [(&str, &[f64]); 10] = [
        ("whole_drawer", &[0.0, 1.0]),
        ("tie_tight", &[0.0, 1.0]),
        ("frag_patience", &[0.0, 0.25, 0.5, 0.75, 1.0]),
        ("spill_pack", &[0.0, 1.0]),
        ("probe_bias", &[0.0, 1.0]),
        ("replica_pack", &[0.0, 1.0]),
        ("shrink_aggr", &[0.0625, 0.125, 0.25, 0.5, 0.75, 1.0]),
        ("slo_claw_band", &[0.05, 0.25, 0.5, 0.75, 0.95]),
        ("preempt_margin", &[0.0, 0.25, 0.5, 0.75, 1.0]),
        ("defrag_margin", &[1.0, 1.1, 1.25, 1.5, 2.0]),
    ];

    pub(crate) fn get(p: &PolicyParams, i: usize) -> f64 {
        match i {
            0 => p.whole_drawer,
            1 => p.tie_tight,
            2 => p.frag_patience,
            3 => p.spill_pack,
            4 => p.probe_bias,
            5 => p.replica_pack,
            6 => p.shrink_aggr,
            7 => p.slo_claw_band,
            8 => p.preempt_margin,
            9 => p.defrag_margin,
            _ => unreachable!("10 f64 knobs"),
        }
    }

    pub(crate) fn set(p: &mut PolicyParams, i: usize, v: f64) {
        match i {
            0 => p.whole_drawer = v,
            1 => p.tie_tight = v,
            2 => p.frag_patience = v,
            3 => p.spill_pack = v,
            4 => p.probe_bias = v,
            5 => p.replica_pack = v,
            6 => p.shrink_aggr = v,
            7 => p.slo_claw_band = v,
            8 => p.preempt_margin = v,
            9 => p.defrag_margin = v,
            _ => unreachable!("10 f64 knobs"),
        }
    }

    /// One seeded uniform draw from the lattice.
    pub fn sample(rng: &mut desim::SimRng) -> PolicyParams {
        let mut p = PolicyParams::fifo_first_fit();
        for (i, (_, grid)) in GRIDS.iter().enumerate() {
            set(&mut p, i, grid[rng.index(grid.len())]);
        }
        p.evict_for_slo = rng.chance(0.5);
        p
    }

    /// Is every knob of `p` on its grid?
    pub fn contains(p: &PolicyParams) -> bool {
        GRIDS.iter().enumerate().all(|(i, (_, grid))| grid.contains(&get(p, i)))
    }
}

/// Search knobs: the RNG seed behind lattice sampling and the evaluation
/// budget (candidate × scenario replays, the unit all phases share).
#[derive(Debug, Clone, Copy)]
pub struct SearchSpec {
    pub seed: u64,
    pub budget: usize,
}

impl Default for SearchSpec {
    fn default() -> SearchSpec {
        SearchSpec { seed: 7, budget: 64 }
    }
}

/// The search result: winning params, how it scored, what the best
/// hand-written preset scored on the same portfolio, and the provenance
/// needed to reproduce the run bit-for-bit.
#[derive(Debug, Clone)]
pub struct TunedPolicy {
    pub params: PolicyParams,
    /// Portfolio-mean objective of the winner (lower is better).
    pub objective: f64,
    /// `(scenario name, objective)` per portfolio scenario, in order.
    pub per_scenario: Vec<(String, f64)>,
    /// Best preset on the same portfolio, for the artifact's margin row.
    pub baseline_name: String,
    pub baseline_objective: f64,
    pub seed: u64,
    pub budget: usize,
    /// Evaluations actually spent (≤ budget).
    pub evals: usize,
    pub portfolio_hash: String,
}

impl TunedPolicy {
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("params", self.params.to_json()),
            ("objective", Value::Num(self.objective)),
            (
                "baseline",
                Value::obj(vec![
                    ("policy", Value::str(self.baseline_name.clone())),
                    ("objective", Value::Num(self.baseline_objective)),
                ]),
            ),
            (
                "per_scenario",
                Value::Arr(
                    self.per_scenario
                        .iter()
                        .map(|(name, obj)| {
                            Value::obj(vec![
                                ("scenario", Value::str(name.clone())),
                                ("objective", Value::Num(*obj)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "provenance",
                Value::obj(vec![
                    ("seed", Value::from_u64(self.seed)),
                    ("budget", Value::from_u64(self.budget as u64)),
                    ("evals", Value::from_u64(self.evals as u64)),
                    ("portfolio_hash", Value::str(self.portfolio_hash.clone())),
                ]),
            ),
        ])
    }

    /// The canonical artifact bytes — what `repro autotune` prints and
    /// the golden guard freezes. Loadable as a policy via
    /// `scheduler::resolve_policy` (which reads the `params` block).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().emit_pretty();
        s.push('\n');
        s
    }
}

/// One candidate × scenario replay, as a parsweep batch so throughput
/// scales with `jobs`. Splits of the shared cache are taken on the
/// caller's thread in submission order and absorbed back in the same
/// order — the invariant that keeps the whole search byte-identical at
/// any worker count.
fn eval_batch(
    pf: &Portfolio,
    work: &[(PolicyParams, usize)],
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<ScheduleReport>, AutotuneError> {
    let runs: Vec<parsweep::Job<'_, Result<(ScheduleReport, ProbeCache), AutotuneError>>> = work
        .iter()
        .map(|&(params, si)| {
            let mut local = cache.split();
            let sc = &pf.scenarios[si];
            parsweep::Job::new(format!("autotune candidate on {}", sc.name), move || {
                let policy = ParamPolicy::new(params)?;
                let report = run_scenario_with_policy(sc, Box::new(policy), &mut local)?;
                Ok((report, local))
            })
        })
        .collect();
    let mut out = Vec::with_capacity(work.len());
    for outcome in parsweep::run(jobs, runs) {
        let (report, local) = outcome?;
        cache.absorb(local);
        out.push(report);
    }
    Ok(out)
}

struct Cand {
    params: PolicyParams,
    /// Per-scenario objectives accumulated so far (index-aligned with
    /// the portfolio prefix this candidate has been scored on).
    scores: Vec<f64>,
}

impl Cand {
    fn mean(&self) -> f64 {
        self.scores.iter().sum::<f64>() / self.scores.len() as f64
    }
}

/// Simulated cost of successive halving starting from `n0` candidates
/// over `s` rungs (one portfolio scenario per rung, keep half, floor 2).
fn halving_cost(n0: usize, s: usize) -> usize {
    let mut alive = n0;
    let mut total = 0;
    for _ in 0..s {
        total += alive;
        alive = alive.div_ceil(2).max(2.min(alive));
    }
    total
}

/// Run the search. `cache` is the shared cost oracle (probe prices are
/// pure, so a fresh cache and a warm one give identical results — warm
/// is only faster). Deterministic in `(portfolio, spec)`; `jobs` only
/// changes wall-clock.
pub fn tune(
    pf: &Portfolio,
    spec: &SearchSpec,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<TunedPolicy, AutotuneError> {
    let s = pf.scenarios.len();
    let need = POLICY_NAMES.len() * s;
    if spec.budget < need {
        return Err(AutotuneError::BudgetTooSmall { budget: spec.budget, need });
    }
    let mut evals = 0usize;

    // Phase 0: fifo-first-fit on every scenario — the JCT normalizer.
    let fifo = PolicyParams::fifo_first_fit();
    let work: Vec<(PolicyParams, usize)> = (0..s).map(|si| (fifo, si)).collect();
    let fifo_reports = eval_batch(pf, &work, jobs, cache)?;
    evals += work.len();
    let baselines: Vec<Dur> = fifo_reports.iter().map(|r| r.mean_jct).collect();

    // Phase 1: the remaining presets, fully scored (they anchor the
    // artifact's baseline row, so they never face elimination).
    let mut presets: Vec<Cand> = vec![Cand {
        params: fifo,
        scores: fifo_reports
            .iter()
            .enumerate()
            .map(|(si, r)| objective(r, baselines[si]))
            .collect(),
    }];
    let rest: Vec<PolicyParams> =
        POLICY_NAMES[1..].iter().map(|n| PolicyParams::preset(n).expect("canonical")).collect();
    let work: Vec<(PolicyParams, usize)> =
        rest.iter().flat_map(|&p| (0..s).map(move |si| (p, si))).collect();
    let reports = eval_batch(pf, &work, jobs, cache)?;
    evals += work.len();
    for (pi, &params) in rest.iter().enumerate() {
        let scores = (0..s)
            .map(|si| objective(&reports[pi * s + si], baselines[si]))
            .collect();
        presets.push(Cand { params, scores });
    }

    let mut tried: BTreeSet<String> = presets.iter().map(|c| c.params.to_json_string()).collect();

    // Phase 2: successive halving over seeded lattice samples. The pool
    // size is the largest that fits in ~60% of the remaining budget; the
    // rest is reserved for descent.
    let remaining = spec.budget - evals;
    let halving_budget = remaining * 3 / 5;
    let mut n0 = 0;
    for k in 1..=32 {
        if halving_cost(k, s) <= halving_budget {
            n0 = k;
        }
    }
    let mut rng = SimRng::seed_from_u64(spec.seed);
    let mut alive: Vec<Cand> = Vec::new();
    let mut attempts = 0;
    while alive.len() < n0 && attempts < 10_000 {
        attempts += 1;
        let p = lattice::sample(&mut rng);
        if tried.insert(p.to_json_string()) {
            alive.push(Cand { params: p, scores: Vec::new() });
        }
    }
    for si in 0..s {
        if alive.is_empty() {
            break;
        }
        let work: Vec<(PolicyParams, usize)> = alive.iter().map(|c| (c.params, si)).collect();
        let reports = eval_batch(pf, &work, jobs, cache)?;
        evals += work.len();
        for (c, r) in alive.iter_mut().zip(&reports) {
            c.scores.push(objective(r, baselines[si]));
        }
        if si + 1 < s {
            // Keep the better half (floor 2), preserving pool order.
            let mut order: Vec<usize> = (0..alive.len()).collect();
            order.sort_by(|&a, &b| {
                alive[a].mean().partial_cmp(&alive[b].mean()).expect("finite").then(a.cmp(&b))
            });
            let keep: BTreeSet<usize> =
                order.into_iter().take(alive.len().div_ceil(2).max(2.min(alive.len()))).collect();
            let mut i = 0;
            alive.retain(|_| {
                i += 1;
                keep.contains(&(i - 1))
            });
        }
    }

    // Phase 3: incumbent = best fully-scored candidate, presets first so
    // exact ties replay a hand-written policy.
    let full: Vec<&Cand> = presets.iter().chain(alive.iter()).collect();
    let best_i = (0..full.len())
        .min_by(|&a, &b| full[a].mean().partial_cmp(&full[b].mean()).expect("finite"))
        .expect("presets are never empty");
    let mut best = Cand { params: full[best_i].params, scores: full[best_i].scores.clone() };

    // Phase 4: coordinate descent — step each knob one lattice notch at
    // a time (plus the evict toggle), full-portfolio trials, strict
    // improvement, until a whole sweep stalls or the budget runs out.
    'descent: loop {
        let mut improved = false;
        for axis in 0..=lattice::GRIDS.len() {
            let neighbors: Vec<PolicyParams> = if axis == lattice::GRIDS.len() {
                let mut p = best.params;
                p.evict_for_slo = !p.evict_for_slo;
                vec![p]
            } else {
                let grid = lattice::GRIDS[axis].1;
                let cur = lattice::get(&best.params, axis);
                let at = grid.iter().position(|&v| v == cur);
                let mut out = Vec::new();
                if let Some(at) = at {
                    if at > 0 {
                        let mut p = best.params;
                        lattice::set(&mut p, axis, grid[at - 1]);
                        out.push(p);
                    }
                    if at + 1 < grid.len() {
                        let mut p = best.params;
                        lattice::set(&mut p, axis, grid[at + 1]);
                        out.push(p);
                    }
                }
                out
            };
            for p in neighbors {
                if !tried.insert(p.to_json_string()) {
                    continue;
                }
                if evals + s > spec.budget {
                    break 'descent;
                }
                let work: Vec<(PolicyParams, usize)> = (0..s).map(|si| (p, si)).collect();
                let reports = eval_batch(pf, &work, jobs, cache)?;
                evals += work.len();
                let scores: Vec<f64> = reports
                    .iter()
                    .enumerate()
                    .map(|(si, r)| objective(r, baselines[si]))
                    .collect();
                let cand = Cand { params: p, scores };
                if cand.mean() < best.mean() {
                    best = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let best_preset_i = (0..presets.len())
        .min_by(|&a, &b| presets[a].mean().partial_cmp(&presets[b].mean()).expect("finite"))
        .expect("five presets");
    Ok(TunedPolicy {
        params: best.params,
        objective: best.mean(),
        per_scenario: pf
            .scenarios
            .iter()
            .zip(&best.scores)
            .map(|(sc, &o)| (sc.name.clone(), o))
            .collect(),
        baseline_name: POLICY_NAMES[best_preset_i].to_string(),
        baseline_objective: presets[best_preset_i].mean(),
        seed: spec.seed,
        budget: spec.budget,
        evals,
        portfolio_hash: pf.hash_hex(),
    })
}
