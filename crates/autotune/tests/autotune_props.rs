//! Property suite for the policy-search subsystem: worker-count
//! independence of the tuned artifact, preset reachability inside the
//! search lattice, and `PolicyParams` JSON hygiene. These are the
//! contracts DESIGN §16 pins; the release-mode bench asserts the
//! held-out quality claim on top of them.

use autotune::{lattice, tune, Portfolio, SearchSpec};
use scheduler::{ParamsError, PolicyParams, ProbeCache, Scenario, POLICY_NAMES};

/// A two-scenario in-memory portfolio small enough for debug-mode
/// search: one packing study and one preemption study, both seeded.
fn tiny_portfolio() -> Portfolio {
    let pack = r#"{
        "name": "tiny_pack",
        "topology": {"chassis": 1, "drawers": 2, "slots_per_drawer": 8},
        "trace": {"kind": "poisson", "seed": 49421, "n_jobs": 10,
                  "tenants": 2, "mean_interarrival_ns": 900000000},
        "faults": {"kind": "none"},
        "services": [],
        "policies": ["fifo-first-fit"],
        "config": {"quota_gpus_per_tenant": 12, "elastic": true, "probe_iters": 3},
        "metrics": "summary"
    }"#;
    let priority = r#"{
        "name": "tiny_priority",
        "topology": {"chassis": 2, "drawers": 2, "slots_per_drawer": 8},
        "trace": {"kind": "poisson", "seed": 2465, "n_jobs": 12,
                  "tenants": 2, "mean_interarrival_ns": 400000000},
        "faults": {"kind": "none"},
        "services": [],
        "policies": ["fifo-first-fit"],
        "config": {"quota_gpus_per_tenant": 24, "elastic": true, "probe_iters": 3,
                   "preempt": true, "defrag": true},
        "metrics": "summary"
    }"#;
    let scenarios = vec![
        Scenario::from_json_str(pack).expect("tiny_pack parses"),
        Scenario::from_json_str(priority).expect("tiny_priority parses"),
    ];
    Portfolio::from_scenarios(scenarios, "tiny").expect("tiny portfolio validates")
}

fn tune_snapshot(jobs: usize) -> (String, String) {
    let pf = tiny_portfolio();
    let spec = SearchSpec { seed: 11, budget: 14 };
    let mut cache = ProbeCache::new(pf.probe_iters());
    let tuned = tune(&pf, &spec, jobs, &mut cache).expect("tiny tune runs");
    (tuned.to_json_string(), cache.save_json())
}

/// Same seed + same portfolio ⇒ byte-identical `TunedPolicy` artifact
/// and probe cache at 1 and 4 workers, and across repeated 4-worker
/// runs. The search races candidate evaluations freely; the winner may
/// not depend on the race.
#[test]
fn tune_is_byte_identical_across_worker_counts() {
    let serial = tune_snapshot(1);
    let parallel = tune_snapshot(4);
    let parallel_again = tune_snapshot(4);
    assert_eq!(serial.0, parallel.0, "artifact must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "probe cache must not depend on worker count");
    assert_eq!(parallel, parallel_again, "parallel tunes must not race");
}

/// The tuned artifact embeds full provenance: the spec it was searched
/// under and the hash of the portfolio it was scored on.
#[test]
fn tuned_artifact_carries_provenance() {
    let pf = tiny_portfolio();
    let (artifact, _) = tune_snapshot(1);
    assert!(artifact.contains("\"seed\": 11"), "seed pinned: {artifact}");
    assert!(artifact.contains("\"budget\": 14"), "budget pinned: {artifact}");
    assert!(
        artifact.contains(&format!("\"portfolio_hash\": \"{}\"", pf.hash_hex())),
        "portfolio hash pinned: {artifact}"
    );
}

/// Every hand-written preset is a point of the search lattice — the
/// search space strictly generalizes the shipped policies, so the
/// incumbent never starts outside it.
#[test]
fn every_preset_is_a_lattice_point() {
    for name in POLICY_NAMES {
        let p = PolicyParams::preset(name).expect("preset exists");
        assert!(lattice::contains(&p), "{name} must sit on the search lattice");
    }
}

/// `PolicyParams` round-trips through its JSON encoding byte-for-byte,
/// for every preset and for a lattice sample.
#[test]
fn params_round_trip_through_json() {
    for name in POLICY_NAMES {
        let p = PolicyParams::preset(name).expect("preset exists");
        let back = PolicyParams::from_json_str(&p.to_json_string()).expect("round-trips");
        assert_eq!(p, back, "{name} must survive JSON round-trip");
        assert_eq!(p.to_json_string(), back.to_json_string());
    }
    let mut rng = desim::SimRng::seed_from_u64(0xA11CE);
    for _ in 0..50 {
        let p = lattice::sample(&mut rng);
        let back = PolicyParams::from_json_str(&p.to_json_string()).expect("round-trips");
        assert_eq!(p, back, "lattice sample must survive JSON round-trip");
    }
}

/// Out-of-bounds values are rejected with an error that names the
/// offending field and its legal range.
#[test]
fn out_of_bounds_params_are_rejected_naming_the_field() {
    let mut p = PolicyParams::preset("best-fit").expect("preset exists");
    p.defrag_margin = 9.0;
    let err = p.validate().expect_err("defrag_margin 9.0 is out of bounds");
    match &err {
        ParamsError::OutOfBounds { field, value, lo, hi } => {
            assert_eq!(*field, "defrag_margin");
            assert_eq!(*value, 9.0);
            assert!(*lo <= *hi);
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
    assert!(err.to_string().contains("defrag_margin"), "message names the field: {err}");

    let mut p = PolicyParams::preset("fifo-first-fit").expect("preset exists");
    p.shrink_aggr = 0.0;
    let err = p.validate().expect_err("shrink_aggr 0.0 is below the floor");
    assert!(err.to_string().contains("shrink_aggr"), "message names the field: {err}");
}
