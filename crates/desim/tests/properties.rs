//! Property tests of the simulation kernel: for arbitrary interleavings of
//! schedule/cancel operations, events fire exactly once, in nondecreasing
//! time order, never after cancellation, and identical inputs replay
//! identically.
//!
//! Invariants covered (testkit, 128 cases for the op-interleaving block,
//! 64 for the stats block):
//! * events fire at most once, in nondecreasing time order;
//! * cancelled events never fire; fired ≤ scheduled;
//! * identical op sequences replay bit-identically;
//! * `run_until` partitions events cleanly around the horizon;
//! * `BusyTracker` / `TimeWeightedGauge` agree with brute force.

use desim::{Sim, SimTime};
use testkit::{prop_assert, prop_assert_eq, property};
use testkit::{one_of, u64_in, usize_in, vec_of, Gen};

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event at a relative offset (ns).
    Schedule(u64),
    /// Cancel the k-th oldest still-tracked handle.
    Cancel(usize),
}

fn ops() -> Gen<Vec<Op>> {
    vec_of(
        one_of(vec![
            u64_in(0..1_000_000).map(|v| Op::Schedule(*v)),
            usize_in(0..8).map(|k| Op::Cancel(*k)),
        ]),
        1..200,
    )
}

#[derive(Debug, Clone)]
enum QOp {
    /// Push an event at an absolute time (ns).
    Push(u64),
    /// Cancel the k-th oldest still-tracked handle.
    Cancel(usize),
    /// Pop the head and compare against the reference model.
    Pop,
}

#[derive(Default)]
struct World {
    fired: Vec<(u64, u32)>,
}

fn run(ops: &[Op]) -> Vec<(u64, u32)> {
    let mut sim: Sim<World> = Sim::new();
    let mut world = World::default();
    let mut handles = Vec::new();
    let mut cancelled = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Schedule(at) => {
                let id = i as u32;
                let h = sim.schedule_at(SimTime::from_nanos(*at), move |w: &mut World, sim| {
                    w.fired.push((sim.now().as_nanos(), id));
                });
                handles.push((h, id));
            }
            Op::Cancel(k) => {
                if !handles.is_empty() {
                    let (h, id) = handles.remove(k % handles.len());
                    if sim.cancel(h) {
                        cancelled.push(id);
                    }
                }
            }
        }
    }
    sim.run(&mut world);
    for id in &cancelled {
        assert!(
            world.fired.iter().all(|(_, fid)| fid != id),
            "cancelled event {id} fired"
        );
    }
    world.fired
}

property! {
    #[cases(128)]
    fn events_fire_once_in_time_order(ops in ops()) {
        let fired = run(&ops);
        // Time order.
        prop_assert!(fired.windows(2).all(|w| w[0].0 <= w[1].0));
        // Exactly-once.
        let mut ids: Vec<u32> = fired.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "an event fired twice");
    }

    #[cases(128)]
    fn replay_is_bit_identical(ops in ops()) {
        prop_assert_eq!(run(&ops), run(&ops));
    }

    #[cases(128)]
    fn scheduled_minus_cancelled_equals_fired(ops in ops()) {
        let scheduled = ops.iter().filter(|o| matches!(o, Op::Schedule(_))).count();
        // Count successful cancels by reproducing handle bookkeeping.
        let fired = run(&ops).len();
        prop_assert!(fired <= scheduled);
    }

    /// run_until never executes events beyond the horizon and leaves them
    /// intact for a later run.
    #[cases(64)]
    fn run_until_partitions_cleanly(times in vec_of(u64_in(0..1000), 1..50),
                                    horizon in u64_in(0..1000)) {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        for (i, &t) in times.iter().enumerate() {
            let id = i as u32;
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut World, sim| {
                w.fired.push((sim.now().as_nanos(), id));
            });
        }
        sim.run_until(&mut w, SimTime::from_nanos(horizon));
        prop_assert!(w.fired.iter().all(|&(t, _)| t <= horizon));
        let early = w.fired.len();
        prop_assert_eq!(early, times.iter().filter(|&&t| t <= horizon).count());
        sim.run(&mut w);
        prop_assert_eq!(w.fired.len(), times.len());
    }

    /// The calendar queue is observationally a heap: arbitrary interleaved
    /// push/cancel/pop sequences yield exactly the pops a reference
    /// min-heap ordered by (time, insertion seq) yields — the pop-order
    /// contract DESIGN §14 leans on for replay byte-identity.
    #[cases(128)]
    fn calendar_queue_matches_reference_heap(
        ops in vec_of(
            one_of(vec![
                u64_in(0..5_000_000).map(|v| QOp::Push(*v)),
                usize_in(0..8).map(|k| QOp::Cancel(*k)),
                usize_in(0..1).map(|_| QOp::Pop),
            ]),
            1..400,
        )
    ) {
        use desim::EventQueue;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut handles = Vec::new(); // (handle, (time, seq)) still pending in the model
        let mut seq = 0u64;
        for op in &ops {
            match op {
                QOp::Push(t) => {
                    let h = q.push(SimTime::from_nanos(*t), seq);
                    model.push(Reverse((*t, seq)));
                    handles.push((h, (*t, seq)));
                    seq += 1;
                }
                QOp::Cancel(k) => {
                    if !handles.is_empty() {
                        let (h, key) = handles.remove(k % handles.len());
                        let cancelled = q.cancel(h).is_some();
                        // The model cancels iff the queue does (a popped
                        // event's handle is dead in both worlds).
                        let in_model = model.iter().any(|Reverse(e)| *e == key);
                        prop_assert_eq!(cancelled, in_model);
                        if cancelled {
                            let mut rest: Vec<_> = model.into_vec();
                            rest.retain(|Reverse(e)| *e != key);
                            model = rest.into_iter().collect();
                        }
                    }
                }
                QOp::Pop => {
                    let got = q.pop().map(|(t, p)| (t.as_nanos(), p));
                    let want = model.pop().map(|Reverse(e)| e);
                    prop_assert_eq!(got, want, "pop order diverged from the reference heap");
                    if let Some(key) = want {
                        handles.retain(|(_, k)| *k != key);
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
        // Drain both: the tails must agree element-for-element.
        loop {
            let got = q.pop().map(|(t, p)| (t.as_nanos(), p));
            let want = model.pop().map(|Reverse(e)| e);
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// The stats busy-tracker agrees with a brute-force boolean timeline.
    #[cases(64)]
    fn busy_tracker_matches_brute_force(
        intervals in vec_of(testkit::tuple2(u64_in(0..500), u64_in(0..100)), 0..40)
    ) {
        use desim::stats::BusyTracker;
        let mut tracker = BusyTracker::new();
        let mut timeline = vec![false; 700];
        for &(start, len) in &intervals {
            let end = start + len;
            tracker.record(SimTime::from_nanos(start), SimTime::from_nanos(end));
            for slot in timeline.iter_mut().take(end as usize).skip(start as usize) {
                *slot = true;
            }
        }
        let busy = tracker
            .busy_within(SimTime::ZERO, SimTime::from_nanos(700))
            .as_nanos();
        let expected = timeline.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(busy, expected);
    }

    /// Time-weighted gauge mean equals a brute-force integral.
    #[cases(64)]
    fn gauge_mean_matches_integral(
        values in vec_of(testkit::tuple2(u64_in(1..100), testkit::f64_in(0.0, 50.0)), 1..30)
    ) {
        use desim::stats::TimeWeightedGauge;
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut integral = 0.0;
        let mut current = 0.0;
        for &(dt, v) in &values {
            integral += current * dt as f64;
            t += dt;
            g.set(SimTime::from_nanos(t), v);
            current = v;
        }
        // Extend 10ns at the final value.
        integral += current * 10.0;
        t += 10;
        let mean = g.mean(SimTime::from_nanos(t));
        let expected = integral / t as f64;
        prop_assert!((mean - expected).abs() < 1e-9 * expected.max(1.0),
            "mean {} vs {}", mean, expected);
    }
}
