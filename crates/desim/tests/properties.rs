//! Property tests of the simulation kernel: for arbitrary interleavings of
//! schedule/cancel operations, events fire exactly once, in nondecreasing
//! time order, never after cancellation, and identical inputs replay
//! identically.
//!
//! Invariants covered (testkit, 128 cases for the op-interleaving block,
//! 64 for the stats block):
//! * events fire at most once, in nondecreasing time order;
//! * cancelled events never fire; fired ≤ scheduled;
//! * identical op sequences replay bit-identically;
//! * `run_until` partitions events cleanly around the horizon;
//! * `BusyTracker` / `TimeWeightedGauge` agree with brute force.

use desim::{Sim, SimTime};
use testkit::{prop_assert, prop_assert_eq, property};
use testkit::{one_of, u64_in, usize_in, vec_of, Gen};

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event at a relative offset (ns).
    Schedule(u64),
    /// Cancel the k-th oldest still-tracked handle.
    Cancel(usize),
}

fn ops() -> Gen<Vec<Op>> {
    vec_of(
        one_of(vec![
            u64_in(0..1_000_000).map(|v| Op::Schedule(*v)),
            usize_in(0..8).map(|k| Op::Cancel(*k)),
        ]),
        1..200,
    )
}

#[derive(Default)]
struct World {
    fired: Vec<(u64, u32)>,
}

fn run(ops: &[Op]) -> Vec<(u64, u32)> {
    let mut sim: Sim<World> = Sim::new();
    let mut world = World::default();
    let mut handles = Vec::new();
    let mut cancelled = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Schedule(at) => {
                let id = i as u32;
                let h = sim.schedule_at(SimTime::from_nanos(*at), move |w: &mut World, sim| {
                    w.fired.push((sim.now().as_nanos(), id));
                });
                handles.push((h, id));
            }
            Op::Cancel(k) => {
                if !handles.is_empty() {
                    let (h, id) = handles.remove(k % handles.len());
                    if sim.cancel(h) {
                        cancelled.push(id);
                    }
                }
            }
        }
    }
    sim.run(&mut world);
    for id in &cancelled {
        assert!(
            world.fired.iter().all(|(_, fid)| fid != id),
            "cancelled event {id} fired"
        );
    }
    world.fired
}

property! {
    #[cases(128)]
    fn events_fire_once_in_time_order(ops in ops()) {
        let fired = run(&ops);
        // Time order.
        prop_assert!(fired.windows(2).all(|w| w[0].0 <= w[1].0));
        // Exactly-once.
        let mut ids: Vec<u32> = fired.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "an event fired twice");
    }

    #[cases(128)]
    fn replay_is_bit_identical(ops in ops()) {
        prop_assert_eq!(run(&ops), run(&ops));
    }

    #[cases(128)]
    fn scheduled_minus_cancelled_equals_fired(ops in ops()) {
        let scheduled = ops.iter().filter(|o| matches!(o, Op::Schedule(_))).count();
        // Count successful cancels by reproducing handle bookkeeping.
        let fired = run(&ops).len();
        prop_assert!(fired <= scheduled);
    }

    /// run_until never executes events beyond the horizon and leaves them
    /// intact for a later run.
    #[cases(64)]
    fn run_until_partitions_cleanly(times in vec_of(u64_in(0..1000), 1..50),
                                    horizon in u64_in(0..1000)) {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        for (i, &t) in times.iter().enumerate() {
            let id = i as u32;
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut World, sim| {
                w.fired.push((sim.now().as_nanos(), id));
            });
        }
        sim.run_until(&mut w, SimTime::from_nanos(horizon));
        prop_assert!(w.fired.iter().all(|&(t, _)| t <= horizon));
        let early = w.fired.len();
        prop_assert_eq!(early, times.iter().filter(|&&t| t <= horizon).count());
        sim.run(&mut w);
        prop_assert_eq!(w.fired.len(), times.len());
    }

    /// The stats busy-tracker agrees with a brute-force boolean timeline.
    #[cases(64)]
    fn busy_tracker_matches_brute_force(
        intervals in vec_of(testkit::tuple2(u64_in(0..500), u64_in(0..100)), 0..40)
    ) {
        use desim::stats::BusyTracker;
        let mut tracker = BusyTracker::new();
        let mut timeline = vec![false; 700];
        for &(start, len) in &intervals {
            let end = start + len;
            tracker.record(SimTime::from_nanos(start), SimTime::from_nanos(end));
            for slot in timeline.iter_mut().take(end as usize).skip(start as usize) {
                *slot = true;
            }
        }
        let busy = tracker
            .busy_within(SimTime::ZERO, SimTime::from_nanos(700))
            .as_nanos();
        let expected = timeline.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(busy, expected);
    }

    /// Time-weighted gauge mean equals a brute-force integral.
    #[cases(64)]
    fn gauge_mean_matches_integral(
        values in vec_of(testkit::tuple2(u64_in(1..100), testkit::f64_in(0.0, 50.0)), 1..30)
    ) {
        use desim::stats::TimeWeightedGauge;
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut integral = 0.0;
        let mut current = 0.0;
        for &(dt, v) in &values {
            integral += current * dt as f64;
            t += dt;
            g.set(SimTime::from_nanos(t), v);
            current = v;
        }
        // Extend 10ns at the final value.
        integral += current * 10.0;
        t += 10;
        let mean = g.mean(SimTime::from_nanos(t));
        let expected = integral / t as f64;
        prop_assert!((mean - expected).abs() < 1e-9 * expected.max(1.0),
            "mean {} vs {}", mean, expected);
    }
}
