//! Deterministic, cancellable event queue.
//!
//! [`EventQueue`] is a **calendar queue**: a sliding window of `K` time
//! buckets (a timing wheel) with a [`BinaryHeap`] overflow for events
//! beyond the window. Dense simulations — probe micro-sims, large replay
//! loops — pay O(1) amortized per push/pop instead of the heap's
//! O(log n), while the pop order stays exactly the legacy heap order:
//! ascending `(time, sequence)`, so two events at the same instant pop in
//! scheduling order.
//!
//! Payloads live in a slab indexed by slot; cancelling an event bumps the
//! slot's generation so a stale [`EventHandle`] can never cancel (or
//! observe) a recycled slot. Popping skips cancelled entries lazily, in
//! the wheel and in the overflow alike.
//!
//! The wheel re-bases itself whenever its window drains: the next batch of
//! overflow events is sampled and the bucket width re-derived from the
//! batch's time span, so the same queue serves nanosecond-spaced event
//! chains and second-spaced replay timelines without tuning.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Buckets in the wheel window. Power of two so the window covers
/// `K × width` nanoseconds with cheap index math.
const WHEEL_BUCKETS: usize = 256;
/// Overflow entries sampled per re-base when re-deriving the bucket
/// width; 2×K keeps the expected bucket occupancy around two entries.
const REBASE_SAMPLE: usize = 2 * WHEEL_BUCKETS;

/// A handle to a scheduled event, usable to cancel it before it fires.
///
/// Handles are cheap to copy and remain safe after the event fires or is
/// cancelled: operations on a dead handle are no-ops that return `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

impl EventHandle {
    /// A handle that never refers to a live event.
    pub const DEAD: EventHandle = EventHandle {
        slot: u32::MAX,
        generation: u32::MAX,
    };
}

impl Default for EventHandle {
    fn default() -> Self {
        EventHandle::DEAD
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
}

/// Where a live entry currently sits — needed so cancel can keep the
/// wheel's live-entry count exact without searching either structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Wheel,
    Overflow,
}

struct Slot<T> {
    generation: u32,
    payload: Option<T>,
    loc: Loc,
}

type Entry = (Key, u32, u32);

/// A cancellable priority queue of timed events carrying payloads of type `T`.
pub struct EventQueue<T> {
    /// The sliding window: bucket `i` covers
    /// `[wheel_start + i·width, wheel_start + (i+1)·width)`. Buckets ahead
    /// of the cursor hold unsorted entries; the active bucket is sorted on
    /// activation and consumed through `pos`.
    buckets: Vec<Vec<Entry>>,
    /// Active bucket index; `WHEEL_BUCKETS` means the window is drained.
    cur: usize,
    /// Consumption cursor into the (sorted) active bucket.
    pos: usize,
    wheel_start: SimTime,
    /// Bucket width in nanoseconds (≥ 1); re-derived at each re-base.
    width: u64,
    /// Live (not cancelled) entries currently in the wheel.
    wheel_live: usize,
    /// Events at or beyond the window horizon, plus any pushed while the
    /// window was drained. Strictly later than every wheel entry whenever
    /// the wheel holds a live entry.
    overflow: BinaryHeap<Reverse<Entry>>,
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    seq: u64,
    live: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            cur: WHEEL_BUCKETS,
            pos: 0,
            wheel_start: SimTime::ZERO,
            width: 1,
            wheel_live: 0,
            overflow: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            live: 0,
        }
    }

    /// Number of live (not-yet-fired, not-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// First nanosecond past the wheel window.
    fn horizon(&self) -> u64 {
        self.wheel_start
            .as_nanos()
            .saturating_add(WHEEL_BUCKETS as u64 * self.width)
    }

    /// Schedule `payload` at `time`. Returns a cancellation handle.
    pub fn push(&mut self, time: SimTime, payload: T) -> EventHandle {
        let slot = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                debug_assert!(s.payload.is_none());
                s.payload = Some(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event slot overflow");
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(payload),
                    loc: Loc::Wheel,
                });
                idx
            }
        };
        let generation = self.slots[slot as usize].generation;
        let key = Key {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        self.live += 1;
        self.place(key, slot, generation);
        EventHandle { slot, generation }
    }

    /// Route a fresh entry to the wheel or the overflow.
    fn place(&mut self, key: Key, slot: u32, generation: u32) {
        let entry = (key, slot, generation);
        if self.cur == WHEEL_BUCKETS {
            if self.live == 1 {
                // The queue was empty: re-anchor the window at this event.
                self.wheel_start = key.time;
                self.cur = 0;
                self.pos = 0;
                self.buckets[0].push(entry);
                self.slots[slot as usize].loc = Loc::Wheel;
                self.wheel_live = 1;
            } else {
                // Window drained but older events wait in the overflow; the
                // next settle re-bases and restores wheel-min ≤ overflow-min.
                self.slots[slot as usize].loc = Loc::Overflow;
                self.overflow.push(Reverse(entry));
            }
            return;
        }
        if key.time.as_nanos() >= self.horizon() {
            self.slots[slot as usize].loc = Loc::Overflow;
            self.overflow.push(Reverse(entry));
            return;
        }
        self.slots[slot as usize].loc = Loc::Wheel;
        self.wheel_live += 1;
        let idx = if key.time <= self.wheel_start {
            self.cur
        } else {
            let off = (key.time.as_nanos() - self.wheel_start.as_nanos()) / self.width;
            // Events at or before the active window clamp into the active
            // bucket (pushes are not required to be monotonic).
            (off as usize).max(self.cur)
        };
        if idx == self.cur {
            // Sorted insert into the not-yet-consumed tail of the active
            // bucket, preserving ascending (time, seq) order.
            let b = &mut self.buckets[idx];
            let at = self.pos + b[self.pos..].partition_point(|&(k, _, _)| k < key);
            b.insert(at, entry);
        } else {
            self.buckets[idx].push(entry);
        }
    }

    /// Cancel a scheduled event. Returns the payload if the event was still
    /// pending, `None` if it already fired or was already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<T> {
        let slot = self.slots.get_mut(handle.slot as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        let payload = slot.payload.take()?;
        // Bump generation now; the wheel/overflow entry is skipped lazily
        // and the slot is reusable immediately.
        slot.generation = slot.generation.wrapping_add(1);
        if slot.loc == Loc::Wheel {
            self.wheel_live -= 1;
        }
        self.free.push(handle.slot);
        self.live -= 1;
        Some(payload)
    }

    /// Is the event referenced by `handle` still pending?
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.slots
            .get(handle.slot as usize)
            .is_some_and(|s| s.generation == handle.generation && s.payload.is_some())
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.settle_head() {
            Some(self.buckets[self.cur][self.pos].0.time)
        } else {
            None
        }
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if !self.settle_head() {
            return None;
        }
        let (key, slot, _gen) = self.buckets[self.cur][self.pos];
        self.pos += 1;
        self.wheel_live -= 1;
        let s = &mut self.slots[slot as usize];
        let payload = s.payload.take().expect("settle_head left a dead head");
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        Some((key.time, payload))
    }

    fn is_live(&self, slot: u32, generation: u32) -> bool {
        let s = &self.slots[slot as usize];
        s.generation == generation && s.payload.is_some()
    }

    /// Advance cursor/window state until `buckets[cur][pos]` is the live
    /// minimum of the whole queue. Returns false when the queue is empty.
    fn settle_head(&mut self) -> bool {
        loop {
            if self.live == 0 {
                // Only dead entries can remain anywhere; drop them so the
                // structures cannot accumulate garbage across idle phases.
                self.overflow.clear();
                while self.cur < WHEEL_BUCKETS {
                    self.buckets[self.cur].clear();
                    self.cur += 1;
                }
                return false;
            }
            if self.wheel_live == 0 {
                self.rebase();
                continue;
            }
            while self.cur < WHEEL_BUCKETS {
                while self.pos < self.buckets[self.cur].len() {
                    let (_, slot, generation) = self.buckets[self.cur][self.pos];
                    if self.is_live(slot, generation) {
                        return true;
                    }
                    self.pos += 1; // cancelled: skip lazily
                }
                self.buckets[self.cur].clear();
                self.cur += 1;
                if self.cur < WHEEL_BUCKETS {
                    self.activate(self.cur);
                }
            }
            // The window drained with wheel_live > 0 is impossible — every
            // live wheel entry sits in an unconsumed bucket — so reaching
            // here means the count hit zero exactly at the window edge.
            debug_assert_eq!(self.wheel_live, 0);
        }
    }

    /// Sort a bucket on activation; entries are unique by `seq`, so
    /// unstable sort yields a deterministic ascending (time, seq) order.
    fn activate(&mut self, idx: usize) {
        self.buckets[idx].sort_unstable_by_key(|&(k, _, _)| k);
        self.pos = 0;
    }

    /// Slide the window onto the next batch of overflow events: sample up
    /// to [`REBASE_SAMPLE`] earliest entries, re-derive the bucket width
    /// from their span, and scatter those inside the new window into
    /// buckets (dead entries are dropped here — free cleanup). Entries past
    /// the new horizon go back to the overflow; the window start strictly
    /// advances, so they are re-drained by a later re-base.
    fn rebase(&mut self) {
        debug_assert!(self.wheel_live == 0 && self.live > 0);
        let mut batch: Vec<Entry> = Vec::with_capacity(REBASE_SAMPLE);
        while batch.len() < REBASE_SAMPLE {
            let Some(Reverse(entry)) = self.overflow.pop() else {
                break;
            };
            if self.is_live(entry.1, entry.2) {
                batch.push(entry);
            }
        }
        debug_assert!(!batch.is_empty(), "live > 0 with an empty overflow");
        let t0 = batch[0].0.time;
        let span = batch.last().expect("nonempty").0.time.as_nanos() - t0.as_nanos();
        self.width = (span / WHEEL_BUCKETS as u64).max(1);
        self.wheel_start = t0;
        let horizon = self.horizon();
        for entry in batch {
            if entry.0.time.as_nanos() < horizon {
                self.slots[entry.1 as usize].loc = Loc::Wheel;
                self.wheel_live += 1;
                let idx = (entry.0.time.as_nanos() - t0.as_nanos()) / self.width;
                self.buckets[idx as usize].push(entry);
            } else {
                self.overflow.push(Reverse(entry));
            }
        }
        self.cur = 0;
        self.activate(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_returns_payload_once() {
        let mut q = EventQueue::new();
        let h = q.push(t(10), 42);
        assert!(q.is_pending(h));
        assert_eq!(q.cancel(h), Some(42));
        assert!(!q.is_pending(h));
        assert_eq!(q.cancel(h), None, "double cancel is a no-op");
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn stale_handle_cannot_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(10), 1);
        q.cancel(h1);
        let h2 = q.push(t(20), 2); // reuses the slot
        assert_eq!(h1.slot, h2.slot, "slot should be recycled");
        assert_eq!(q.cancel(h1), None, "old generation must not cancel");
        assert_eq!(q.pop(), Some((t(20), 2)));
    }

    #[test]
    fn stale_heap_entry_does_not_pop_recycled_payload() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(10), "old");
        q.cancel(h1);
        // Reuses the slot with a *different* time; the stale (t=10) wheel
        // entry must not surface "new" at t=10.
        let _h2 = q.push(t(5), "new");
        assert_eq!(q.pop(), Some((t(5), "new")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn handle_dies_after_pop() {
        let mut q = EventQueue::new();
        let h = q.push(t(10), 7);
        assert_eq!(q.pop(), Some((t(10), 7)));
        assert!(!q.is_pending(h));
        assert_eq!(q.cancel(h), None);
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.push(t(10), "head");
        q.push(t(20), "next");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 0);
        let _b = q.push(t(2), 1);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    /// Times spanning many window re-bases: far-apart clusters force the
    /// wheel to slide and re-derive its width repeatedly, and the pop
    /// order must still be globally ascending (time, seq).
    #[test]
    fn clustered_times_across_rebases_pop_sorted() {
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        for cluster in 0..8u64 {
            let base = cluster * 1_000_000_000; // 1 s apart
            for i in 0..700u64 {
                let time = base + (i * 37) % 500; // dense ties inside the cluster
                q.push(t(time), seq);
                expect.push((time, seq));
                seq += 1;
            }
        }
        expect.sort();
        for &(time, payload) in &expect {
            assert_eq!(q.pop(), Some((t(time), payload)));
        }
        assert_eq!(q.pop(), None);
    }

    /// Pushes are not required to be monotonic: after popping ahead, an
    /// event earlier than the active window must still pop next.
    #[test]
    fn earlier_push_after_pops_becomes_the_head() {
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.push(t(1000 + i * 10), i);
        }
        for _ in 0..10 {
            q.pop();
        }
        q.push(t(0), 999);
        assert_eq!(q.pop(), Some((t(0), 999)));
        assert_eq!(q.pop(), Some((t(1100), 10)), "window ordering resumes");
    }

    #[test]
    fn interleaved_push_cancel_pop_stress() {
        // Deterministic pseudo-random interleaving; checks slab recycling.
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut live = 0usize;
        for i in 0..10_000u64 {
            match next() % 3 {
                0 | 1 => {
                    handles.push(q.push(t(next() % 1000), i));
                    live += 1;
                }
                _ => {
                    if let Some(h) = handles.pop() {
                        if q.cancel(h).is_some() {
                            live -= 1;
                        }
                    }
                }
            }
            assert_eq!(q.len(), live);
        }
        let mut last = SimTime::ZERO;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last, "pop order must be nondecreasing");
            last = time;
            live -= 1;
        }
        assert_eq!(live, 0);
    }
}
