//! Deterministic, cancellable event queue.
//!
//! [`EventQueue`] is a min-heap of `(time, sequence)` keys. The payload of
//! each event lives in a slab indexed by slot; cancelling an event bumps the
//! slot's generation so a stale [`EventHandle`] can never cancel (or observe)
//! a recycled slot. Popping skips cancelled entries lazily.
//!
//! Determinism: two events at the same instant pop in scheduling order
//! because the sequence number is the tie-breaker.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A handle to a scheduled event, usable to cancel it before it fires.
///
/// Handles are cheap to copy and remain safe after the event fires or is
/// cancelled: operations on a dead handle are no-ops that return `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

impl EventHandle {
    /// A handle that never refers to a live event.
    pub const DEAD: EventHandle = EventHandle {
        slot: u32::MAX,
        generation: u32::MAX,
    };
}

impl Default for EventHandle {
    fn default() -> Self {
        EventHandle::DEAD
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: SimTime,
    seq: u64,
}

struct Slot<T> {
    generation: u32,
    payload: Option<T>,
}

/// A cancellable priority queue of timed events carrying payloads of type `T`.
pub struct EventQueue<T> {
    /// Heap entries carry `(key, slot, generation)`; an entry is live only
    /// while the slot's generation still matches (cancel/pop bump it).
    heap: BinaryHeap<Reverse<(Key, u32, u32)>>,
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    seq: u64,
    live: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            live: 0,
        }
    }

    /// Number of live (not-yet-fired, not-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` at `time`. Returns a cancellation handle.
    pub fn push(&mut self, time: SimTime, payload: T) -> EventHandle {
        let slot = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                debug_assert!(s.payload.is_none());
                s.payload = Some(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event slot overflow");
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(payload),
                });
                idx
            }
        };
        let generation = self.slots[slot as usize].generation;
        let key = Key {
            time,
            seq: self.seq,
        };
        self.seq += 1;
        self.live += 1;
        self.heap.push(Reverse((key, slot, generation)));
        EventHandle { slot, generation }
    }

    /// Cancel a scheduled event. Returns the payload if the event was still
    /// pending, `None` if it already fired or was already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<T> {
        let slot = self.slots.get_mut(handle.slot as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        let payload = slot.payload.take()?;
        // Bump generation now; the heap entry is skipped lazily on pop and
        // the slot is reusable immediately.
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.slot);
        self.live -= 1;
        Some(payload)
    }

    /// Is the event referenced by `handle` still pending?
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.slots
            .get(handle.slot as usize)
            .is_some_and(|s| s.generation == handle.generation && s.payload.is_some())
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|Reverse((k, _, _))| k.time)
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.skip_dead();
        let Reverse((key, slot, _gen)) = self.heap.pop()?;
        let s = &mut self.slots[slot as usize];
        let payload = s.payload.take().expect("skip_dead left a dead head");
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        Some((key.time, payload))
    }

    /// Drop cancelled/stale entries sitting at the head of the heap. An entry
    /// is stale when the slot was cancelled (and possibly recycled by a newer
    /// event): in both cases the slot's generation no longer matches.
    fn skip_dead(&mut self) {
        while let Some(Reverse((_, slot, generation))) = self.heap.peek() {
            let s = &self.slots[*slot as usize];
            if s.generation == *generation && s.payload.is_some() {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_returns_payload_once() {
        let mut q = EventQueue::new();
        let h = q.push(t(10), 42);
        assert!(q.is_pending(h));
        assert_eq!(q.cancel(h), Some(42));
        assert!(!q.is_pending(h));
        assert_eq!(q.cancel(h), None, "double cancel is a no-op");
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn stale_handle_cannot_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(10), 1);
        q.cancel(h1);
        let h2 = q.push(t(20), 2); // reuses the slot
        assert_eq!(h1.slot, h2.slot, "slot should be recycled");
        assert_eq!(q.cancel(h1), None, "old generation must not cancel");
        assert_eq!(q.pop(), Some((t(20), 2)));
    }

    #[test]
    fn stale_heap_entry_does_not_pop_recycled_payload() {
        let mut q = EventQueue::new();
        let h1 = q.push(t(10), "old");
        q.cancel(h1);
        // Reuses the slot with a *different* time; the stale (t=10) heap
        // entry must not surface "new" at t=10.
        let _h2 = q.push(t(5), "new");
        assert_eq!(q.pop(), Some((t(5), "new")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn handle_dies_after_pop() {
        let mut q = EventQueue::new();
        let h = q.push(t(10), 7);
        assert_eq!(q.pop(), Some((t(10), 7)));
        assert!(!q.is_pending(h));
        assert_eq!(q.cancel(h), None);
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.push(t(10), "head");
        q.push(t(20), "next");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 0);
        let _b = q.push(t(2), 1);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_cancel_pop_stress() {
        // Deterministic pseudo-random interleaving; checks slab recycling.
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut live = 0usize;
        for i in 0..10_000u64 {
            match next() % 3 {
                0 | 1 => {
                    handles.push(q.push(t(next() % 1000), i));
                    live += 1;
                }
                _ => {
                    if let Some(h) = handles.pop() {
                        if q.cancel(h).is_some() {
                            live -= 1;
                        }
                    }
                }
            }
            assert_eq!(q.len(), live);
        }
        let mut last = SimTime::ZERO;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last, "pop order must be nondecreasing");
            last = time;
            live -= 1;
        }
        assert_eq!(live, 0);
    }
}
