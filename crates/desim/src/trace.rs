//! Span tracing: a lightweight timeline recorder for simulated runs.
//!
//! Entities record labeled `[start, end)` spans on numbered tracks; the
//! recorder can aggregate total time per label (phase breakdowns) and
//! render a text Gantt chart — the tooling equivalent of skimming an
//! Nsight Systems timeline, which is how the paper's authors diagnosed
//! where iterations spend their time.

use crate::time::{Dur, SimTime};
use std::collections::BTreeMap;

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub track: u32,
    pub label: String,
    pub start: SimTime,
    pub end: SimTime,
}

impl Span {
    pub fn duration(&self) -> Dur {
        self.end.since(self.start)
    }
}

/// Collects spans over a run.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
}

impl SpanRecorder {
    pub fn new() -> SpanRecorder {
        SpanRecorder::default()
    }

    /// Record a span; zero- or negative-length spans are dropped.
    pub fn record(&mut self, track: u32, label: impl Into<String>, start: SimTime, end: SimTime) {
        if end > start {
            self.spans.push(Span {
                track,
                label: label.into(),
                start,
                end,
            });
        }
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total recorded time per label, sorted by label (deterministic).
    pub fn totals_by_label(&self) -> Vec<(String, Dur)> {
        let mut map: BTreeMap<&str, Dur> = BTreeMap::new();
        for s in &self.spans {
            *map.entry(&s.label).or_insert(Dur::ZERO) += s.duration();
        }
        map.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    /// Spans on one track, in recording order.
    pub fn track(&self, track: u32) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.track == track)
    }

    /// Render a text Gantt chart of `[from, to)` in `width` columns, one
    /// row per label (first character of the label marks occupancy).
    pub fn render(&self, from: SimTime, to: SimTime, width: usize) -> String {
        assert!(width > 0 && to > from);
        let span_ns = (to - from).as_nanos() as f64;
        let mut labels: Vec<&str> = self.spans.iter().map(|s| s.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        let mut out = String::new();
        for label in labels {
            let mut row = vec!['·'; width];
            let mark = label.chars().next().unwrap_or('#');
            for s in self.spans.iter().filter(|s| s.label == label) {
                let a = ((s.start.since(from).as_nanos() as f64 / span_ns) * width as f64)
                    .floor()
                    .max(0.0) as usize;
                let b = ((s.end.since(from).as_nanos() as f64 / span_ns) * width as f64).ceil()
                    as usize;
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = mark;
                }
            }
            out.push_str(&format!("{label:>10} {}\n", row.iter().collect::<String>()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn records_and_totals() {
        let mut r = SpanRecorder::new();
        r.record(0, "fwd", t(0), t(10));
        r.record(0, "bwd", t(10), t(30));
        r.record(0, "fwd", t(40), t(50));
        let totals = r.totals_by_label();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0], ("bwd".to_string(), Dur::from_micros(20)));
        assert_eq!(totals[1], ("fwd".to_string(), Dur::from_micros(20)));
    }

    #[test]
    fn drops_empty_spans() {
        let mut r = SpanRecorder::new();
        r.record(0, "x", t(5), t(5));
        assert!(r.is_empty());
    }

    #[test]
    fn track_filtering() {
        let mut r = SpanRecorder::new();
        r.record(0, "a", t(0), t(1));
        r.record(1, "b", t(0), t(1));
        assert_eq!(r.track(0).count(), 1);
        assert_eq!(r.track(1).count(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn render_shows_occupancy() {
        let mut r = SpanRecorder::new();
        r.record(0, "fwd", t(0), t(50));
        r.record(0, "bwd", t(50), t(100));
        let g = r.render(t(0), t(100), 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        // bwd occupies the right half, fwd the left half.
        assert!(lines[0].trim_start().starts_with("bwd"));
        assert!(lines[0].contains("·····bbbbb") || lines[0].contains("····bbbbb"));
        assert!(lines[1].contains("fffff"));
    }
}
