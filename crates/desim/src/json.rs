//! A self-contained JSON value, emitter, and parser.
//!
//! The workspace is hermetic by design — the simulator's determinism story
//! (see [`crate::rng`]) extends to its serialization layer, so the handful
//! of types that cross a serialization boundary (`Dur`, configs,
//! `RunReport`, topology snapshots) implement [`ToJson`]/[`FromJson`]
//! against this module instead of pulling `serde`/`serde_json` from a
//! registry the build environment cannot reach.
//!
//! Scope and guarantees:
//!
//! * **Stable output.** [`Value::emit`] and [`Value::emit_pretty`] are pure
//!   functions of the value: object keys keep insertion order, floats use
//!   Rust's shortest round-trip formatting, and non-finite floats are
//!   rejected at emit time (JSON has no spelling for them). Byte-identical
//!   values emit byte-identical text, which is what the golden-table
//!   regression layer keys on.
//! * **Strict parsing.** [`Value::parse`] accepts exactly one JSON value:
//!   trailing garbage, truncated input, bad escapes, and pathological
//!   nesting (> [`MAX_DEPTH`]) are errors carrying the byte offset.
//! * **Integer range.** Numbers are carried as `f64`; integers are exact up
//!   to 2^53, far beyond any quantity the simulator serializes (the
//!   longest run is ~10^15 ns). [`Value::from_u64`] debug-asserts this.

use std::fmt;

/// Maximum container nesting accepted by the parser.
pub const MAX_DEPTH: u32 = 128;

/// A JSON value. Objects preserve insertion order (`Vec` of pairs, not a
/// map) so emit order is deterministic and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

/// A parse or decode error: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub msg: String,
    /// Byte offset into the input (0 for decode errors on an already
    /// parsed value).
    pub at: usize,
}

impl JsonError {
    pub fn new(msg: impl Into<String>, at: usize) -> JsonError {
        JsonError {
            msg: msg.into(),
            at,
        }
    }

    /// An error about the *shape* of an already parsed value.
    pub fn decode(msg: impl Into<String>) -> JsonError {
        JsonError::new(msg, 0)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.at == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{} (at byte {})", self.msg, self.at)
        }
    }
}

impl std::error::Error for JsonError {}

impl Value {
    pub fn from_u64(n: u64) -> Value {
        debug_assert!(n <= (1u64 << 53), "u64 {n} exceeds exact f64 range");
        Value::Num(n as f64)
    }

    pub fn from_i64(n: i64) -> Value {
        debug_assert!(n.unsigned_abs() <= (1u64 << 53));
        Value::Num(n as f64)
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::decode(format!("expected bool, got {}", other.kind()))),
        }
    }

    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(JsonError::decode(format!("expected number, got {}", other.kind()))),
        }
    }

    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
            return Err(JsonError::decode(format!("expected unsigned integer, got {n}")));
        }
        Ok(n as u64)
    }

    pub fn as_u32(&self) -> Result<u32, JsonError> {
        let n = self.as_u64()?;
        u32::try_from(n).map_err(|_| JsonError::decode(format!("{n} does not fit in u32")))
    }

    pub fn as_u16(&self) -> Result<u16, JsonError> {
        let n = self.as_u64()?;
        u16::try_from(n).map_err(|_| JsonError::decode(format!("{n} does not fit in u16")))
    }

    pub fn as_u8(&self) -> Result<u8, JsonError> {
        let n = self.as_u64()?;
        u8::try_from(n).map_err(|_| JsonError::decode(format!("{n} does not fit in u8")))
    }

    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(JsonError::decode(format!("expected string, got {}", other.kind()))),
        }
    }

    pub fn as_arr(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Arr(v) => Ok(v),
            other => Err(JsonError::decode(format!("expected array, got {}", other.kind()))),
        }
    }

    pub fn as_obj(&self) -> Result<&[(String, Value)], JsonError> {
        match self {
            Value::Obj(v) => Ok(v),
            other => Err(JsonError::decode(format!("expected object, got {}", other.kind()))),
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::decode(format!("missing key \"{key}\"")))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    // ---- emit ----------------------------------------------------------

    /// Compact single-line form.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty form, two-space indent, key order preserved — the canonical
    /// form golden files are stored in.
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                assert!(n.is_finite(), "JSON cannot represent {n}");
                // Shortest round-trip formatting; integral values print
                // without a fractional part, which parses back identically.
                out.push_str(&format!("{n}"));
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl);
                });
            }
            Value::Obj(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i, lvl| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, lvl);
                });
            }
        }
    }

    // ---- parse ---------------------------------------------------------

    /// Parse exactly one JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new("trailing garbage after value", p.pos));
        }
        Ok(v)
    }

    /// Parse from raw bytes (must be UTF-8).
    pub fn parse_bytes(input: &[u8]) -> Result<Value, JsonError> {
        let s = std::str::from_utf8(input)
            .map_err(|e| JsonError::new(format!("invalid UTF-8: {e}"), e.valid_up_to()))?;
        Value::parse(s)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!("expected '{lit}'"), self.pos))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new("nesting too deep", self.pos));
        }
        match self.peek() {
            None => Err(JsonError::new("unexpected end of input", self.pos)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(JsonError::new("expected ',' or ']'", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(JsonError::new("expected ',' or '}'", self.pos)),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::new(
                format!("unexpected character '{}'", b as char),
                self.pos,
            )),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(JsonError::new("expected digits", self.pos));
        }
        // JSON forbids leading zeros like "01".
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(JsonError::new("leading zero in number", digits_start));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(JsonError::new("expected fraction digits", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(JsonError::new("expected exponent digits", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| JsonError::new(format!("bad number {text}: {e}"), start))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError::new("lone high surrogate", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::new("invalid low surrogate", self.pos));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("bad surrogate pair", self.pos))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| JsonError::new("bad \\u escape", self.pos))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(JsonError::new("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::new("raw control character in string", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape", self.pos));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("bad \\u escape", self.pos))?;
        let v = u32::from_str_radix(text, 16)
            .map_err(|_| JsonError::new("bad \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }
}

/// Types that emit themselves as a [`Value`].
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Types that rebuild themselves from a parsed [`Value`].
pub trait FromJson: Sized {
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool()
    }
}
impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}
impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64()
    }
}
impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::from_u64(*self)
    }
}
impl FromJson for u64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_u64()
    }
}
impl ToJson for u32 {
    fn to_json(&self) -> Value {
        Value::from_u64(u64::from(*self))
    }
}
impl FromJson for u32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_u32()
    }
}
impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_string())
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}
// Pairs serialize as two-element arrays (the same shape serde derives
// produced for tuples, so existing JSON consumers keep working).
impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let a = v.as_arr()?;
        if a.len() != 2 {
            return Err(JsonError::decode(format!("expected pair, got {} items", a.len())));
        }
        Ok((A::from_json(&a[0])?, B::from_json(&a[1])?))
    }
}

impl ToJson for crate::time::Dur {
    fn to_json(&self) -> Value {
        Value::from_u64(self.as_nanos())
    }
}
impl FromJson for crate::time::Dur {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(crate::time::Dur::from_nanos(v.as_u64()?))
    }
}
impl ToJson for crate::time::SimTime {
    fn to_json(&self) -> Value {
        Value::from_u64(self.as_nanos())
    }
}
impl FromJson for crate::time::SimTime {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(crate::time::SimTime::from_nanos(v.as_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1", "3.5", "1e3", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            let back = Value::parse(&v.emit()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn containers_round_trip_preserving_order() {
        let v = Value::obj(vec![
            ("zeta", Value::from_u64(1)),
            ("alpha", Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("nested", Value::obj(vec![("k", Value::str("v\n\"x\""))])),
        ]);
        let compact = v.emit();
        assert!(compact.starts_with("{\"zeta\":1,\"alpha\""), "{compact}");
        assert_eq!(Value::parse(&compact).unwrap(), v);
        assert_eq!(Value::parse(&v.emit_pretty()).unwrap(), v);
    }

    #[test]
    fn float_formatting_is_stable_and_round_trips() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456.789, 2.0f64.powi(52), 0.30000000000000004] {
            let emitted = Value::Num(f).emit();
            assert_eq!(emitted, Value::Num(f).emit(), "pure function of value");
            let back = Value::parse(&emitted).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {emitted}");
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "nul",
            "01",
            "1.",
            "1e",
            "-",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "[1] trailing",
            "{} {}",
            "[1]]",
            "nan",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_rejected() {
        let deep = "[".repeat(300) + &"]".repeat(300);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Value::parse("\"a\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "a\u{e9}\u{1f600}b");
        // And re-emit parses back to the same string (emitted raw, not escaped).
        assert_eq!(Value::parse(&v.emit()).unwrap(), v);
    }

    #[test]
    fn lone_surrogate_rejected() {
        assert!(Value::parse("\"\\ud800\"").is_err());
        assert!(Value::parse("\"\\ud800\\u0041\"").is_err());
    }

    #[test]
    fn dur_round_trips() {
        let d = Dur::from_micros(1234);
        let v = d.to_json();
        assert_eq!(Dur::from_json(&v).unwrap(), d);
        assert!(Dur::from_json(&Value::Num(-1.0)).is_err());
        assert!(Dur::from_json(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn accessors_report_type_errors() {
        let v = Value::parse("{\"a\":1}").unwrap();
        assert!(v.get("a").unwrap().as_u64().is_ok());
        assert!(v.get("missing").is_err());
        assert!(v.get("a").unwrap().as_str().is_err());
        assert!(v.as_arr().is_err());
    }
}
