//! Seeded randomness for reproducible simulations.
//!
//! Every stochastic decision in `composable-sim` (jitter on kernel times,
//! sample-size variation, arrival noise) draws from a [`SimRng`] created
//! from an explicit seed, so a run is a pure function of its inputs.
//! Sub-streams ([`SimRng::fork`]) give independent deterministic streams to
//! concurrent entities without them perturbing each other's draws when the
//! code around them changes.
//!
//! The generator is a self-contained **xoshiro256++** so that simulation
//! results are bit-stable regardless of `rand`-crate version churn (and the
//! state is trivially `Clone`, which matters for snapshotting worlds).

/// A deterministic random-number generator for simulation use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
    /// Stable identity of this stream, used to derive fork seeds without
    /// consuming state from the generator.
    tag: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            tag: seed ^ 0xa076_1d64_78bd_642f,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent sub-stream, keyed by `stream`. Two forks of the
    /// same parent with different keys produce unrelated sequences; forking
    /// does not advance the parent.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.tag ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::seed_from_u64(splitmix64(&mut sm))
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)` (Lemire's unbiased method is overkill at
    /// simulation scales; modulo bias at n ≪ 2⁶⁴ is negligible and this keeps
    /// the generator simple and stable).
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// A multiplicative jitter factor in `[1 - frac, 1 + frac)`; `frac = 0`
    /// returns exactly 1.0.
    pub fn jitter(&mut self, frac: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&frac));
        if frac == 0.0 {
            1.0
        } else {
            self.uniform(1.0 - frac, 1.0 + frac)
        }
    }

    /// Normal draw via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        let u1 = self.unit().max(f64::EPSILON);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.unit() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_preserves_state() {
        let mut a = SimRng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let parent = SimRng::seed_from_u64(7);
        let mut f1 = parent.fork(0);
        let mut f1b = parent.fork(0);
        let mut f2 = parent.fork(1);
        let a = f1.next_u64();
        assert_eq!(a, f1b.next_u64());
        assert_ne!(a, f2.next_u64());
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let _ = a.fork(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_in_range_and_spread() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let j = rng.jitter(0.05);
            assert!((0.95..1.05).contains(&j));
        }
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(!rng.chance(0.0));
        for _ in 0..100 {
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn index_in_range() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
