//! Telemetry primitives: the simulated equivalents of the paper's
//! Weights & Biases / Nsight / Falcon-GUI instrumentation.
//!
//! * [`Counter`] — monotonically increasing totals (bytes moved, iterations).
//! * [`TimeWeightedGauge`] — a value sampled over time with exact
//!   time-weighted averaging (memory in use, queue depth).
//! * [`BusyTracker`] — records busy intervals of a device and reports a
//!   utilization trace in fixed buckets (the paper's Fig 9/10/13 series).
//! * [`RateSeries`] — attributes transferred bytes to time buckets and
//!   reports per-bucket rates (the paper's Fig 12 PCIe-traffic series).
//! * [`Histogram`] — latency distributions with percentile queries.
//! * [`Summary`] — scalar min/mean/max aggregation of a finished series.

use crate::time::{Dur, SimTime};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counter {
    total: f64,
    events: u64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn add(&mut self, amount: f64) {
        debug_assert!(amount >= 0.0, "counters only increase");
        self.total += amount;
        self.events += 1;
    }
    pub fn incr(&mut self) {
        self.add(1.0);
    }
    pub fn total(&self) -> f64 {
        self.total
    }
    pub fn events(&self) -> u64 {
        self.events
    }
}

/// A gauge whose time-weighted average is computed exactly from its update
/// history (no sampling error).
#[derive(Debug, Clone)]
pub struct TimeWeightedGauge {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    start: SimTime,
    max: f64,
}

impl TimeWeightedGauge {
    pub fn new(at: SimTime, initial: f64) -> Self {
        TimeWeightedGauge {
            value: initial,
            last_change: at,
            weighted_sum: 0.0,
            start: at,
            max: initial,
        }
    }

    /// Set the gauge at instant `at` (must be nondecreasing in time).
    pub fn set(&mut self, at: SimTime, value: f64) {
        debug_assert!(at >= self.last_change, "gauge updates must move forward");
        self.weighted_sum += self.value * at.since(self.last_change).as_secs_f64();
        self.value = value;
        self.last_change = at;
        self.max = self.max.max(value);
    }

    pub fn add(&mut self, at: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(at, v);
    }

    pub fn value(&self) -> f64 {
        self.value
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Exact time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let elapsed = now.since(self.start).as_secs_f64();
        if elapsed == 0.0 {
            return self.value;
        }
        let tail = self.value * now.since(self.last_change).as_secs_f64();
        (self.weighted_sum + tail) / elapsed
    }
}

/// Records the busy intervals of a serially-used resource and renders them
/// as a fixed-bucket utilization trace in `[0, 1]`.
///
/// Overlapping busy intervals are merged, so a device driven by several
/// overlapping activities never reports more than 100 % utilization.
#[derive(Debug, Clone)]
pub struct BusyTracker {
    /// Disjoint, sorted busy intervals (half-open).
    intervals: Vec<(SimTime, SimTime)>,
}

impl Default for BusyTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl BusyTracker {
    pub fn new() -> Self {
        BusyTracker {
            intervals: Vec::new(),
        }
    }

    /// Record that the resource was busy on `[start, end)`.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        // Fast path: appending at/after the tail (the common case since
        // simulations emit roughly in time order).
        if let Some(last) = self.intervals.last_mut() {
            if start >= last.1 {
                self.intervals.push((start, end));
                return;
            }
            if start >= last.0 {
                last.1 = last.1.max(end);
                return;
            }
        } else {
            self.intervals.push((start, end));
            return;
        }
        // Slow path: out-of-order insert with merging.
        let idx = self
            .intervals
            .partition_point(|&(s, _)| s < start);
        self.intervals.insert(idx, (start, end));
        self.normalize();
    }

    fn normalize(&mut self) {
        self.intervals.sort_by_key(|&(s, _)| s);
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(self.intervals.len());
        for &(s, e) in &self.intervals {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.intervals = merged;
    }

    /// Total busy time on `[from, to)`.
    pub fn busy_within(&self, from: SimTime, to: SimTime) -> Dur {
        let mut acc = Dur::ZERO;
        for &(s, e) in &self.intervals {
            let lo = s.max(from);
            let hi = e.min(to);
            if hi > lo {
                acc += hi - lo;
            }
            if s >= to {
                break;
            }
        }
        acc
    }

    /// Overall utilization on `[from, to)`.
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.since(from).as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.busy_within(from, to).as_secs_f64() / span
    }

    /// Utilization per fixed-width bucket over `[from, to)` — the shape of
    /// the paper's GPU-utilization traces (Fig 9).
    pub fn trace(&self, from: SimTime, to: SimTime, bucket: Dur) -> Vec<f64> {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        let mut out = Vec::new();
        let mut cursor = from;
        while cursor < to {
            let end = (cursor + bucket).min(to);
            out.push(self.utilization(cursor, end));
            cursor = end;
        }
        out
    }
}

/// Attributes byte deliveries to time buckets and reports per-bucket rates.
///
/// Deliveries are *spread* over the interval they occupied, so a 1 GB
/// transfer lasting 100 ms contributes uniformly to every bucket it spans —
/// matching how the Falcon GUI's per-second ingress/egress counters behave.
#[derive(Debug, Clone, Default)]
pub struct RateSeries {
    /// (start, end, bytes) of each recorded transfer segment.
    segments: Vec<(SimTime, SimTime, f64)>,
    total_bytes: f64,
}

impl RateSeries {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` moved uniformly across `[start, end)`. A zero-length
    /// interval attributes everything to the instant `start`.
    pub fn record(&mut self, start: SimTime, end: SimTime, bytes: f64) {
        debug_assert!(bytes >= 0.0);
        self.segments.push((start, end.max(start), bytes));
        self.total_bytes += bytes;
    }

    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Bytes attributed to `[from, to)`.
    pub fn bytes_within(&self, from: SimTime, to: SimTime) -> f64 {
        let mut acc = 0.0;
        for &(s, e, b) in &self.segments {
            if s == e {
                if s >= from && s < to {
                    acc += b;
                }
                continue;
            }
            let lo = s.max(from);
            let hi = e.min(to);
            if hi > lo {
                acc += b * (hi.since(lo).as_secs_f64() / e.since(s).as_secs_f64());
            }
        }
        acc
    }

    /// Average rate (bytes/s) over `[from, to)`.
    pub fn mean_rate(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.since(from).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.bytes_within(from, to) / span
        }
    }

    /// Per-bucket rates (bytes/s) over `[from, to)` — the Fig 12 series.
    pub fn trace(&self, from: SimTime, to: SimTime, bucket: Dur) -> Vec<f64> {
        assert!(!bucket.is_zero());
        let mut out = Vec::new();
        let mut cursor = from;
        while cursor < to {
            let end = (cursor + bucket).min(to);
            out.push(self.mean_rate(cursor, end));
            cursor = end;
        }
        out
    }
}

/// A simple collecting histogram with percentile queries.
///
/// Values are stored exactly; queries sort lazily. Suitable for the tens of
/// thousands of latency samples a run produces, not for unbounded streams.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    values: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite());
        self.values.push(v);
        self.sorted = false;
    }
    pub fn count(&self) -> usize {
        self.values.len()
    }
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite histogram value"));
            self.sorted = true;
        }
    }
    /// Percentile in `[0, 100]` via nearest-rank; 0 on an empty histogram.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = ((p / 100.0) * (self.values.len() as f64 - 1.0)).round() as usize;
        self.values[rank]
    }
    pub fn min(&mut self) -> f64 {
        self.percentile(0.0)
    }
    pub fn max(&mut self) -> f64 {
        self.percentile(100.0)
    }
}

/// Scalar summary of a finished series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub min: f64,
    pub mean: f64,
    pub max: f64,
    pub count: usize,
}

impl Summary {
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                min: 0.0,
                mean: 0.0,
                max: 0.0,
                count: 0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Summary {
            min,
            mean: sum / values.len() as f64,
            max,
            count: values.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.add(3.0);
        c.add(4.5);
        c.incr();
        assert_eq!(c.total(), 8.5);
        assert_eq!(c.events(), 3);
    }

    #[test]
    fn gauge_time_weighted_mean_is_exact() {
        let mut g = TimeWeightedGauge::new(t(0), 0.0);
        g.set(t(10), 10.0); // 0 for 10us
        g.set(t(30), 0.0); // 10 for 20us
        // mean over 40us = (0*10 + 10*20 + 0*10)/40 = 5
        assert!((g.mean(t(40)) - 5.0).abs() < 1e-9);
        assert_eq!(g.max(), 10.0);
        assert_eq!(g.value(), 0.0);
    }

    #[test]
    fn gauge_mean_with_no_elapsed_time() {
        let g = TimeWeightedGauge::new(t(5), 7.0);
        assert_eq!(g.mean(t(5)), 7.0);
    }

    #[test]
    fn busy_tracker_merges_overlaps() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(10));
        b.record(t(5), t(15)); // overlaps
        b.record(t(20), t(30));
        assert_eq!(b.busy_within(t(0), t(30)), Dur::from_micros(25));
        assert!((b.utilization(t(0), t(30)) - 25.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn busy_tracker_out_of_order_inserts() {
        let mut b = BusyTracker::new();
        b.record(t(20), t(30));
        b.record(t(0), t(10));
        b.record(t(8), t(22)); // bridges both
        assert_eq!(b.busy_within(t(0), t(30)), Dur::from_micros(30));
        assert_eq!(b.utilization(t(0), t(30)), 1.0);
    }

    #[test]
    fn busy_tracker_trace_buckets() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(5));
        b.record(t(10), t(20));
        let trace = b.trace(t(0), t(20), Dur::from_micros(10));
        assert_eq!(trace.len(), 2);
        assert!((trace[0] - 0.5).abs() < 1e-9);
        assert!((trace[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_tracker_ignores_empty_intervals() {
        let mut b = BusyTracker::new();
        b.record(t(5), t(5));
        assert_eq!(b.busy_within(t(0), t(10)), Dur::ZERO);
    }

    #[test]
    fn rate_series_spreads_bytes_over_interval() {
        let mut r = RateSeries::new();
        // 100 bytes over [0, 10us): 10 bytes/us.
        r.record(t(0), t(10), 100.0);
        assert!((r.bytes_within(t(0), t(5)) - 50.0).abs() < 1e-9);
        assert!((r.bytes_within(t(5), t(10)) - 50.0).abs() < 1e-9);
        assert!((r.mean_rate(t(0), t(10)) - 100.0 / 10e-6).abs() < 1.0);
    }

    #[test]
    fn rate_series_instantaneous_delivery() {
        let mut r = RateSeries::new();
        r.record(t(5), t(5), 42.0);
        assert_eq!(r.bytes_within(t(0), t(10)), 42.0);
        assert_eq!(r.bytes_within(t(6), t(10)), 0.0);
        assert_eq!(r.total_bytes(), 42.0);
    }

    #[test]
    fn rate_series_trace() {
        let mut r = RateSeries::new();
        r.record(t(0), t(20), 200.0);
        let trace = r.trace(t(0), t(20), Dur::from_micros(10));
        assert_eq!(trace.len(), 2);
        assert!((trace[0] - trace[1]).abs() < 1e-6, "uniform spread");
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.percentile(50.0), 3.0);
        assert!((h.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn summary_of_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert_eq!(s.count, 3);
        assert_eq!(Summary::of(&[]).count, 0);
    }
}
