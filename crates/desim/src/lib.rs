//! `desim` — a small, deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate every other `composable-sim` crate builds on.
//! It provides:
//!
//! * [`SimTime`] / [`Dur`] — nanosecond-resolution instants and durations,
//! * [`Sim`] — an event scheduler generic over a user "world" state, with
//!   cancellable event handles and deterministic tie-breaking,
//! * [`stats`] — counters, time-weighted gauges, histograms and the
//!   time-bucketed series used to reproduce the paper's telemetry
//!   (GPU/CPU utilization traces, PCIe traffic rates),
//! * [`rng`] — seeded random-number plumbing so identical inputs always
//!   produce identical simulations,
//! * [`json`] — a self-contained JSON value/parser/emitter so the types
//!   that cross a serialization boundary need no registry dependency.
//!
//! # Determinism
//!
//! Two events scheduled for the same instant fire in the order they were
//! scheduled (a monotonically increasing sequence number breaks ties).
//! All randomness must flow from [`rng::SimRng`]; the kernel itself never
//! consults a clock or RNG.
//!
//! # Example
//!
//! ```
//! use desim::{Sim, SimTime, Dur};
//!
//! struct World { fired: Vec<u32> }
//! let mut sim: Sim<World> = Sim::new();
//! let mut world = World { fired: Vec::new() };
//! sim.schedule_in(Dur::from_micros(5), |w: &mut World, _| w.fired.push(1));
//! sim.schedule_in(Dur::from_micros(2), |w: &mut World, sim| {
//!     w.fired.push(2);
//!     sim.schedule_in(Dur::from_micros(1), |w: &mut World, _| w.fired.push(3));
//! });
//! sim.run(&mut world);
//! assert_eq!(world.fired, vec![2, 3, 1]);
//! assert_eq!(sim.now(), SimTime::from_micros(5));
//! ```

pub mod json;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use json::{FromJson, JsonError, ToJson, Value};
pub use queue::{EventHandle, EventQueue};
pub use rng::SimRng;
pub use sim::Sim;
pub use time::{Dur, SimTime};
pub use trace::SpanRecorder;
