//! The event scheduler.
//!
//! [`Sim<S>`] drives a user-defined world `S` forward in simulated time.
//! Events are boxed `FnOnce(&mut S, &mut Sim<S>)` closures: they mutate the
//! world and may schedule or cancel further events. This "closures as
//! events" style keeps the kernel tiny while letting higher layers build
//! state machines (training loops, flow managers) on top.

use crate::queue::{EventHandle, EventQueue};
use crate::time::{Dur, SimTime};

/// An event callback: receives the world and the scheduler.
pub type Event<S> = Box<dyn FnOnce(&mut S, &mut Sim<S>)>;

/// A discrete-event scheduler over world state `S`.
pub struct Sim<S> {
    now: SimTime,
    queue: EventQueue<Event<S>>,
    executed: u64,
}

impl<S> Default for Sim<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Sim<S> {
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventHandle
    where
        F: FnOnce(&mut S, &mut Sim<S>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, Box::new(f))
    }

    /// Schedule `f` after a relative delay.
    pub fn schedule_in<F>(&mut self, delay: Dur, f: F) -> EventHandle
    where
        F: FnOnce(&mut S, &mut Sim<S>) + 'static,
    {
        self.queue.push(self.now + delay, Box::new(f))
    }

    /// Cancel a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle).is_some()
    }

    /// Is `handle` still pending?
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.queue.is_pending(handle)
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Execute the next event, advancing time. Returns `false` when idle.
    pub fn step(&mut self, state: &mut S) -> bool {
        match self.queue.pop() {
            Some((time, event)) => {
                debug_assert!(time >= self.now, "event queue went backwards");
                self.now = time;
                self.executed += 1;
                event(state, self);
                true
            }
            None => false,
        }
    }

    /// Run until no events remain.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Run until the queue is empty or the next event lies after `until`;
    /// then advance the clock to exactly `until` (if it is in the future).
    pub fn run_until(&mut self, state: &mut S, until: SimTime) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    self.step(state);
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
    }

    /// Run with an event-count budget (guards against runaway simulations).
    /// Returns `true` if the queue drained, `false` if the budget ran out.
    pub fn run_with_budget(&mut self, state: &mut S, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step(state) {
                return true;
            }
        }
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    impl World {
        fn log(&mut self, sim: &Sim<World>, tag: &'static str) {
            self.log.push((sim.now().as_nanos(), tag));
        }
    }

    #[test]
    fn events_fire_in_order_and_clock_advances() {
        let mut sim = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut World, s| w.log(s, "b"));
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut World, s| w.log(s, "a"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b")]);
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        assert_eq!(sim.events_executed(), 2);
    }

    #[test]
    fn events_can_schedule_more_events() {
        let mut sim = Sim::new();
        let mut w = World::default();
        sim.schedule_in(Dur::from_nanos(5), |w: &mut World, s| {
            w.log(s, "outer");
            s.schedule_in(Dur::from_nanos(5), |w: &mut World, s| w.log(s, "inner"));
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(5, "outer"), (10, "inner")]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Sim::new();
        let mut w = World::default();
        let h = sim.schedule_in(Dur::from_nanos(5), |w: &mut World, s| w.log(s, "dead"));
        sim.schedule_in(Dur::from_nanos(1), move |_: &mut World, s| {
            assert!(s.cancel(h));
        });
        sim.run(&mut w);
        assert!(w.log.is_empty());
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut World, s| w.log(s, "in"));
        sim.schedule_at(SimTime::from_nanos(100), |w: &mut World, s| w.log(s, "out"));
        sim.run_until(&mut w, SimTime::from_nanos(50));
        assert_eq!(w.log, vec![(10, "in")]);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w.log.last(), Some(&(100, "out")));
    }

    #[test]
    fn run_with_budget_reports_exhaustion() {
        let mut sim = Sim::new();
        let mut w = World::default();
        // A self-perpetuating event chain.
        fn tick(w: &mut World, s: &mut Sim<World>) {
            w.log(s, "tick");
            s.schedule_in(Dur::from_nanos(1), tick);
        }
        sim.schedule_in(Dur::from_nanos(1), tick);
        assert!(!sim.run_with_budget(&mut w, 100));
        assert_eq!(w.log.len(), 100);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_nanos(10), |_: &mut World, s| {
            s.schedule_at(SimTime::from_nanos(5), |_, _| {});
        });
        sim.run(&mut w);
    }

    #[test]
    fn same_instant_fires_in_scheduling_order() {
        let mut sim = Sim::new();
        let mut w = World::default();
        for tag in ["1", "2", "3", "4"] {
            sim.schedule_at(SimTime::from_nanos(7), move |w: &mut World, s| w.log(s, tag));
        }
        sim.run(&mut w);
        let tags: Vec<_> = w.log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec!["1", "2", "3", "4"]);
    }
}
