//! Nanosecond-resolution simulated time.
//!
//! [`SimTime`] is an *instant* (nanoseconds since simulation start) and
//! [`Dur`] is a *duration*. Both wrap `u64`, so a simulation can span
//! ~584 years — far beyond any training run. Separate types keep
//! instant/duration arithmetic honest (`SimTime + Dur = SimTime`,
//! `SimTime - SimTime = Dur`).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }
    /// Duration since an earlier instant; saturates to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
    pub fn checked_add(self, d: Dur) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);
    pub const MAX: Dur = Dur(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * NANOS_PER_MICRO)
    }
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * NANOS_PER_MILLI)
    }
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * NANOS_PER_SEC)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        Dur((s * NANOS_PER_SEC as f64).round() as u64)
    }
    /// Construct from fractional microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Dur::from_secs_f64(us * 1e-6)
    }
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
    /// The time to move `bytes` at `bytes_per_sec`; rounds up to ≥ 1 ns for
    /// any nonzero amount so progress events never stall at the same instant.
    pub fn for_bytes(bytes: f64, bytes_per_sec: f64) -> Dur {
        debug_assert!(bytes >= 0.0 && bytes_per_sec > 0.0);
        if bytes == 0.0 {
            return Dur::ZERO;
        }
        let ns = (bytes / bytes_per_sec * NANOS_PER_SEC as f64).ceil();
        Dur((ns as u64).max(1))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: instant + duration exceeds u64 nanoseconds"),
        )
    }
}
impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}
impl Sub<SimTime> for SimTime {
    type Output = Dur;
    fn sub(self, rhs: SimTime) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("SimTime underflow: subtracting a later instant"))
    }
}
impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("Dur overflow"))
    }
}
impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}
impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("Dur underflow"))
    }
}
impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("Dur overflow"))
    }
}
impl Mul<f64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: f64) -> Dur {
        debug_assert!(rhs >= 0.0 && rhs.is_finite());
        Dur((self.0 as f64 * rhs).round() as u64)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Dur(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((Dur::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t = SimTime::from_micros(10);
        let d = Dur::from_micros(4);
        assert_eq!(t + d, SimTime::from_micros(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), Dur::ZERO, "since saturates");
    }

    #[test]
    fn duration_scaling() {
        let d = Dur::from_micros(10);
        assert_eq!(d * 3u64, Dur::from_micros(30));
        assert_eq!(d * 0.5, Dur::from_micros(5));
        assert_eq!(d / 2, Dur::from_micros(5));
    }

    #[test]
    fn for_bytes_rounds_up_and_handles_zero() {
        assert_eq!(Dur::for_bytes(0.0, 1e9), Dur::ZERO);
        // 1 GB at 1 GB/s = 1 s.
        assert_eq!(Dur::for_bytes(1e9, 1e9), Dur::from_secs(1));
        // Tiny transfer still takes at least a nanosecond.
        assert_eq!(Dur::for_bytes(1.0, 1e30), Dur::from_nanos(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_subtraction_panics_on_negative() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Dur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Dur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::from_secs(12)), "12.000s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Dur::from_nanos(5).min(Dur::from_nanos(9)), Dur::from_nanos(5));
        assert_eq!(Dur::from_nanos(5).max(Dur::from_nanos(9)), Dur::from_nanos(9));
    }
}
