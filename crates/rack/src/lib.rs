//! `rack` — multi-chassis scale-out for the composable test bed.
//!
//! The source paper measures one Falcon 4016 chassis (16 GPUs); the GigaIO
//! follow-up ("Scaling to 32 GPUs on a Novel Composable System
//! Architecture", PAPERS.md) composes several chassis behind a FabreX-style
//! rack switch. This crate models that second fabric tier:
//!
//! * [`RackTopology`] — the supported geometry envelope (`chassis ∈ 1..=8`,
//!   each chassis the fixed Falcon 2 drawers × 8 slots), the single source
//!   of truth shared by `Scenario::validate` and error messages.
//! * [`RackAddr`] — global `chassis × drawer × slot` addressing on top of
//!   the per-chassis [`falcon::SlotAddr`].
//! * The inter-chassis tier's bandwidth/latency class and the analytic
//!   [`cross_chassis_stretch`] a gang pays for spanning chassis, degraded
//!   further when the rack-tier links are unhealthy.
//! * [`Rack`] — N [`falcon::ManagementCenter`]s routed by chassis index,
//!   with rack-wide audit/attachment/failure views so conservation
//!   invariants can span chassis.
//!
//! A placement confined to one chassis never touches the rack tier:
//! [`cross_chassis_stretch`] is exactly `1.0` for a single part, which
//! keeps every single-chassis replay byte-identical to the pre-rack code.

use desim::SimTime;
use falcon::{Falcon4016, HostId, ManagementCenter, McsError, SlotAddr, UserId};
use std::fmt;

/// Version stamp for the rack fabric model, folded into `model_hash` so
/// probe caches never survive a change to the inter-chassis cost model.
pub const RACK_FABRIC_VERSION: u64 = 1;

/// Largest supported rack: 8 chassis × 16 GPUs = 128 GPUs.
pub const MAX_CHASSIS: u8 = 8;

/// Drawers per Falcon 4016 chassis (fixed by the hardware).
pub const DRAWERS_PER_CHASSIS: u8 = 2;

/// Slots per drawer (fixed by the hardware).
pub const SLOTS_PER_DRAWER: u8 = 8;

/// Aggregate bandwidth class of one inter-chassis FabreX link (PCIe Gen4
/// x16 per port on the rack switch), vs 400 Gb/s CDFP inside the chassis.
pub const RACK_LINK_GBPS: f64 = 256.0;

/// One-way latency of a rack-switch hop. PCIe-semantics switching keeps
/// this sub-microsecond — the FabreX pitch — but it is still an extra hop
/// that intra-chassis traffic never pays.
pub const RACK_HOP_LATENCY_NS: u64 = 500;

/// Fractional iteration-time stretch per *additional* chassis a gang
/// spans. Calibrated to the GigaIO 32-GPU scaling curve: all-reduce over
/// the rack tier costs roughly a third more per extra hop than staying
/// inside one chassis.
pub const CROSS_CHASSIS_STRETCH: f64 = 0.35;

/// Iteration-time multiplier for a placement split into `n_parts`
/// per-chassis parts under rack-tier link health `health_pct` (100 =
/// healthy). A single-part placement returns exactly `1.0` regardless of
/// rack health — it never crosses the rack switch.
pub fn cross_chassis_stretch(n_parts: usize, health_pct: u8) -> f64 {
    if n_parts <= 1 {
        return 1.0;
    }
    let health = health_pct.clamp(1, 100) as f64;
    (1.0 + CROSS_CHASSIS_STRETCH * (n_parts as f64 - 1.0)) * (100.0 / health)
}

/// A rack geometry: how many chassis, and the per-chassis drawer/slot
/// shape. The only *runnable* shapes are `chassis ∈ 1..=MAX_CHASSIS` of
/// stock Falcon 4016 chassis; [`RackTopology::is_supported`] plus
/// [`supported_envelope`] are the single source of truth for that gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackTopology {
    pub chassis: u8,
    pub drawers_per_chassis: u8,
    pub slots_per_drawer: u8,
}

/// Human-readable description of the runnable envelope, shared by
/// `Scenario::validate` error messages so it can never go stale.
pub fn supported_envelope() -> String {
    format!(
        "1..={MAX_CHASSIS} chassis x {DRAWERS_PER_CHASSIS} drawers x {SLOTS_PER_DRAWER} slots"
    )
}

impl RackTopology {
    /// The paper's test bed: one Falcon 4016.
    pub const SINGLE: RackTopology = RackTopology {
        chassis: 1,
        drawers_per_chassis: DRAWERS_PER_CHASSIS,
        slots_per_drawer: SLOTS_PER_DRAWER,
    };

    /// A rack of `chassis` stock Falcon 4016s.
    pub const fn with_chassis(chassis: u8) -> RackTopology {
        RackTopology {
            chassis,
            drawers_per_chassis: DRAWERS_PER_CHASSIS,
            slots_per_drawer: SLOTS_PER_DRAWER,
        }
    }

    /// Whether this geometry is inside the runnable envelope.
    pub fn is_supported(&self) -> bool {
        (1..=MAX_CHASSIS).contains(&self.chassis)
            && self.drawers_per_chassis == DRAWERS_PER_CHASSIS
            && self.slots_per_drawer == SLOTS_PER_DRAWER
    }

    /// Total GPU slots across the rack.
    pub fn total_gpus(&self) -> usize {
        self.chassis as usize * self.drawers_per_chassis as usize * self.slots_per_drawer as usize
    }

    /// Total drawers across the rack (the unit of placement locality).
    pub fn n_drawers(&self) -> usize {
        self.chassis as usize * self.drawers_per_chassis as usize
    }

    /// Bytes identifying this topology *and* the inter-chassis tier
    /// parameters, folded into the probe-cache `model_hash` so a cache
    /// saved under one rack shape loads empty under another.
    pub fn fingerprint(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(35);
        v.extend_from_slice(&RACK_FABRIC_VERSION.to_le_bytes());
        v.push(self.chassis);
        v.push(self.drawers_per_chassis);
        v.push(self.slots_per_drawer);
        v.extend_from_slice(&CROSS_CHASSIS_STRETCH.to_bits().to_le_bytes());
        v.extend_from_slice(&RACK_LINK_GBPS.to_bits().to_le_bytes());
        v.extend_from_slice(&RACK_HOP_LATENCY_NS.to_le_bytes());
        v
    }
}

impl Default for RackTopology {
    fn default() -> Self {
        RackTopology::SINGLE
    }
}

impl fmt::Display for RackTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}",
            self.chassis, self.drawers_per_chassis, self.slots_per_drawer
        )
    }
}

/// A global slot address: which chassis, then the chassis-local
/// [`SlotAddr`]. Ordering is chassis-major, matching the derived field
/// order, so sorted slot lists group by chassis then drawer then slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackAddr {
    pub chassis: u8,
    pub slot: SlotAddr,
}

impl RackAddr {
    pub fn new(chassis: u8, drawer: u8, slot: u8) -> RackAddr {
        RackAddr {
            chassis,
            slot: SlotAddr::new(drawer, slot),
        }
    }

    /// Chassis-local address lifted into chassis 0 — the single-chassis
    /// embedding used everywhere the old 16-GPU code paths survive.
    pub const fn local(slot: SlotAddr) -> RackAddr {
        RackAddr { chassis: 0, slot }
    }

    /// Index of this slot's drawer in rack-global drawer numbering
    /// (`chassis * 2 + drawer`), the axis views and policies reason over.
    pub fn global_drawer(&self) -> usize {
        self.chassis as usize * DRAWERS_PER_CHASSIS as usize + self.slot.drawer.0 as usize
    }
}

impl fmt::Display for RackAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}{}", self.chassis, self.slot)
    }
}

/// Number of distinct global drawers a slot list touches (1 = the gang
/// peers over one PCIe switch ASIC; more = it pays root-complex or
/// rack-tier hops).
pub fn drawers_spanned(slots: &[RackAddr]) -> usize {
    let mut ds: Vec<usize> = slots.iter().map(RackAddr::global_drawer).collect();
    ds.sort_unstable();
    ds.dedup();
    ds.len()
}

/// Split a slot list into its per-chassis parts, chassis-ascending: the
/// unit the probe cache prices (entries are per-chassis-pure) and the
/// part count [`cross_chassis_stretch`] charges for.
pub fn chassis_parts(slots: &[RackAddr]) -> Vec<(u8, Vec<SlotAddr>)> {
    let mut sorted = slots.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(u8, Vec<SlotAddr>)> = Vec::new();
    for a in sorted {
        match out.last_mut() {
            Some((c, part)) if *c == a.chassis => part.push(a.slot),
            _ => out.push((a.chassis, vec![a.slot])),
        }
    }
    out
}

/// N managed chassis behind the rack switch. Control-plane operations are
/// routed to the owning chassis's [`ManagementCenter`]; rack-wide views
/// (attachments, failed slots, audit volume) aggregate across chassis so
/// conservation and audit invariants can span the whole rack.
pub struct Rack {
    chassis: Vec<ManagementCenter>,
}

impl Rack {
    /// Compose pre-built managed chassis (chassis index = position).
    pub fn new(chassis: Vec<ManagementCenter>) -> Rack {
        assert!(
            !chassis.is_empty() && chassis.len() <= MAX_CHASSIS as usize,
            "rack must hold 1..={MAX_CHASSIS} chassis"
        );
        Rack { chassis }
    }

    pub fn n_chassis(&self) -> usize {
        self.chassis.len()
    }

    /// The management center of one chassis.
    pub fn mcs(&self, chassis: u8) -> &ManagementCenter {
        &self.chassis[chassis as usize]
    }

    /// Register a user on every chassis's management center.
    pub fn add_user(&self, user: UserId, role: falcon::Role) {
        for mcs in &self.chassis {
            mcs.add_user(user, role);
        }
    }

    pub fn grant(
        &self,
        at: SimTime,
        admin: UserId,
        addr: RackAddr,
        to: UserId,
    ) -> Result<(), McsError> {
        self.mcs(addr.chassis).grant(at, admin, addr.slot, to)
    }

    pub fn attach(
        &self,
        at: SimTime,
        user: UserId,
        addr: RackAddr,
        host: HostId,
    ) -> Result<(), McsError> {
        self.mcs(addr.chassis).attach(at, user, addr.slot, host)
    }

    pub fn detach(&self, at: SimTime, user: UserId, addr: RackAddr) -> Result<HostId, McsError> {
        self.mcs(addr.chassis).detach(at, user, addr.slot)
    }

    pub fn force_detach(
        &self,
        at: SimTime,
        admin: UserId,
        addr: RackAddr,
    ) -> Result<Option<HostId>, McsError> {
        self.mcs(addr.chassis).force_detach(at, admin, addr.slot)
    }

    pub fn fail_slot(&self, at: SimTime, admin: UserId, addr: RackAddr) -> Result<(), McsError> {
        self.mcs(addr.chassis).fail_slot(at, admin, addr.slot)
    }

    pub fn repair_slot(&self, at: SimTime, admin: UserId, addr: RackAddr) -> Result<(), McsError> {
        self.mcs(addr.chassis).repair_slot(at, admin, addr.slot)
    }

    /// Read-only access to one chassis (views, inventory).
    pub fn with_chassis<R>(&self, chassis: u8, f: impl FnOnce(&Falcon4016) -> R) -> R {
        self.mcs(chassis).with_chassis(f)
    }

    /// Total attachments across the rack, without materializing the list —
    /// the cheap side of the scheduler's amortized conservation check.
    pub fn n_attachments(&self) -> usize {
        self.chassis
            .iter()
            .map(|mcs| mcs.with_chassis(|ch| ch.attachments().count()))
            .sum()
    }

    /// Every attachment in the rack, chassis-major sorted.
    pub fn attachments(&self) -> Vec<(RackAddr, HostId)> {
        let mut v: Vec<(RackAddr, HostId)> = Vec::new();
        for (c, mcs) in self.chassis.iter().enumerate() {
            mcs.with_chassis(|ch| {
                v.extend(
                    ch.attachments()
                        .map(|(s, h)| (RackAddr { chassis: c as u8, slot: s }, h)),
                );
            });
        }
        v
    }

    /// Every failed slot in the rack, chassis-major sorted.
    pub fn failed_slots(&self) -> Vec<RackAddr> {
        let mut v: Vec<RackAddr> = Vec::new();
        for (c, mcs) in self.chassis.iter().enumerate() {
            mcs.with_chassis(|ch| {
                v.extend(
                    ch.failed_slots()
                        .map(|s| RackAddr { chassis: c as u8, slot: s }),
                );
            });
        }
        v
    }

    /// Total audit-log entries across every chassis — the rack-wide audit
    /// invariant surface (admin-only, like each per-chassis export).
    pub fn audit_len(&self, admin: UserId) -> Result<usize, McsError> {
        let mut n = 0;
        for mcs in &self.chassis {
            n += mcs.export_audit(admin)?.len();
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::GpuSpec;
    use falcon::{DrawerId, HostPort, Mode, Role, SlotDevice};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn two_chassis_rack() -> Rack {
        let mut chassis = Vec::new();
        for c in 0..2u8 {
            let mut falcon = Falcon4016::new(format!("falcon{c}"), Mode::Advanced);
            falcon
                .connect_host(HostPort::H1, HostId(1), DrawerId(0))
                .unwrap();
            for s in 0..8 {
                falcon
                    .insert_device(SlotAddr::new(0, s), SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()))
                    .unwrap();
            }
            chassis.push(ManagementCenter::new(falcon));
        }
        let rack = Rack::new(chassis);
        rack.add_user(UserId(0), Role::Admin);
        rack.add_user(UserId(1), Role::User);
        rack
    }

    #[test]
    fn supported_envelope_matches_validate() {
        assert!(RackTopology::SINGLE.is_supported());
        for c in 1..=MAX_CHASSIS {
            assert!(RackTopology::with_chassis(c).is_supported());
        }
        assert!(!RackTopology::with_chassis(0).is_supported());
        assert!(!RackTopology::with_chassis(MAX_CHASSIS + 1).is_supported());
        let mut odd = RackTopology::with_chassis(2);
        odd.drawers_per_chassis = 3;
        assert!(!odd.is_supported());
        // The envelope string is derived from the same constants the gate
        // checks — it names both bounds that gate enforces.
        let env = supported_envelope();
        assert!(env.contains(&format!("1..={MAX_CHASSIS} chassis")));
        assert!(env.contains("2 drawers x 8 slots"));
    }

    #[test]
    fn geometry_arithmetic() {
        assert_eq!(RackTopology::SINGLE.total_gpus(), 16);
        assert_eq!(RackTopology::with_chassis(8).total_gpus(), 128);
        assert_eq!(RackTopology::with_chassis(4).n_drawers(), 8);
        assert_eq!(RackAddr::new(3, 1, 5).global_drawer(), 7);
        assert_eq!(RackAddr::new(3, 1, 5).to_string(), "c3d1s5");
        // Chassis-major ordering groups sorted addresses per chassis.
        let mut v = vec![RackAddr::new(1, 0, 0), RackAddr::new(0, 1, 7)];
        v.sort_unstable();
        assert_eq!(v[0].chassis, 0);
    }

    #[test]
    fn fingerprints_differ_per_chassis_count() {
        let one = RackTopology::SINGLE.fingerprint();
        let four = RackTopology::with_chassis(4).fingerprint();
        assert_ne!(one, four);
        assert_eq!(one, RackTopology::with_chassis(1).fingerprint());
    }

    #[test]
    fn stretch_is_identity_for_one_part_and_monotone_beyond() {
        assert_eq!(cross_chassis_stretch(0, 100), 1.0);
        assert_eq!(cross_chassis_stretch(1, 100), 1.0);
        // Single-chassis placements ignore rack health entirely.
        assert_eq!(cross_chassis_stretch(1, 25), 1.0);
        let two = cross_chassis_stretch(2, 100);
        let three = cross_chassis_stretch(3, 100);
        assert!(two > 1.0 && three > two);
        // Degraded rack links stretch spanning gangs further.
        assert!(cross_chassis_stretch(2, 50) > two);
    }

    #[test]
    fn routing_and_rack_wide_views() {
        let rack = two_chassis_rack();
        let a0 = RackAddr::new(0, 0, 0);
        let a1 = RackAddr::new(1, 0, 0);
        rack.grant(t(0), UserId(0), a0, UserId(1)).unwrap();
        rack.grant(t(0), UserId(0), a1, UserId(1)).unwrap();
        rack.attach(t(1), UserId(1), a0, HostId(1)).unwrap();
        rack.attach(t(1), UserId(1), a1, HostId(1)).unwrap();
        // Same local SlotAddr, two distinct global attachments.
        assert_eq!(rack.attachments().len(), 2);
        assert_eq!(rack.attachments()[0].0, a0);
        assert_eq!(rack.attachments()[1].0, a1);
        // Failure on chassis 1 does not leak into chassis 0's view.
        rack.fail_slot(t(2), UserId(0), a1).unwrap();
        assert_eq!(rack.failed_slots(), vec![a1]);
        rack.with_chassis(0, |c| assert!(!c.is_failed(a1.slot)));
        rack.repair_slot(t(3), UserId(0), a1).unwrap();
        assert!(rack.failed_slots().is_empty());
        // Audit volume aggregates across chassis: grants+attach+fail+repair.
        assert_eq!(rack.audit_len(UserId(0)).unwrap(), 6);
        assert_eq!(rack.detach(t(4), UserId(1), a1).unwrap(), HostId(1));
        assert_eq!(rack.force_detach(t(5), UserId(0), a0).unwrap(), Some(HostId(1)));
        assert_eq!(rack.force_detach(t(5), UserId(0), a0).unwrap(), None);
    }
}
