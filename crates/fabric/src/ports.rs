//! Per-port traffic telemetry.
//!
//! The Falcon 4016 management interface exposes ingress/egress byte
//! counters and per-second throughput for every PCIe port; the paper's
//! Figure 12 is produced from those counters. [`PortStats`] is the
//! simulated equivalent: every directed-link traversal is attributed to a
//! [`desim::stats::RateSeries`], so any subset of links can be queried for
//! traffic over any window.

use crate::topology::DirLink;
use desim::stats::RateSeries;
use desim::SimTime;

/// Traffic counters for every directed link of a topology.
#[derive(Debug, Default, Clone)]
pub struct PortStats {
    /// Indexed by [`DirLink::dense_index`]. Lazily grown.
    series: Vec<RateSeries>,
}

impl PortStats {
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, idx: usize) -> &mut RateSeries {
        if idx >= self.series.len() {
            self.series.resize_with(idx + 1, RateSeries::new);
        }
        &mut self.series[idx]
    }

    /// Attribute `bytes` moved across `dl` uniformly over `[start, end)`.
    pub fn record(&mut self, dl: DirLink, start: SimTime, end: SimTime, bytes: f64) {
        self.ensure(dl.dense_index()).record(start, end, bytes);
    }

    /// Total bytes ever moved across `dl`.
    pub fn total_bytes(&self, dl: DirLink) -> f64 {
        self.series
            .get(dl.dense_index())
            .map_or(0.0, RateSeries::total_bytes)
    }

    /// Bytes moved across `dl` within `[from, to)`.
    pub fn bytes_within(&self, dl: DirLink, from: SimTime, to: SimTime) -> f64 {
        self.series
            .get(dl.dense_index())
            .map_or(0.0, |s| s.bytes_within(from, to))
    }

    /// Mean rate over `[from, to)` summed across a set of directed links —
    /// e.g. "all ingress+egress ports of the Falcon-attached GPUs", which
    /// is exactly the paper's Fig 12 quantity.
    pub fn aggregate_rate(&self, links: &[DirLink], from: SimTime, to: SimTime) -> f64 {
        links
            .iter()
            .map(|dl| {
                self.series
                    .get(dl.dense_index())
                    .map_or(0.0, |s| s.mean_rate(from, to))
            })
            .sum()
    }

    /// Per-bucket aggregate rate trace across a set of directed links.
    pub fn aggregate_trace(
        &self,
        links: &[DirLink],
        from: SimTime,
        to: SimTime,
        bucket: desim::Dur,
    ) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        for dl in links {
            if let Some(s) = self.series.get(dl.dense_index()) {
                let trace = s.trace(from, to, bucket);
                if out.is_empty() {
                    out = trace;
                } else {
                    for (acc, v) in out.iter_mut().zip(trace) {
                        *acc += v;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkId;
    use desim::Dur;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn records_and_totals() {
        let mut p = PortStats::new();
        let dl = DirLink::forward(LinkId(2));
        p.record(dl, t(0), t(10), 100.0);
        assert_eq!(p.total_bytes(dl), 100.0);
        assert_eq!(p.total_bytes(DirLink::reverse(LinkId(2))), 0.0);
        assert!((p.bytes_within(dl, t(0), t(5)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_rate_sums_directions() {
        let mut p = PortStats::new();
        let f = DirLink::forward(LinkId(0));
        let r = DirLink::reverse(LinkId(0));
        p.record(f, t(0), t(10), 100.0);
        p.record(r, t(0), t(10), 50.0);
        let rate = p.aggregate_rate(&[f, r], t(0), t(10));
        assert!((rate - 150.0 / 10e-6).abs() < 1.0);
    }

    #[test]
    fn aggregate_trace_shapes() {
        let mut p = PortStats::new();
        let f = DirLink::forward(LinkId(0));
        p.record(f, t(0), t(10), 100.0);
        let tr = p.aggregate_trace(&[f], t(0), t(20), Dur::from_micros(10));
        assert_eq!(tr.len(), 2);
        assert!(tr[0] > 0.0);
        assert_eq!(tr[1], 0.0);
    }

    #[test]
    fn unknown_link_is_zero() {
        let p = PortStats::new();
        assert_eq!(p.total_bytes(DirLink::forward(LinkId(99))), 0.0);
    }
}
