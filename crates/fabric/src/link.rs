//! Link classes and their performance envelopes.
//!
//! Raw signalling rates come from the respective specs; the *effective*
//! envelope applies a protocol-efficiency factor calibrated so that the
//! simulated point-to-point microbenchmarks reproduce the paper's
//! **Table IV** (L-L 72.37 GB/s bidirectional over NVLink, F-L 19.64 GB/s
//! and F-F 24.47 GB/s over PCIe 4.0, with p2p write latencies of
//! 1.85/2.66/2.08 µs). Fig 5's communication-requirements table is also
//! rendered from these classes.

use crate::GB;
use desim::Dur;
use std::fmt;

/// The physical class of an interconnect link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// PCI Express Gen3 ×16 (≈ 15.75 GB/s raw per direction).
    PcieGen3x16,
    /// PCI Express Gen4 ×16 (≈ 31.5 GB/s raw per direction) — the Falcon
    /// 4016 fabric and host-adapter links.
    PcieGen4x16,
    /// PCI Express Gen4 ×8.
    PcieGen4x8,
    /// PCI Express Gen4 ×4 — NVMe device links.
    PcieGen4x4,
    /// PCIe Gen3 ×4 — the locally attached NVMe in the Supermicro host.
    PcieGen3x4,
    /// Second-generation NVLink; `lanes` individual 25 GB/s-per-direction
    /// bricks bonded between a GPU pair (the hybrid cube mesh uses 1 or 2).
    NvLink2 { lanes: u8 },
    /// The 400 Gb/s CDFP cable between a Falcon host port and the host
    /// adapter (PCIe Gen4 ×16 semantics at the transaction layer).
    Cdfp400,
    /// CPU socket interconnect (UPI) between the two Xeons of a host.
    Upi,
    /// Memory channel aggregate between a CPU and its DRAM.
    MemoryBus,
    /// SATA-class storage link (the "local storage" baseline).
    Sata3,
    /// 10 GbE NIC link.
    TenGbE,
}

impl LinkClass {
    /// Raw (signalling) bandwidth per direction, bytes/s.
    pub fn raw_bandwidth(self) -> f64 {
        match self {
            LinkClass::PcieGen3x16 => 15.75 * GB,
            LinkClass::PcieGen4x16 => 31.5 * GB,
            LinkClass::PcieGen4x8 => 15.75 * GB,
            LinkClass::PcieGen4x4 => 7.88 * GB,
            LinkClass::PcieGen3x4 => 3.94 * GB,
            LinkClass::NvLink2 { lanes } => 25.0 * GB * f64::from(lanes),
            LinkClass::Cdfp400 => 31.5 * GB, // x16 Gen4 host adapter behind 400 Gb/s cable
            LinkClass::Upi => 20.8 * GB,
            LinkClass::MemoryBus => 128.0 * GB,
            LinkClass::Sata3 => 0.6 * GB,
            LinkClass::TenGbE => 1.25 * GB,
        }
    }

    /// Default protocol efficiency (fraction of raw bandwidth achievable by
    /// large DMA transfers). PCIe loses TLP/DLLP framing overhead; peer-to-
    /// peer through a root complex is notoriously inefficient, which the
    /// `devices` catalog captures with a further path factor.
    pub fn default_efficiency(self) -> f64 {
        match self {
            LinkClass::PcieGen3x16
            | LinkClass::PcieGen4x16
            | LinkClass::PcieGen4x8
            | LinkClass::PcieGen4x4
            | LinkClass::PcieGen3x4
            | LinkClass::Cdfp400 => 0.85,
            // Calibrated so a 2-lane pair reproduces Table IV's measured
            // 72.37 GB/s bidirectional (36.2 GB/s per direction of 50 raw).
            LinkClass::NvLink2 { .. } => 0.72,
            LinkClass::Upi => 0.9,
            LinkClass::MemoryBus => 0.8,
            LinkClass::Sata3 => 0.9,
            LinkClass::TenGbE => 0.94,
        }
    }

    /// One-way propagation + serialization latency contribution of a link
    /// of this class (switch/endpoint forwarding latency is modeled on the
    /// node, not here).
    pub fn latency(self) -> Dur {
        match self {
            LinkClass::PcieGen3x16
            | LinkClass::PcieGen4x16
            | LinkClass::PcieGen4x8
            | LinkClass::PcieGen4x4
            | LinkClass::PcieGen3x4 => Dur::from_nanos(250),
            LinkClass::Cdfp400 => Dur::from_nanos(350), // longer cable run
            LinkClass::NvLink2 { .. } => Dur::from_nanos(700),
            LinkClass::Upi => Dur::from_nanos(120),
            LinkClass::MemoryBus => Dur::from_nanos(90),
            LinkClass::Sata3 => Dur::from_micros(80),
            LinkClass::TenGbE => Dur::from_micros(10),
        }
    }

    /// Human-readable protocol name (Table IV's "Link Protocol" row).
    pub fn protocol_name(self) -> &'static str {
        match self {
            LinkClass::PcieGen3x16 | LinkClass::PcieGen3x4 => "PCI-e 3.0",
            LinkClass::PcieGen4x16
            | LinkClass::PcieGen4x8
            | LinkClass::PcieGen4x4
            | LinkClass::Cdfp400 => "PCI-e 4.0",
            LinkClass::NvLink2 { .. } => "NVLink",
            LinkClass::Upi => "UPI",
            LinkClass::MemoryBus => "DDR4",
            LinkClass::Sata3 => "SATA 3",
            LinkClass::TenGbE => "10GbE",
        }
    }
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkClass::NvLink2 { lanes } => write!(f, "NVLink2x{lanes}"),
            other => write!(f, "{}", other.protocol_name()),
        }
    }
}

/// A fully resolved link: effective per-direction capacity and latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    pub class: LinkClass,
    /// Effective capacity per direction, bytes/s.
    pub capacity: f64,
    /// One-way latency contribution.
    pub latency: Dur,
}

impl LinkSpec {
    /// A spec with the class's default efficiency and latency.
    pub fn of(class: LinkClass) -> LinkSpec {
        LinkSpec {
            class,
            capacity: class.raw_bandwidth() * class.default_efficiency(),
            latency: class.latency(),
        }
    }

    /// Scale the effective capacity (calibration hook).
    pub fn with_efficiency(class: LinkClass, efficiency: f64) -> LinkSpec {
        assert!(efficiency > 0.0 && efficiency <= 1.0);
        LinkSpec {
            class,
            capacity: class.raw_bandwidth() * efficiency,
            latency: class.latency(),
        }
    }

    pub fn with_latency(mut self, latency: Dur) -> LinkSpec {
        self.latency = latency;
        self
    }

    pub fn with_capacity(mut self, capacity: f64) -> LinkSpec {
        assert!(capacity > 0.0);
        self.capacity = capacity;
        self
    }
}

/// One row of the paper's Fig 5 "Communications Requirements" table.
#[derive(Debug, Clone, Copy)]
pub struct CommsRequirement {
    pub path: &'static str,
    pub latency_low: Dur,
    pub latency_high: Dur,
    pub bandwidth_low_gbps: f64,
    pub bandwidth_high_gbps: f64,
    pub link_length: &'static str,
}

/// The survey table the paper reproduces from [Papaioannou et al. 2016]
/// (Fig 5): how latency and bandwidth requirements tier from CPU-CPU to
/// CPU-disk paths.
pub fn comms_requirements() -> Vec<CommsRequirement> {
    vec![
        CommsRequirement {
            path: "CPU - CPU",
            latency_low: Dur::from_nanos(10),
            latency_high: Dur::from_nanos(10),
            bandwidth_low_gbps: 200.0,
            bandwidth_high_gbps: 320.0,
            link_length: "0.1 - 1 m",
        },
        CommsRequirement {
            path: "CPU - Memory",
            latency_low: Dur::from_nanos(10),
            latency_high: Dur::from_nanos(50),
            bandwidth_low_gbps: 300.0,
            bandwidth_high_gbps: 800.0,
            link_length: "1 - 5 m",
        },
        CommsRequirement {
            path: "CPU - Disk",
            latency_low: Dur::from_micros(1),
            latency_high: Dur::from_micros(10),
            bandwidth_low_gbps: 5.0,
            bandwidth_high_gbps: 128.0,
            link_length: "5 m - 1 km",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_bandwidths_match_specs() {
        assert!((LinkClass::PcieGen4x16.raw_bandwidth() - 31.5 * GB).abs() < 1e6);
        assert!((LinkClass::PcieGen3x16.raw_bandwidth() - 15.75 * GB).abs() < 1e6);
        assert!(
            (LinkClass::NvLink2 { lanes: 2 }.raw_bandwidth() - 50.0 * GB).abs() < 1e6,
            "two NVLink bricks = 50 GB/s per direction"
        );
    }

    #[test]
    fn effective_capacity_below_raw() {
        for class in [
            LinkClass::PcieGen4x16,
            LinkClass::NvLink2 { lanes: 2 },
            LinkClass::Sata3,
            LinkClass::MemoryBus,
        ] {
            let spec = LinkSpec::of(class);
            assert!(spec.capacity < class.raw_bandwidth());
            assert!(spec.capacity > 0.5 * class.raw_bandwidth());
        }
    }

    #[test]
    fn efficiency_override() {
        let spec = LinkSpec::with_efficiency(LinkClass::PcieGen4x16, 0.5);
        assert!((spec.capacity - 15.75 * GB).abs() < 1e6);
    }

    #[test]
    #[should_panic]
    fn zero_efficiency_rejected() {
        let _ = LinkSpec::with_efficiency(LinkClass::PcieGen4x16, 0.0);
    }

    #[test]
    fn protocol_names_match_table_iv_vocabulary() {
        assert_eq!(LinkClass::PcieGen4x16.protocol_name(), "PCI-e 4.0");
        assert_eq!(LinkClass::NvLink2 { lanes: 2 }.protocol_name(), "NVLink");
    }

    #[test]
    fn comms_requirements_tier_correctly() {
        let rows = comms_requirements();
        assert_eq!(rows.len(), 3);
        // Latency increases 5x-100x moving from CPU-CPU to CPU-disk (paper §IV).
        assert!(rows[2].latency_low >= rows[0].latency_high * 5);
        // Bandwidth per device decreases.
        assert!(rows[2].bandwidth_low_gbps < rows[0].bandwidth_low_gbps);
    }

    #[test]
    fn storage_links_are_slow_and_laggy() {
        assert!(LinkClass::Sata3.raw_bandwidth() < LinkClass::PcieGen3x4.raw_bandwidth());
        assert!(LinkClass::Sata3.latency() > LinkClass::PcieGen4x4.latency());
    }
}
