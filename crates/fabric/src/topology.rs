//! The interconnect graph and deterministic routing.
//!
//! Nodes are PCIe endpoints and forwarding elements (CPUs/root complexes,
//! PCIe switches, GPUs, NVMe drives, …); undirected links carry a
//! [`LinkSpec`] per direction. Routing is Dijkstra over link + node
//! forwarding latency with deterministic tie-breaking, cached per
//! `(src, dst)` pair.

use crate::link::LinkSpec;
use desim::Dur;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of an undirected link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Direction of travel over an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// From endpoint `a` to endpoint `b`.
    Forward,
    /// From endpoint `b` to endpoint `a`.
    Reverse,
}

/// A directed traversal of a link — the unit of bandwidth contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirLink {
    pub link: LinkId,
    pub dir: Dir,
}

impl DirLink {
    pub fn forward(link: LinkId) -> DirLink {
        DirLink {
            link,
            dir: Dir::Forward,
        }
    }
    pub fn reverse(link: LinkId) -> DirLink {
        DirLink {
            link,
            dir: Dir::Reverse,
        }
    }
    /// A compact dense index (2·link + dir) for per-direction bookkeeping.
    pub fn dense_index(self) -> usize {
        (self.link.0 as usize) * 2
            + match self.dir {
                Dir::Forward => 0,
                Dir::Reverse => 1,
            }
    }
}

/// What a node *is*, which determines its forwarding latency and how
/// higher layers (devices, falcon) interpret it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A CPU socket / PCIe root complex.
    RootComplex,
    /// A PCIe switch ASIC (one per Falcon drawer).
    PcieSwitch,
    /// A GPU endpoint.
    Gpu,
    /// An NVMe (or SATA) storage endpoint.
    Storage,
    /// A network interface card.
    Nic,
    /// A DRAM pool attached to a root complex.
    Memory,
    /// A Falcon host-port adapter (the CDFP cable termination).
    HostAdapter,
    /// A device's own bus interface (DMA engine). Device models are built
    /// as a `core —internal link→ port` pair so that the copy-engine rate
    /// bounds every PCIe flow in or out of the device.
    DevicePort,
}

/// P2P efficiency of a root complex forwarding between two CDFP cables —
/// i.e. peer DMA crossing *two* PCIe switch domains through the Xeon IIO.
/// Calibrated so that the cross-drawer allreduce ring edges of the
/// `falconGPUs` configuration make BERT-large training ≈ 2× slower than
/// local GPUs while keeping the single-domain Table IV paths intact.
pub const CROSS_DOMAIN_RC_EFFICIENCY: f64 = 0.59;

impl NodeKind {
    /// Forwarding latency added when a path passes *through* this node
    /// (not when the node is the source or destination endpoint).
    ///
    /// Values are calibrated jointly with
    /// [`crate::microbench::P2P_SOFTWARE_OVERHEAD`] so the simulated
    /// latencies reproduce the paper's Table IV (L-L 1.85 µs, F-L 2.66 µs,
    /// F-F 2.08 µs).
    pub fn forwarding_latency(self) -> Dur {
        match self {
            // P2P through a root complex traverses the Xeon IIO.
            NodeKind::RootComplex => Dur::from_nanos(400),
            NodeKind::PcieSwitch => Dur::from_nanos(350),
            NodeKind::HostAdapter => Dur::from_nanos(150),
            NodeKind::DevicePort => Dur::ZERO,
            // Endpoints normally terminate paths; if traversed, charge a
            // conservative store-and-forward cost.
            NodeKind::Gpu | NodeKind::Storage | NodeKind::Nic | NodeKind::Memory => {
                Dur::from_nanos(500)
            }
        }
    }

    /// Peer-to-peer DMA efficiency multiplier applied to flows whose route
    /// passes *through* a node of this kind. P2P through a Xeon root
    /// complex or a PCIe switch achieves a fraction of the link's DMA
    /// bandwidth — these factors are what make the paper's Table IV
    /// bandwidths (F-L 19.64 GB/s, F-F 24.47 GB/s bidirectional) come out
    /// of the flow simulation.
    pub fn p2p_efficiency(self) -> f64 {
        match self {
            NodeKind::RootComplex => 0.80,
            NodeKind::PcieSwitch => 0.92,
            NodeKind::HostAdapter => 0.98,
            NodeKind::DevicePort => 1.0,
            _ => 1.0,
        }
    }
}

/// A node in the fabric.
#[derive(Debug, Clone)]
pub struct Node {
    pub name: String,
    pub kind: NodeKind,
}

/// An undirected link between two nodes.
#[derive(Debug, Clone)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
    pub spec: LinkSpec,
}

impl Link {
    /// The node this directed traversal arrives at.
    pub fn dst(&self, dir: Dir) -> NodeId {
        match dir {
            Dir::Forward => self.b,
            Dir::Reverse => self.a,
        }
    }
    /// The node this directed traversal departs from.
    pub fn src(&self, dir: Dir) -> NodeId {
        match dir {
            Dir::Forward => self.a,
            Dir::Reverse => self.b,
        }
    }
}

/// A resolved route: the directed links crossed, the one-way message
/// latency, and the bottleneck capacity after P2P efficiency discounts.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    pub src: NodeId,
    pub dst: NodeId,
    pub hops: Vec<DirLink>,
    /// One-way latency: link latencies + forwarding latency of transit nodes.
    pub latency: Dur,
    /// Multiplier (≤ 1) from the p2p efficiency of transit nodes; applied
    /// to the flow's achievable rate on this route.
    pub path_efficiency: f64,
}

impl Route {
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }
}

/// The interconnect graph.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[node] = (link, dir leaving node)
    adjacency: Vec<Vec<DirLink>>,
    route_cache: HashMap<(NodeId, NodeId), Arc<Route>>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(Node {
            name: name.into(),
            kind,
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Connect two distinct nodes. Multiple parallel links are allowed
    /// (they are distinct contention domains).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> LinkId {
        assert!(a != b, "self-links are not meaningful");
        assert!((a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len());
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(Link { a, b, spec });
        self.adjacency[a.0 as usize].push(DirLink::forward(id));
        self.adjacency[b.0 as usize].push(DirLink::reverse(id));
        self.route_cache.clear();
        id
    }

    /// Remove a link (dynamic re-composition). Link ids are stable; the
    /// removed id becomes invalid.
    pub fn remove_link(&mut self, id: LinkId) -> Link {
        let link = self.links[id.0 as usize].clone();
        self.adjacency[link.a.0 as usize].retain(|dl| dl.link != id);
        self.adjacency[link.b.0 as usize].retain(|dl| dl.link != id);
        // Tombstone: keep the slot but disconnect it (capacity stays for
        // inspection; routing can no longer reach it).
        self.route_cache.clear();
        link
    }

    /// Scale a link's effective capacity in place (both directions) — the
    /// hook for fault injection's PCIe link degradation. The flow
    /// allocator reads capacities live on every recompute, so in-flight
    /// transfers are re-shared at the next reschedule. Routing is
    /// latency-keyed and unaffected, so the route cache stays valid.
    pub fn scale_link_capacity(&mut self, id: LinkId, factor: f64) {
        assert!(factor > 0.0, "a degraded link keeps some bandwidth");
        self.links[id.0 as usize].spec.capacity *= factor;
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Find a node by exact name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// All links incident to `node` of a given class predicate.
    pub fn links_of(&self, node: NodeId) -> &[DirLink] {
        &self.adjacency[node.0 as usize]
    }

    /// Effective per-direction capacity of a directed link.
    pub fn capacity(&self, dl: DirLink) -> f64 {
        self.links[dl.link.0 as usize].spec.capacity
    }

    /// Route `src → dst` by Dijkstra on latency (deterministic: ties broken
    /// by hop count, then by link id). Results are cached until the
    /// topology changes. Returns `None` when disconnected.
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Arc<Route>> {
        if let Some(r) = self.route_cache.get(&(src, dst)) {
            return Some(Arc::clone(r));
        }
        let route = Arc::new(self.compute_route(src, dst)?);
        self.route_cache
            .insert((src, dst), Arc::clone(&route));
        Some(route)
    }

    fn compute_route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if src == dst {
            return Some(Route {
                src,
                dst,
                hops: Vec::new(),
                latency: Dur::ZERO,
                path_efficiency: 1.0,
            });
        }

        let n = self.nodes.len();
        // (latency_ns, hops) lexicographic cost.
        let mut best: Vec<(u64, u32)> = vec![(u64::MAX, u32::MAX); n];
        let mut prev: Vec<Option<DirLink>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        best[src.0 as usize] = (0, 0);
        heap.push(Reverse(((0u64, 0u32), src)));

        while let Some(Reverse((cost, node))) = heap.pop() {
            if cost > best[node.0 as usize] {
                continue;
            }
            if node == dst {
                break;
            }
            // Transit penalty: charged for leaving a non-endpoint node we
            // passed through (not the source itself).
            let transit_ns = if node == src {
                0
            } else {
                self.nodes[node.0 as usize].kind.forwarding_latency().as_nanos()
            };
            for &dl in &self.adjacency[node.0 as usize] {
                let link = &self.links[dl.link.0 as usize];
                let next = link.dst(dl.dir);
                let cand = (
                    cost.0 + transit_ns + link.spec.latency.as_nanos(),
                    cost.1 + 1,
                );
                if cand < best[next.0 as usize] {
                    best[next.0 as usize] = cand;
                    prev[next.0 as usize] = Some(dl);
                    heap.push(Reverse((cand, next)));
                }
            }
        }

        if best[dst.0 as usize].0 == u64::MAX {
            return None;
        }

        // Reconstruct.
        let mut hops = Vec::new();
        let mut cursor = dst;
        while cursor != src {
            let dl = prev[cursor.0 as usize].expect("broken predecessor chain");
            hops.push(dl);
            cursor = self.links[dl.link.0 as usize].src(dl.dir);
        }
        hops.reverse();

        // Path efficiency: product over transit nodes. A root complex
        // forwarding between two CDFP host-port cables (device P2P across
        // two PCIe switch domains, e.g. Falcon drawer → host → Falcon
        // drawer) pays the harsher cross-domain penalty: the Xeon IIO must
        // bounce TLPs across separate root ports, which measures far below
        // single-domain P2P on real hardware.
        // Host-initiated DMA (a route terminating at a DRAM pool or the
        // root complex itself) runs at the root port's native rate; only
        // true device peer-to-peer pays the IIO forwarding penalties.
        let host_dma = matches!(
            self.nodes[src.0 as usize].kind,
            NodeKind::Memory | NodeKind::RootComplex
        ) || matches!(
            self.nodes[dst.0 as usize].kind,
            NodeKind::Memory | NodeKind::RootComplex
        );
        let mut path_efficiency = 1.0;
        let mut node = src;
        for (i, &dl) in hops.iter().enumerate() {
            if i > 0 {
                let kind = self.nodes[node.0 as usize].kind;
                let incoming = self.links[hops[i - 1].link.0 as usize].spec.class;
                let outgoing = self.links[dl.link.0 as usize].spec.class;
                let eff = if kind == NodeKind::RootComplex && host_dma {
                    1.0
                } else if kind == NodeKind::RootComplex
                    && incoming == crate::link::LinkClass::Cdfp400
                    && outgoing == crate::link::LinkClass::Cdfp400
                {
                    CROSS_DOMAIN_RC_EFFICIENCY
                } else {
                    kind.p2p_efficiency()
                };
                path_efficiency *= eff;
            }
            node = self.links[dl.link.0 as usize].dst(dl.dir);
        }

        Some(Route {
            src,
            dst,
            hops,
            latency: Dur::from_nanos(best[dst.0 as usize].0),
            path_efficiency,
        })
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "topology: {} nodes, {} links", self.nodes.len(), self.links.len())?;
        for (id, l) in self.links.iter().enumerate() {
            writeln!(
                f,
                "  L{id}: {} <-> {} [{} {:.1} GB/s/dir {}]",
                self.nodes[l.a.0 as usize].name,
                self.nodes[l.b.0 as usize].name,
                l.spec.class,
                l.spec.capacity / crate::GB,
                l.spec.latency,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn spec() -> LinkSpec {
        LinkSpec::of(LinkClass::PcieGen4x16)
    }

    /// host — switch — {gpu0, gpu1}
    fn small_tree() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let host = t.add_node("host", NodeKind::RootComplex);
        let sw = t.add_node("sw", NodeKind::PcieSwitch);
        let g0 = t.add_node("gpu0", NodeKind::Gpu);
        let g1 = t.add_node("gpu1", NodeKind::Gpu);
        t.add_link(host, sw, spec());
        t.add_link(sw, g0, spec());
        t.add_link(sw, g1, spec());
        (t, host, sw, g0, g1)
    }

    #[test]
    fn routes_through_switch() {
        let (mut t, host, _sw, g0, g1) = small_tree();
        let r = t.route(g0, g1).unwrap();
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.src, g0);
        assert_eq!(r.dst, g1);
        let r2 = t.route(host, g0).unwrap();
        assert_eq!(r2.hop_count(), 2);
    }

    #[test]
    fn route_latency_includes_transit_forwarding() {
        let (mut t, _h, _sw, g0, g1) = small_tree();
        let r = t.route(g0, g1).unwrap();
        let link_lat = spec().latency * 2u64;
        let fwd = NodeKind::PcieSwitch.forwarding_latency();
        assert_eq!(r.latency, link_lat + fwd);
    }

    #[test]
    fn path_efficiency_penalizes_root_complex_transit() {
        let mut t = Topology::new();
        let g0 = t.add_node("g0", NodeKind::Gpu);
        let host = t.add_node("host", NodeKind::RootComplex);
        let g1 = t.add_node("g1", NodeKind::Gpu);
        t.add_link(g0, host, spec());
        t.add_link(host, g1, spec());
        let r = t.route(g0, g1).unwrap();
        assert!((r.path_efficiency - NodeKind::RootComplex.p2p_efficiency()).abs() < 1e-12);
    }

    #[test]
    fn trivial_route_is_empty() {
        let (mut t, host, ..) = small_tree();
        let r = t.route(host, host).unwrap();
        assert!(r.hops.is_empty());
        assert_eq!(r.latency, Dur::ZERO);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Gpu);
        let b = t.add_node("b", NodeKind::Gpu);
        assert!(t.route(a, b).is_none());
    }

    #[test]
    fn prefers_lower_latency_path() {
        // a - sw - b  (fast, 2 hops) versus a - c - b via slow NVLink? Use
        // two parallel paths with different latency and check choice.
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Gpu);
        let b = t.add_node("b", NodeKind::Gpu);
        let sw = t.add_node("sw", NodeKind::PcieSwitch);
        // Direct link, slow class.
        let slow = LinkSpec::of(LinkClass::Sata3); // 80us latency
        t.add_link(a, b, slow);
        t.add_link(a, sw, spec());
        t.add_link(sw, b, spec());
        let r = t.route(a, b).unwrap();
        assert_eq!(r.hop_count(), 2, "two fast hops beat one slow hop");
    }

    #[test]
    fn direct_nvlink_beats_switch_path() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Gpu);
        let b = t.add_node("b", NodeKind::Gpu);
        let sw = t.add_node("sw", NodeKind::PcieSwitch);
        t.add_link(a, sw, spec());
        t.add_link(sw, b, spec());
        let nv = t.add_link(a, b, LinkSpec::of(LinkClass::NvLink2 { lanes: 2 }));
        let r = t.route(a, b).unwrap();
        assert_eq!(r.hops, vec![DirLink::forward(nv)]);
    }

    #[test]
    fn remove_link_invalidates_path() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Gpu);
        let b = t.add_node("b", NodeKind::Gpu);
        let l = t.add_link(a, b, spec());
        assert!(t.route(a, b).is_some());
        t.remove_link(l);
        assert!(t.route(a, b).is_none(), "cache must be invalidated");
    }

    #[test]
    fn route_cache_returns_same_route() {
        let (mut t, _h, _sw, g0, g1) = small_tree();
        let r1 = t.route(g0, g1).unwrap();
        let r2 = t.route(g0, g1).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2));
    }

    #[test]
    fn find_node_by_name() {
        let (t, _h, _sw, g0, _g1) = small_tree();
        assert_eq!(t.find_node("gpu0"), Some(g0));
        assert_eq!(t.find_node("nope"), None);
    }

    #[test]
    fn dense_index_is_unique_per_direction() {
        let f = DirLink::forward(LinkId(3));
        let r = DirLink::reverse(LinkId(3));
        assert_ne!(f.dense_index(), r.dense_index());
        assert_eq!(f.dense_index(), 6);
        assert_eq!(r.dense_index(), 7);
    }
}
