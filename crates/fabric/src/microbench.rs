//! Point-to-point fabric microbenchmarks.
//!
//! Reproduces the methodology behind the paper's **Table IV**: for a pair
//! of GPUs, measure the peer-to-peer write latency and the bidirectional
//! bandwidth. The bandwidth probe runs two large opposing flows through the
//! actual flow simulator (so any contention/efficiency effect of the route
//! is captured); the latency probe reports the route's one-way latency plus
//! a fixed software overhead representing the CUDA p2p doorbell/driver
//! path, which is what `p2pBandwidthLatencyTest` actually times.

use crate::flow::{FabricState, FlowTag, FlowWorld};
use crate::topology::{NodeId, Topology};
use desim::{Dur, Sim, SimTime};

/// Software overhead of a p2p write as seen by the CUDA latency test
/// (driver + doorbell + completion polling). Calibrated so that the L-L
/// NVLink path reproduces Table IV's 1.85 µs.
pub const P2P_SOFTWARE_OVERHEAD: Dur = Dur::from_nanos(1150);

/// Result of a point-to-point probe between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2pResult {
    /// One-way small-write latency (Table IV "P2P Write Latency").
    pub latency: Dur,
    /// Unidirectional achievable bandwidth, bytes/s.
    pub unidir_bandwidth: f64,
    /// Bidirectional achievable bandwidth (both directions simultaneously),
    /// bytes/s (Table IV "Bidirectional Bandwidth").
    pub bidir_bandwidth: f64,
}

/// A minimal self-contained world for probing a topology.
struct ProbeWorld {
    fabric: FabricState<ProbeWorld>,
    completions: u32,
}

impl FlowWorld for ProbeWorld {
    fn fabric(&mut self) -> &mut FabricState<ProbeWorld> {
        &mut self.fabric
    }
}

fn run_flows(topo: &Topology, transfers: &[(NodeId, NodeId, f64)]) -> Dur {
    let mut world = ProbeWorld {
        fabric: FabricState::new(topo.clone()),
        completions: 0,
    };
    let mut sim: Sim<ProbeWorld> = Sim::new();
    for &(src, dst, bytes) in transfers {
        world.fabric.start_flow(
            &mut sim,
            src,
            dst,
            bytes,
            FlowTag::UNTAGGED,
            Box::new(|w: &mut ProbeWorld, _| w.completions += 1),
        );
    }
    sim.run(&mut world);
    assert_eq!(world.completions as usize, transfers.len());
    sim.now() - SimTime::ZERO
}

/// Probe the pair `(a, b)` on `topo`.
///
/// `probe_bytes` is the per-direction transfer size for the bandwidth
/// measurement; large values (≥ 1 GB) amortize the latency phase as the
/// real benchmark does.
pub fn p2p_probe(topo: &Topology, a: NodeId, b: NodeId, probe_bytes: f64) -> P2pResult {
    assert!(probe_bytes > 0.0);
    let mut routing = topo.clone();
    let route = routing
        .route(a, b)
        .unwrap_or_else(|| panic!("no route between probe endpoints"));
    let latency = route.latency + P2P_SOFTWARE_OVERHEAD;

    let uni = run_flows(topo, &[(a, b, probe_bytes)]);
    let unidir_bandwidth = probe_bytes / uni.as_secs_f64();

    let bidi = run_flows(topo, &[(a, b, probe_bytes), (b, a, probe_bytes)]);
    let bidir_bandwidth = 2.0 * probe_bytes / bidi.as_secs_f64();

    P2pResult {
        latency,
        unidir_bandwidth,
        bidir_bandwidth,
    }
}

/// Measure the aggregate throughput of an arbitrary set of simultaneous
/// transfers (useful for contention studies and tests): returns
/// (makespan, aggregate bytes/s).
pub fn contention_probe(topo: &Topology, transfers: &[(NodeId, NodeId, f64)]) -> (Dur, f64) {
    let total: f64 = transfers.iter().map(|t| t.2).sum();
    let makespan = run_flows(topo, transfers);
    (makespan, total / makespan.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkClass, LinkSpec};
    use crate::topology::NodeKind;
    use crate::GB;

    /// Two GPUs (core+port pairs) on one PCIe switch: the F-F path shape.
    fn ff_topology() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let sw = t.add_node("drawer-sw", NodeKind::PcieSwitch);
        let gpu = |t: &mut Topology, name: &str| {
            let core = t.add_node(format!("{name}.core"), NodeKind::Gpu);
            let port = t.add_node(format!("{name}.port"), NodeKind::DevicePort);
            t.add_link(
                core,
                port,
                LinkSpec::of(LinkClass::PcieGen4x16)
                    .with_capacity(13.3 * GB)
                    .with_latency(Dur::ZERO),
            );
            t.add_link(port, sw, LinkSpec::of(LinkClass::PcieGen4x16));
            core
        };
        let a = gpu(&mut t, "gpu0");
        let b = gpu(&mut t, "gpu1");
        (t, a, b)
    }

    #[test]
    fn ff_pair_bandwidth_near_table_iv() {
        let (t, a, b) = ff_topology();
        let r = p2p_probe(&t, a, b, 4.0 * GB);
        // Table IV: F-F bidirectional 24.47 GB/s. DMA engine 13.3 GB/s ×
        // switch p2p efficiency 0.92 ≈ 12.24 per direction.
        let gbs = r.bidir_bandwidth / GB;
        assert!((gbs - 24.47).abs() < 1.0, "F-F bidir {gbs} GB/s");
        let uni = r.unidir_bandwidth / GB;
        assert!((uni - 12.24).abs() < 0.5, "F-F unidir {uni} GB/s");
    }

    #[test]
    fn ff_latency_near_table_iv() {
        let (t, a, b) = ff_topology();
        let r = p2p_probe(&t, a, b, 1.0 * GB);
        let us = r.latency.as_micros_f64();
        // Table IV: 2.08 us.
        assert!((us - 2.08).abs() < 0.15, "F-F latency {us} us");
    }

    #[test]
    fn nvlink_pair_bandwidth_near_table_iv() {
        let mut t = Topology::new();
        let a = t.add_node("g0", NodeKind::Gpu);
        let b = t.add_node("g1", NodeKind::Gpu);
        t.add_link(a, b, LinkSpec::of(LinkClass::NvLink2 { lanes: 2 }));
        let r = p2p_probe(&t, a, b, 8.0 * GB);
        let gbs = r.bidir_bandwidth / GB;
        // Table IV: L-L bidirectional 72.37 GB/s.
        assert!((gbs - 72.37).abs() < 2.0, "L-L bidir {gbs} GB/s");
        let us = r.latency.as_micros_f64();
        assert!((us - 1.85).abs() < 0.1, "L-L latency {us} us");
    }

    #[test]
    fn contention_probe_halves_per_flow_throughput() {
        let (t, a, b) = ff_topology();
        let (mk1, _) = contention_probe(&t, &[(a, b, 2.0 * GB)]);
        let (mk2, _) = contention_probe(&t, &[(a, b, 2.0 * GB), (a, b, 2.0 * GB)]);
        let ratio = mk2.as_secs_f64() / mk1.as_secs_f64();
        // Alone, the flow is ceiling-limited (13.3 GB/s DMA x 0.92 switch
        // p2p = 12.24 GB/s); sharing splits the 13.3 GB/s DMA link in half
        // (6.65 GB/s each), so the makespan grows by 2 x 12.24/13.3 = 1.84.
        let expected = 2.0 * (13.3 * 0.92) / 13.3;
        assert!((ratio - expected).abs() < 0.05, "sharing ratio {ratio} vs {expected}");
    }
}
