//! Fluid flow simulation with max-min fair bandwidth sharing.
//!
//! A [`Flow`] is a byte transfer along a routed path. While active, the set
//! of flows sharing each directed link divides its capacity by
//! **progressive filling** (water-filling): all unfrozen flows rise at the
//! same rate until a link saturates or a flow hits its route ceiling
//! (bottleneck link × peer-to-peer path efficiency); those flows freeze and
//! the rest keep rising. This yields the classic max-min fair allocation.
//!
//! Every flow start/finish/abort *settles* accumulated progress (also
//! attributing bytes to [`PortStats`]), recomputes the allocation, and
//! reschedules each flow's completion event — cancellable handles in
//! [`desim`] make this cheap.
//!
//! Flows begin with a latency phase equal to the route's one-way latency
//! (link propagation + switch/root-complex forwarding), so short transfers
//! are latency-bound and long transfers bandwidth-bound, matching the
//! paper's Table IV microbenchmark behavior.

use crate::ports::PortStats;
use crate::topology::{DirLink, NodeId, Route, Topology};
use desim::queue::EventHandle;
use desim::{Dur, Sim, SimTime};
use std::fmt;
use std::sync::Arc;

/// Handle to a flow; safe against slot reuse via a generation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    slot: u32,
    generation: u32,
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}.{}", self.slot, self.generation)
    }
}

/// User-assigned attribution tag (which subsystem produced the traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowTag(pub u64);

impl FlowTag {
    pub const UNTAGGED: FlowTag = FlowTag(0);
    pub const H2D: FlowTag = FlowTag(1);
    pub const D2H: FlowTag = FlowTag(2);
    pub const COLLECTIVE: FlowTag = FlowTag(3);
    pub const STORAGE: FlowTag = FlowTag(4);
    pub const CHECKPOINT: FlowTag = FlowTag(5);
}

/// Completion callback type.
pub type FlowCallback<S> = Box<dyn FnOnce(&mut S, &mut Sim<S>)>;

/// Worlds that embed a [`FabricState`] implement this so that flow events
/// can find it. (Events only know the world type `S`.)
pub trait FlowWorld: Sized + 'static {
    fn fabric(&mut self) -> &mut FabricState<Self>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting out the route latency.
    Latency,
    /// Fluid transfer in progress.
    Active,
}

struct FlowState<S> {
    route: Arc<Route>,
    remaining: f64,
    /// Current allocated rate (bytes/s); 0 while in the latency phase.
    rate: f64,
    phase: Phase,
    event: EventHandle,
    on_complete: Option<FlowCallback<S>>,
    tag: FlowTag,
    generation: u32,
}

/// The fabric: topology + active flows + port telemetry.
pub struct FabricState<S> {
    pub topo: Topology,
    pub ports: PortStats,
    /// When set (the default), a flow start/finish/abort re-prices only the
    /// connected component of flows sharing links with the change, found
    /// through [`FabricState::link_flows`]. Clearing it restores the
    /// PR-7 global recompute on every change — the bench baseline.
    pub incremental: bool,
    slots: Vec<Option<FlowState<S>>>,
    generations: Vec<u32>,
    free: Vec<u32>,
    last_settle: SimTime,
    active_count: usize,
    /// Reverse index: dense directed-link index → slots of *active* flows
    /// crossing it. Maintained on activate/complete/abort so that
    /// incremental repricing can walk the link-sharing graph without
    /// scanning every flow.
    link_flows: std::collections::HashMap<usize, Vec<u32>>,
    scratch: Scratch,
}

/// Reusable buffers for [`FabricState::recompute_and_reschedule`] — the
/// allocator runs on every flow start/finish/abort (the inner loop of
/// every probe and replay), so its working vectors and maps are hoisted
/// here and cleared per call instead of reallocated. Holding stale
/// contents between calls is fine: every field is rebuilt from scratch
/// (after `clear`) before it is read.
#[derive(Default)]
struct Scratch {
    active: Vec<u32>,
    ceiling: Vec<f64>,
    frozen: Vec<bool>,
    rate: Vec<f64>,
    residual: std::collections::HashMap<usize, (f64, u32)>,
    users: std::collections::HashMap<usize, Vec<usize>>,
    /// Component-walk state for incremental repricing.
    visited: Vec<bool>,
    link_stack: Vec<usize>,
    link_seen: std::collections::HashSet<usize>,
}

impl Scratch {
    fn clear(&mut self) {
        self.active.clear();
        self.ceiling.clear();
        self.frozen.clear();
        self.rate.clear();
        self.residual.clear();
        self.users.clear();
        self.visited.clear();
        self.link_stack.clear();
        self.link_seen.clear();
    }
}

/// Bytes/s below which a water-filling increment is considered zero.
const RATE_EPS: f64 = 1e-3;

impl<S: FlowWorld> FabricState<S> {
    pub fn new(topo: Topology) -> Self {
        FabricState {
            topo,
            ports: PortStats::new(),
            incremental: true,
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            last_settle: SimTime::ZERO,
            active_count: 0,
            link_flows: std::collections::HashMap::new(),
            scratch: Scratch::default(),
        }
    }

    /// Number of flows currently in flight (latency or active phase).
    pub fn flows_in_flight(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Attribution tag of an in-flight flow; `None` if finished.
    pub fn flow_tag(&self, id: FlowId) -> Option<FlowTag> {
        let s = self.slots.get(id.slot as usize)?.as_ref()?;
        (s.generation == id.generation).then_some(s.tag)
    }

    /// Current allocated rate of a flow (bytes/s); `None` if finished.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        let s = self.slots.get(id.slot as usize)?.as_ref()?;
        (s.generation == id.generation).then_some(s.rate)
    }

    /// Start a transfer of `bytes` from `src` to `dst`. `on_complete` fires
    /// (with the world and scheduler) when the last byte arrives.
    ///
    /// # Panics
    /// Panics if no route exists between the endpoints.
    pub fn start_flow(
        &mut self,
        sim: &mut Sim<S>,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: FlowTag,
        on_complete: FlowCallback<S>,
    ) -> FlowId {
        assert!(bytes >= 0.0 && bytes.is_finite());
        let route = self
            .topo
            .route(src, dst)
            .unwrap_or_else(|| panic!("no route {:?} -> {:?}", src, dst));
        let latency = route.latency;

        let slot = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.slots.len()).expect("flow slot overflow");
                self.slots.push(None);
                self.generations.push(0);
                idx
            }
        };
        let generation = self.generations[slot as usize];
        let id = FlowId { slot, generation };

        self.slots[slot as usize] = Some(FlowState {
            route,
            remaining: bytes,
            rate: 0.0,
            phase: Phase::Latency,
            event: EventHandle::DEAD,
            on_complete: Some(on_complete),
            tag,
            generation,
        });

        // After the latency phase the flow joins the fluid allocation. A
        // zero-byte (or zero-hop) flow completes right at that point.
        let handle = sim.schedule_in(latency, move |world: &mut S, sim| {
            Self::on_activate(world, sim, id);
        });
        self.slots[slot as usize].as_mut().unwrap().event = handle;
        id
    }

    /// Abort an in-flight flow. Returns `true` if it was still in flight;
    /// its completion callback is dropped unfired.
    pub fn abort_flow(&mut self, sim: &mut Sim<S>, id: FlowId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.settle(sim.now());
        let state = self.slots[id.slot as usize].take().expect("checked live");
        sim.cancel(state.event);
        if state.phase == Phase::Active {
            self.active_count -= 1;
            self.index_remove(id.slot, &state.route);
        }
        self.retire_slot(id.slot);
        self.reprice_component(sim, None, &state.route.hops);
        true
    }

    /// Register an active flow's links in the reverse index.
    fn index_add(&mut self, slot: u32, route: &Route) {
        for dl in &route.hops {
            self.link_flows
                .entry(dl.dense_index())
                .or_default()
                .push(slot);
        }
    }

    /// Remove an active flow's links from the reverse index.
    fn index_remove(&mut self, slot: u32, route: &Route) {
        for dl in &route.hops {
            let idx = dl.dense_index();
            if let Some(users) = self.link_flows.get_mut(&idx) {
                users.retain(|&s| s != slot);
                if users.is_empty() {
                    self.link_flows.remove(&idx);
                }
            }
        }
    }

    fn is_live(&self, id: FlowId) -> bool {
        self.slots
            .get(id.slot as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|s| s.generation == id.generation)
    }

    fn retire_slot(&mut self, slot: u32) {
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free.push(slot);
    }

    fn on_activate(world: &mut S, sim: &mut Sim<S>, id: FlowId) {
        let fab = world.fabric();
        if !fab.is_live(id) {
            return;
        }
        fab.settle(sim.now());
        let route = {
            let state = fab.slots[id.slot as usize].as_mut().expect("live");
            debug_assert_eq!(state.phase, Phase::Latency);
            state.phase = Phase::Active;
            fab.active_count += 1;
            state.route.clone()
        };
        fab.index_add(id.slot, &route);
        fab.reprice_component(sim, Some(id.slot), &route.hops);
    }

    fn on_complete(world: &mut S, sim: &mut Sim<S>, id: FlowId) {
        let cb = {
            let fab = world.fabric();
            if !fab.is_live(id) {
                return;
            }
            fab.settle(sim.now());
            let state = fab.slots[id.slot as usize].take().expect("live");
            debug_assert!(
                state.remaining <= 1.0 || state.route.hops.is_empty(),
                "completion fired with {} bytes left",
                state.remaining
            );
            fab.active_count -= 1;
            fab.index_remove(id.slot, &state.route);
            fab.retire_slot(id.slot);
            fab.reprice_component(sim, None, &state.route.hops);
            state.on_complete
        };
        if let Some(cb) = cb {
            cb(world, sim);
        }
    }

    /// Diagnostic: verify the max-min fairness invariants of the current
    /// allocation. Intended for tests and debugging; panics on violation.
    ///
    /// Invariants checked:
    /// 1. *Feasibility* — on every directed link, the sum of allocated flow
    ///    rates does not exceed its capacity (within a small tolerance).
    /// 2. *Progress* — every active flow has a strictly positive rate.
    /// 3. *Bottleneck* — every active flow either runs at its route ceiling
    ///    or crosses at least one saturated link (the defining property of
    ///    a max-min fair allocation).
    pub fn check_invariants(&self) {
        const TOL: f64 = 1.0; // bytes/s
        let mut load: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        let active: Vec<&FlowState<S>> = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.phase == Phase::Active)
            .collect();
        for st in &active {
            assert!(
                st.rate > 0.0,
                "active flow has non-positive rate {}",
                st.rate
            );
            if st.rate.is_finite() {
                for &dl in &st.route.hops {
                    *load.entry(dl.dense_index()).or_insert(0.0) += st.rate;
                }
            }
        }
        // Feasibility per loaded directed link.
        for (&idx, &l) in &load {
            let link = crate::topology::LinkId((idx / 2) as u32);
            let cap = self.topo.link(link).spec.capacity;
            assert!(
                l <= cap + TOL,
                "link {idx} oversubscribed: load {l} > capacity {cap}"
            );
        }
        // Bottleneck property.
        for st in &active {
            if st.route.hops.is_empty() {
                continue;
            }
            let bottleneck_cap = st
                .route
                .hops
                .iter()
                .map(|dl| self.topo.capacity(*dl))
                .fold(f64::INFINITY, f64::min);
            let ceiling = bottleneck_cap * st.route.path_efficiency;
            let at_ceiling = st.rate >= ceiling - TOL;
            let crosses_saturated = st.route.hops.iter().any(|dl| {
                let cap = self.topo.capacity(*dl);
                load.get(&dl.dense_index())
                    .is_some_and(|&l| l >= cap - TOL)
            });
            assert!(
                at_ceiling || crosses_saturated,
                "flow at {} B/s is neither at its ceiling ({ceiling}) nor bottlenecked",
                st.rate
            );
        }
    }

    /// Advance all active flows to `now` at their current rates, attributing
    /// moved bytes to the port counters.
    fn settle(&mut self, now: SimTime) {
        let dt = now.since(self.last_settle).as_secs_f64();
        if dt > 0.0 {
            let from = self.last_settle;
            for slot in self.slots.iter_mut().flatten() {
                if slot.phase != Phase::Active || slot.rate == 0.0 {
                    continue;
                }
                let moved = (slot.rate * dt).min(slot.remaining);
                slot.remaining -= moved;
                for &dl in &slot.route.hops {
                    self.ports.record(dl, from, now, moved);
                }
            }
        }
        self.last_settle = now;
    }

    /// Max-min fair allocation by progressive filling, then reschedule every
    /// active flow's completion event.
    fn recompute_and_reschedule(&mut self, sim: &mut Sim<S>) {
        // Fast path: with no active flows there is nothing to allocate or
        // reschedule — skip before touching any buffer. Latency-phase
        // flows carry their own scheduled activation event.
        if self.active_count == 0 {
            return;
        }
        let mut sc = std::mem::take(&mut self.scratch);
        sc.clear();

        // Collect active flow indices deterministically (slot order).
        sc.active.extend(self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .filter(|s| s.phase == Phase::Active)
                .map(|_| i as u32)
        }));
        debug_assert_eq!(sc.active.len(), self.active_count);

        self.fill_rates(&mut sc);
        self.apply_rates(sim, &sc);

        // Hand the buffers back for the next recompute.
        self.scratch = sc;
    }

    /// Re-price only the flows affected by a change touching `seed_hops`
    /// (and `seed_slot`, for a newly activated flow): the connected
    /// component of the link-sharing graph reached from those links. Flows
    /// in other components keep their rates and completion events — their
    /// max-min allocation is independent of the change. Falls back to the
    /// global recompute when `incremental` is off or the component spans
    /// every active flow (the common small-replay case), which runs the
    /// exact legacy code path.
    fn reprice_component(&mut self, sim: &mut Sim<S>, seed_slot: Option<u32>, seed_hops: &[DirLink]) {
        if !self.incremental {
            self.recompute_and_reschedule(sim);
            return;
        }
        if self.active_count == 0 {
            return;
        }
        let mut sc = std::mem::take(&mut self.scratch);
        sc.clear();
        sc.visited.resize(self.slots.len(), false);

        // Breadth-first walk of the link-sharing graph: links seed flows,
        // flows seed their other links. `sc.active` accumulates the
        // component's member slots.
        if let Some(slot) = seed_slot {
            sc.visited[slot as usize] = true;
            sc.active.push(slot);
        }
        for dl in seed_hops {
            let idx = dl.dense_index();
            if sc.link_seen.insert(idx) {
                sc.link_stack.push(idx);
            }
        }
        while let Some(idx) = sc.link_stack.pop() {
            let Some(users) = self.link_flows.get(&idx) else {
                continue;
            };
            for &slot in users {
                if !sc.visited[slot as usize] {
                    sc.visited[slot as usize] = true;
                    sc.active.push(slot);
                    let st = self.slots[slot as usize].as_ref().expect("indexed flow is live");
                    for dl in &st.route.hops {
                        let li = dl.dense_index();
                        if sc.link_seen.insert(li) {
                            sc.link_stack.push(li);
                        }
                    }
                }
            }
        }

        if sc.active.is_empty() {
            // A departed flow shared no links with anyone still active.
            self.scratch = sc;
            return;
        }
        if sc.active.len() == self.active_count {
            // Component spans everything: run the global path (identical
            // arithmetic to the pre-index engine).
            self.scratch = sc;
            self.recompute_and_reschedule(sim);
            return;
        }
        // Water-fill the component alone. Links crossed by the component
        // are, by construction, used by no flow outside it, so starting
        // them at full capacity is exact — not an approximation.
        sc.active.sort_unstable();
        self.fill_rates(&mut sc);
        self.apply_rates(sim, &sc);
        self.scratch = sc;

        #[cfg(debug_assertions)]
        self.debug_assert_matches_full_recompute();
    }

    /// Differential guard (debug builds): the rates applied by incremental
    /// repricing must match what a full global recompute would assign.
    /// Compared with a small relative tolerance — component-restricted
    /// filling accumulates the shared water level in a different order, so
    /// last-ULP equality is not guaranteed.
    #[cfg(debug_assertions)]
    fn debug_assert_matches_full_recompute(&self) {
        let mut sc = Scratch::default();
        sc.active.extend(self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .filter(|s| s.phase == Phase::Active)
                .map(|_| i as u32)
        }));
        self.fill_rates(&mut sc);
        for (p, &i) in sc.active.iter().enumerate() {
            let applied = self.slots[i as usize].as_ref().unwrap().rate;
            let full = sc.rate[p];
            let ok = if full.is_infinite() {
                applied.is_infinite()
            } else {
                (applied - full).abs() <= 1e-9 * full.max(1.0)
            };
            assert!(
                ok,
                "incremental reprice diverged from full recompute for slot {i}: \
                 applied {applied} vs full {full}"
            );
        }
    }

    /// Progressive-filling core: compute the max-min fair rate for each
    /// flow in `sc.active` (which must list a union of complete
    /// link-sharing components in ascending slot order) into `sc.rate`.
    fn fill_rates(&self, sc: &mut Scratch) {
        let active = &sc.active;

        // Residual capacity per directed link (dense index), counting only
        // links actually used.
        let residual = &mut sc.residual;
        // Per-flow ceiling: bottleneck capacity × path efficiency. Zero-hop
        // flows (src == dst) are unconstrained by links; give them an
        // effectively infinite rate so they complete immediately.
        let ceiling = &mut sc.ceiling;
        for &i in active {
            let st = self.slots[i as usize].as_ref().unwrap();
            let mut bottleneck = f64::INFINITY;
            for &dl in &st.route.hops {
                let cap = self.topo.capacity(dl);
                bottleneck = bottleneck.min(cap);
                let entry = residual.entry(dl.dense_index()).or_insert((cap, 0));
                entry.1 += 1;
            }
            ceiling.push(if st.route.hops.is_empty() {
                f64::INFINITY
            } else {
                bottleneck * st.route.path_efficiency
            });
        }

        // Progressive filling: all unfrozen flows share one rising level.
        let n = active.len();
        let frozen = &mut sc.frozen;
        frozen.resize(n, false);
        let rate = &mut sc.rate;
        rate.resize(n, 0.0f64);
        let mut level = 0.0f64;
        let mut unfrozen = n;
        // Map dense link index -> list of flow positions using it.
        let users = &mut sc.users;
        for (pos, &i) in active.iter().enumerate() {
            let st = self.slots[i as usize].as_ref().unwrap();
            for &dl in &st.route.hops {
                users.entry(dl.dense_index()).or_default().push(pos);
            }
        }

        while unfrozen > 0 {
            // Smallest headroom across links and flow ceilings.
            let mut inc = f64::INFINITY;
            for (idx, &(res, _)) in residual.iter() {
                let live = users[idx].iter().filter(|&&p| !frozen[p]).count() as f64;
                if live > 0.0 {
                    inc = inc.min(res / live);
                }
            }
            for p in 0..n {
                if !frozen[p] && ceiling[p].is_finite() {
                    inc = inc.min(ceiling[p] - level);
                }
            }
            if !inc.is_finite() {
                // Only zero-hop flows remain; they get "infinite" rate.
                for p in 0..n {
                    if !frozen[p] {
                        rate[p] = f64::INFINITY;
                        frozen[p] = true;
                    }
                }
                break;
            }
            let inc = inc.max(0.0);
            level += inc;
            // Consume capacity.
            for (idx, entry) in residual.iter_mut() {
                let live = users[idx].iter().filter(|&&p| !frozen[p]).count() as f64;
                entry.0 = (entry.0 - inc * live).max(0.0);
            }
            // Freeze flows at saturated links or at their ceiling.
            let mut changed = false;
            for p in 0..n {
                if frozen[p] {
                    continue;
                }
                let st = self.slots[active[p] as usize].as_ref().unwrap();
                let at_ceiling = level + RATE_EPS >= ceiling[p];
                let at_saturated_link = st.route.hops.iter().any(|dl| {
                    residual
                        .get(&dl.dense_index())
                        .is_some_and(|&(res, _)| res <= RATE_EPS)
                });
                if at_ceiling || at_saturated_link {
                    rate[p] = level;
                    frozen[p] = true;
                    unfrozen -= 1;
                    changed = true;
                }
            }
            if !changed && inc <= RATE_EPS {
                // Numerical stall: freeze everything at the current level.
                for p in 0..n {
                    if !frozen[p] {
                        rate[p] = level;
                        frozen[p] = true;
                        unfrozen -= 1;
                    }
                }
            }
        }
    }

    /// Apply `sc.rate` to the flows in `sc.active` and reschedule their
    /// completion events.
    fn apply_rates(&mut self, sim: &mut Sim<S>, sc: &Scratch) {
        let now = sim.now();
        for (p, &i) in sc.active.iter().enumerate() {
            let st = self.slots[i as usize].as_mut().unwrap();
            st.rate = sc.rate[p];
            sim.cancel(st.event);
            let id = FlowId {
                slot: i,
                generation: st.generation,
            };
            let eta = if st.remaining <= 0.0 || st.rate.is_infinite() {
                Dur::ZERO
            } else {
                Dur::for_bytes(st.remaining, st.rate)
            };
            st.event = sim.schedule_at(now + eta, move |world: &mut S, sim| {
                Self::on_complete(world, sim, id);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkClass, LinkSpec};
    use crate::topology::NodeKind;
    use crate::GB;

    /// Minimal world: just a fabric plus a completion log.
    struct World {
        fabric: FabricState<World>,
        done: Vec<(&'static str, SimTime)>,
    }

    impl FlowWorld for World {
        fn fabric(&mut self) -> &mut FabricState<World> {
            &mut self.fabric
        }
    }

    fn two_gpu_switch() -> (World, NodeId, NodeId, NodeId) {
        let mut topo = Topology::new();
        let sw = topo.add_node("sw", NodeKind::PcieSwitch);
        let a = topo.add_node("a", NodeKind::Gpu);
        let b = topo.add_node("b", NodeKind::Gpu);
        // 10 GB/s per direction, negligible latency for clean math.
        let spec = LinkSpec::of(LinkClass::PcieGen4x16)
            .with_capacity(10.0 * GB)
            .with_latency(Dur::ZERO);
        topo.add_link(sw, a, spec);
        topo.add_link(sw, b, spec);
        let w = World {
            fabric: FabricState::new(topo),
            done: Vec::new(),
        };
        (w, sw, a, b)
    }

    fn log(name: &'static str) -> FlowCallback<World> {
        Box::new(move |w: &mut World, sim| w.done.push((name, sim.now())))
    }

    #[test]
    fn single_flow_gets_bottleneck_capacity() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        // Route a->b crosses two 10 GB/s links through a switch
        // (p2p efficiency 0.92): ceiling 9.2 GB/s.
        let fab = &mut w.fabric;
        fab.start_flow(&mut sim, a, b, 9.2 * GB, FlowTag::UNTAGGED, log("x"));
        sim.run(&mut w);
        assert_eq!(w.done.len(), 1);
        let t = w.done[0].1;
        // Switch forwarding latency (350ns) + ~1s transfer.
        let secs = t.as_secs_f64();
        assert!((secs - 1.0).abs() < 1e-3, "took {secs}s");
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        // Both flows a->b: share both links; each gets 5 GB/s.
        let fab = &mut w.fabric;
        fab.start_flow(&mut sim, a, b, 5.0 * GB, FlowTag::UNTAGGED, log("f1"));
        fab.start_flow(&mut sim, a, b, 5.0 * GB, FlowTag::UNTAGGED, log("f2"));
        sim.run(&mut w);
        assert_eq!(w.done.len(), 2);
        // The shared links cap each flow at 5 GB/s (below the 9.2 GB/s
        // per-flow ceiling), so both finish together after 1 s.
        let t = w.done[1].1.as_secs_f64();
        assert!((t - 1.0).abs() < 1e-3, "two 5GB flows at 5GB/s each: {t}s");
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        let fab = &mut w.fabric;
        fab.start_flow(&mut sim, a, b, 9.2 * GB, FlowTag::UNTAGGED, log("ab"));
        fab.start_flow(&mut sim, b, a, 9.2 * GB, FlowTag::UNTAGGED, log("ba"));
        sim.run(&mut w);
        let t = w.done.iter().map(|d| d.1.as_secs_f64()).fold(0.0, f64::max);
        assert!((t - 1.0).abs() < 1e-3, "full duplex: {t}s");
    }

    #[test]
    fn short_flow_is_latency_bound() {
        let mut topo = Topology::new();
        let a = topo.add_node("a", NodeKind::Gpu);
        let b = topo.add_node("b", NodeKind::Gpu);
        let spec = LinkSpec::of(LinkClass::NvLink2 { lanes: 2 }).with_latency(Dur::from_micros(2));
        topo.add_link(a, b, spec);
        let mut w = World {
            fabric: FabricState::new(topo),
            done: Vec::new(),
        };
        let mut sim = Sim::new();
        w.fabric
            .start_flow(&mut sim, a, b, 8.0, FlowTag::UNTAGGED, log("tiny"));
        sim.run(&mut w);
        let t = w.done[0].1;
        assert!(t >= SimTime::from_micros(2));
        assert!(t < SimTime::from_micros(3), "8 bytes is latency-dominated");
    }

    #[test]
    fn freed_bandwidth_is_reallocated() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        let fab = &mut w.fabric;
        // Short and long flow share: short finishes, long speeds up.
        fab.start_flow(&mut sim, a, b, 1.0 * GB, FlowTag::UNTAGGED, log("short"));
        fab.start_flow(&mut sim, a, b, 5.0 * GB, FlowTag::UNTAGGED, log("long"));
        sim.run(&mut w);
        // Phase 1: both at the 5 GB/s link fair share until short finishes
        // at 0.2 s (1 GB moved each). Long then has 4 GB left and speeds up
        // to its 9.2 GB/s ceiling: 0.2 + 4/9.2 = 0.6348 s.
        let short_t = w.done.iter().find(|d| d.0 == "short").unwrap().1.as_secs_f64();
        let long_t = w.done.iter().find(|d| d.0 == "long").unwrap().1.as_secs_f64();
        assert!((short_t - 0.2).abs() < 1e-3, "{short_t}");
        let expected_long = 0.2 + 4.0 / 9.2;
        assert!((long_t - expected_long).abs() < 1e-3, "{long_t} vs {expected_long}");
    }

    #[test]
    fn abort_cancels_completion_and_frees_bandwidth() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        let id = w
            .fabric
            .start_flow(&mut sim, a, b, 100.0 * GB, FlowTag::UNTAGGED, log("doomed"));
        w.fabric
            .start_flow(&mut sim, a, b, 4.6 * GB, FlowTag::UNTAGGED, log("kept"));
        // Let the flows activate, then abort the big one.
        sim.schedule_at(SimTime::from_millis(500), move |w: &mut World, sim| {
            assert!(w.fabric.abort_flow(sim, id));
        });
        sim.run(&mut w);
        assert_eq!(w.done.len(), 1, "aborted callback must not fire");
        assert_eq!(w.done[0].0, "kept");
        // kept: 0.5s at the 5 GB/s fair share = 2.5 GB moved, then the
        // remaining 2.1 GB at its 9.2 GB/s ceiling = 0.228 s; total 0.728 s.
        let t = w.done[0].1.as_secs_f64();
        assert!((t - 0.728).abs() < 2e-3, "{t}");
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        w.fabric
            .start_flow(&mut sim, a, b, 0.0, FlowTag::UNTAGGED, log("zero"));
        sim.run(&mut w);
        assert_eq!(w.done.len(), 1);
        // Latency = 2 link latencies (0) + switch forwarding.
        assert_eq!(w.done[0].1, SimTime::from_nanos(350));
    }

    #[test]
    fn self_flow_completes_immediately() {
        let (mut w, _sw, a, _b) = two_gpu_switch();
        let mut sim = Sim::new();
        w.fabric
            .start_flow(&mut sim, a, a, 1e12, FlowTag::UNTAGGED, log("self"));
        sim.run(&mut w);
        assert_eq!(w.done.len(), 1);
        assert_eq!(w.done[0].1, SimTime::ZERO);
    }

    #[test]
    fn port_counters_attribute_all_bytes() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        w.fabric
            .start_flow(&mut sim, a, b, 4.6 * GB, FlowTag::UNTAGGED, log("f"));
        sim.run(&mut w);
        let route = w.fabric.topo.route(a, b).unwrap();
        for &dl in &route.hops {
            let total = w.fabric.ports.total_bytes(dl);
            assert!(
                (total - 4.6 * GB).abs() < 1.0,
                "link should carry all bytes, got {total}"
            );
        }
    }

    #[test]
    fn flows_in_flight_counts() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        w.fabric
            .start_flow(&mut sim, a, b, 1.0 * GB, FlowTag::UNTAGGED, log("f"));
        assert_eq!(w.fabric.flows_in_flight(), 1);
        sim.run(&mut w);
        assert_eq!(w.fabric.flows_in_flight(), 0);
    }

    #[test]
    fn abort_unknown_flow_is_false() {
        let (mut w, _sw, a, b) = two_gpu_switch();
        let mut sim = Sim::new();
        let id = w
            .fabric
            .start_flow(&mut sim, a, b, 1.0, FlowTag::UNTAGGED, log("f"));
        sim.run(&mut w);
        assert!(!w.fabric.abort_flow(&mut sim, id), "already finished");
    }
}
