//! `fabric` — flow-level interconnect simulation.
//!
//! This crate models the communication substrate of the composable system:
//! PCIe Gen3/Gen4 links, second-generation NVLink, the 400 Gb/s CDFP host
//! cables that attach a Falcon 4016 chassis to its host servers, and the
//! storage/NIC links — as a graph ([`Topology`]) over which byte
//! [`flow::Flow`]s are simulated fluidly.
//!
//! The central abstraction is **max-min fair bandwidth sharing**: every
//! active flow crosses a set of directed links; link capacity is divided by
//! progressive filling, so contention effects (e.g. four allreduce ring
//! edges funneling through one host port) *emerge* from topology rather
//! than being hand-coded. This is what lets the training-time overheads of
//! the paper's Figures 11–16 fall out of protocol + topology alone.
//!
//! Per-directed-link ingress/egress counters ([`ports::PortStats`]) mirror
//! the Falcon management GUI's port-traffic monitoring and reproduce the
//! paper's Figure 12 PCIe-traffic series.

pub mod export;
pub mod flow;
pub mod link;
pub mod microbench;
pub mod ports;
pub mod topology;

pub use export::{to_dot, TopologySpec};
pub use flow::{FabricState, FlowId, FlowTag, FlowWorld};
pub use link::{LinkClass, LinkSpec};
pub use ports::PortStats;
pub use topology::{Dir, DirLink, LinkId, NodeId, NodeKind, Route, Topology};

/// Bytes per second in one gigabyte per second (decimal, as in the paper).
pub const GB: f64 = 1e9;
/// Bytes in one mebibyte.
pub const MIB: f64 = 1024.0 * 1024.0;
