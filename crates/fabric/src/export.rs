//! Topology export: Graphviz DOT for humans, serde round-trip for tools.
//!
//! The Falcon management GUI offers list and topology views plus
//! configuration import/export (paper §II-B); this module gives the
//! simulated fabric the same affordances, so a composed system can be
//! inspected (`dot -Tsvg`) or archived and rebuilt exactly.

use crate::link::LinkSpec;
use crate::topology::{NodeKind, Topology};
use crate::GB;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    pub nodes: Vec<NodeSpec>,
    pub links: Vec<LinkRow>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub name: String,
    pub kind: NodeKind,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkRow {
    pub a: u32,
    pub b: u32,
    pub spec: LinkSpec,
}

impl TopologySpec {
    /// Snapshot `topo`.
    pub fn capture(topo: &Topology) -> TopologySpec {
        TopologySpec {
            nodes: topo
                .nodes()
                .map(|(_, n)| NodeSpec {
                    name: n.name.clone(),
                    kind: n.kind,
                })
                .collect(),
            links: topo
                .links()
                .map(|(_, l)| LinkRow {
                    a: l.a.0,
                    b: l.b.0,
                    spec: l.spec,
                })
                .collect(),
        }
    }

    /// Rebuild a topology from the snapshot. Node and link ids are
    /// preserved (insertion order).
    pub fn rebuild(&self) -> Topology {
        let mut t = Topology::new();
        let ids: Vec<_> = self
            .nodes
            .iter()
            .map(|n| t.add_node(n.name.clone(), n.kind))
            .collect();
        for l in &self.links {
            t.add_link(ids[l.a as usize], ids[l.b as usize], l.spec);
        }
        t
    }
}

fn shape(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::RootComplex => "doubleoctagon",
        NodeKind::PcieSwitch => "diamond",
        NodeKind::Gpu => "box3d",
        NodeKind::Storage => "cylinder",
        NodeKind::Nic => "component",
        NodeKind::Memory => "folder",
        NodeKind::HostAdapter | NodeKind::DevicePort => "point",
    }
}

/// Render the topology as a Graphviz `graph` (undirected), with link
/// labels carrying class and effective capacity.
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::from("graph fabric {\n  rankdir=LR;\n  node [fontsize=9];\n");
    for (id, n) in topo.nodes() {
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            id.0,
            n.name,
            shape(n.kind)
        ));
    }
    for (_, l) in topo.links() {
        out.push_str(&format!(
            "  n{} -- n{} [label=\"{} {:.1}G\"];\n",
            l.a.0,
            l.b.0,
            l.spec.class,
            l.spec.capacity / GB
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;
    use crate::topology::NodeKind;

    fn sample() -> Topology {
        let mut t = Topology::new();
        let rc = t.add_node("rc", NodeKind::RootComplex);
        let sw = t.add_node("sw", NodeKind::PcieSwitch);
        let gpu = t.add_node("gpu0", NodeKind::Gpu);
        t.add_link(rc, sw, LinkSpec::of(LinkClass::Cdfp400));
        t.add_link(sw, gpu, LinkSpec::of(LinkClass::PcieGen4x16));
        t
    }

    #[test]
    fn capture_rebuild_round_trips() {
        let t = sample();
        let spec = TopologySpec::capture(&t);
        let json = serde_json::to_string(&spec).unwrap();
        let parsed: TopologySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, spec);
        let mut rebuilt = parsed.rebuild();
        assert_eq!(rebuilt.node_count(), t.node_count());
        assert_eq!(rebuilt.link_count(), t.link_count());
        // Routing behaves the same in the rebuilt fabric.
        let mut orig = t.clone();
        let a = orig.find_node("rc").unwrap();
        let b = orig.find_node("gpu0").unwrap();
        let ra = orig.route(a, b).unwrap();
        let a2 = rebuilt.find_node("rc").unwrap();
        let b2 = rebuilt.find_node("gpu0").unwrap();
        let rb = rebuilt.route(a2, b2).unwrap();
        assert_eq!(ra.latency, rb.latency);
        assert_eq!(ra.hops.len(), rb.hops.len());
    }

    #[test]
    fn dot_contains_every_node_and_link() {
        let t = sample();
        let dot = to_dot(&t);
        assert!(dot.starts_with("graph fabric {"));
        assert!(dot.contains("label=\"rc\""));
        assert!(dot.contains("label=\"gpu0\""));
        assert_eq!(dot.matches(" -- ").count(), 2);
        assert!(dot.contains("PCI-e 4.0"));
    }
}
