//! Topology export: Graphviz DOT for humans, JSON round-trip for tools.
//!
//! The Falcon management GUI offers list and topology views plus
//! configuration import/export (paper §II-B); this module gives the
//! simulated fabric the same affordances, so a composed system can be
//! inspected (`dot -Tsvg`) or archived and rebuilt exactly. The JSON
//! shapes match what the earlier serde derives produced (unit enum
//! variants as strings, data variants externally tagged), so archived
//! snapshots remain readable.

use crate::link::{LinkClass, LinkSpec};
use crate::topology::{NodeKind, Topology};
use crate::GB;
use desim::json::{FromJson, JsonError, ToJson, Value};

/// A serializable snapshot of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    pub nodes: Vec<NodeSpec>,
    pub links: Vec<LinkRow>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    pub name: String,
    pub kind: NodeKind,
}

#[derive(Debug, Clone, PartialEq)]
pub struct LinkRow {
    pub a: u32,
    pub b: u32,
    pub spec: LinkSpec,
}

impl TopologySpec {
    /// Snapshot `topo`.
    pub fn capture(topo: &Topology) -> TopologySpec {
        TopologySpec {
            nodes: topo
                .nodes()
                .map(|(_, n)| NodeSpec {
                    name: n.name.clone(),
                    kind: n.kind,
                })
                .collect(),
            links: topo
                .links()
                .map(|(_, l)| LinkRow {
                    a: l.a.0,
                    b: l.b.0,
                    spec: l.spec,
                })
                .collect(),
        }
    }

    /// Rebuild a topology from the snapshot. Node and link ids are
    /// preserved (insertion order).
    pub fn rebuild(&self) -> Topology {
        let mut t = Topology::new();
        let ids: Vec<_> = self
            .nodes
            .iter()
            .map(|n| t.add_node(n.name.clone(), n.kind))
            .collect();
        for l in &self.links {
            t.add_link(ids[l.a as usize], ids[l.b as usize], l.spec);
        }
        t
    }
}

impl TopologySpec {
    /// Emit the snapshot as pretty JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().emit_pretty()
    }

    /// Parse a snapshot previously produced by [`TopologySpec::to_json_string`].
    pub fn from_json_str(s: &str) -> Result<TopologySpec, JsonError> {
        TopologySpec::from_json(&Value::parse(s)?)
    }
}

impl ToJson for NodeKind {
    fn to_json(&self) -> Value {
        Value::str(match self {
            NodeKind::RootComplex => "RootComplex",
            NodeKind::PcieSwitch => "PcieSwitch",
            NodeKind::Gpu => "Gpu",
            NodeKind::Storage => "Storage",
            NodeKind::Nic => "Nic",
            NodeKind::Memory => "Memory",
            NodeKind::HostAdapter => "HostAdapter",
            NodeKind::DevicePort => "DevicePort",
        })
    }
}

impl FromJson for NodeKind {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_str()? {
            "RootComplex" => Ok(NodeKind::RootComplex),
            "PcieSwitch" => Ok(NodeKind::PcieSwitch),
            "Gpu" => Ok(NodeKind::Gpu),
            "Storage" => Ok(NodeKind::Storage),
            "Nic" => Ok(NodeKind::Nic),
            "Memory" => Ok(NodeKind::Memory),
            "HostAdapter" => Ok(NodeKind::HostAdapter),
            "DevicePort" => Ok(NodeKind::DevicePort),
            other => Err(JsonError::decode(format!("unknown NodeKind \"{other}\""))),
        }
    }
}

impl ToJson for LinkClass {
    fn to_json(&self) -> Value {
        match self {
            LinkClass::NvLink2 { lanes } => Value::obj(vec![(
                "NvLink2",
                Value::obj(vec![("lanes", Value::from_u64(u64::from(*lanes)))]),
            )]),
            LinkClass::PcieGen3x16 => Value::str("PcieGen3x16"),
            LinkClass::PcieGen4x16 => Value::str("PcieGen4x16"),
            LinkClass::PcieGen4x8 => Value::str("PcieGen4x8"),
            LinkClass::PcieGen4x4 => Value::str("PcieGen4x4"),
            LinkClass::PcieGen3x4 => Value::str("PcieGen3x4"),
            LinkClass::Cdfp400 => Value::str("Cdfp400"),
            LinkClass::Upi => Value::str("Upi"),
            LinkClass::MemoryBus => Value::str("MemoryBus"),
            LinkClass::Sata3 => Value::str("Sata3"),
            LinkClass::TenGbE => Value::str("TenGbE"),
        }
    }
}

impl FromJson for LinkClass {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if let Ok(tag) = v.as_str() {
            return match tag {
                "PcieGen3x16" => Ok(LinkClass::PcieGen3x16),
                "PcieGen4x16" => Ok(LinkClass::PcieGen4x16),
                "PcieGen4x8" => Ok(LinkClass::PcieGen4x8),
                "PcieGen4x4" => Ok(LinkClass::PcieGen4x4),
                "PcieGen3x4" => Ok(LinkClass::PcieGen3x4),
                "Cdfp400" => Ok(LinkClass::Cdfp400),
                "Upi" => Ok(LinkClass::Upi),
                "MemoryBus" => Ok(LinkClass::MemoryBus),
                "Sata3" => Ok(LinkClass::Sata3),
                "TenGbE" => Ok(LinkClass::TenGbE),
                other => Err(JsonError::decode(format!("unknown LinkClass \"{other}\""))),
            };
        }
        let lanes = v.get("NvLink2")?.get("lanes")?.as_u8()?;
        Ok(LinkClass::NvLink2 { lanes })
    }
}

impl ToJson for LinkSpec {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("class", self.class.to_json()),
            ("capacity", Value::Num(self.capacity)),
            ("latency", self.latency.to_json()),
        ])
    }
}

impl FromJson for LinkSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(LinkSpec {
            class: LinkClass::from_json(v.get("class")?)?,
            capacity: v.get("capacity")?.as_f64()?,
            latency: FromJson::from_json(v.get("latency")?)?,
        })
    }
}

impl ToJson for NodeSpec {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(&*self.name)),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for NodeSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(NodeSpec {
            name: String::from_json(v.get("name")?)?,
            kind: NodeKind::from_json(v.get("kind")?)?,
        })
    }
}

impl ToJson for LinkRow {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("a", Value::from_u64(u64::from(self.a))),
            ("b", Value::from_u64(u64::from(self.b))),
            ("spec", self.spec.to_json()),
        ])
    }
}

impl FromJson for LinkRow {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(LinkRow {
            a: v.get("a")?.as_u32()?,
            b: v.get("b")?.as_u32()?,
            spec: LinkSpec::from_json(v.get("spec")?)?,
        })
    }
}

impl ToJson for TopologySpec {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("nodes", self.nodes.to_json()),
            ("links", self.links.to_json()),
        ])
    }
}

impl FromJson for TopologySpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(TopologySpec {
            nodes: FromJson::from_json(v.get("nodes")?)?,
            links: FromJson::from_json(v.get("links")?)?,
        })
    }
}

fn shape(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::RootComplex => "doubleoctagon",
        NodeKind::PcieSwitch => "diamond",
        NodeKind::Gpu => "box3d",
        NodeKind::Storage => "cylinder",
        NodeKind::Nic => "component",
        NodeKind::Memory => "folder",
        NodeKind::HostAdapter | NodeKind::DevicePort => "point",
    }
}

/// Render the topology as a Graphviz `graph` (undirected), with link
/// labels carrying class and effective capacity.
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::from("graph fabric {\n  rankdir=LR;\n  node [fontsize=9];\n");
    for (id, n) in topo.nodes() {
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            id.0,
            n.name,
            shape(n.kind)
        ));
    }
    for (_, l) in topo.links() {
        out.push_str(&format!(
            "  n{} -- n{} [label=\"{} {:.1}G\"];\n",
            l.a.0,
            l.b.0,
            l.spec.class,
            l.spec.capacity / GB
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;
    use crate::topology::NodeKind;

    fn sample() -> Topology {
        let mut t = Topology::new();
        let rc = t.add_node("rc", NodeKind::RootComplex);
        let sw = t.add_node("sw", NodeKind::PcieSwitch);
        let gpu = t.add_node("gpu0", NodeKind::Gpu);
        t.add_link(rc, sw, LinkSpec::of(LinkClass::Cdfp400));
        t.add_link(sw, gpu, LinkSpec::of(LinkClass::PcieGen4x16));
        t
    }

    #[test]
    fn capture_rebuild_round_trips() {
        let t = sample();
        let spec = TopologySpec::capture(&t);
        let json = spec.to_json_string();
        let parsed = TopologySpec::from_json_str(&json).unwrap();
        assert_eq!(parsed, spec);
        let mut rebuilt = parsed.rebuild();
        assert_eq!(rebuilt.node_count(), t.node_count());
        assert_eq!(rebuilt.link_count(), t.link_count());
        // Routing behaves the same in the rebuilt fabric.
        let mut orig = t.clone();
        let a = orig.find_node("rc").unwrap();
        let b = orig.find_node("gpu0").unwrap();
        let ra = orig.route(a, b).unwrap();
        let a2 = rebuilt.find_node("rc").unwrap();
        let b2 = rebuilt.find_node("gpu0").unwrap();
        let rb = rebuilt.route(a2, b2).unwrap();
        assert_eq!(ra.latency, rb.latency);
        assert_eq!(ra.hops.len(), rb.hops.len());
    }

    #[test]
    fn dot_contains_every_node_and_link() {
        let t = sample();
        let dot = to_dot(&t);
        assert!(dot.starts_with("graph fabric {"));
        assert!(dot.contains("label=\"rc\""));
        assert!(dot.contains("label=\"gpu0\""));
        assert_eq!(dot.matches(" -- ").count(), 2);
        assert!(dot.contains("PCI-e 4.0"));
    }
}
