//! Property tests on topology routing: on arbitrary random graphs, routes
//! are valid walks, symmetric in cost structure, cache-consistent, and
//! respect Dijkstra optimality.

use desim::Dur;
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology};
use proptest::prelude::*;

/// A random connected topology: a spanning chain plus random extra links.
fn build(n: usize, extra: &[(usize, usize, u64)]) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let kinds = [
        NodeKind::RootComplex,
        NodeKind::PcieSwitch,
        NodeKind::Gpu,
        NodeKind::Storage,
        NodeKind::DevicePort,
    ];
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| t.add_node(format!("n{i}"), kinds[i % kinds.len()]))
        .collect();
    for i in 1..n {
        t.add_link(
            nodes[i - 1],
            nodes[i],
            LinkSpec::of(LinkClass::PcieGen4x16).with_latency(Dur::from_nanos(100)),
        );
    }
    for &(a, b, lat) in extra {
        if a != b {
            t.add_link(
                nodes[a],
                nodes[b],
                LinkSpec::of(LinkClass::PcieGen4x16).with_latency(Dur::from_nanos(lat)),
            );
        }
    }
    (t, nodes)
}

fn params() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>, usize, usize)> {
    (3usize..12).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, 10u64..2000), 0..12),
            0..n,
            0..n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every route is a contiguous walk from src to dst over real links.
    #[test]
    fn routes_are_valid_walks((n, extra, src, dst) in params()) {
        let (mut t, nodes) = build(n, &extra);
        let r = t.route(nodes[src], nodes[dst]).expect("connected graph");
        let mut at = nodes[src];
        for &dl in &r.hops {
            let link = t.link(dl.link);
            prop_assert_eq!(link.src(dl.dir), at, "hops must chain");
            at = link.dst(dl.dir);
        }
        prop_assert_eq!(at, nodes[dst]);
        prop_assert!(r.path_efficiency > 0.0 && r.path_efficiency <= 1.0);
    }

    /// Route latency is optimal: no single link beats the chosen path.
    #[test]
    fn direct_link_is_never_worse_than_chosen_path((n, extra, src, dst) in params()) {
        let (mut t, nodes) = build(n, &extra);
        if src == dst { return Ok(()); }
        let chosen = t.route(nodes[src], nodes[dst]).unwrap().latency;
        // If a direct link exists, the chosen latency can't exceed it.
        let direct_best = t
            .links()
            .filter(|(_, l)| {
                (l.a == nodes[src] && l.b == nodes[dst])
                    || (l.b == nodes[src] && l.a == nodes[dst])
            })
            .map(|(_, l)| l.spec.latency)
            .min();
        if let Some(d) = direct_best {
            prop_assert!(chosen <= d, "chosen {chosen} vs direct {d}");
        }
    }

    /// Caching does not change results: a fresh clone routes identically.
    #[test]
    fn cache_is_transparent((n, extra, src, dst) in params()) {
        let (mut t, nodes) = build(n, &extra);
        // Warm the cache with a few queries.
        for i in 0..n.min(4) {
            let _ = t.route(nodes[i], nodes[n - 1 - i.min(n - 1)]);
        }
        let warm = t.route(nodes[src], nodes[dst]).unwrap();
        let mut fresh = t.clone();
        // Clone carries the cache; rebuild instead for a cold query.
        let (mut cold_topo, cold_nodes) = build(n, &extra);
        let cold = cold_topo.route(cold_nodes[src], cold_nodes[dst]).unwrap();
        prop_assert_eq!(warm.latency, cold.latency);
        prop_assert_eq!(warm.hops.len(), cold.hops.len());
        let again = fresh.route(nodes[src], nodes[dst]).unwrap();
        prop_assert_eq!(again.latency, warm.latency);
    }

    /// Removing a link never improves latency and may disconnect.
    #[test]
    fn removing_links_is_monotone((n, extra, src, dst) in params()) {
        let (mut t, nodes) = build(n, &extra);
        if src == dst { return Ok(()); }
        let before = t.route(nodes[src], nodes[dst]).unwrap().latency;
        // Remove the last added link if it's an extra (the chain's n-1
        // links stay intact so the graph remains connected).
        if t.link_count() > n - 1 {
            let last = fabric::LinkId((t.link_count() - 1) as u32);
            t.remove_link(last);
            let after = t.route(nodes[src], nodes[dst]).expect("chain keeps it connected");
            prop_assert!(after.latency >= before);
        }
    }
}
