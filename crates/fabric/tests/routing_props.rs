//! Property tests on topology routing: on arbitrary random graphs, routes
//! are valid walks, symmetric in cost structure, cache-consistent, and
//! respect Dijkstra optimality.
//!
//! Invariants covered (testkit, 192 cases each):
//! * every route is a contiguous walk from src to dst over real links;
//! * no single direct link beats the chosen path latency (optimality);
//! * the route cache is transparent (warm == cold results);
//! * removing a link never improves latency.

use desim::Dur;
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology};
use testkit::{just, prop_assert, prop_assert_eq, property, tuple3, tuple4, u64_in, usize_in, vec_of, Gen};

/// A random connected topology: a spanning chain plus random extra links.
fn build(n: usize, extra: &[(usize, usize, u64)]) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let kinds = [
        NodeKind::RootComplex,
        NodeKind::PcieSwitch,
        NodeKind::Gpu,
        NodeKind::Storage,
        NodeKind::DevicePort,
    ];
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| t.add_node(format!("n{i}"), kinds[i % kinds.len()]))
        .collect();
    for i in 1..n {
        t.add_link(
            nodes[i - 1],
            nodes[i],
            LinkSpec::of(LinkClass::PcieGen4x16).with_latency(Dur::from_nanos(100)),
        );
    }
    for &(a, b, lat) in extra {
        if a != b {
            t.add_link(
                nodes[a],
                nodes[b],
                LinkSpec::of(LinkClass::PcieGen4x16).with_latency(Dur::from_nanos(lat)),
            );
        }
    }
    (t, nodes)
}

fn params() -> Gen<(usize, Vec<(usize, usize, u64)>, usize, usize)> {
    usize_in(3..12).flat_map(|n| {
        let n = *n;
        tuple4(
            just(n),
            vec_of(
                tuple3(usize_in(0..n), usize_in(0..n), u64_in(10..2000)),
                0..12,
            ),
            usize_in(0..n),
            usize_in(0..n),
        )
    })
}

property! {
    /// Every route is a contiguous walk from src to dst over real links.
    #[cases(192)]
    fn routes_are_valid_walks(params in params()) {
        let (n, extra, src, dst) = params;
        let (mut t, nodes) = build(n, &extra);
        let r = t.route(nodes[src], nodes[dst]).expect("connected graph");
        let mut at = nodes[src];
        for &dl in &r.hops {
            let link = t.link(dl.link);
            prop_assert_eq!(link.src(dl.dir), at, "hops must chain");
            at = link.dst(dl.dir);
        }
        prop_assert_eq!(at, nodes[dst]);
        prop_assert!(r.path_efficiency > 0.0 && r.path_efficiency <= 1.0);
    }

    /// Route latency is optimal: no single link beats the chosen path.
    #[cases(192)]
    fn direct_link_is_never_worse_than_chosen_path(params in params()) {
        let (n, extra, src, dst) = params;
        let (mut t, nodes) = build(n, &extra);
        if src == dst { return Ok(()); }
        let chosen = t.route(nodes[src], nodes[dst]).unwrap().latency;
        // If a direct link exists, the chosen latency can't exceed it.
        let direct_best = t
            .links()
            .filter(|(_, l)| {
                (l.a == nodes[src] && l.b == nodes[dst])
                    || (l.b == nodes[src] && l.a == nodes[dst])
            })
            .map(|(_, l)| l.spec.latency)
            .min();
        if let Some(d) = direct_best {
            prop_assert!(chosen <= d, "chosen {chosen} vs direct {d}");
        }
    }

    /// Caching does not change results: a fresh clone routes identically.
    #[cases(192)]
    fn cache_is_transparent(params in params()) {
        let (n, extra, src, dst) = params;
        let (mut t, nodes) = build(n, &extra);
        // Warm the cache with a few queries.
        for i in 0..n.min(4) {
            let _ = t.route(nodes[i], nodes[n - 1 - i.min(n - 1)]);
        }
        let warm = t.route(nodes[src], nodes[dst]).unwrap();
        let mut fresh = t.clone();
        // Clone carries the cache; rebuild instead for a cold query.
        let (mut cold_topo, cold_nodes) = build(n, &extra);
        let cold = cold_topo.route(cold_nodes[src], cold_nodes[dst]).unwrap();
        prop_assert_eq!(warm.latency, cold.latency);
        prop_assert_eq!(warm.hops.len(), cold.hops.len());
        let again = fresh.route(nodes[src], nodes[dst]).unwrap();
        prop_assert_eq!(again.latency, warm.latency);
    }

    /// Removing a link never improves latency and may disconnect.
    #[cases(192)]
    fn removing_links_is_monotone(params in params()) {
        let (n, extra, src, dst) = params;
        let (mut t, nodes) = build(n, &extra);
        if src == dst { return Ok(()); }
        let before = t.route(nodes[src], nodes[dst]).unwrap().latency;
        // Remove the last added link if it's an extra (the chain's n-1
        // links stay intact so the graph remains connected).
        if t.link_count() > n - 1 {
            let last = fabric::LinkId((t.link_count() - 1) as u32);
            t.remove_link(last);
            let after = t.route(nodes[src], nodes[dst]).expect("chain keeps it connected");
            prop_assert!(after.latency >= before);
        }
    }
}
