//! Property-based tests of the fabric's max-min fair allocation.
//!
//! Random star/dumbbell topologies with random concurrent transfers must
//! always satisfy the fairness invariants (feasibility, progress,
//! bottleneck), conserve bytes in the port counters, and be deterministic.
//!
//! Invariants covered (testkit, 64 cases each):
//! * fairness invariants hold after every simulation event;
//! * identical scenarios produce bit-identical completion schedules;
//! * port counters conserve bytes per directed link;
//! * makespan respects the physical capacity lower bound.

use desim::{Dur, Sim, SimTime};
use fabric::flow::FlowCallback;
use fabric::{FabricState, FlowTag, FlowWorld, LinkClass, LinkSpec, NodeId, NodeKind, Topology, GB};
use testkit::{f64_in, prop_assert, prop_assert_eq, property, tuple2, tuple4, u64_in, usize_in, vec_of, Gen};

struct World {
    fabric: FabricState<World>,
    completions: Vec<(usize, SimTime)>,
}

impl FlowWorld for World {
    fn fabric(&mut self) -> &mut FabricState<World> {
        &mut self.fabric
    }
}

fn done(i: usize) -> FlowCallback<World> {
    Box::new(move |w: &mut World, sim| w.completions.push((i, sim.now())))
}

/// A star: `n` GPU endpoints around one switch, per-spoke capacity from
/// `caps` (GB/s).
fn star(caps: &[f64]) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let sw = t.add_node("sw", NodeKind::PcieSwitch);
    let nodes = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let g = t.add_node(format!("g{i}"), NodeKind::Gpu);
            t.add_link(
                g,
                sw,
                LinkSpec::of(LinkClass::PcieGen4x16)
                    .with_capacity(c * GB)
                    .with_latency(Dur::from_nanos(100)),
            );
            g
        })
        .collect();
    (t, nodes)
}

#[derive(Debug, Clone)]
struct Scenario {
    caps: Vec<f64>,
    /// (src index, dst index, gigabytes, start offset in ms)
    transfers: Vec<(usize, usize, f64, u64)>,
}

fn scenario_gen() -> Gen<Scenario> {
    usize_in(3..8)
        .flat_map(|n| {
            let n = *n;
            tuple2(
                vec_of(f64_in(1.0, 40.0), n..n + 1),
                vec_of(
                    tuple4(usize_in(0..n), usize_in(0..n), f64_in(0.1, 8.0), u64_in(0..50)),
                    1..12,
                ),
            )
        })
        .map(|v| Scenario {
            caps: v.0.clone(),
            transfers: v.1.clone(),
        })
}

fn run_scenario(sc: &Scenario, check_each_event: bool) -> Vec<(usize, SimTime)> {
    let (topo, nodes) = star(&sc.caps);
    let mut world = World {
        fabric: FabricState::new(topo),
        completions: Vec::new(),
    };
    let mut sim: Sim<World> = Sim::new();
    let mut launched = 0usize;
    for (i, &(s, d, gb, off)) in sc.transfers.iter().enumerate() {
        if s == d {
            continue; // self-transfers are trivially immediate; skip
        }
        let (src, dst) = (nodes[s], nodes[d]);
        let bytes = gb * GB;
        launched += 1;
        sim.schedule_at(SimTime::from_millis(off), move |w: &mut World, sim| {
            w.fabric
                .start_flow(sim, src, dst, bytes, FlowTag::UNTAGGED, done(i));
        });
    }
    while sim.step(&mut world) {
        if check_each_event {
            world.fabric.check_invariants();
        }
    }
    assert_eq!(world.completions.len(), launched, "every flow completes");
    world.completions.clone()
}

property! {
    /// Fairness invariants hold after every simulation event.
    #[cases(64)]
    fn invariants_hold_throughout(sc in scenario_gen()) {
        run_scenario(&sc, true);
    }

    /// The same scenario always yields bit-identical completion schedules.
    #[cases(64)]
    fn simulation_is_deterministic(sc in scenario_gen()) {
        let a = run_scenario(&sc, false);
        let b = run_scenario(&sc, false);
        prop_assert_eq!(a, b);
    }

    /// Port counters conserve bytes: each hop of each completed flow carries
    /// exactly the flow's size.
    #[cases(64)]
    fn port_counters_conserve_bytes(sc in scenario_gen()) {
        let (topo, nodes) = star(&sc.caps);
        let mut world = World { fabric: FabricState::new(topo), completions: Vec::new() };
        let mut sim: Sim<World> = Sim::new();
        // Expected per-directed-link byte totals.
        let mut expected: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        for (i, &(s, d, gb, _)) in sc.transfers.iter().enumerate() {
            if s == d { continue; }
            let bytes = gb * GB;
            let route = world.fabric.topo.route(nodes[s], nodes[d]).unwrap();
            for dl in &route.hops {
                *expected.entry(dl.dense_index()).or_insert(0.0) += bytes;
            }
            let (src, dst) = (nodes[s], nodes[d]);
            world.fabric.start_flow(&mut sim, src, dst, bytes, FlowTag::UNTAGGED, done(i));
        }
        sim.run(&mut world);
        for (&idx, &exp) in &expected {
            let dl = if idx % 2 == 0 {
                fabric::DirLink::forward(fabric::LinkId((idx / 2) as u32))
            } else {
                fabric::DirLink::reverse(fabric::LinkId((idx / 2) as u32))
            };
            let got = world.fabric.ports.total_bytes(dl);
            prop_assert!((got - exp).abs() < exp * 1e-6 + 1.0,
                "link {} carried {} expected {}", idx, got, exp);
        }
    }

    /// Makespan is bounded below by the work on the most-loaded directed
    /// link (no link can move bytes faster than its capacity) and the flows
    /// always finish.
    #[cases(64)]
    fn makespan_lower_bound(sc in scenario_gen()) {
        let completions = run_scenario(&sc, false);
        if completions.is_empty() { return Ok(()); }
        let makespan = completions.iter().map(|c| c.1).max().unwrap();
        // Lower bound: total bytes into the busiest spoke / its capacity.
        let mut ingress = vec![0.0f64; sc.caps.len()];
        let mut egress = vec![0.0f64; sc.caps.len()];
        for &(s, d, gb, _) in &sc.transfers {
            if s == d { continue; }
            egress[s] += gb * GB;
            ingress[d] += gb * GB;
        }
        let bound = sc
            .caps
            .iter()
            .enumerate()
            .map(|(i, &c)| (ingress[i].max(egress[i])) / (c * GB))
            .fold(0.0, f64::max);
        prop_assert!(
            makespan.as_secs_f64() + 1e-6 >= bound,
            "makespan {} < physical bound {}",
            makespan.as_secs_f64(),
            bound
        );
    }
}
