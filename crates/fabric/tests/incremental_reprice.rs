//! Differential property tests of incremental flow repricing.
//!
//! The fabric re-prices only the link-sharing component touched by a flow
//! start/finish/abort (DESIGN §14). These tests drive random multi-island
//! scenarios — two disjoint switch clusters inside one topology, so strict
//! sub-component repricing actually happens — through both engines and
//! require the schedules to agree.
//!
//! Invariants covered (testkit, 64 cases each):
//! * incremental and global recompute complete the same flows at the same
//!   times (within a 1 ppm float-reassociation tolerance);
//! * fairness invariants hold after every event under incremental mode
//!   (and the engine's own debug differential assert runs throughout);
//! * incremental replay is bit-identical run-to-run.

use desim::{Dur, Sim, SimTime};
use fabric::flow::FlowId;
use fabric::{FabricState, FlowTag, FlowWorld, LinkClass, LinkSpec, NodeId, NodeKind, Topology, GB};
use testkit::{f64_in, prop_assert, prop_assert_eq, property, tuple2, tuple4, u64_in, usize_in, vec_of, Gen};

const ISLANDS: usize = 2;
const SPOKES: usize = 4;

struct World {
    fabric: FabricState<World>,
    ids: Vec<Option<FlowId>>,
    completions: Vec<(usize, SimTime)>,
}

impl FlowWorld for World {
    fn fabric(&mut self) -> &mut FabricState<World> {
        &mut self.fabric
    }
}

/// Two disjoint stars in one topology: flows in different islands share no
/// links, so incremental repricing runs its strict-subset path.
fn islands(caps: &[f64]) -> (Topology, Vec<Vec<NodeId>>) {
    let mut t = Topology::new();
    let mut nodes = Vec::new();
    for isl in 0..ISLANDS {
        let sw = t.add_node(format!("sw{isl}"), NodeKind::PcieSwitch);
        let spokes = (0..SPOKES)
            .map(|s| {
                let g = t.add_node(format!("g{isl}_{s}"), NodeKind::Gpu);
                t.add_link(
                    g,
                    sw,
                    LinkSpec::of(LinkClass::PcieGen4x16)
                        .with_capacity(caps[isl * SPOKES + s] * GB)
                        .with_latency(Dur::from_nanos(100)),
                );
                g
            })
            .collect();
        nodes.push(spokes);
    }
    (t, nodes)
}

#[derive(Debug, Clone)]
struct Case {
    caps: Vec<f64>,
    /// (island, src spoke, dst spoke, gigabytes, start ms, abort: Option<ms>)
    xfers: Vec<(usize, usize, usize, f64, u64, Option<u64>)>,
}

fn case_gen() -> Gen<Case> {
    let n_caps = ISLANDS * SPOKES;
    tuple2(
        vec_of(f64_in(1.0, 32.0), n_caps..n_caps + 1),
        vec_of(
            tuple4(
                tuple2(usize_in(0..ISLANDS), tuple2(usize_in(0..SPOKES), usize_in(0..SPOKES))),
                f64_in(0.05, 4.0),
                u64_in(0..40),
                tuple2(usize_in(0..4), u64_in(0..90)),
            ),
            1..14,
        ),
    )
    .map(|v| Case {
        caps: v.0.clone(),
        xfers: v
            .1
            .iter()
            .map(|&((isl, (s, d)), gb, off, (sel, ab))| {
                // ~25% of flows get a scheduled abort.
                (isl, s, d, gb, off, (sel == 0).then_some(ab))
            })
            .collect(),
    })
}

fn run(case: &Case, incremental: bool, check: bool) -> Vec<(usize, SimTime)> {
    let (topo, nodes) = islands(&case.caps);
    let mut world = World {
        fabric: FabricState::new(topo),
        ids: vec![None; case.xfers.len()],
        completions: Vec::new(),
    };
    world.fabric.incremental = incremental;
    let mut sim: Sim<World> = Sim::new();
    for (i, &(isl, s, d, gb, off, abort)) in case.xfers.iter().enumerate() {
        if s == d {
            continue; // self-transfers are trivially immediate; skip
        }
        let (src, dst) = (nodes[isl][s], nodes[isl][d]);
        let bytes = gb * GB;
        sim.schedule_at(SimTime::from_millis(off), move |w: &mut World, sim| {
            let id = w.fabric.start_flow(
                sim,
                src,
                dst,
                bytes,
                FlowTag::UNTAGGED,
                Box::new(move |w: &mut World, sim| w.completions.push((i, sim.now()))),
            );
            w.ids[i] = Some(id);
        });
        if let Some(ab) = abort {
            sim.schedule_at(SimTime::from_millis(ab), move |w: &mut World, sim| {
                if let Some(id) = w.ids[i] {
                    w.fabric.abort_flow(sim, id);
                }
            });
        }
    }
    while sim.step(&mut world) {
        if check {
            world.fabric.check_invariants();
        }
    }
    let mut done = world.completions.clone();
    done.sort_by_key(|&(i, _)| i);
    done
}

property! {
    /// Incremental repricing completes the same flows as a full global
    /// recompute at the same times, within 1 ppm + 1 ns: the component-
    /// restricted water level accumulates in a different float order, so
    /// last-ULP equality is not guaranteed, but anything beyond
    /// reassociation noise is a real allocation divergence.
    #[cases(64)]
    fn incremental_matches_global_recompute(case in case_gen()) {
        let inc = run(&case, true, true);
        let full = run(&case, false, false);
        prop_assert_eq!(inc.len(), full.len(), "completion counts diverged");
        for (a, b) in inc.iter().zip(full.iter()) {
            prop_assert_eq!(a.0, b.0, "a different flow set completed");
            let (ta, tb) = (a.1.as_nanos() as i128, b.1.as_nanos() as i128);
            let diff = (ta - tb).abs();
            prop_assert!(
                diff <= 1 + ta.max(tb) / 1_000_000,
                "flow {} completed at {} ns (incremental) vs {} ns (global)",
                a.0, ta, tb
            );
        }
    }

    /// Incremental replay is bit-identical run-to-run.
    #[cases(64)]
    fn incremental_replay_is_bit_identical(case in case_gen()) {
        prop_assert_eq!(run(&case, true, false), run(&case, true, false));
    }
}
