//! `collectives` — NCCL-style collective communication on the simulated
//! fabric.
//!
//! The paper's benchmarks synchronize gradients with the NCCL **allreduce**
//! (ring algorithm) under PyTorch DDP; the Fig 16 study also exercises the
//! DP master-replica pattern (star broadcast + star reduce) and
//! ZeRO-style sharding (reduce-scatter + all-gather).
//!
//! Execution model: a ring collective over `n` members moving `M` bytes is
//! simulated as `n` *concurrent directed flows*, one per ring edge, each
//! carrying the algorithm's per-edge volume (`2(n-1)/n·M` for allreduce).
//! This matches the pipelined steady state of the real algorithms and —
//! because the flows traverse the real topology — contention on shared
//! links (CDFP host ports, drawer switches, the DMA engines) is priced by
//! the fabric's max-min allocation rather than assumed.
//!
//! [`ring::plan_ring`] chooses the ring order greedily by pairwise path
//! capacity, reproducing NCCL's preference for NVLink edges and producing
//! exactly two slow crossing edges in the paper's hybrid configuration.

pub mod cost;
pub mod ring;

pub use cost::{alpha_beta_allreduce, RingCost};
pub use ring::{
    all_gather, pair_capacity, plan_ring, reduce_scatter, ring_allreduce, ring_bottleneck,
    star_broadcast, star_reduce,
};
