//! Ring and star collectives as concurrent fabric flows.

use desim::{Dur, Sim};
use fabric::flow::FlowCallback;
use fabric::{FlowTag, FlowWorld, NodeId, Topology};
use std::cell::RefCell;
use std::rc::Rc;

/// Launch one flow per `(src, dst, bytes)` edge and invoke `on_done` when
/// the last one completes. Zero edges completes immediately.
fn run_edges<S: FlowWorld>(
    world: &mut S,
    sim: &mut Sim<S>,
    edges: Vec<(NodeId, NodeId, f64)>,
    tag: FlowTag,
    on_done: FlowCallback<S>,
) {
    if edges.is_empty() {
        sim.schedule_in(Dur::ZERO, move |s: &mut S, sim| on_done(s, sim));
        return;
    }
    let pending = Rc::new(RefCell::new((edges.len(), Some(on_done))));
    for (src, dst, bytes) in edges {
        let pending = Rc::clone(&pending);
        world.fabric().start_flow(
            sim,
            src,
            dst,
            bytes,
            tag,
            Box::new(move |s: &mut S, sim| {
                let cb = {
                    let mut p = pending.borrow_mut();
                    p.0 -= 1;
                    if p.0 == 0 {
                        p.1.take()
                    } else {
                        None
                    }
                };
                if let Some(cb) = cb {
                    cb(s, sim);
                }
            }),
        );
    }
}

/// Consecutive (cyclic) edges of a ring.
fn ring_edges(ring: &[NodeId], per_edge_bytes: f64) -> Vec<(NodeId, NodeId, f64)> {
    let n = ring.len();
    (0..n)
        .map(|i| (ring[i], ring[(i + 1) % n], per_edge_bytes))
        .collect()
}

/// NCCL ring **allreduce** of `bytes` over `ring` (already ordered).
/// Each directed ring edge carries `2(n-1)/n · bytes`.
pub fn ring_allreduce<S: FlowWorld>(
    world: &mut S,
    sim: &mut Sim<S>,
    ring: &[NodeId],
    bytes: f64,
    tag: FlowTag,
    on_done: FlowCallback<S>,
) {
    let n = ring.len();
    if n <= 1 {
        sim.schedule_in(Dur::ZERO, move |s: &mut S, sim| on_done(s, sim));
        return;
    }
    let per_edge = 2.0 * (n as f64 - 1.0) / n as f64 * bytes;
    run_edges(world, sim, ring_edges(ring, per_edge), tag, on_done);
}

/// Ring **reduce-scatter**: each edge carries `(n-1)/n · bytes`.
pub fn reduce_scatter<S: FlowWorld>(
    world: &mut S,
    sim: &mut Sim<S>,
    ring: &[NodeId],
    bytes: f64,
    tag: FlowTag,
    on_done: FlowCallback<S>,
) {
    let n = ring.len();
    if n <= 1 {
        sim.schedule_in(Dur::ZERO, move |s: &mut S, sim| on_done(s, sim));
        return;
    }
    let per_edge = (n as f64 - 1.0) / n as f64 * bytes;
    run_edges(world, sim, ring_edges(ring, per_edge), tag, on_done);
}

/// Ring **all-gather**: same per-edge volume as reduce-scatter.
pub fn all_gather<S: FlowWorld>(
    world: &mut S,
    sim: &mut Sim<S>,
    ring: &[NodeId],
    bytes: f64,
    tag: FlowTag,
    on_done: FlowCallback<S>,
) {
    reduce_scatter(world, sim, ring, bytes, tag, on_done);
}

/// PyTorch-DP style **star broadcast**: the master sends the full buffer
/// to every peer simultaneously (no pipelining — this is what makes DP
/// slow for large models, Fig 16).
pub fn star_broadcast<S: FlowWorld>(
    world: &mut S,
    sim: &mut Sim<S>,
    master: NodeId,
    peers: &[NodeId],
    bytes: f64,
    tag: FlowTag,
    on_done: FlowCallback<S>,
) {
    let edges = peers
        .iter()
        .filter(|&&p| p != master)
        .map(|&p| (master, p, bytes))
        .collect();
    run_edges(world, sim, edges, tag, on_done);
}

/// PyTorch-DP style **star reduce**: every peer sends its gradients to the
/// master simultaneously.
pub fn star_reduce<S: FlowWorld>(
    world: &mut S,
    sim: &mut Sim<S>,
    master: NodeId,
    peers: &[NodeId],
    bytes: f64,
    tag: FlowTag,
    on_done: FlowCallback<S>,
) {
    let edges = peers
        .iter()
        .filter(|&&p| p != master)
        .map(|&p| (p, master, bytes))
        .collect();
    run_edges(world, sim, edges, tag, on_done);
}

/// Per-flow achievable rate between two endpoints: bottleneck capacity ×
/// path efficiency (the quantity NCCL's ring construction maximizes).
pub fn pair_capacity(topo: &mut Topology, a: NodeId, b: NodeId) -> f64 {
    match topo.route(a, b) {
        Some(r) if !r.hops.is_empty() => {
            let bottleneck = r
                .hops
                .iter()
                .map(|dl| topo.capacity(*dl))
                .fold(f64::INFINITY, f64::min);
            bottleneck * r.path_efficiency
        }
        Some(_) => f64::INFINITY, // same node
        None => 0.0,
    }
}

/// Plan a ring order over `members` that **maximizes the bottleneck edge
/// capacity** — what NCCL's ring construction optimizes. For up to 12
/// members this is solved exactly: descend through the distinct pairwise
/// capacities and take the first threshold admitting a Hamiltonian cycle
/// (backtracking; deterministic neighbor order). Larger sets fall back to
/// the greedy nearest-neighbor heuristic.
///
/// On the host's hybrid cube mesh this picks an all-direct-NVLink ring
/// (18 GB/s bottleneck — no two ring edges share a link); in mixed
/// local/Falcon sets it yields exactly two slow host-crossing edges.
pub fn plan_ring(topo: &mut Topology, members: &[NodeId]) -> Vec<NodeId> {
    assert!(!members.is_empty());
    let n = members.len();
    if n <= 2 {
        return members.to_vec();
    }

    // Pairwise per-flow capacities.
    let mut caps = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                caps[i][j] = pair_capacity(topo, members[i], members[j]);
            }
        }
    }

    if n <= 12 {
        // Candidate bottlenecks, descending.
        let mut thresholds: Vec<f64> = caps
            .iter()
            .flatten()
            .copied()
            .filter(|&c| c > 0.0)
            .collect();
        thresholds.sort_by(|a, b| b.partial_cmp(a).expect("finite capacity"));
        thresholds.dedup();
        for theta in thresholds {
            if let Some(order) = hamiltonian_cycle(n, |i, j| caps[i][j] >= theta) {
                return order.into_iter().map(|i| members[i]).collect();
            }
        }
    }

    // Greedy fallback (also used for very large member sets).
    let mut remaining: Vec<usize> = (1..n).collect();
    let mut ring = vec![0usize];
    while !remaining.is_empty() {
        let last = *ring.last().unwrap();
        let (best_pos, _) = remaining
            .iter()
            .enumerate()
            .fold((usize::MAX, f64::NEG_INFINITY), |acc, (pos, &m)| {
                if caps[last][m] > acc.1 {
                    (pos, caps[last][m])
                } else {
                    acc
                }
            });
        ring.push(remaining.remove(best_pos));
    }
    ring.into_iter().map(|i| members[i]).collect()
}

/// Find a Hamiltonian cycle of `0..n` under `adj` by backtracking
/// (deterministic: neighbors tried in index order). Returns the vertex
/// order starting at 0, or `None`.
fn hamiltonian_cycle(n: usize, adj: impl Fn(usize, usize) -> bool) -> Option<Vec<usize>> {
    fn dfs(
        n: usize,
        adj: &impl Fn(usize, usize) -> bool,
        path: &mut Vec<usize>,
        visited: &mut u32,
    ) -> bool {
        if path.len() == n {
            return adj(*path.last().unwrap(), path[0]);
        }
        let last = *path.last().unwrap();
        for next in 0..n {
            if *visited & (1 << next) == 0 && adj(last, next) {
                *visited |= 1 << next;
                path.push(next);
                if dfs(n, adj, path, visited) {
                    return true;
                }
                path.pop();
                *visited &= !(1 << next);
            }
        }
        false
    }
    let mut path = vec![0usize];
    let mut visited = 1u32;
    dfs(n, &adj, &mut path, &mut visited).then_some(path)
}

/// The per-flow capacity of the slowest edge of a ring — the ring's
/// steady-state bandwidth.
pub fn ring_bottleneck(topo: &mut Topology, ring: &[NodeId]) -> f64 {
    let n = ring.len();
    (0..n)
        .map(|i| pair_capacity(topo, ring[i], ring[(i + 1) % n]))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;
    use devices::catalog::wire_cube_mesh;
    use devices::gpu::{add_gpu, GpuSpec};
    use fabric::{FabricState, LinkClass, LinkSpec, NodeKind, GB};

    struct World {
        fabric: FabricState<World>,
        done_at: Vec<SimTime>,
    }

    impl FlowWorld for World {
        fn fabric(&mut self) -> &mut FabricState<World> {
            &mut self.fabric
        }
    }

    fn done() -> FlowCallback<World> {
        Box::new(|w: &mut World, sim| w.done_at.push(sim.now()))
    }

    /// Eight local SXM2 GPUs in the hybrid cube mesh.
    fn local_mesh() -> (World, Vec<NodeId>) {
        let mut topo = Topology::new();
        let spec = GpuSpec::v100_sxm2_16gb();
        let gpus: Vec<_> = (0..8)
            .map(|i| add_gpu(&mut topo, &format!("g{i}"), &spec))
            .collect();
        wire_cube_mesh(&mut topo, &gpus);
        let cores = gpus.iter().map(|g| g.core).collect();
        (
            World {
                fabric: FabricState::new(topo),
                done_at: Vec::new(),
            },
            cores,
        )
    }

    /// Four GPUs on a single PCIe switch (one Falcon drawer).
    fn drawer() -> (World, Vec<NodeId>) {
        let mut topo = Topology::new();
        let sw = topo.add_node("sw", NodeKind::PcieSwitch);
        let spec = GpuSpec::v100_pcie_16gb();
        let cores: Vec<_> = (0..4)
            .map(|i| {
                let g = add_gpu(&mut topo, &format!("f{i}"), &spec);
                topo.add_link(g.port, sw, LinkSpec::of(LinkClass::PcieGen4x16));
                g.core
            })
            .collect();
        (
            World {
                fabric: FabricState::new(topo),
                done_at: Vec::new(),
            },
            cores,
        )
    }

    #[test]
    fn planned_local_ring_stays_on_nvlink() {
        let (mut w, cores) = local_mesh();
        let ring = plan_ring(&mut w.fabric.topo, &cores);
        assert_eq!(ring.len(), 8);
        // Every consecutive pair must be a direct NVLink hop.
        for i in 0..8 {
            let r = w
                .fabric
                .topo
                .route(ring[i], ring[(i + 1) % 8])
                .unwrap();
            assert!(
                r.hop_count() <= 2,
                "edge {i} takes {} hops",
                r.hop_count()
            );
        }
        // Ring bandwidth is bounded by a 1-brick NVLink edge: 18 GB/s.
        let bw = ring_bottleneck(&mut w.fabric.topo, &ring);
        assert!((bw / GB - 18.0).abs() < 1.0, "ring bottleneck {} GB/s", bw / GB);
    }

    #[test]
    fn allreduce_time_matches_ring_model_on_drawer() {
        let (mut w, cores) = drawer();
        let mut sim: Sim<World> = Sim::new();
        let ring = plan_ring(&mut w.fabric.topo, &cores);
        let bytes = 512e6; // 512 MB gradients
        ring_allreduce(&mut w, &mut sim, &ring, bytes, FlowTag::COLLECTIVE, done());
        sim.run(&mut w);
        assert_eq!(w.done_at.len(), 1);
        // Within a drawer, edges are independent (distinct slot links):
        // time = 2(n-1)/n * M / (13.3 GB/s DMA * 0.92 switch eff).
        let expected = 2.0 * 3.0 / 4.0 * bytes / (13.3e9 * 0.92);
        let got = w.done_at[0].as_secs_f64();
        assert!(
            (got - expected).abs() / expected < 0.02,
            "allreduce {got}s vs {expected}s"
        );
    }

    #[test]
    fn allreduce_on_nvlink_is_much_faster() {
        let bytes = 512e6;
        let (mut w, cores) = local_mesh();
        let mut sim: Sim<World> = Sim::new();
        let ring = plan_ring(&mut w.fabric.topo, &cores);
        ring_allreduce(&mut w, &mut sim, &ring, bytes, FlowTag::COLLECTIVE, done());
        sim.run(&mut w);
        let local = w.done_at[0].as_secs_f64();

        let (mut w2, cores2) = drawer();
        let mut sim2: Sim<World> = Sim::new();
        let ring2 = plan_ring(&mut w2.fabric.topo, &cores2);
        ring_allreduce(&mut w2, &mut sim2, &ring2, bytes, FlowTag::COLLECTIVE, done());
        sim2.run(&mut w2);
        let falcon = w2.done_at[0].as_secs_f64();

        // NVLink ring (18 GB/s) ≈ 1.5x the drawer ring (12.2 GB/s), and the
        // 8-member ring moves more per edge than the 4-member one.
        assert!(falcon / local > 1.1, "local {local} falcon {falcon}");
    }

    #[test]
    fn single_member_collectives_complete_immediately() {
        let (mut w, cores) = drawer();
        let mut sim: Sim<World> = Sim::new();
        ring_allreduce(&mut w, &mut sim, &cores[..1], 1e9, FlowTag::COLLECTIVE, done());
        reduce_scatter(&mut w, &mut sim, &cores[..1], 1e9, FlowTag::COLLECTIVE, done());
        sim.run(&mut w);
        assert_eq!(w.done_at.len(), 2);
        assert_eq!(w.done_at[0], SimTime::ZERO);
    }

    #[test]
    fn reduce_scatter_is_half_of_allreduce() {
        let bytes = 512e6;
        let run = |use_rs: bool| {
            let (mut w, cores) = drawer();
            let mut sim: Sim<World> = Sim::new();
            let ring = plan_ring(&mut w.fabric.topo, &cores);
            if use_rs {
                reduce_scatter(&mut w, &mut sim, &ring, bytes, FlowTag::COLLECTIVE, done());
            } else {
                ring_allreduce(&mut w, &mut sim, &ring, bytes, FlowTag::COLLECTIVE, done());
            }
            sim.run(&mut w);
            w.done_at[0].as_secs_f64()
        };
        let ar = run(false);
        let rs = run(true);
        assert!((ar / rs - 2.0).abs() < 0.02, "ar {ar} rs {rs}");
    }

    #[test]
    fn star_broadcast_contends_at_the_master() {
        let (mut w, cores) = drawer();
        let mut sim: Sim<World> = Sim::new();
        let bytes = 1e9;
        star_broadcast(
            &mut w,
            &mut sim,
            cores[0],
            &cores[1..],
            bytes,
            FlowTag::COLLECTIVE,
            done(),
        );
        sim.run(&mut w);
        // Three 1 GB copies share the master's 13.3 GB/s DMA engine:
        // ~3 GB / 13.3 GB/s ≈ 0.2256 s — not 1 GB / 12.2.
        let got = w.done_at[0].as_secs_f64();
        let expected = 3.0 * bytes / 13.3e9;
        assert!((got - expected).abs() / expected < 0.05, "{got} vs {expected}");
    }

    #[test]
    fn star_reduce_matches_broadcast_by_symmetry() {
        let bytes = 1e9;
        let run = |bcast: bool| {
            let (mut w, cores) = drawer();
            let mut sim: Sim<World> = Sim::new();
            if bcast {
                star_broadcast(&mut w, &mut sim, cores[0], &cores[1..], bytes, FlowTag::COLLECTIVE, done());
            } else {
                star_reduce(&mut w, &mut sim, cores[0], &cores[1..], bytes, FlowTag::COLLECTIVE, done());
            }
            sim.run(&mut w);
            w.done_at[0].as_secs_f64()
        };
        let b = run(true);
        let r = run(false);
        assert!((b - r).abs() / b < 1e-6);
    }

    #[test]
    fn pair_capacity_orders_links() {
        let (mut w, cores) = local_mesh();
        // 0-3 is a 2-brick edge, 0-1 a 1-brick edge.
        let fast = pair_capacity(&mut w.fabric.topo, cores[0], cores[3]);
        let slow = pair_capacity(&mut w.fabric.topo, cores[0], cores[1]);
        assert!((fast / slow - 2.0).abs() < 1e-9);
    }
}
