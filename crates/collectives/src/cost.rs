//! Closed-form α-β cost model for ring collectives.
//!
//! Used as an analytic cross-check of the flow simulation (tests assert
//! the two agree on uncontended topologies) and by the topology
//! recommender for fast screening before full simulation.

use desim::Dur;

/// Cost breakdown of a ring collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingCost {
    /// Latency term: 2(n−1) hops of edge latency (α).
    pub latency: Dur,
    /// Bandwidth term: per-edge volume over bottleneck edge rate (β).
    pub transfer: Dur,
}

impl RingCost {
    pub fn total(&self) -> Dur {
        self.latency + self.transfer
    }
}

/// α-β estimate of a ring allreduce of `bytes` over `n` members whose
/// slowest edge sustains `bottleneck_rate` (bytes/s per flow) with
/// `edge_latency` per step.
pub fn alpha_beta_allreduce(
    n: usize,
    bytes: f64,
    bottleneck_rate: f64,
    edge_latency: Dur,
) -> RingCost {
    assert!(bottleneck_rate > 0.0);
    if n <= 1 {
        return RingCost {
            latency: Dur::ZERO,
            transfer: Dur::ZERO,
        };
    }
    let steps = 2 * (n - 1);
    let per_edge = 2.0 * (n as f64 - 1.0) / n as f64 * bytes;
    RingCost {
        latency: edge_latency * steps as u64,
        transfer: Dur::for_bytes(per_edge, bottleneck_rate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_ring_is_free() {
        let c = alpha_beta_allreduce(1, 1e9, 1e9, Dur::from_micros(2));
        assert_eq!(c.total(), Dur::ZERO);
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        let c = alpha_beta_allreduce(8, 1e9, 10e9, Dur::from_micros(2));
        assert!(c.transfer > c.latency * 100u64);
        // 2*7/8 GB at 10 GB/s = 175 ms.
        assert!((c.transfer.as_secs_f64() - 0.175).abs() < 1e-6);
    }

    #[test]
    fn latency_term_dominates_small_messages() {
        let c = alpha_beta_allreduce(8, 1024.0, 10e9, Dur::from_micros(2));
        assert!(c.latency > c.transfer);
        assert_eq!(c.latency, Dur::from_micros(28));
    }

    #[test]
    fn more_members_amortize_volume() {
        // Per-edge volume 2(n-1)/n * M approaches 2M; the *time* per byte of
        // payload therefore saturates rather than growing with n.
        let c4 = alpha_beta_allreduce(4, 1e9, 10e9, Dur::ZERO);
        let c16 = alpha_beta_allreduce(16, 1e9, 10e9, Dur::ZERO);
        let ratio = c16.transfer.as_secs_f64() / c4.transfer.as_secs_f64();
        assert!(ratio < 1.3, "ratio {ratio}");
    }
}
