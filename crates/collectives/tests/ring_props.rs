//! Property tests for ring planning: the planner must return a
//! permutation whose bottleneck is optimal (verified against brute force
//! for small member counts) on arbitrary random fabrics.

use collectives::{pair_capacity, plan_ring, ring_bottleneck};
use desim::Dur;
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology, GB};
use proptest::prelude::*;

/// Random connected topology: `n` GPUs, a base switch connecting everyone
/// (so routes always exist), plus random direct links with random
/// capacities.
fn random_fabric(n: usize, extra: &[(usize, usize, f64)]) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let sw = t.add_node("sw", NodeKind::PcieSwitch);
    let gpus: Vec<NodeId> = (0..n)
        .map(|i| {
            let g = t.add_node(format!("g{i}"), NodeKind::Gpu);
            t.add_link(
                g,
                sw,
                LinkSpec::of(LinkClass::PcieGen4x16)
                    .with_capacity(8.0 * GB)
                    .with_latency(Dur::from_nanos(200)),
            );
            g
        })
        .collect();
    for &(a, b, cap) in extra {
        if a != b {
            t.add_link(
                gpus[a],
                gpus[b],
                LinkSpec::of(LinkClass::NvLink2 { lanes: 1 }).with_capacity(cap * GB),
            );
        }
    }
    (t, gpus)
}

/// Brute-force optimal bottleneck over all cyclic orders.
fn brute_force_best(topo: &mut Topology, members: &[NodeId]) -> f64 {
    fn permute(rest: &mut Vec<NodeId>, acc: &mut Vec<NodeId>, best: &mut f64, topo: &mut Topology) {
        if rest.is_empty() {
            let b = ring_bottleneck(topo, acc);
            if b > *best {
                *best = b;
            }
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            acc.push(x);
            permute(rest, acc, best, topo);
            acc.pop();
            rest.insert(i, x);
        }
    }
    let mut best = 0.0;
    let mut acc = vec![members[0]];
    let mut rest = members[1..].to_vec();
    permute(&mut rest, &mut acc, &mut best, topo);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planned rings are permutations of the members.
    #[test]
    fn ring_is_a_permutation(
        n in 3usize..9,
        extra in proptest::collection::vec((0usize..9, 0usize..9, 5.0f64..60.0), 0..10)
    ) {
        let extra: Vec<_> = extra.into_iter().filter(|&(a, b, _)| a < n && b < n).collect();
        let (topo, gpus) = random_fabric(n, &extra);
        let mut t = topo;
        let ring = plan_ring(&mut t, &gpus);
        let mut sorted = ring.clone();
        sorted.sort();
        let mut expect = gpus.clone();
        expect.sort();
        prop_assert_eq!(sorted, expect);
    }

    /// For small n the planner's bottleneck equals the brute-force optimum.
    #[test]
    fn bottleneck_is_optimal(
        n in 3usize..7,
        extra in proptest::collection::vec((0usize..7, 0usize..7, 5.0f64..60.0), 0..8)
    ) {
        let extra: Vec<_> = extra.into_iter().filter(|&(a, b, _)| a < n && b < n).collect();
        let (topo, gpus) = random_fabric(n, &extra);
        let mut t = topo;
        let ring = plan_ring(&mut t, &gpus);
        let planned = ring_bottleneck(&mut t, &ring);
        let best = brute_force_best(&mut t, &gpus);
        prop_assert!(
            planned >= best * (1.0 - 1e-9),
            "planned {planned} < optimal {best}"
        );
    }

    /// Pair capacity is symmetric on these undirected fabrics and positive
    /// between all connected pairs.
    #[test]
    fn pair_capacity_symmetric(
        n in 3usize..8,
        extra in proptest::collection::vec((0usize..8, 0usize..8, 5.0f64..60.0), 0..8)
    ) {
        let extra: Vec<_> = extra.into_iter().filter(|&(a, b, _)| a < n && b < n).collect();
        let (topo, gpus) = random_fabric(n, &extra);
        let mut t = topo;
        for i in 0..n {
            for j in (i + 1)..n {
                let ab = pair_capacity(&mut t, gpus[i], gpus[j]);
                let ba = pair_capacity(&mut t, gpus[j], gpus[i]);
                prop_assert!(ab > 0.0);
                prop_assert!((ab - ba).abs() < 1e-6 * ab, "{ab} vs {ba}");
            }
        }
    }
}
