//! Property tests for ring planning: the planner must return a
//! permutation whose bottleneck is optimal (verified against brute force
//! for small member counts) on arbitrary random fabrics.
//!
//! Invariants covered (testkit, 64 cases each — raised from 48 under
//! proptest):
//! * planned rings are permutations of the members;
//! * the planner's bottleneck equals the brute-force optimum (small n);
//! * pair capacity is symmetric and positive between connected pairs.

use collectives::{pair_capacity, plan_ring, ring_bottleneck};
use desim::Dur;
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology, GB};
use testkit::{f64_in, prop_assert, prop_assert_eq, property, tuple3, usize_in, vec_of};

/// Random connected topology: `n` GPUs, a base switch connecting everyone
/// (so routes always exist), plus random direct links with random
/// capacities.
fn random_fabric(n: usize, extra: &[(usize, usize, f64)]) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let sw = t.add_node("sw", NodeKind::PcieSwitch);
    let gpus: Vec<NodeId> = (0..n)
        .map(|i| {
            let g = t.add_node(format!("g{i}"), NodeKind::Gpu);
            t.add_link(
                g,
                sw,
                LinkSpec::of(LinkClass::PcieGen4x16)
                    .with_capacity(8.0 * GB)
                    .with_latency(Dur::from_nanos(200)),
            );
            g
        })
        .collect();
    for &(a, b, cap) in extra {
        if a != b {
            t.add_link(
                gpus[a],
                gpus[b],
                LinkSpec::of(LinkClass::NvLink2 { lanes: 1 }).with_capacity(cap * GB),
            );
        }
    }
    (t, gpus)
}

/// Brute-force optimal bottleneck over all cyclic orders.
fn brute_force_best(topo: &mut Topology, members: &[NodeId]) -> f64 {
    fn permute(rest: &mut Vec<NodeId>, acc: &mut Vec<NodeId>, best: &mut f64, topo: &mut Topology) {
        if rest.is_empty() {
            let b = ring_bottleneck(topo, acc);
            if b > *best {
                *best = b;
            }
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            acc.push(x);
            permute(rest, acc, best, topo);
            acc.pop();
            rest.insert(i, x);
        }
    }
    let mut best = 0.0;
    let mut acc = vec![members[0]];
    let mut rest = members[1..].to_vec();
    permute(&mut rest, &mut acc, &mut best, topo);
    best
}

property! {
    /// Planned rings are permutations of the members.
    #[cases(64)]
    fn ring_is_a_permutation(
        n in usize_in(3..9),
        extra in vec_of(tuple3(usize_in(0..9), usize_in(0..9), f64_in(5.0, 60.0)), 0..10)
    ) {
        let extra: Vec<_> = extra.into_iter().filter(|&(a, b, _)| a < n && b < n).collect();
        let (topo, gpus) = random_fabric(n, &extra);
        let mut t = topo;
        let ring = plan_ring(&mut t, &gpus);
        let mut sorted = ring.clone();
        sorted.sort();
        let mut expect = gpus.clone();
        expect.sort();
        prop_assert_eq!(sorted, expect);
    }

    /// For small n the planner's bottleneck equals the brute-force optimum.
    #[cases(64)]
    fn bottleneck_is_optimal(
        n in usize_in(3..7),
        extra in vec_of(tuple3(usize_in(0..7), usize_in(0..7), f64_in(5.0, 60.0)), 0..8)
    ) {
        let extra: Vec<_> = extra.into_iter().filter(|&(a, b, _)| a < n && b < n).collect();
        let (topo, gpus) = random_fabric(n, &extra);
        let mut t = topo;
        let ring = plan_ring(&mut t, &gpus);
        let planned = ring_bottleneck(&mut t, &ring);
        let best = brute_force_best(&mut t, &gpus);
        prop_assert!(
            planned >= best * (1.0 - 1e-9),
            "planned {planned} < optimal {best}"
        );
    }

    /// Pair capacity is symmetric on these undirected fabrics and positive
    /// between all connected pairs.
    #[cases(64)]
    fn pair_capacity_symmetric(
        n in usize_in(3..8),
        extra in vec_of(tuple3(usize_in(0..8), usize_in(0..8), f64_in(5.0, 60.0)), 0..8)
    ) {
        let extra: Vec<_> = extra.into_iter().filter(|&(a, b, _)| a < n && b < n).collect();
        let (topo, gpus) = random_fabric(n, &extra);
        let mut t = topo;
        for i in 0..n {
            for j in (i + 1)..n {
                let ab = pair_capacity(&mut t, gpus[i], gpus[j]);
                let ba = pair_capacity(&mut t, gpus[j], gpus[i]);
                prop_assert!(ab > 0.0);
                prop_assert!((ab - ba).abs() < 1e-6 * ab, "{ab} vs {ba}");
            }
        }
    }
}
