//! Roofline kernel-time estimation.
//!
//! A GPU kernel is characterized by the FLOPs it performs and the HBM bytes
//! it touches. Its execution time is the max of the compute-limited and
//! memory-limited times, each discounted by an achievable-fraction
//! efficiency. The estimator also reports *which* roof bound the kernel —
//! aggregated over a training step this yields the "% of time the model
//! spent accessing GPU memory" metric of the paper's Figure 10.

use desim::Dur;

/// Numeric precision of a kernel (affects peak FLOPs and bytes moved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE single precision on the FP32 pipeline.
    Fp32,
    /// Mixed precision: FP16 storage/compute on tensor cores with an FP32
    /// master copy (NVIDIA AMP, as used for all paper experiments).
    Fp16,
}

impl Precision {
    /// Bytes per element for activations/parameters at this precision.
    pub fn bytes_per_element(self) -> f64 {
        match self {
            Precision::Fp32 => 4.0,
            Precision::Fp16 => 2.0,
        }
    }
}

/// The outcome of a roofline estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTime {
    /// Wall-clock kernel duration.
    pub total: Dur,
    /// The compute-limited time component.
    pub compute_time: Dur,
    /// The memory-limited time component.
    pub mem_time: Dur,
}

impl KernelTime {
    pub const ZERO: KernelTime = KernelTime {
        total: Dur::ZERO,
        compute_time: Dur::ZERO,
        mem_time: Dur::ZERO,
    };

    /// True when HBM bandwidth, not the ALUs, bounds this kernel.
    pub fn memory_bound(&self) -> bool {
        self.mem_time > self.compute_time
    }

    /// Fraction of the kernel's duration attributable to memory traffic
    /// (1.0 for fully memory-bound kernels). Used for Fig 10's
    /// memory-access-time percentage.
    pub fn mem_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            self.mem_time.as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Accumulate another kernel (sequential execution).
    pub fn accumulate(&mut self, other: KernelTime) {
        self.total += other.total;
        self.compute_time += other.compute_time;
        self.mem_time += other.mem_time;
    }

    /// Scale all components (e.g. backward ≈ 2× forward).
    pub fn scaled(self, factor: f64) -> KernelTime {
        KernelTime {
            total: self.total * factor,
            compute_time: self.compute_time * factor,
            mem_time: self.mem_time * factor,
        }
    }
}

/// Estimate a kernel's duration.
///
/// * `flops` — floating-point operations performed.
/// * `mem_bytes` — HBM bytes read + written.
/// * `peak_flops` — device peak for the precision in use (FLOP/s).
/// * `compute_eff` — achievable fraction of peak for this kernel class
///   (dense conv ≈ 0.45, depthwise conv ≈ 0.08, GEMM ≈ 0.55, …).
/// * `mem_bw` — achievable HBM bandwidth (bytes/s, already de-rated).
/// * `launch_overhead` — fixed per-kernel cost (driver + launch).
pub fn kernel_time(
    flops: f64,
    mem_bytes: f64,
    peak_flops: f64,
    compute_eff: f64,
    mem_bw: f64,
    launch_overhead: Dur,
) -> KernelTime {
    assert!(flops >= 0.0 && mem_bytes >= 0.0);
    assert!(peak_flops > 0.0 && mem_bw > 0.0);
    assert!(compute_eff > 0.0 && compute_eff <= 1.0);
    let compute_time = Dur::from_secs_f64(flops / (peak_flops * compute_eff));
    let mem_time = Dur::from_secs_f64(mem_bytes / mem_bw);
    KernelTime {
        total: compute_time.max(mem_time) + launch_overhead,
        compute_time,
        mem_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_kernel() {
        // 1 TFLOP at 10 TFLOP/s effective = 100 ms; tiny memory traffic.
        let k = kernel_time(1e12, 1e6, 20e12, 0.5, 800e9, Dur::ZERO);
        assert_eq!(k.total, Dur::from_millis(100));
        assert!(!k.memory_bound());
        assert!(k.mem_fraction() < 0.01);
    }

    #[test]
    fn memory_bound_kernel() {
        // 80 GB of traffic at 800 GB/s = 100 ms; negligible FLOPs.
        let k = kernel_time(1e9, 80e9, 20e12, 0.5, 800e9, Dur::ZERO);
        assert_eq!(k.total, Dur::from_millis(100));
        assert!(k.memory_bound());
        assert!((k.mem_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn launch_overhead_is_added() {
        let k = kernel_time(0.0, 0.0, 1e12, 0.5, 1e9, Dur::from_micros(5));
        assert_eq!(k.total, Dur::from_micros(5));
    }

    #[test]
    fn accumulate_sums_components() {
        let mut acc = KernelTime::ZERO;
        let a = kernel_time(1e12, 1e6, 20e12, 0.5, 800e9, Dur::ZERO);
        let b = kernel_time(1e9, 80e9, 20e12, 0.5, 800e9, Dur::ZERO);
        acc.accumulate(a);
        acc.accumulate(b);
        assert_eq!(acc.total, a.total + b.total);
        assert_eq!(acc.mem_time, a.mem_time + b.mem_time);
    }

    #[test]
    fn scaled_multiplies_all() {
        let a = kernel_time(1e12, 1e6, 20e12, 0.5, 800e9, Dur::ZERO);
        let s = a.scaled(2.0);
        assert_eq!(s.total, a.total * 2u64);
        assert_eq!(s.compute_time, a.compute_time * 2u64);
    }

    #[test]
    fn precision_element_sizes() {
        assert_eq!(Precision::Fp32.bytes_per_element(), 4.0);
        assert_eq!(Precision::Fp16.bytes_per_element(), 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_efficiency() {
        let _ = kernel_time(1.0, 1.0, 1e12, 1.5, 1e9, Dur::ZERO);
    }
}
