//! Host CPU model.
//!
//! The hosts carry two Intel Xeon Gold 6148 sockets (20 cores each at
//! 2.4 GHz). In DL training the CPUs matter for the *data pipeline* —
//! JPEG decode, augmentation, tokenization — which the paper observes
//! stresses vision workloads far more than NLP (Fig 13). The model here is
//! a worker-pool throughput model: preprocessing costs core-seconds per
//! sample; `workers` cores process samples concurrently.

use desim::Dur;

/// Static description of the host CPU complex.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    pub name: String,
    /// Total physical cores across sockets.
    pub cores: u32,
    /// Sustained all-core clock (Hz) — used only for documentation.
    pub clock_hz: f64,
}

impl CpuSpec {
    /// 2 × Intel Xeon Gold 6148 (paper §II-A): 40 cores total.
    pub fn dual_xeon_6148() -> CpuSpec {
        CpuSpec {
            name: "2x Intel Xeon Gold 6148".to_string(),
            cores: 40,
            clock_hz: 2.4e9,
        }
    }

    /// Steady-state preprocessing throughput (samples/s) with `workers`
    /// dataloader workers, each consuming `per_sample` core-time.
    pub fn pipeline_throughput(&self, workers: u32, per_sample: Dur) -> f64 {
        assert!(workers > 0);
        let w = workers.min(self.cores) as f64;
        if per_sample.is_zero() {
            return f64::INFINITY;
        }
        w / per_sample.as_secs_f64()
    }

    /// Time for `workers` cores to preprocess a batch of `samples`.
    pub fn batch_time(&self, workers: u32, per_sample: Dur, samples: u64) -> Dur {
        let tput = self.pipeline_throughput(workers, per_sample);
        if tput.is_infinite() {
            Dur::ZERO
        } else {
            Dur::from_secs_f64(samples as f64 / tput)
        }
    }

    /// CPU utilization (fraction of all cores) while sustaining
    /// `samples_per_sec` of preprocessing at `per_sample` cost.
    pub fn utilization(&self, samples_per_sec: f64, per_sample: Dur) -> f64 {
        (samples_per_sec * per_sample.as_secs_f64() / self.cores as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_has_forty_cores() {
        let c = CpuSpec::dual_xeon_6148();
        assert_eq!(c.cores, 40);
    }

    #[test]
    fn throughput_scales_with_workers() {
        let c = CpuSpec::dual_xeon_6148();
        let t8 = c.pipeline_throughput(8, Dur::from_millis(2));
        let t16 = c.pipeline_throughput(16, Dur::from_millis(2));
        assert!((t16 / t8 - 2.0).abs() < 1e-9);
        assert!((t8 - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn workers_capped_at_core_count() {
        let c = CpuSpec::dual_xeon_6148();
        let t40 = c.pipeline_throughput(40, Dur::from_millis(1));
        let t99 = c.pipeline_throughput(99, Dur::from_millis(1));
        assert_eq!(t40, t99);
    }

    #[test]
    fn batch_time_and_zero_cost() {
        let c = CpuSpec::dual_xeon_6148();
        // 8 workers, 2 ms/sample, 80 samples -> 10 samples each -> 20 ms.
        let t = c.batch_time(8, Dur::from_millis(2), 80);
        assert_eq!(t, Dur::from_millis(20));
        assert_eq!(c.batch_time(8, Dur::ZERO, 80), Dur::ZERO);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let c = CpuSpec::dual_xeon_6148();
        // 10k samples/s at 2 ms/sample = 20 core-seconds per second = 50%.
        let u = c.utilization(10_000.0, Dur::from_millis(2));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(c.utilization(1e9, Dur::from_millis(2)), 1.0);
    }
}
