//! Device catalog and fabric-level calibration constants.
//!
//! Everything tunable that was fitted against the paper's own measurements
//! is collected in [`Calibration`] so the provenance of each number is
//! auditable in one place. The catalog also provides the NVLink
//! hybrid-cube-mesh wiring of the host's 8 SXM2 GPUs (paper Fig 7).

use crate::gpu::GpuNodes;
use crate::GB;
use fabric::{LinkClass, LinkId, LinkSpec, Topology};

/// The calibrated constants of the simulation, with their targets.
///
/// | Constant | Value | Fitted against |
/// |---|---|---|
/// | NVLink efficiency | 0.72 | Table IV L-L 72.37 GB/s bidirectional |
/// | GPU DMA engine | 13.3 GB/s | Table IV F-F 24.47 GB/s (× switch p2p eff) |
/// | PCIe switch p2p efficiency | 0.92 | Table IV F-F |
/// | Root-complex p2p efficiency | 0.80 | Table IV F-L 19.64 GB/s |
/// | Root-complex forwarding | 400 ns | Table IV F-L 2.66 µs |
/// | P2P software overhead | 1.15 µs | Table IV L-L 1.85 µs |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    pub nvlink_efficiency: f64,
    pub gpu_dma_bandwidth: f64,
    pub switch_p2p_efficiency: f64,
    pub root_complex_p2p_efficiency: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            nvlink_efficiency: LinkClass::NvLink2 { lanes: 1 }.default_efficiency(),
            gpu_dma_bandwidth: 13.3 * GB,
            switch_p2p_efficiency: fabric::NodeKind::PcieSwitch.p2p_efficiency(),
            root_complex_p2p_efficiency: fabric::NodeKind::RootComplex.p2p_efficiency(),
        }
    }
}

/// The NVLink hybrid cube mesh of a DGX-1V-style 8-GPU baseboard
/// (paper Fig 7): `(a, b, bricks)` with each GPU using exactly its six
/// NVLink2 bricks.
pub const HYBRID_CUBE_MESH: [(usize, usize, u8); 16] = [
    (0, 1, 1),
    (0, 2, 1),
    (0, 3, 2),
    (0, 4, 2),
    (1, 2, 2),
    (1, 3, 1),
    (1, 5, 2),
    (2, 3, 1),
    (2, 6, 2),
    (3, 7, 2),
    (4, 5, 1),
    (4, 6, 1),
    (4, 7, 2),
    (5, 6, 2),
    (5, 7, 1),
    (6, 7, 1),
];

/// Wire eight GPU cores with the hybrid cube mesh. Returns the created
/// NVLink link ids.
pub fn wire_cube_mesh(topo: &mut Topology, gpus: &[GpuNodes]) -> Vec<LinkId> {
    assert_eq!(gpus.len(), 8, "the cube mesh is an 8-GPU fabric");
    HYBRID_CUBE_MESH
        .iter()
        .map(|&(a, b, lanes)| {
            topo.add_link(
                gpus[a].core,
                gpus[b].core,
                LinkSpec::of(LinkClass::NvLink2 { lanes }),
            )
        })
        .collect()
}

/// A single NCCL-style ring order that stays on NVLink in the cube mesh:
/// every consecutive pair (cyclically) is directly NVLink-connected.
pub const CUBE_MESH_RING: [usize; 8] = [0, 1, 2, 3, 7, 6, 5, 4];

/// Check that `ring` only crosses direct NVLink edges of the cube mesh.
pub fn ring_stays_on_nvlink(ring: &[usize]) -> bool {
    ring.iter()
        .zip(ring.iter().cycle().skip(1))
        .take(ring.len())
        .all(|(&a, &b)| {
            HYBRID_CUBE_MESH
                .iter()
                .any(|&(x, y, _)| (x, y) == (a.min(b), a.max(b)))
        })
}

/// Convenience: all NVLink brick counts per GPU in the mesh.
pub fn bricks_per_gpu() -> [u8; 8] {
    let mut n = [0u8; 8];
    for &(a, b, lanes) in &HYBRID_CUBE_MESH {
        n[a] += lanes;
        n[b] += lanes;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{add_gpu, GpuSpec};

    #[test]
    fn every_gpu_uses_six_bricks() {
        assert_eq!(bricks_per_gpu(), [6; 8]);
    }

    #[test]
    fn canonical_ring_is_all_nvlink() {
        assert!(ring_stays_on_nvlink(&CUBE_MESH_RING));
        // A naive 0..7 ring crosses 7-0 which is not directly linked... in
        // fact 0-7 is absent from the mesh: verify the checker notices.
        assert!(!ring_stays_on_nvlink(&[0, 1, 2, 3, 4, 5, 6, 7]));
    }

    #[test]
    fn cube_mesh_wires_sixteen_links() {
        let mut t = Topology::new();
        let spec = GpuSpec::v100_sxm2_16gb();
        let gpus: Vec<_> = (0..8).map(|i| add_gpu(&mut t, &format!("g{i}"), &spec)).collect();
        let links = wire_cube_mesh(&mut t, &gpus);
        assert_eq!(links.len(), 16);
        // Neighboring cores route directly (1 hop).
        let r = t.route(gpus[0].core, gpus[3].core).unwrap();
        assert_eq!(r.hop_count(), 1);
    }

    #[test]
    fn two_brick_pairs_are_faster() {
        let mut t = Topology::new();
        let spec = GpuSpec::v100_sxm2_16gb();
        let gpus: Vec<_> = (0..8).map(|i| add_gpu(&mut t, &format!("g{i}"), &spec)).collect();
        wire_cube_mesh(&mut t, &gpus);
        // 0-3 has 2 bricks, 0-1 has 1.
        let r03 = t.route(gpus[0].core, gpus[3].core).unwrap();
        let r01 = t.route(gpus[0].core, gpus[1].core).unwrap();
        let c03 = t.capacity(r03.hops[0]);
        let c01 = t.capacity(r01.hops[0]);
        assert!((c03 / c01 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_reflects_fabric_constants() {
        let c = Calibration::default();
        assert!((c.nvlink_efficiency - 0.72).abs() < 1e-12);
        assert!((c.switch_p2p_efficiency - 0.92).abs() < 1e-12);
        assert!((c.root_complex_p2p_efficiency - 0.80).abs() < 1e-12);
    }
}
