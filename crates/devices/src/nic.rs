//! Network interface card model.
//!
//! Each host carries two Intel X540-AT2 10 GbE controllers (paper §II-A).
//! The DL benchmarks are single-host, so NICs do not shape the paper's
//! measurements — but the composable system inventories and attaches them
//! like any other PCIe device, so the model exists for completeness and
//! for the management plane's resource lists.

use crate::GB;
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology};

/// Static description of a NIC.
#[derive(Debug, Clone, PartialEq)]
pub struct NicSpec {
    pub name: String,
    /// Line rate per port (bytes/s).
    pub line_rate: f64,
    pub ports: u8,
}

impl NicSpec {
    /// Intel X540-AT2 dual-port 10 GbE.
    pub fn intel_x540() -> NicSpec {
        NicSpec {
            name: "Intel X540-AT2 10GbE".to_string(),
            line_rate: 1.25 * GB,
            ports: 2,
        }
    }

    pub fn aggregate_rate(&self) -> f64 {
        self.line_rate * f64::from(self.ports)
    }
}

/// Insert a NIC into the topology; returns its port-side node.
pub fn add_nic(topo: &mut Topology, name: &str, spec: &NicSpec) -> NodeId {
    let dev = topo.add_node(format!("{name}.mac"), NodeKind::Nic);
    let port = topo.add_node(format!("{name}.port"), NodeKind::DevicePort);
    topo.add_link(
        dev,
        port,
        LinkSpec::of(LinkClass::TenGbE).with_capacity(spec.aggregate_rate()),
    );
    port
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x540_rates() {
        let n = NicSpec::intel_x540();
        assert_eq!(n.ports, 2);
        assert!((n.aggregate_rate() - 2.5 * GB).abs() < 1e-6);
    }

    #[test]
    fn add_nic_wires_device() {
        let mut t = Topology::new();
        let port = add_nic(&mut t, "nic0", &NicSpec::intel_x540());
        assert_eq!(t.node(port).kind, NodeKind::DevicePort);
        assert_eq!(t.node_count(), 2);
    }
}
