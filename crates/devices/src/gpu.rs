//! GPU models.
//!
//! The test bed's GPUs are NVIDIA Tesla V100s: SXM2 modules in the host
//! (NVLink hybrid cube mesh) and PCIe cards in the Falcon drawers. Peak
//! numbers are the published ones; the DMA-engine rate and HBM de-rating
//! are calibrated jointly with the fabric so the paper's Table IV
//! microbenchmarks reproduce.

use crate::roofline::{kernel_time, KernelTime, Precision};
use crate::{GB, TFLOP};
use desim::Dur;
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology};

/// Static description of a GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    pub name: String,
    /// Peak FP32 throughput (FLOP/s).
    pub fp32_flops: f64,
    /// Peak mixed-precision (tensor-core) throughput (FLOP/s).
    pub fp16_flops: f64,
    /// HBM2 capacity in bytes.
    pub memory_bytes: f64,
    /// Peak HBM2 bandwidth (bytes/s).
    pub hbm_bandwidth: f64,
    /// Achievable fraction of peak HBM bandwidth for DL kernels.
    pub hbm_efficiency: f64,
    /// PCIe copy-engine rate (bytes/s per direction); bounds every H2D/D2H
    /// and P2P transfer through the PCIe port.
    pub dma_bandwidth: f64,
    /// NVLink bricks available (0 for PCIe cards).
    pub nvlink_bricks: u8,
    /// Fixed per-kernel launch overhead.
    pub launch_overhead: Dur,
}

impl GpuSpec {
    /// Tesla V100 SXM2 16 GB (the host's local GPUs).
    pub fn v100_sxm2_16gb() -> GpuSpec {
        GpuSpec {
            name: "Tesla V100-SXM2-16GB".to_string(),
            fp32_flops: 15.7 * TFLOP,
            fp16_flops: 125.0 * TFLOP,
            memory_bytes: 16.0 * GB,
            hbm_bandwidth: 900.0 * GB,
            hbm_efficiency: 0.75,
            dma_bandwidth: 13.3 * GB, // PCIe Gen3 x16 effective
            nvlink_bricks: 6,
            launch_overhead: Dur::from_micros(6),
        }
    }

    /// Tesla V100 PCIe 16 GB (the Falcon-attached GPUs). V100 silicon
    /// negotiates PCIe Gen3 even in a Gen4 fabric, so the DMA rate matches
    /// the SXM2 part; it simply has no NVLink. Nameplate boost peaks differ
    /// more (112 vs 125 TFLOPS) than sustained DL clocks do, so the
    /// sustained-equivalent peak sits ~4 % under the SXM2 part.
    pub fn v100_pcie_16gb() -> GpuSpec {
        GpuSpec {
            name: "Tesla V100-PCIE-16GB".to_string(),
            fp32_flops: 15.0 * TFLOP,
            fp16_flops: 120.0 * TFLOP,
            memory_bytes: 16.0 * GB,
            hbm_bandwidth: 900.0 * GB,
            hbm_efficiency: 0.75,
            dma_bandwidth: 13.3 * GB,
            nvlink_bricks: 0,
            launch_overhead: Dur::from_micros(6),
        }
    }

    /// Tesla P100 PCIe 16 GB (also present in the chassis; no tensor cores,
    /// FP16 runs at 2× FP32 on the FP16 pipeline).
    pub fn p100_pcie_16gb() -> GpuSpec {
        GpuSpec {
            name: "Tesla P100-PCIE-16GB".to_string(),
            fp32_flops: 9.3 * TFLOP,
            fp16_flops: 18.7 * TFLOP,
            memory_bytes: 16.0 * GB,
            hbm_bandwidth: 732.0 * GB,
            hbm_efficiency: 0.75,
            dma_bandwidth: 12.0 * GB,
            nvlink_bricks: 0,
            launch_overhead: Dur::from_micros(6),
        }
    }

    /// Peak FLOPs for a precision.
    pub fn peak_flops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp32 => self.fp32_flops,
            Precision::Fp16 => self.fp16_flops,
        }
    }

    /// Achievable HBM bandwidth.
    pub fn effective_hbm(&self) -> f64 {
        self.hbm_bandwidth * self.hbm_efficiency
    }

    /// Roofline estimate for one kernel on this GPU.
    pub fn kernel(
        &self,
        flops: f64,
        mem_bytes: f64,
        precision: Precision,
        compute_eff: f64,
    ) -> KernelTime {
        kernel_time(
            flops,
            mem_bytes,
            self.peak_flops(precision),
            compute_eff,
            self.effective_hbm(),
            self.launch_overhead,
        )
    }

    pub fn has_nvlink(&self) -> bool {
        self.nvlink_bricks > 0
    }
}

/// The fabric nodes of an instantiated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuNodes {
    /// The compute/HBM side; NVLink attaches here.
    pub core: NodeId,
    /// The PCIe bus interface; external PCIe links attach here.
    pub port: NodeId,
}

/// Insert a GPU into the topology as a `core —DMA→ port` pair. The caller
/// connects `port` onward (to a switch or root complex) and may connect
/// `core` to peers with NVLink.
pub fn add_gpu(topo: &mut Topology, name: &str, spec: &GpuSpec) -> GpuNodes {
    let core = topo.add_node(format!("{name}.core"), NodeKind::Gpu);
    let port = topo.add_node(format!("{name}.port"), NodeKind::DevicePort);
    topo.add_link(
        core,
        port,
        LinkSpec::of(LinkClass::PcieGen3x16)
            .with_capacity(spec.dma_bandwidth)
            .with_latency(Dur::ZERO),
    );
    GpuNodes { core, port }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_published_peaks() {
        let g = GpuSpec::v100_sxm2_16gb();
        assert!((g.fp32_flops / TFLOP - 15.7).abs() < 0.1);
        assert!((g.fp16_flops / TFLOP - 125.0).abs() < 1.0);
        assert_eq!(g.memory_bytes, 16.0 * GB);
        assert!(g.has_nvlink());
        assert!(!GpuSpec::v100_pcie_16gb().has_nvlink());
    }

    #[test]
    fn fp16_speedup_on_tensor_cores() {
        let g = GpuSpec::v100_sxm2_16gb();
        // A compute-bound GEMM: fp16 should be much faster than fp32.
        let f32t = g.kernel(1e12, 1e6, Precision::Fp32, 0.5).total;
        let f16t = g.kernel(1e12, 1e6, Precision::Fp16, 0.5).total;
        let speedup = f32t.as_secs_f64() / f16t.as_secs_f64();
        assert!(speedup > 4.0, "tensor cores speedup {speedup}");
    }

    #[test]
    fn p100_has_no_tensor_cores() {
        let g = GpuSpec::p100_pcie_16gb();
        assert!(g.fp16_flops / g.fp32_flops < 2.5);
    }

    #[test]
    fn add_gpu_builds_core_port_pair() {
        let mut t = Topology::new();
        let g = add_gpu(&mut t, "gpu0", &GpuSpec::v100_sxm2_16gb());
        assert_eq!(t.node(g.core).kind, NodeKind::Gpu);
        assert_eq!(t.node(g.port).kind, NodeKind::DevicePort);
        let r = t.route(g.core, g.port).unwrap();
        assert_eq!(r.hop_count(), 1);
    }

    #[test]
    fn kernel_uses_launch_overhead() {
        let g = GpuSpec::v100_sxm2_16gb();
        let k = g.kernel(0.0, 0.0, Precision::Fp16, 0.5);
        assert_eq!(k.total, g.launch_overhead);
    }
}
