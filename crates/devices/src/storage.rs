//! Storage device models.
//!
//! Three storage classes appear in the paper's configurations (Table III):
//! a locally attached NVMe drive, a Falcon-attached NVMe drive, and the
//! baseline "local storage" (SATA-class). The model captures sequential
//! bandwidth (what a prefetching dataloader sees), random-access IOPS
//! (small-file reads), and device latency.

use crate::GB;
use desim::Dur;
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology};

/// Static description of a storage device.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageSpec {
    pub name: String,
    pub capacity_bytes: f64,
    /// Sustained sequential read bandwidth (bytes/s).
    pub seq_read: f64,
    /// Sustained sequential write bandwidth (bytes/s).
    pub seq_write: f64,
    /// 4 KiB random read operations per second.
    pub rand_read_iops: f64,
    /// Device access latency.
    pub latency: Dur,
    /// Which link class the device port uses.
    pub link_class: LinkClass,
}

impl StorageSpec {
    /// Intel SSDPEDKX040T7 (DC P4500) 4 TB NVMe — the paper's NVMe drives.
    pub fn intel_p4500_4tb() -> StorageSpec {
        StorageSpec {
            name: "Intel SSDPEDKX040T7 4TB NVMe".to_string(),
            capacity_bytes: 4000.0 * GB,
            seq_read: 3.2 * GB,
            seq_write: 1.9 * GB,
            rand_read_iops: 710_000.0,
            latency: Dur::from_micros(85),
            link_class: LinkClass::PcieGen3x4,
        }
    }

    /// SATA-class SSD — the "local storage" baseline of Table III.
    pub fn sata_ssd() -> StorageSpec {
        StorageSpec {
            name: "SATA SSD (local storage)".to_string(),
            capacity_bytes: 1920.0 * GB,
            seq_read: 0.53 * GB,
            seq_write: 0.49 * GB,
            rand_read_iops: 95_000.0,
            latency: Dur::from_micros(250),
            link_class: LinkClass::Sata3,
        }
    }

    /// Effective read bandwidth for a stream of `file_bytes`-sized objects:
    /// small objects are IOPS-bound, large ones bandwidth-bound.
    pub fn effective_read(&self, file_bytes: f64) -> f64 {
        assert!(file_bytes > 0.0);
        let iops_bound = self.rand_read_iops * file_bytes.min(4096.0);
        // Reads above 4 KiB amortize seeks: interpolate toward sequential.
        let per_op_seek = 1.0 / self.rand_read_iops;
        let per_op_xfer = file_bytes / self.seq_read;
        let streaming = file_bytes / (per_op_seek + per_op_xfer);
        streaming.max(iops_bound.min(self.seq_read))
    }

    /// Time to read `bytes` as a stream of `file_bytes` objects.
    pub fn read_time(&self, bytes: f64, file_bytes: f64) -> Dur {
        self.latency + Dur::for_bytes(bytes, self.effective_read(file_bytes))
    }

    /// Time to write `bytes` sequentially (checkpointing).
    pub fn write_time(&self, bytes: f64) -> Dur {
        self.latency + Dur::for_bytes(bytes, self.seq_write)
    }
}

/// The fabric nodes of an instantiated storage device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageNodes {
    pub device: NodeId,
    pub port: NodeId,
}

/// Insert a storage device into the topology as a `device —media→ port`
/// pair; the internal link capacity is the device's sequential read rate
/// (the media itself is the bottleneck, not its PCIe/SATA port).
pub fn add_storage(topo: &mut Topology, name: &str, spec: &StorageSpec) -> StorageNodes {
    let device = topo.add_node(format!("{name}.media"), NodeKind::Storage);
    let port = topo.add_node(format!("{name}.port"), NodeKind::DevicePort);
    topo.add_link(
        device,
        port,
        LinkSpec::of(spec.link_class)
            .with_capacity(spec.seq_read)
            .with_latency(spec.latency),
    );
    StorageNodes { device, port }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvme_is_much_faster_than_sata() {
        let nvme = StorageSpec::intel_p4500_4tb();
        let sata = StorageSpec::sata_ssd();
        assert!(nvme.seq_read / sata.seq_read > 5.0);
        assert!(nvme.rand_read_iops / sata.rand_read_iops > 5.0);
        assert!(nvme.latency < sata.latency);
    }

    #[test]
    fn large_files_reach_sequential_bandwidth() {
        let nvme = StorageSpec::intel_p4500_4tb();
        let eff = nvme.effective_read(100e6); // 100 MB objects
        assert!(eff > 0.95 * nvme.seq_read, "{eff}");
    }

    #[test]
    fn tiny_files_are_iops_bound() {
        let sata = StorageSpec::sata_ssd();
        let eff = sata.effective_read(1024.0); // 1 KiB objects
        assert!(eff < 0.3 * sata.seq_read, "{eff}");
        // Bounded by iops * size.
        assert!(eff <= sata.rand_read_iops * 1024.0 * 1.01);
    }

    #[test]
    fn imagenet_sized_files_near_bandwidth() {
        // ~110 KB JPEGs: NVMe should sustain most of sequential rate.
        let nvme = StorageSpec::intel_p4500_4tb();
        let eff = nvme.effective_read(110e3);
        assert!(eff > 0.7 * nvme.seq_read, "{eff}");
    }

    #[test]
    fn checkpoint_write_time() {
        let nvme = StorageSpec::intel_p4500_4tb();
        // 1.9 GB at 1.9 GB/s = 1 s (+latency).
        let t = nvme.write_time(1.9 * GB);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn add_storage_builds_pair() {
        let mut t = Topology::new();
        let s = add_storage(&mut t, "nvme0", &StorageSpec::intel_p4500_4tb());
        assert_eq!(t.node(s.device).kind, NodeKind::Storage);
        assert_eq!(t.node(s.port).kind, NodeKind::DevicePort);
        assert!(t.route(s.device, s.port).is_some());
    }
}
