//! Host DRAM model.
//!
//! Each Supermicro host carries 756 GB of DDR4 (paper §II-A). In the
//! training pipeline, host memory is the staging area between storage and
//! the GPUs and doubles as the OS page cache — which is why the ImageNet
//! working set (~150 GB) is disk-bound only on its first epoch (relevant
//! to the paper's Fig 15 storage study).

use crate::GB;

/// Static description of a host's DRAM pool.
#[derive(Debug, Clone, PartialEq)]
pub struct DramSpec {
    pub capacity_bytes: f64,
    /// Aggregate bandwidth across channels (bytes/s).
    pub bandwidth: f64,
}

impl DramSpec {
    /// The paper host's 756 GB of DDR4-2666 across 12 channels.
    pub fn host_756gb() -> DramSpec {
        DramSpec {
            capacity_bytes: 756.0 * GB,
            bandwidth: 256.0 * GB,
        }
    }

    /// Can `bytes` of dataset be fully page-cached alongside `reserved`
    /// bytes of application working memory?
    pub fn fits_in_page_cache(&self, bytes: f64, reserved: f64) -> bool {
        bytes + reserved <= self.capacity_bytes
    }
}

/// Simple accounting of host-memory occupancy over a run; drives the
/// paper's Fig 14 system-memory-utilization series.
#[derive(Debug, Clone)]
pub struct HostMemory {
    spec: DramSpec,
    in_use: f64,
    peak: f64,
}

impl HostMemory {
    pub fn new(spec: DramSpec) -> Self {
        HostMemory {
            spec,
            in_use: 0.0,
            peak: 0.0,
        }
    }

    /// Reserve bytes; returns false (and reserves nothing) if out of memory.
    pub fn reserve(&mut self, bytes: f64) -> bool {
        if self.in_use + bytes > self.spec.capacity_bytes {
            return false;
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        true
    }

    pub fn release(&mut self, bytes: f64) {
        self.in_use = (self.in_use - bytes).max(0.0);
    }

    pub fn in_use(&self) -> f64 {
        self.in_use
    }

    pub fn peak(&self) -> f64 {
        self.peak
    }

    pub fn utilization(&self) -> f64 {
        self.in_use / self.spec.capacity_bytes
    }

    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_capacity() {
        let d = DramSpec::host_756gb();
        assert_eq!(d.capacity_bytes, 756.0 * GB);
    }

    #[test]
    fn imagenet_fits_in_page_cache() {
        let d = DramSpec::host_756gb();
        assert!(d.fits_in_page_cache(150.0 * GB, 100.0 * GB));
        assert!(!d.fits_in_page_cache(700.0 * GB, 100.0 * GB));
    }

    #[test]
    fn reserve_release_and_peak() {
        let mut m = HostMemory::new(DramSpec::host_756gb());
        assert!(m.reserve(100.0 * GB));
        assert!(m.reserve(50.0 * GB));
        m.release(100.0 * GB);
        assert_eq!(m.in_use(), 50.0 * GB);
        assert_eq!(m.peak(), 150.0 * GB);
        assert!((m.utilization() - 50.0 / 756.0).abs() < 1e-9);
    }

    #[test]
    fn reserve_fails_when_full() {
        let mut m = HostMemory::new(DramSpec::host_756gb());
        assert!(!m.reserve(800.0 * GB));
        assert_eq!(m.in_use(), 0.0);
    }

    #[test]
    fn release_floors_at_zero() {
        let mut m = HostMemory::new(DramSpec::host_756gb());
        m.release(10.0 * GB);
        assert_eq!(m.in_use(), 0.0);
    }
}
