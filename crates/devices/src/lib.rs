//! `devices` — performance models of the hardware in the paper's test bed.
//!
//! Each device is described by a *spec* (published peak numbers plus a few
//! calibrated efficiency factors) and, where it attaches to the fabric, a
//! small builder that inserts the device into a [`fabric::Topology`] as a
//! `core —DMA link→ port` pair, so that its copy-engine rate bounds every
//! PCIe transfer in or out of it.
//!
//! Inventory (paper §II-A / §V-A.1):
//! * NVIDIA Tesla **V100 SXM2 16 GB** (local, NVLink hybrid cube mesh) and
//!   **V100 PCIe 16 GB** (Falcon-attached), plus the P100 mentioned as
//!   present in the chassis ([`gpu`]).
//! * 2 × Intel Xeon Gold 6148 per host, 756 GB DRAM ([`cpu`], [`memory`]).
//! * Intel SSDPEDKX040T7 4 TB NVMe and a SATA-class "local storage"
//!   baseline ([`storage`]).
//! * Intel X540 10 GbE NICs ([`nic`]).
//!
//! The [`roofline`] module converts layer workloads (FLOPs + bytes touched)
//! into kernel times, also reporting whether the kernel was compute- or
//! memory-bound — the source of the paper's Fig 10 "% time accessing GPU
//! memory" metric.

pub mod catalog;
pub mod cpu;
pub mod gpu;
pub mod memory;
pub mod nic;
pub mod roofline;
pub mod storage;

pub use catalog::Calibration;
pub use cpu::CpuSpec;
pub use gpu::{GpuNodes, GpuSpec};
pub use memory::DramSpec;
pub use nic::NicSpec;
pub use roofline::{KernelTime, Precision};
pub use storage::{StorageNodes, StorageSpec};

/// Bytes per second in one GB/s (decimal).
pub const GB: f64 = 1e9;
/// One tera-FLOP.
pub const TFLOP: f64 = 1e12;
