//! Failure injection: seeded, JSON-serializable schedules of hardware
//! events applied mid-replay inside [`crate::cluster`]'s event loop.
//!
//! The composable pitch (paper §I, GigaIO's scale-out study) is that the
//! management plane can re-compose resources *around* hardware events;
//! the Alibaba-PAI characterization shows shared GPU clusters spend real
//! time in degraded states. A [`FaultPlan`] makes those states simulable
//! and measurable: drawer outages, single-slot deaths, PCIe link
//! degradation to a fraction of bandwidth, and BMC thermal-threshold
//! trips that force a drawer evacuation. Every fault heals after its
//! `duration`, so any finite plan leaves a finite trace drainable — the
//! chaos property suite leans on that.
//!
//! Recovery semantics (DESIGN §10): each fault is an MCS-audited
//! `fail`/`force-detach` sequence; evacuated jobs are re-placed by the
//! active policy, pay [`RECOMPOSE_LATENCY`], lose the iterations since
//! their last checkpoint ([`CHECKPOINT_ITERS`]), and may be elastically
//! shrunk when the surviving capacity cannot hold their old allocation.

use desim::json::{FromJson, JsonError, ToJson, Value};
use desim::{Dur, SimRng, SimTime};
use rack::RackTopology;
use std::fmt;

/// Re-composition latency a fault-displaced job pays before it resumes
/// making progress: the attach/rescan/NCCL-re-init cost of composing a
/// replacement placement. Charged only on fault recovery — initial
/// placements model steady-state composition, which the paper's
/// scheduler-level metrics already absorb into queue delay.
pub const RECOMPOSE_LATENCY: Dur = Dur::from_millis(2_000);

/// Jobs checkpoint every this many iterations (counted from their current
/// placement). An evacuation loses the iterations since the last
/// checkpoint; they are re-run on the replacement placement.
pub const CHECKPOINT_ITERS: u64 = 8;

/// Version stamp of the fault model itself — how link degradation maps to
/// capacity scaling, which links a drawer degrade touches, the recompose
/// and checkpoint constants. Folded into the probe cache's `model_hash`
/// so persisted probe prices invalidate when the fault model changes.
pub const FAULT_MODEL_VERSION: u64 = 1;

/// The hardware event kinds the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Every slot in the drawer fails at once (power/midplane outage).
    DrawerOutage { drawer: u8 },
    /// One slot dies (GPU falls off the bus).
    SlotDeath { drawer: u8, slot: u8 },
    /// The drawer's PCIe fabric degrades to `pct` percent of its
    /// bandwidth (flaky retimer, lane downtraining). Jobs keep their
    /// slots but run at degraded-fabric iteration rates.
    LinkDegrade { drawer: u8, pct: u8 },
    /// The drawer's cooling fan fails; the BMC trips its critical
    /// threshold under load and the management plane evacuates the
    /// drawer. Same capacity loss as an outage, but *triggered through*
    /// the BMC thermal model rather than asserted directly.
    ThermalTrip { drawer: u8 },
    /// The *rack-tier* FabreX links degrade to `pct` percent: every gang
    /// spanning chassis runs at a stretched iteration rate while
    /// single-chassis placements are untouched. Strikes the rack switch,
    /// not any one chassis, so it carries no drawer.
    RackLinkDegrade { pct: u8 },
}

impl FaultKind {
    /// The drawer the event lands in, `None` for rack-tier events.
    pub fn drawer(&self) -> Option<u8> {
        match *self {
            FaultKind::DrawerOutage { drawer }
            | FaultKind::SlotDeath { drawer, .. }
            | FaultKind::LinkDegrade { drawer, .. }
            | FaultKind::ThermalTrip { drawer } => Some(drawer),
            FaultKind::RackLinkDegrade { .. } => None,
        }
    }

    fn kind_label(&self) -> &'static str {
        match self {
            FaultKind::DrawerOutage { .. } => "drawer-outage",
            FaultKind::SlotDeath { .. } => "slot-death",
            FaultKind::LinkDegrade { .. } => "link-degrade",
            FaultKind::ThermalTrip { .. } => "thermal-trip",
            FaultKind::RackLinkDegrade { .. } => "rack-link-degrade",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::DrawerOutage { drawer } => write!(f, "drawer-outage d{drawer}"),
            FaultKind::SlotDeath { drawer, slot } => write!(f, "slot-death d{drawer}s{slot}"),
            FaultKind::LinkDegrade { drawer, pct } => {
                write!(f, "link-degrade d{drawer} to {pct}%")
            }
            FaultKind::ThermalTrip { drawer } => write!(f, "thermal-trip d{drawer}"),
            FaultKind::RackLinkDegrade { pct } => write!(f, "rack-link-degrade to {pct}%"),
        }
    }
}

/// One injected event: a fault that strikes at `at` and heals (repair,
/// power-back, retimer reseat) at `at + duration`. `chassis` selects
/// which chassis a drawer/slot event lands in (always 0 on the paper's
/// single-chassis test bed; ignored by rack-tier events).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub chassis: u8,
    pub kind: FaultKind,
    pub duration: Dur,
}

impl FaultEvent {
    pub fn heals_at(&self) -> SimTime {
        self.at + self.duration
    }
}

/// A named, ordered schedule of injected events. Overlapping events
/// compose: a slot is failed while *any* active fault covers it, and a
/// drawer's link health is the minimum over its active degrades.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    pub name: String,
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan — the fault-free replay.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events in strike order (stable on ties), the order the event loop
    /// consumes them in.
    pub fn sorted(mut self) -> FaultPlan {
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Validate the plan against the paper's single-chassis envelope.
    /// `Err` is the first offending event's description.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_for(&RackTopology::SINGLE)
    }

    /// Validate the plan against a rack topology: chassis indices must
    /// exist, drawer/slot addresses must fit the per-chassis shape, and
    /// rack-tier events need a rack tier (≥ 2 chassis) to strike.
    pub fn validate_for(&self, topo: &RackTopology) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            if e.chassis >= topo.chassis {
                return Err(format!("event {i}: chassis {} outside the rack", e.chassis));
            }
            if let Some(d) = e.kind.drawer() {
                if d >= topo.drawers_per_chassis {
                    return Err(format!("event {i}: drawer {d} outside the chassis"));
                }
            }
            if let FaultKind::SlotDeath { slot, .. } = e.kind {
                if slot >= topo.slots_per_drawer {
                    return Err(format!("event {i}: slot {slot} outside the drawer"));
                }
            }
            if let FaultKind::LinkDegrade { pct, .. } | FaultKind::RackLinkDegrade { pct } = e.kind
            {
                if pct == 0 || pct >= 100 {
                    return Err(format!("event {i}: degrade to {pct}% is not a degrade"));
                }
            }
            if let FaultKind::RackLinkDegrade { .. } = e.kind {
                if topo.chassis < 2 {
                    return Err(format!(
                        "event {i}: rack-link-degrade needs an inter-chassis tier (>= 2 chassis)"
                    ));
                }
            }
            if e.duration.is_zero() {
                return Err(format!("event {i}: zero-duration fault has no effect"));
            }
        }
        Ok(())
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().emit_pretty()
    }

    pub fn from_json_str(s: &str) -> Result<FaultPlan, JsonError> {
        FaultPlan::from_json(&Value::parse(s)?)
    }

    /// Normalize same-target capacity collisions: random draws can land
    /// two strikes of the same `(chassis, kind)` at the same instant, or
    /// so that one's repair coincides exactly with the other's strike —
    /// which would schedule a heal for a slot struck again in the same
    /// tick. Each colliding pair merges into one event spanning both, to
    /// a fixpoint, so no capacity target is ever repaired and re-struck
    /// at one instant. Link degrades are untouched (overlaps compose via
    /// min-health) and collision-free plans pass through bit-identically.
    pub fn dedup_capacity_collisions(mut self) -> FaultPlan {
        fn is_capacity(k: FaultKind) -> bool {
            !matches!(k, FaultKind::LinkDegrade { .. } | FaultKind::RackLinkDegrade { .. })
        }
        'outer: loop {
            for i in 0..self.events.len() {
                for j in (i + 1)..self.events.len() {
                    let (a, b) = (self.events[i], self.events[j]);
                    if a.chassis != b.chassis || a.kind != b.kind || !is_capacity(a.kind) {
                        continue;
                    }
                    if a.at == b.at || a.heals_at() == b.at || b.heals_at() == a.at {
                        let at = a.at.min(b.at);
                        let heal = a.heals_at().max(b.heals_at());
                        self.events[i] =
                            FaultEvent { at, chassis: a.chassis, kind: a.kind, duration: heal.since(at) };
                        self.events.remove(j);
                        continue 'outer;
                    }
                }
            }
            return self.sorted();
        }
    }
}

impl ToJson for FaultEvent {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("at_ns", self.at.to_json()),
            ("kind", Value::str(self.kind.kind_label())),
        ];
        // Chassis 0 is elided so single-chassis plans keep their exact
        // pre-rack byte shape; rack-tier events carry no drawer at all.
        if self.chassis != 0 {
            fields.push(("chassis", Value::from_u64(u64::from(self.chassis))));
        }
        if let Some(d) = self.kind.drawer() {
            fields.push(("drawer", Value::from_u64(u64::from(d))));
        }
        if let FaultKind::SlotDeath { slot, .. } = self.kind {
            fields.push(("slot", Value::from_u64(u64::from(slot))));
        }
        if let FaultKind::LinkDegrade { pct, .. } | FaultKind::RackLinkDegrade { pct } = self.kind
        {
            fields.push(("pct", Value::from_u64(u64::from(pct))));
        }
        fields.push(("duration_ns", self.duration.to_json()));
        Value::obj(fields)
    }
}

impl FromJson for FaultEvent {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let chassis = match v.get("chassis") {
            Ok(c) => c.as_u8()?,
            Err(_) => 0,
        };
        let kind = match v.get("kind")?.as_str()? {
            "rack-link-degrade" => FaultKind::RackLinkDegrade { pct: v.get("pct")?.as_u8()? },
            other => {
                let drawer = v.get("drawer")?.as_u8()?;
                match other {
                    "drawer-outage" => FaultKind::DrawerOutage { drawer },
                    "slot-death" => FaultKind::SlotDeath { drawer, slot: v.get("slot")?.as_u8()? },
                    "link-degrade" => {
                        FaultKind::LinkDegrade { drawer, pct: v.get("pct")?.as_u8()? }
                    }
                    "thermal-trip" => FaultKind::ThermalTrip { drawer },
                    other => {
                        return Err(JsonError::decode(format!("unknown fault kind \"{other}\"")))
                    }
                }
            }
        };
        Ok(FaultEvent {
            at: SimTime::from_json(v.get("at_ns")?)?,
            chassis,
            kind,
            duration: Dur::from_json(v.get("duration_ns")?)?,
        })
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(self.name.clone())),
            ("events", self.events.to_json()),
        ])
    }
}

impl FromJson for FaultPlan {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(FaultPlan {
            name: String::from_json(v.get("name")?)?,
            events: Vec::<FaultEvent>::from_json(v.get("events")?)?,
        })
    }
}

/// Degrade levels the seeded generator draws from. A small discrete set
/// keeps the probe cache bounded: every (benchmark, shape, health) triple
/// a replay prices comes from these levels.
pub const DEGRADE_LEVELS: [u8; 3] = [25, 50, 75];

/// A seeded random plan of `n_events` faults striking within
/// `horizon` and healing within a quarter of it — the generator the chaos
/// harness and `repro faults` sweeps build on. Pure function of its
/// arguments.
pub fn seeded_fault_plan(n_events: usize, horizon: Dur, seed: u64) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xFA17);
    let events = (0..n_events)
        .map(|_| {
            let drawer = rng.index(2) as u8;
            let kind = match rng.index(4) {
                0 => FaultKind::DrawerOutage { drawer },
                1 => FaultKind::SlotDeath { drawer, slot: rng.index(8) as u8 },
                2 => FaultKind::LinkDegrade {
                    drawer,
                    pct: DEGRADE_LEVELS[rng.index(DEGRADE_LEVELS.len())],
                },
                _ => FaultKind::ThermalTrip { drawer },
            };
            let at = SimTime::from_secs_f64(rng.unit() * horizon.as_secs_f64());
            let duration =
                Dur::from_secs_f64((0.05 + 0.2 * rng.unit()) * horizon.as_secs_f64());
            FaultEvent { at, chassis: 0, kind, duration }
        })
        .collect();
    FaultPlan { name: format!("seeded-{n_events}x{seed:#x}"), events }
        .sorted()
        .dedup_capacity_collisions()
}

/// A seeded random plan over a whole rack: like [`seeded_fault_plan`] but
/// events land on a random chassis and the kind mix includes rack-tier
/// link degradation when the topology has an inter-chassis tier. A
/// separate RNG stream (and generator) so the single-chassis generator's
/// draw order — which pinned goldens depend on — never changes.
pub fn seeded_rack_fault_plan(
    n_events: usize,
    horizon: Dur,
    seed: u64,
    topo: &RackTopology,
) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x2ACC_FA17);
    let kinds = if topo.chassis >= 2 { 5 } else { 4 };
    let events = (0..n_events)
        .map(|_| {
            let chassis = rng.index(topo.chassis as usize) as u8;
            let drawer = rng.index(topo.drawers_per_chassis as usize) as u8;
            let kind = match rng.index(kinds) {
                0 => FaultKind::DrawerOutage { drawer },
                1 => FaultKind::SlotDeath {
                    drawer,
                    slot: rng.index(topo.slots_per_drawer as usize) as u8,
                },
                2 => FaultKind::LinkDegrade {
                    drawer,
                    pct: DEGRADE_LEVELS[rng.index(DEGRADE_LEVELS.len())],
                },
                3 => FaultKind::ThermalTrip { drawer },
                _ => FaultKind::RackLinkDegrade {
                    pct: DEGRADE_LEVELS[rng.index(DEGRADE_LEVELS.len())],
                },
            };
            let at = SimTime::from_secs_f64(rng.unit() * horizon.as_secs_f64());
            let duration =
                Dur::from_secs_f64((0.05 + 0.2 * rng.unit()) * horizon.as_secs_f64());
            FaultEvent { at, chassis, kind, duration }
        })
        .collect();
    FaultPlan { name: format!("seeded-rack-{n_events}x{seed:#x}"), events }
        .sorted()
        .dedup_capacity_collisions()
}

/// The pinned 3-event plan behind `repro faults`, the `cluster_faults`
/// golden, and the recovery bench replay: a drawer-1 outage mid-trace
/// (fifo-first-fit's drawer-spanning gangs straddle it, so the sloppy
/// packer loses more jobs and queues longer to recover than the
/// single-drawer packers), a half-bandwidth degrade of drawer 0 while the
/// survivors crowd onto it (running jobs slow down but keep their slots),
/// and a thermal trip of drawer 0 late (the BMC path). Times sit inside
/// the active window of both the 8-job quick trace and the 20-job
/// standard trace.
pub fn paper_fault_plan() -> FaultPlan {
    FaultPlan {
        name: "paper-3ev".into(),
        events: vec![
            FaultEvent {
                at: SimTime::from_secs(16),
                chassis: 0,
                kind: FaultKind::DrawerOutage { drawer: 1 },
                duration: Dur::from_secs(10),
            },
            FaultEvent {
                at: SimTime::from_secs(18),
                chassis: 0,
                kind: FaultKind::LinkDegrade { drawer: 0, pct: 50 },
                duration: Dur::from_secs(12),
            },
            FaultEvent {
                at: SimTime::from_secs(28),
                chassis: 0,
                kind: FaultKind::ThermalTrip { drawer: 0 },
                duration: Dur::from_secs(8),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_json_round_trips() {
        let plan = seeded_fault_plan(5, Dur::from_secs(60), 0xABCD);
        let back = FaultPlan::from_json_str(&plan.to_json_string()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json_string(), plan.to_json_string());
    }

    #[test]
    fn generator_is_seeded_and_sorted() {
        let a = seeded_fault_plan(8, Dur::from_secs(40), 1);
        assert_eq!(a, seeded_fault_plan(8, Dur::from_secs(40), 1));
        assert_ne!(a, seeded_fault_plan(8, Dur::from_secs(40), 2));
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_envelope_events() {
        let bad = |kind| FaultPlan {
            name: "bad".into(),
            events: vec![FaultEvent { at: SimTime::ZERO, chassis: 0, kind, duration: Dur::from_secs(1) }],
        };
        assert!(bad(FaultKind::DrawerOutage { drawer: 2 }).validate().is_err());
        assert!(bad(FaultKind::SlotDeath { drawer: 0, slot: 8 }).validate().is_err());
        assert!(bad(FaultKind::LinkDegrade { drawer: 0, pct: 0 }).validate().is_err());
        assert!(bad(FaultKind::LinkDegrade { drawer: 0, pct: 100 }).validate().is_err());
        let zero_dur = FaultPlan {
            name: "z".into(),
            events: vec![FaultEvent {
                at: SimTime::ZERO,
                chassis: 0,
                kind: FaultKind::SlotDeath { drawer: 0, slot: 0 },
                duration: Dur::ZERO,
            }],
        };
        assert!(zero_dur.validate().is_err());
        assert!(paper_fault_plan().validate().is_ok());
    }

    /// No capacity event may heal at the exact instant another event of
    /// the same target strikes, and no target may be struck twice at one
    /// instant — the invariant `dedup_capacity_collisions` establishes.
    fn assert_no_capacity_collisions(plan: &FaultPlan) {
        let caps: Vec<&FaultEvent> = plan
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    FaultKind::LinkDegrade { .. } | FaultKind::RackLinkDegrade { .. }
                )
            })
            .collect();
        for (i, a) in caps.iter().enumerate() {
            for b in &caps[i + 1..] {
                if a.chassis != b.chassis || a.kind != b.kind {
                    continue;
                }
                assert_ne!(a.at, b.at, "duplicate strike of {} at one tick", a.kind);
                assert_ne!(a.heals_at(), b.at, "{} repaired and re-struck at one tick", a.kind);
                assert_ne!(b.heals_at(), a.at, "{} repaired and re-struck at one tick", a.kind);
            }
        }
    }

    #[test]
    fn dedup_merges_same_tick_strike_and_repair_pairs() {
        let ev = |at_s: u64, dur_s: u64| FaultEvent {
            at: SimTime::from_secs(at_s),
            chassis: 0,
            kind: FaultKind::SlotDeath { drawer: 1, slot: 3 },
            duration: Dur::from_secs(dur_s),
        };
        // b strikes exactly when a heals (merge), c duplicates b's strike
        // tick, and d chains off c's heal: the fixpoint leaves two
        // *overlapping* events (which compose fine) with no same-tick
        // repair/strike pair left.
        let plan = FaultPlan {
            name: "collide".into(),
            events: vec![ev(0, 10), ev(10, 5), ev(10, 8), ev(18, 4)],
        }
        .dedup_capacity_collisions();
        assert_eq!(plan.events.len(), 2, "collisions merge to a fixpoint");
        assert_eq!(plan.events[0].at, SimTime::ZERO);
        assert_eq!(plan.events[0].heals_at(), SimTime::from_secs(15));
        assert_eq!(plan.events[1].at, SimTime::from_secs(10));
        assert_eq!(plan.events[1].heals_at(), SimTime::from_secs(22));
        assert_no_capacity_collisions(&plan);
        // A pure strike/heal chain collapses to a single spanning event.
        let chain = FaultPlan { name: "chain".into(), events: vec![ev(0, 10), ev(10, 5), ev(15, 3)] }
            .dedup_capacity_collisions();
        assert_eq!(chain.events.len(), 1);
        assert_eq!(chain.events[0].at, SimTime::ZERO);
        assert_eq!(chain.events[0].heals_at(), SimTime::from_secs(18));
        // Distinct targets at the same tick are NOT merged.
        let other = FaultEvent {
            at: SimTime::from_secs(10),
            chassis: 0,
            kind: FaultKind::SlotDeath { drawer: 0, slot: 3 },
            duration: Dur::from_secs(5),
        };
        let plan = FaultPlan { name: "distinct".into(), events: vec![ev(0, 10), other] }
            .dedup_capacity_collisions();
        assert_eq!(plan.events.len(), 2);
    }

    #[test]
    fn seeded_generators_never_repair_into_a_same_tick_strike() {
        let topo = RackTopology { chassis: 4, drawers_per_chassis: 2, slots_per_drawer: 8 };
        for seed in 0..64 {
            // Dense plans over a short horizon to force collisions.
            assert_no_capacity_collisions(&seeded_fault_plan(24, Dur::from_secs(30), seed));
            assert_no_capacity_collisions(&seeded_rack_fault_plan(
                32,
                Dur::from_secs(30),
                seed,
                &topo,
            ));
        }
    }

    #[test]
    fn unknown_kind_rejected_at_parse() {
        let text = paper_fault_plan().to_json_string().replace("drawer-outage", "meteor-strike");
        assert!(FaultPlan::from_json_str(&text).is_err());
    }
}
