//! Placement policies: given a job and the rack's current free slots,
//! choose the slots to compose — or decline and let the job wait.
//!
//! All policies see the same queue in the same order (the cluster loop
//! owns queue discipline); they differ **only** in slot selection:
//!
//! * [`FifoFirstFit`] — the naive baseline: first free slots in global
//!   slot order, splitting across drawers (and chassis) whenever the
//!   front of the free list is fragmented.
//! * [`BestFit`] — classic best-fit packing: the *tightest* drawer
//!   anywhere in the rack that still fits the job, spilling only when no
//!   single drawer fits.
//! * [`FragAware`] — keeps Falcon drawers whole: never splits a job
//!   across drawers, preferring to let it queue until a whole-drawer
//!   placement opens.
//! * [`TopologyAware`] — prices every candidate shape with a cached
//!   micro-probe ([`crate::probe`]) and picks the best
//!   [`composable_core::Objective::TrainingTime`] score, charging
//!   [`rack::cross_chassis_stretch`] when a candidate spans the
//!   inter-chassis tier.
//!
//! Policies are topology-generic: they see [`FreeView`]'s rack-global
//! drawer axis and reduce exactly to their single-chassis behavior when
//! the rack is one chassis, keeping the pre-rack goldens byte-identical.

use crate::probe::{ProbeCache, Shape};
use crate::trace::JobSpec;
use desim::json::Value;
use falcon::SlotAddr;
use rack::{cross_chassis_stretch, drawers_spanned, RackAddr};
use std::cmp::Reverse;

/// Snapshot of the rack's unattached GPU slots, in global (chassis-major)
/// slot order, plus the rack's drawer count so policies can iterate the
/// global drawer axis.
#[derive(Debug, Clone)]
pub struct FreeView {
    free: Vec<RackAddr>,
    n_drawers: usize,
}

impl FreeView {
    pub fn new(mut free: Vec<RackAddr>, n_drawers: usize) -> FreeView {
        free.sort_unstable();
        FreeView { free, n_drawers }
    }

    /// The paper's single-chassis view (chassis 0, 2 drawers).
    pub fn single_chassis(free: Vec<SlotAddr>) -> FreeView {
        FreeView::new(free.into_iter().map(RackAddr::local).collect(), 2)
    }

    pub fn total(&self) -> usize {
        self.free.len()
    }

    pub fn slots(&self) -> &[RackAddr] {
        &self.free
    }

    /// Global drawers in the rack (2 per chassis).
    pub fn n_drawers(&self) -> usize {
        self.n_drawers
    }

    /// Free slots inside one global drawer, ascending.
    pub fn in_drawer(&self, drawer: usize) -> Vec<RackAddr> {
        self.free
            .iter()
            .copied()
            .filter(|s| s.global_drawer() == drawer)
            .collect()
    }
}

/// One slot a serving replica could land on: a partially-used serving
/// slot of the same tenant (`shared`), or a wholly free slot.
#[derive(Debug, Clone, Copy)]
pub struct SliceSlot {
    pub addr: RackAddr,
    /// Unclaimed sevenths of the slot's compute.
    pub free_sevenths: u8,
    /// Already attached for serving this tenant (placing here costs no
    /// new whole slot).
    pub shared: bool,
}

/// The fractional-capacity view a replica placement chooses from, in
/// global slot order, plus the per-global-drawer wholly-free GPU counts
/// (so packing policies can keep training's contiguous holes whole).
#[derive(Debug, Clone)]
pub struct SliceView {
    pub slots: Vec<SliceSlot>,
    pub free_gpus: Vec<usize>,
}

/// What a policy sees of one running job when choosing a preemption
/// victim: identity, tier, and the slots a preemption would free.
#[derive(Debug, Clone)]
pub struct RunningView {
    pub id: u64,
    pub tenant: u32,
    pub priority: u8,
    pub slots: Vec<RackAddr>,
}

/// A slot-selection strategy. Returning `None` means "this job cannot (or
/// should not) be placed right now"; the cluster loop decides whether that
/// blocks the queue.
///
/// `Send` because [`crate::cluster::compare_policies`] ships each policy
/// to a parsweep worker for its replay; policies are stateless slot
/// selectors, so the bound costs implementors nothing.
pub trait PlacePolicy: Send {
    fn name(&self) -> &'static str;
    fn place(&self, job: &JobSpec, free: &FreeView, probes: &mut ProbeCache)
        -> Option<Vec<RackAddr>>;

    /// Pick the slot for one serving replica of `slice`/7 of a GPU. The
    /// default mirrors [`FifoFirstFit`]: the first slot that fits, in
    /// global order, blind to fragmentation.
    fn place_replica(&self, slice: u8, view: &SliceView) -> Option<RackAddr> {
        view.slots.iter().find(|s| s.free_sevenths >= slice).map(|s| s.addr)
    }

    /// May the cluster shrink elastic training jobs to compose a replica
    /// for a service at risk of violating its SLO?
    fn evict_for_slo(&self) -> bool {
        false
    }

    /// Pick the running job a capacity-blocked `job` may checkpoint-
    /// preempt, or `None` to let it wait. The contract: the victim's tier
    /// must be **strictly below** `job.priority` (the cluster loop
    /// enforces this; anything else could preempt in cycles). The default
    /// sacrifices the cheapest eligible victim — fewest held slots, ties
    /// to the lowest id — so high tiers displace as little work as
    /// possible.
    fn choose_victim(&self, job: &JobSpec, running: &[RunningView]) -> Option<u64> {
        running
            .iter()
            .filter(|r| r.priority < job.priority)
            .min_by_key(|r| (r.slots.len(), r.id))
            .map(|r| r.id)
    }

    /// Propose a live-migration target for a running job currently on
    /// `current`, or `None` to leave it in place. The cluster's defrag
    /// pass only accepts same-size placements spanning strictly fewer
    /// global drawers (and only when the move beats its rollback +
    /// re-composition cost). The default relocates a drawer-spanning gang
    /// to the first whole drawer that fits it; single-drawer gangs never
    /// move.
    fn migrate(
        &self,
        job: &JobSpec,
        current: &[RackAddr],
        free: &FreeView,
        probes: &mut ProbeCache,
    ) -> Option<Vec<RackAddr>> {
        let _ = (job, probes);
        if drawers_spanned(current) <= 1 {
            return None;
        }
        let k = current.len();
        (0..free.n_drawers()).map(|d| free.in_drawer(d)).find(|slots| slots.len() >= k).map(
            |mut slots| {
                slots.truncate(k);
                slots
            },
        )
    }

    /// The slot floor an elastic shrink may take a job holding `held`
    /// GPUs down to (the cluster still respects the job's `min_gpus`).
    /// SLO-side pressure (`gentle`) releases one slot; training-side
    /// pressure halves the gang — the legacy behavior every hand-written
    /// policy keeps.
    fn shrink_floor(&self, held: usize, gentle: bool) -> usize {
        if gentle {
            held.saturating_sub(1)
        } else {
            held / 2
        }
    }

    /// The fraction of a service's SLO a queued request may age before
    /// SLO clawback arms (see `ServeState::under_pressure`). The legacy
    /// band is half the SLO.
    fn slo_claw_band(&self) -> f64 {
        0.5
    }

    /// A defrag migration is only taken when its projected cost times
    /// this margin still beats staying put. 1.0 is the legacy
    /// break-even gate; larger values demand a bigger win.
    fn defrag_margin(&self) -> f64 {
        1.0
    }
}

/// The canonical policy names, in the order the comparison tables print
/// them — the single list every "unknown policy" message quotes, so the
/// registry and the scenario validator can never drift.
pub const POLICY_NAMES: [&'static str; 5] =
    ["fifo-first-fit", "best-fit", "frag-aware", "topology-aware", "slo-aware-pack"];

/// The canonical policy-name list (see [`POLICY_NAMES`]).
pub fn policy_names() -> &'static [&'static str] {
    &POLICY_NAMES
}

/// A policy name that resolves to nothing, carrying the canonical list of
/// names that would have (and, for `.json` artifact paths, why the
/// artifact did not load).
#[derive(Debug, Clone, PartialEq)]
pub struct UnknownPolicy {
    pub name: String,
    /// `Some` when `name` looked like a `TunedPolicy` artifact path but
    /// the file failed to load, parse, or validate.
    pub detail: Option<String>,
}

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.detail {
            Some(d) => write!(f, "policy artifact \"{}\": {d}", self.name),
            None => write!(
                f,
                "unknown policy \"{}\" (valid: {}, or a tuned-params .json path)",
                self.name,
                POLICY_NAMES.join(", ")
            ),
        }
    }
}

impl std::error::Error for UnknownPolicy {}

/// Every built-in training policy, in the order the comparison tables
/// print them. ([`serving_policies`] appends the serving-aware one.)
/// Each is the [`ParamPolicy`] preset of that name — the parametric
/// family replays the hand-written policies bit-for-bit (the pinned
/// goldens and the differential tests below hold it to that).
pub fn all_policies() -> Vec<Box<dyn PlacePolicy>> {
    POLICY_NAMES[..4]
        .iter()
        .map(|n| Box::new(ParamPolicy::preset(n).expect("canonical name")) as Box<dyn PlacePolicy>)
        .collect()
}

/// The policies mixed (training + serving) comparisons run:
/// [`all_policies`] plus the `slo-aware-pack` preset.
pub fn serving_policies() -> Vec<Box<dyn PlacePolicy>> {
    let mut v = all_policies();
    v.push(Box::new(ParamPolicy::preset("slo-aware-pack").expect("canonical name")));
    v
}

/// Resolve a policy name: a canonical preset from [`POLICY_NAMES`], or a
/// path ending in `.json` holding tuned [`PolicyParams`] — either a bare
/// params object or a `TunedPolicy` artifact (its `params` field is
/// used), as written by `repro autotune`.
pub fn resolve_policy(name: &str) -> Result<Box<dyn PlacePolicy>, UnknownPolicy> {
    if let Some(p) = ParamPolicy::preset(name) {
        return Ok(Box::new(p));
    }
    if name.ends_with(".json") {
        let artifact = |detail: String| UnknownPolicy { name: name.to_string(), detail: Some(detail) };
        let text = std::fs::read_to_string(name).map_err(|e| artifact(e.to_string()))?;
        let v = Value::parse(&text).map_err(|e| artifact(e.to_string()))?;
        let params_json = match v.as_obj() {
            Ok(pairs) => pairs
                .iter()
                .find(|(k, _)| k == "params")
                .map(|(_, v)| v.clone())
                .unwrap_or(v.clone()),
            Err(_) => v.clone(),
        };
        let params = PolicyParams::from_json(&params_json).map_err(|e| artifact(e.to_string()))?;
        let p = ParamPolicy::new(params).map_err(|e| artifact(e.to_string()))?;
        return Ok(Box::new(p));
    }
    Err(UnknownPolicy { name: name.to_string(), detail: None })
}

/// Look a policy up by its `name()` (searches the serving superset; see
/// [`resolve_policy`] for the error-carrying form).
pub fn policy_by_name(name: &str) -> Option<Box<dyn PlacePolicy>> {
    resolve_policy(name).ok()
}

/// Free slots grouped by global drawer — the shared first step of every
/// drawer-shaped selection below.
fn per_drawer(free: &FreeView) -> Vec<Vec<RackAddr>> {
    (0..free.n_drawers()).map(|d| free.in_drawer(d)).collect()
}

/// The first drawer (lowest global index) whose free run fits `k`.
fn first_fitting_drawer(per: &[Vec<RackAddr>], k: usize) -> Option<usize> {
    (0..per.len()).find(|&d| per[d].len() >= k)
}

/// The tightest drawer that fits `k` (fewest free slots; ties to the
/// lowest global drawer) — an exact fit is necessarily tightest, so
/// large contiguous holes stay whole for the jobs that need them.
fn tightest_fitting_drawer(per: &[Vec<RackAddr>], k: usize) -> Option<usize> {
    (0..per.len()).filter(|&d| per[d].len() >= k).min_by_key(|&d| (per[d].len(), d))
}

/// Drain drawers fullest-first (ties toward the lower global drawer),
/// spilling across drawers — and chassis — as the remainder demands.
/// Caller guarantees `free.total() >= k`.
fn drain_fullest_first(per: &[Vec<RackAddr>], k: usize) -> Vec<RackAddr> {
    let mut order: Vec<usize> = (0..per.len()).collect();
    order.sort_by_key(|&d| (Reverse(per[d].len()), d));
    let mut slots: Vec<RackAddr> = Vec::with_capacity(k);
    for d in order {
        if slots.len() == k {
            break;
        }
        slots.extend(per[d].iter().copied().take(k - slots.len()));
    }
    slots
}

pub struct FifoFirstFit;

impl PlacePolicy for FifoFirstFit {
    fn name(&self) -> &'static str {
        "fifo-first-fit"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<RackAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        Some(free.slots()[..k].to_vec())
    }
}

pub struct BestFit;

impl PlacePolicy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<RackAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        let per = per_drawer(free);
        // Tightest single drawer anywhere in the rack that fits.
        if let Some(d) = tightest_fitting_drawer(&per, k) {
            return Some(per[d][..k].to_vec());
        }
        Some(drain_fullest_first(&per, k))
    }
}

pub struct FragAware;

impl PlacePolicy for FragAware {
    fn name(&self) -> &'static str {
        "frag-aware"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<RackAddr>> {
        let k = usize::from(job.gpus);
        // Whole-drawer placements only: a drawer must fit the entire job,
        // or the job waits.
        let per = per_drawer(free);
        tightest_fitting_drawer(&per, k).map(|d| per[d][..k].to_vec())
    }
}

pub struct TopologyAware;

/// Score a placement split into per-chassis parts: each part is priced by
/// its per-chassis probe (entries are chassis-pure) and the slowest part
/// bounds the gang; spanning the rack tier multiplies in the analytic
/// [`cross_chassis_stretch`]. Scores are negative training times, so the
/// stretch makes spanning candidates strictly worse.
fn score_spanning(probes: &mut ProbeCache, job: &JobSpec, parts: &[Shape]) -> f64 {
    let worst = parts
        .iter()
        .map(|&s| probes.price(job.benchmark, s).score)
        .fold(f64::INFINITY, f64::min);
    worst * cross_chassis_stretch(parts.len(), 100)
}

/// The probe-priced spill path (TopologyAware's stages past the whole-
/// drawer check): intra-chassis splits scored by micro-probe, then
/// rack-spanning assemblies charged the cross-chassis stretch. `per` is
/// [`per_drawer`]'s grouping; caller guarantees `free.total() >= k`.
fn priced_spill(
    job: &JobSpec,
    k: usize,
    per: &[Vec<RackAddr>],
    probes: &mut ProbeCache,
) -> Option<Vec<RackAddr>> {
    let nd = per.len();
    // 2. Intra-chassis splits: within each chassis that can hold the
    // gang, the least-split spill and the balanced split — the probe
    // decides which split shape hurts less. Candidates are
    // (take-from-primary, primary drawer, secondary drawer).
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    for c in 0..nd / 2 {
        let (d0, d1) = (2 * c, 2 * c + 1);
        if per[d0].len() + per[d1].len() < k {
            continue;
        }
        let (fuller, other) = if per[d0].len() >= per[d1].len() { (d0, d1) } else { (d1, d0) };
        let spill = per[fuller].len().min(k);
        candidates.push((spill, fuller, other));
        let balanced = k.div_ceil(2);
        if balanced < spill && k - balanced <= per[other].len() {
            candidates.push((balanced, fuller, other));
        }
    }
    if !candidates.is_empty() {
        // Highest probe score wins; ties resolve to fewer drawers
        // spanned, then the lower primary drawer, so the choice is
        // deterministic.
        let (take, pd, sd) = candidates
            .into_iter()
            .map(|(take, pd, sd)| {
                let shape = Shape::new(take as u8, (k - take) as u8);
                (probes.price(job.benchmark, shape).score, take, pd, sd)
            })
            .max_by(|(sa, ta, da, _), (sb, tb, db, _)| {
                sa.partial_cmp(sb)
                    .expect("finite probe scores")
                    .then(ta.cmp(tb))
                    .then(db.cmp(da))
            })
            .map(|(_, take, pd, sd)| (take, pd, sd))?;
        let mut slots: Vec<RackAddr> = per[pd].iter().copied().take(take).collect();
        slots.extend(per[sd].iter().copied().take(k - take));
        debug_assert_eq!(slots.len(), k);
        return Some(slots);
    }
    // 3. No chassis can hold the gang alone: it must span the rack
    // tier. Price the fewest-chassis greedy assembly (freest chassis
    // first, fuller drawer first within each) against a balanced
    // two-chassis split, and take the better — the stretch factor
    // penalizes every extra chassis part.
    let n_chassis = nd / 2;
    let chassis_free = |c: usize| per[2 * c].len() + per[2 * c + 1].len();
    let mut order: Vec<usize> = (0..n_chassis).collect();
    order.sort_by_key(|&c| (Reverse(chassis_free(c)), c));
    let take_in_chassis = |c: usize, want: usize| -> (Vec<RackAddr>, Shape) {
        let (d0, d1) = (2 * c, 2 * c + 1);
        let (fuller, other) = if per[d0].len() >= per[d1].len() { (d0, d1) } else { (d1, d0) };
        let t0 = per[fuller].len().min(want);
        let t1 = per[other].len().min(want - t0);
        let mut v: Vec<RackAddr> = per[fuller].iter().copied().take(t0).collect();
        v.extend(per[other].iter().copied().take(t1));
        (v, Shape::new(t0 as u8, t1 as u8))
    };
    let assemble = |plan: &[(usize, usize)]| -> (Vec<RackAddr>, Vec<Shape>) {
        let mut slots = Vec::with_capacity(k);
        let mut parts = Vec::new();
        for &(c, want) in plan {
            if want == 0 {
                continue;
            }
            let (v, shape) = take_in_chassis(c, want);
            slots.extend(v);
            parts.push(shape);
        }
        (slots, parts)
    };
    // Greedy: drain the freest chassis, then the next, until filled.
    let mut greedy_plan: Vec<(usize, usize)> = Vec::new();
    let mut left = k;
    for &c in &order {
        let take = chassis_free(c).min(left);
        greedy_plan.push((c, take));
        left -= take;
        if left == 0 {
            break;
        }
    }
    if left > 0 {
        return None;
    }
    let (greedy_slots, greedy_parts) = assemble(&greedy_plan);
    let mut best = (
        score_spanning(probes, job, &greedy_parts),
        greedy_parts.len(),
        greedy_slots,
    );
    // Balanced across the two freest chassis, when both halves fit.
    if order.len() >= 2 {
        let hi = k.div_ceil(2);
        if chassis_free(order[0]) >= hi && chassis_free(order[1]) >= k - hi {
            let (slots, parts) = assemble(&[(order[0], hi), (order[1], k - hi)]);
            let score = score_spanning(probes, job, &parts);
            // Strictly better only: ties keep the greedy (fewer-part)
            // assembly.
            if score > best.0 || (score == best.0 && parts.len() < best.1) {
                best = (score, parts.len(), slots);
            }
        }
    }
    debug_assert_eq!(best.2.len(), k);
    Some(best.2)
}

impl PlacePolicy for TopologyAware {
    fn name(&self) -> &'static str {
        "topology-aware"
    }

    fn place(
        &self,
        job: &JobSpec,
        free: &FreeView,
        probes: &mut ProbeCache,
    ) -> Option<Vec<RackAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        let per = per_drawer(free);
        // 1. A whole drawer anywhere in the rack: the unbeatable shape
        // under this cost model (no root-complex hop, no rack hop), so
        // whole-drawer candidates only tie with each other — the lowest
        // global drawer wins, matching the single-chassis tie-break.
        if let Some(d) = first_fitting_drawer(&per, k) {
            probes.price(job.benchmark, Shape::new(k as u8, 0));
            return Some(per[d][..k].to_vec());
        }
        priced_spill(job, k, &per, probes)
    }
}

/// First-fit replica placement: the first slot that fits, in global
/// order, blind to fragmentation (the trait default's behavior).
fn first_fit_replica(slice: u8, view: &SliceView) -> Option<RackAddr> {
    view.slots.iter().find(|s| s.free_sevenths >= slice).map(|s| s.addr)
}

/// Packing replica placement: partially-used serving slots first, then
/// the tightest drawer's highest slot, keeping low-address contiguous
/// runs whole for training gangs.
fn pack_replica(slice: u8, view: &SliceView) -> Option<RackAddr> {
    view.slots
        .iter()
        .filter(|s| s.free_sevenths >= slice)
        .min_by_key(|s| {
            (
                !s.shared,
                view.free_gpus[s.addr.global_drawer()],
                Reverse(s.addr),
            )
        })
        .map(|s| s.addr)
}

/// The serving-aware policy: training places best-fit (tightest drawer),
/// replicas pack onto fragmented fractional capacity training can't use —
/// partially-used serving slots first, then the tightest drawer's highest
/// slot, keeping low-address contiguous runs whole for training gangs —
/// and SLO pressure may evict (elastically shrink) training.
pub struct SloAwarePack;

impl PlacePolicy for SloAwarePack {
    fn name(&self) -> &'static str {
        "slo-aware-pack"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, probes: &mut ProbeCache)
        -> Option<Vec<RackAddr>> {
        BestFit.place(job, free, probes)
    }

    fn place_replica(&self, slice: u8, view: &SliceView) -> Option<RackAddr> {
        pack_replica(slice, view)
    }

    fn evict_for_slo(&self) -> bool {
        true
    }
}

/// How many GPUs of whole-drawer patience full `frag_patience` buys: at
/// 1.0 a job of any schedulable size waits for a whole drawer (the
/// [`FragAware`] behavior); at 0.5 only jobs up to half this span wait.
pub const FRAG_WAIT_SPAN: f64 = 16.0;

/// The knob space the hand-written policies are points in. Every field
/// is bounded (see [`PolicyParams::validate`]); the five presets replay
/// the legacy policies bit-for-bit, which is what lets `crates/autotune`
/// search this space while the pinned goldens stand guard.
///
/// Placement knobs: `whole_drawer` > 0 tries a single fitting drawer
/// first; `tie_tight` >= 0.5 picks the tightest such drawer (else the
/// first); `frag_patience` scales how large a job may be and still wait
/// for a whole drawer instead of spilling ([`FRAG_WAIT_SPAN`]);
/// `probe_bias` > 0 prices spills with micro-probes (the
/// [`TopologyAware`] path); otherwise `spill_pack` >= 0.5 drains drawers
/// fullest-first (the [`BestFit`] spill) and < 0.5 takes global slot
/// order (the [`FifoFirstFit`] spill).
///
/// Serving/elasticity knobs: `replica_pack` >= 0.5 packs replicas like
/// [`SloAwarePack`]; `evict_for_slo` arms SLO clawback; `slo_claw_band`
/// is the SLO fraction a queued request may age before clawback fires;
/// `shrink_aggr` is the gang fraction a training-side shrink releases.
///
/// Priority knobs: `preempt_margin` is the minimum victim size as a
/// fraction of the preemptor's demand; `defrag_margin` scales the
/// cost-benefit gate a migration must beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyParams {
    pub whole_drawer: f64,
    pub tie_tight: f64,
    pub frag_patience: f64,
    pub spill_pack: f64,
    pub probe_bias: f64,
    pub replica_pack: f64,
    pub evict_for_slo: bool,
    pub shrink_aggr: f64,
    pub slo_claw_band: f64,
    pub preempt_margin: f64,
    pub defrag_margin: f64,
}

/// Why a [`PolicyParams`] value was rejected — always naming the field.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    OutOfBounds { field: &'static str, value: f64, lo: f64, hi: f64 },
    UnknownField(String),
    BadField { field: String, msg: String },
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::OutOfBounds { field, value, lo, hi } => {
                write!(f, "params field \"{field}\" = {value} outside [{lo}, {hi}]")
            }
            ParamsError::UnknownField(field) => {
                write!(f, "params field \"{field}\" is not a policy knob")
            }
            ParamsError::BadField { field, msg } => {
                write!(f, "params field \"{field}\": {msg}")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

impl Default for PolicyParams {
    fn default() -> PolicyParams {
        PolicyParams::fifo_first_fit()
    }
}

impl PolicyParams {
    pub const fn fifo_first_fit() -> PolicyParams {
        PolicyParams {
            whole_drawer: 0.0,
            tie_tight: 0.0,
            frag_patience: 0.0,
            spill_pack: 0.0,
            probe_bias: 0.0,
            replica_pack: 0.0,
            evict_for_slo: false,
            shrink_aggr: 0.5,
            slo_claw_band: 0.5,
            preempt_margin: 0.0,
            defrag_margin: 1.0,
        }
    }

    pub const fn best_fit() -> PolicyParams {
        PolicyParams {
            whole_drawer: 1.0,
            tie_tight: 1.0,
            spill_pack: 1.0,
            ..PolicyParams::fifo_first_fit()
        }
    }

    pub const fn frag_aware() -> PolicyParams {
        PolicyParams {
            whole_drawer: 1.0,
            tie_tight: 1.0,
            frag_patience: 1.0,
            ..PolicyParams::fifo_first_fit()
        }
    }

    pub const fn topology_aware() -> PolicyParams {
        PolicyParams {
            whole_drawer: 1.0,
            probe_bias: 1.0,
            ..PolicyParams::fifo_first_fit()
        }
    }

    pub const fn slo_aware_pack() -> PolicyParams {
        PolicyParams {
            replica_pack: 1.0,
            evict_for_slo: true,
            ..PolicyParams::best_fit()
        }
    }

    /// The params behind a canonical preset name, `None` otherwise.
    pub fn preset(name: &str) -> Option<PolicyParams> {
        match name {
            "fifo-first-fit" => Some(PolicyParams::fifo_first_fit()),
            "best-fit" => Some(PolicyParams::best_fit()),
            "frag-aware" => Some(PolicyParams::frag_aware()),
            "topology-aware" => Some(PolicyParams::topology_aware()),
            "slo-aware-pack" => Some(PolicyParams::slo_aware_pack()),
            _ => None,
        }
    }

    /// `(field, value, lo, hi)` for every bounded (f64) knob, in the
    /// canonical emission order.
    fn bounded(&self) -> [(&'static str, f64, f64, f64); 10] {
        [
            ("whole_drawer", self.whole_drawer, 0.0, 1.0),
            ("tie_tight", self.tie_tight, 0.0, 1.0),
            ("frag_patience", self.frag_patience, 0.0, 1.0),
            ("spill_pack", self.spill_pack, 0.0, 1.0),
            ("probe_bias", self.probe_bias, 0.0, 1.0),
            ("replica_pack", self.replica_pack, 0.0, 1.0),
            ("shrink_aggr", self.shrink_aggr, 0.0625, 1.0),
            ("slo_claw_band", self.slo_claw_band, 0.05, 0.95),
            ("preempt_margin", self.preempt_margin, 0.0, 1.0),
            ("defrag_margin", self.defrag_margin, 1.0, 2.0),
        ]
    }

    /// Every knob inside its bounds (and finite), or the first offender
    /// by name.
    pub fn validate(&self) -> Result<(), ParamsError> {
        for (field, value, lo, hi) in self.bounded() {
            if !value.is_finite() || value < lo || value > hi {
                return Err(ParamsError::OutOfBounds { field, value, lo, hi });
            }
        }
        Ok(())
    }

    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("whole_drawer", Value::Num(self.whole_drawer)),
            ("tie_tight", Value::Num(self.tie_tight)),
            ("frag_patience", Value::Num(self.frag_patience)),
            ("spill_pack", Value::Num(self.spill_pack)),
            ("probe_bias", Value::Num(self.probe_bias)),
            ("replica_pack", Value::Num(self.replica_pack)),
            ("evict_for_slo", Value::Bool(self.evict_for_slo)),
            ("shrink_aggr", Value::Num(self.shrink_aggr)),
            ("slo_claw_band", Value::Num(self.slo_claw_band)),
            ("preempt_margin", Value::Num(self.preempt_margin)),
            ("defrag_margin", Value::Num(self.defrag_margin)),
        ])
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().emit_pretty()
    }

    /// Parse a params object. Missing knobs keep their
    /// [`PolicyParams::fifo_first_fit`] defaults; unknown keys are
    /// rejected by name. Bounds are *not* checked here — [`ParamPolicy::new`]
    /// (and [`PolicyParams::validate`]) own that, so parse errors and
    /// bounds errors stay distinguishable.
    pub fn from_json(v: &Value) -> Result<PolicyParams, ParamsError> {
        let pairs = v.as_obj().map_err(|e| ParamsError::BadField {
            field: "<root>".into(),
            msg: e.to_string(),
        })?;
        let mut p = PolicyParams::fifo_first_fit();
        for (k, v) in pairs {
            let num = |v: &Value| {
                v.as_f64().map_err(|e| ParamsError::BadField { field: k.clone(), msg: e.to_string() })
            };
            match k.as_str() {
                "whole_drawer" => p.whole_drawer = num(v)?,
                "tie_tight" => p.tie_tight = num(v)?,
                "frag_patience" => p.frag_patience = num(v)?,
                "spill_pack" => p.spill_pack = num(v)?,
                "probe_bias" => p.probe_bias = num(v)?,
                "replica_pack" => p.replica_pack = num(v)?,
                "evict_for_slo" => {
                    p.evict_for_slo = v.as_bool().map_err(|e| ParamsError::BadField {
                        field: k.clone(),
                        msg: e.to_string(),
                    })?
                }
                "shrink_aggr" => p.shrink_aggr = num(v)?,
                "slo_claw_band" => p.slo_claw_band = num(v)?,
                "preempt_margin" => p.preempt_margin = num(v)?,
                "defrag_margin" => p.defrag_margin = num(v)?,
                other => return Err(ParamsError::UnknownField(other.to_string())),
            }
        }
        Ok(p)
    }

    pub fn from_json_str(s: &str) -> Result<PolicyParams, ParamsError> {
        let v = Value::parse(s).map_err(|e| ParamsError::BadField {
            field: "<root>".into(),
            msg: e.to_string(),
        })?;
        PolicyParams::from_json(&v)
    }
}

/// The parametric policy: one [`place`](PlacePolicy::place) algorithm
/// whose stages are gated and weighted by [`PolicyParams`]. At the five
/// preset points it reproduces the hand-written policies bit-for-bit
/// (same slots, same probe pricing side effects) — the differential
/// tests below and the pinned goldens both hold it to that.
pub struct ParamPolicy {
    name: &'static str,
    params: PolicyParams,
}

impl ParamPolicy {
    /// A tuned (non-preset) point; rejected if any knob is out of
    /// bounds, naming the field.
    pub fn new(params: PolicyParams) -> Result<ParamPolicy, ParamsError> {
        params.validate()?;
        Ok(ParamPolicy { name: "tuned", params })
    }

    /// The preset bearing a canonical name, `None` otherwise.
    pub fn preset(name: &str) -> Option<ParamPolicy> {
        let stat = POLICY_NAMES.iter().copied().find(|&n| n == name)?;
        Some(ParamPolicy { name: stat, params: PolicyParams::preset(stat).expect("canonical") })
    }

    pub fn params(&self) -> &PolicyParams {
        &self.params
    }
}

impl PlacePolicy for ParamPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn place(
        &self,
        job: &JobSpec,
        free: &FreeView,
        probes: &mut ProbeCache,
    ) -> Option<Vec<RackAddr>> {
        let p = &self.params;
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        if p.whole_drawer > 0.0 {
            let per = per_drawer(free);
            let hit = if p.tie_tight >= 0.5 {
                tightest_fitting_drawer(&per, k)
            } else {
                first_fitting_drawer(&per, k)
            };
            if let Some(d) = hit {
                if p.probe_bias > 0.0 {
                    probes.price(job.benchmark, Shape::new(k as u8, 0));
                }
                return Some(per[d][..k].to_vec());
            }
            // No drawer fits whole: patient configurations wait for one
            // rather than spill, up to a job size the patience knob sets.
            if p.frag_patience >= 1.0 || (k as f64) <= p.frag_patience * FRAG_WAIT_SPAN {
                return None;
            }
            if p.probe_bias > 0.0 {
                return priced_spill(job, k, &per, probes);
            }
            if p.spill_pack >= 0.5 {
                return Some(drain_fullest_first(&per, k));
            }
            return Some(free.slots()[..k].to_vec());
        }
        if p.probe_bias > 0.0 {
            let per = per_drawer(free);
            return priced_spill(job, k, &per, probes);
        }
        if p.spill_pack >= 0.5 {
            let per = per_drawer(free);
            return Some(drain_fullest_first(&per, k));
        }
        Some(free.slots()[..k].to_vec())
    }

    fn place_replica(&self, slice: u8, view: &SliceView) -> Option<RackAddr> {
        if self.params.replica_pack >= 0.5 {
            pack_replica(slice, view)
        } else {
            first_fit_replica(slice, view)
        }
    }

    fn evict_for_slo(&self) -> bool {
        self.params.evict_for_slo
    }

    fn choose_victim(&self, job: &JobSpec, running: &[RunningView]) -> Option<u64> {
        // The default victim choice, plus a size floor: a victim must
        // free at least `preempt_margin` of the preemptor's demand for
        // the rollback to be worth paying. 0.0 is exactly the default.
        let need = (f64::from(job.gpus) * self.params.preempt_margin).ceil() as usize;
        running
            .iter()
            .filter(|r| r.priority < job.priority && r.slots.len() >= need)
            .min_by_key(|r| (r.slots.len(), r.id))
            .map(|r| r.id)
    }

    fn shrink_floor(&self, held: usize, gentle: bool) -> usize {
        if gentle {
            return held.saturating_sub(1);
        }
        let cut = ((held as f64) * self.params.shrink_aggr).round() as usize;
        held.saturating_sub(cut.max(1))
    }

    fn slo_claw_band(&self) -> f64 {
        self.params.slo_claw_band
    }

    fn defrag_margin(&self) -> f64 {
        self.params.defrag_margin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TenantId;
    use desim::SimTime;
    use dlmodels::Benchmark;

    fn job(gpus: u8) -> JobSpec {
        JobSpec {
            id: 0,
            tenant: TenantId(0),
            benchmark: Benchmark::ResNet50,
            gpus,
            min_gpus: gpus,
            priority: 1,
            arrival: SimTime::ZERO,
            iters: 8,
        }
    }

    fn ra(drawer: u8, slot: u8) -> RackAddr {
        RackAddr::new(0, drawer, slot)
    }

    fn spans(slots: &[RackAddr]) -> bool {
        rack::drawers_spanned(slots) > 1
    }

    /// d0 has slots {2,3}, d1 has {0,1,2,3} free.
    fn fragmented() -> FreeView {
        FreeView::single_chassis(vec![
            SlotAddr::new(0, 2),
            SlotAddr::new(0, 3),
            SlotAddr::new(1, 0),
            SlotAddr::new(1, 1),
            SlotAddr::new(1, 2),
            SlotAddr::new(1, 3),
        ])
    }

    #[test]
    fn first_fit_splits_across_drawers() {
        let got = FifoFirstFit
            .place(&job(4), &fragmented(), &mut ProbeCache::new(2))
            .unwrap();
        assert!(spans(&got), "first-fit fragments: {got:?}");
    }

    #[test]
    fn best_fit_packs_the_tightest_drawer() {
        let mut probes = ProbeCache::new(2);
        let got = BestFit.place(&job(2), &fragmented(), &mut probes).unwrap();
        assert_eq!(got, vec![ra(0, 2), ra(0, 3)]);
        let got4 = BestFit.place(&job(4), &fragmented(), &mut probes).unwrap();
        assert!(!spans(&got4), "d1 fits the 4-GPU job whole");
    }

    #[test]
    fn frag_aware_waits_rather_than_split() {
        let mut probes = ProbeCache::new(2);
        assert!(FragAware.place(&job(8), &fragmented(), &mut probes).is_none());
        let got = FragAware.place(&job(4), &fragmented(), &mut probes).unwrap();
        assert!(!spans(&got));
    }

    #[test]
    fn topology_aware_keeps_comm_bound_jobs_whole() {
        let mut probes = ProbeCache::new(2);
        let mut j = job(4);
        j.benchmark = Benchmark::BertLarge;
        let got = TopologyAware.place(&j, &fragmented(), &mut probes).unwrap();
        assert!(!spans(&got), "probe scoring avoids the split");
        assert!(!probes.is_empty());
    }

    #[test]
    fn topology_aware_prices_competing_splits() {
        // 3 free in each drawer, a 4-GPU job: no whole-drawer fit, so the
        // policy must price the 3+1 spill against the 2+2 balanced split.
        let free = FreeView::single_chassis(vec![
            SlotAddr::new(0, 0),
            SlotAddr::new(0, 1),
            SlotAddr::new(0, 2),
            SlotAddr::new(1, 0),
            SlotAddr::new(1, 1),
            SlotAddr::new(1, 2),
        ]);
        let mut probes = ProbeCache::new(2);
        let mut j = job(4);
        j.benchmark = Benchmark::BertLarge;
        let got = TopologyAware.place(&j, &free, &mut probes).unwrap();
        assert_eq!(got.len(), 4);
        assert!(spans(&got), "a split is unavoidable here");
        assert!(probes.len() >= 2, "both split shapes were priced");
    }

    #[test]
    fn policies_reach_across_chassis() {
        // A 2-chassis rack, 3 slots free per chassis (all in drawer 0):
        // a 4-GPU job cannot fit any chassis, so placement must span the
        // rack tier.
        let free = FreeView::new(
            vec![
                RackAddr::new(0, 0, 0),
                RackAddr::new(0, 0, 1),
                RackAddr::new(0, 0, 2),
                RackAddr::new(1, 0, 0),
                RackAddr::new(1, 0, 1),
                RackAddr::new(1, 0, 2),
            ],
            4,
        );
        let mut probes = ProbeCache::new(2);
        for p in all_policies() {
            let got = p.place(&job(4), &free, &mut probes).unwrap_or_default();
            if p.name() == "frag-aware" {
                assert!(got.is_empty(), "frag-aware keeps waiting for a whole drawer");
            } else {
                assert_eq!(got.len(), 4, "{} must span chassis", p.name());
                assert!(rack::chassis_parts(&got).len() == 2, "{}: {got:?}", p.name());
            }
        }
    }

    #[test]
    fn topology_aware_prefers_one_chassis_over_the_rack_hop() {
        // Chassis 0 can hold the 4-gang split 2+2; chassis 1 has a whole
        // drawer free. The whole drawer wins (no hop at all). Remove it
        // and the policy stays inside chassis 0 rather than spanning the
        // rack tier.
        let mut slots = vec![
            RackAddr::new(0, 0, 0),
            RackAddr::new(0, 0, 1),
            RackAddr::new(0, 1, 0),
            RackAddr::new(0, 1, 1),
        ];
        let whole: Vec<RackAddr> = (0..4).map(|s| RackAddr::new(1, 0, s)).collect();
        slots.extend(&whole);
        let mut probes = ProbeCache::new(2);
        let got = TopologyAware
            .place(&job(4), &FreeView::new(slots.clone(), 4), &mut probes)
            .unwrap();
        assert_eq!(got, whole, "whole drawer on chassis 1 is unbeatable");
        slots.truncate(4);
        let got = TopologyAware
            .place(&job(4), &FreeView::new(slots, 4), &mut probes)
            .unwrap();
        assert_eq!(
            rack::chassis_parts(&got).len(),
            1,
            "intra-chassis split beats the rack hop: {got:?}"
        );
    }

    #[test]
    fn all_policies_refuse_impossible_demands() {
        let mut probes = ProbeCache::new(2);
        let tiny = FreeView::single_chassis(vec![SlotAddr::new(0, 0)]);
        for p in all_policies() {
            assert!(p.place(&job(2), &tiny, &mut probes).is_none(), "{}", p.name());
        }
        assert!(policy_by_name("best-fit").is_some());
        assert!(policy_by_name("slo-aware-pack").is_some());
        assert!(policy_by_name("nope").is_none());
    }

    fn slice_view() -> SliceView {
        SliceView {
            slots: vec![
                SliceSlot { addr: ra(0, 1), free_sevenths: 7, shared: false },
                SliceSlot { addr: ra(0, 6), free_sevenths: 3, shared: true },
                SliceSlot { addr: ra(1, 2), free_sevenths: 7, shared: false },
            ],
            free_gpus: vec![5, 2],
        }
    }

    #[test]
    fn default_replica_placement_is_first_fit() {
        let got = FifoFirstFit.place_replica(2, &slice_view()).unwrap();
        assert_eq!(got, ra(0, 1), "first slot in global order");
        assert!(!FifoFirstFit.evict_for_slo());
    }

    #[test]
    fn slo_aware_pack_fills_shared_slots_first() {
        let got = SloAwarePack.place_replica(2, &slice_view()).unwrap();
        assert_eq!(got, ra(0, 6), "partial serving slot wins");
        // Too big for the shared slot: falls to the tightest drawer's
        // free slot, not the global first fit.
        let got4 = SloAwarePack.place_replica(4, &slice_view()).unwrap();
        assert_eq!(got4, ra(1, 2), "tightest drawer, high slot");
        assert!(SloAwarePack.evict_for_slo());
        assert!(SloAwarePack
            .place_replica(4, &SliceView { slots: vec![], free_gpus: vec![0, 0] })
            .is_none());
    }

    #[test]
    fn default_victim_is_the_cheapest_strictly_lower_tier() {
        let rv = |id: u64, priority: u8, n: usize| RunningView {
            id,
            tenant: 0,
            priority,
            slots: (0..n as u8).map(|s| ra(0, s)).collect(),
        };
        let running = [rv(3, 1, 4), rv(5, 1, 2), rv(7, 2, 1), rv(9, 1, 2)];
        let mut head = job(8);
        head.priority = 2;
        // Cheapest low-tier victim: 2 slots, lowest id — never the
        // equal-tier job 7 even though it is cheapest overall.
        assert_eq!(FifoFirstFit.choose_victim(&head, &running), Some(5));
        head.priority = 1;
        assert_eq!(FifoFirstFit.choose_victim(&head, &running), None, "no strictly lower tier");
    }

    #[test]
    fn default_migration_compacts_spanning_gangs_only() {
        let mut probes = ProbeCache::new(2);
        // d0 holds {2,3}+d1 holds {0,1,2,3} free; a gang on d0{0,1}+d1{4,5}
        // spans and fits whole into d1.
        let current = vec![ra(0, 0), ra(0, 1), ra(1, 4), ra(1, 5)];
        let got = FifoFirstFit.migrate(&job(4), &current, &fragmented(), &mut probes).unwrap();
        assert_eq!(got.len(), 4);
        assert!(!spans(&got), "default migration lands a whole drawer: {got:?}");
        // A single-drawer gang never moves; nor does one no drawer fits.
        let compact = vec![ra(0, 0), ra(0, 1)];
        assert!(FifoFirstFit.migrate(&job(2), &compact, &fragmented(), &mut probes).is_none());
        let wide = vec![
            ra(0, 0),
            ra(0, 1),
            ra(0, 4),
            ra(0, 5),
            ra(1, 4),
            ra(1, 5),
            ra(1, 6),
            ra(1, 7),
        ];
        assert!(FifoFirstFit.migrate(&job(8), &wide, &fragmented(), &mut probes).is_none());
    }

    #[test]
    fn serving_policies_superset() {
        let names: Vec<&str> = serving_policies().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["fifo-first-fit", "best-fit", "frag-aware", "topology-aware", "slo-aware-pack"]
        );
        assert_eq!(all_policies().len(), 4, "training tables keep their four rows");
    }

    /// A seeded random multi-chassis free view: each of `chassis * 2`
    /// drawers keeps a random subset of its 8 slots free.
    fn random_free(rng: &mut desim::SimRng, chassis: u8) -> FreeView {
        let mut free = Vec::new();
        for c in 0..chassis {
            for d in 0..2u8 {
                for s in 0..8u8 {
                    if rng.chance(0.45) {
                        free.push(RackAddr::new(c, d, s));
                    }
                }
            }
        }
        FreeView::new(free, usize::from(chassis) * 2)
    }

    fn random_slice_view(rng: &mut desim::SimRng, chassis: u8) -> SliceView {
        let mut slots = Vec::new();
        let mut free_gpus = vec![0usize; usize::from(chassis) * 2];
        for c in 0..chassis {
            for d in 0..2u8 {
                for s in 0..8u8 {
                    if !rng.chance(0.4) {
                        continue;
                    }
                    let shared = rng.chance(0.3);
                    let sevenths = if shared { 1 + rng.index(6) as u8 } else { 7 };
                    if !shared && sevenths == 7 {
                        free_gpus[usize::from(c) * 2 + usize::from(d)] += 1;
                    }
                    slots.push(SliceSlot {
                        addr: RackAddr::new(c, d, s),
                        free_sevenths: sevenths,
                        shared,
                    });
                }
            }
        }
        SliceView { slots, free_gpus }
    }

    /// Every preset replays its hand-written policy decision-for-decision
    /// on seeded random views: same slots, same probe-cache side effects.
    #[test]
    fn presets_match_concrete_policies() {
        let concrete: [Box<dyn PlacePolicy>; 5] = [
            Box::new(FifoFirstFit),
            Box::new(BestFit),
            Box::new(FragAware),
            Box::new(TopologyAware),
            Box::new(SloAwarePack),
        ];
        for (name, old) in POLICY_NAMES.iter().zip(concrete.iter()) {
            let new = ParamPolicy::preset(name).expect("canonical name");
            assert_eq!(new.name(), *name);
            let mut rng = desim::SimRng::seed_from_u64(0xA11_0_7EE);
            for trial in 0..200 {
                let chassis = 1 + rng.index(4) as u8;
                let free = random_free(&mut rng, chassis);
                let gpus = 1 + rng.index(12) as u8;
                let bench = match rng.index(3) {
                    0 => Benchmark::ResNet50,
                    1 => Benchmark::BertLarge,
                    _ => Benchmark::MobileNetV2,
                };
                let mut j = job(gpus);
                j.benchmark = bench;
                let mut probes_old = ProbeCache::new(2);
                let mut probes_new = ProbeCache::new(2);
                assert_eq!(
                    old.place(&j, &free, &mut probes_old),
                    new.place(&j, &free, &mut probes_new),
                    "{name} trial {trial}: place diverged ({gpus} gpus, {chassis} chassis)"
                );
                assert_eq!(
                    probes_old.save_json(),
                    probes_new.save_json(),
                    "{name} trial {trial}: probe pricing side effects diverged"
                );
                let view = random_slice_view(&mut rng, chassis);
                let slice = 1 + rng.index(7) as u8;
                assert_eq!(
                    old.place_replica(slice, &view),
                    new.place_replica(slice, &view),
                    "{name} trial {trial}: place_replica diverged"
                );
                assert_eq!(old.evict_for_slo(), new.evict_for_slo(), "{name}");
                let running: Vec<RunningView> = (0..rng.index(6))
                    .map(|i| RunningView {
                        id: i as u64,
                        tenant: 0,
                        priority: rng.index(3) as u8,
                        slots: (0..1 + rng.index(8)).map(|s| ra(0, s as u8)).collect(),
                    })
                    .collect();
                let mut pj = job(gpus);
                pj.priority = 2;
                assert_eq!(
                    old.choose_victim(&pj, &running),
                    new.choose_victim(&pj, &running),
                    "{name} trial {trial}: choose_victim diverged"
                );
                for held in 1..=16 {
                    assert_eq!(old.shrink_floor(held, false), new.shrink_floor(held, false));
                    assert_eq!(old.shrink_floor(held, true), new.shrink_floor(held, true));
                }
                assert_eq!(old.slo_claw_band(), new.slo_claw_band());
                assert_eq!(old.defrag_margin(), new.defrag_margin());
            }
        }
    }

    #[test]
    fn params_json_round_trip() {
        for name in POLICY_NAMES {
            let p = PolicyParams::preset(name).unwrap();
            let back = PolicyParams::from_json_str(&p.to_json_string()).unwrap();
            assert_eq!(p, back, "{name} round trip");
        }
    }

    #[test]
    fn params_reject_out_of_bounds_naming_the_field() {
        let mut p = PolicyParams::best_fit();
        p.shrink_aggr = 1.5;
        match p.validate() {
            Err(ParamsError::OutOfBounds { field, .. }) => assert_eq!(field, "shrink_aggr"),
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
        assert!(ParamPolicy::new(p).is_err());
    }

    #[test]
    fn params_reject_unknown_fields() {
        let err = PolicyParams::from_json_str("{\"spill_pack\": 1, \"warp\": 9}").unwrap_err();
        assert!(matches!(err, ParamsError::UnknownField(f) if f == "warp"));
    }

    #[test]
    fn resolve_policy_lists_valid_names() {
        let Err(err) = resolve_policy("does-not-exist") else {
            panic!("bogus name resolved")
        };
        let msg = err.to_string();
        for name in POLICY_NAMES {
            assert!(msg.contains(name), "error names the valid policies: {msg}");
        }
    }
}
