//! Placement policies: given a job and the rack's current free slots,
//! choose the slots to compose — or decline and let the job wait.
//!
//! All policies see the same queue in the same order (the cluster loop
//! owns queue discipline); they differ **only** in slot selection:
//!
//! * [`FifoFirstFit`] — the naive baseline: first free slots in global
//!   slot order, splitting across drawers (and chassis) whenever the
//!   front of the free list is fragmented.
//! * [`BestFit`] — classic best-fit packing: the *tightest* drawer
//!   anywhere in the rack that still fits the job, spilling only when no
//!   single drawer fits.
//! * [`FragAware`] — keeps Falcon drawers whole: never splits a job
//!   across drawers, preferring to let it queue until a whole-drawer
//!   placement opens.
//! * [`TopologyAware`] — prices every candidate shape with a cached
//!   micro-probe ([`crate::probe`]) and picks the best
//!   [`composable_core::Objective::TrainingTime`] score, charging
//!   [`rack::cross_chassis_stretch`] when a candidate spans the
//!   inter-chassis tier.
//!
//! Policies are topology-generic: they see [`FreeView`]'s rack-global
//! drawer axis and reduce exactly to their single-chassis behavior when
//! the rack is one chassis, keeping the pre-rack goldens byte-identical.

use crate::probe::{ProbeCache, Shape};
use crate::trace::JobSpec;
use falcon::SlotAddr;
use rack::{cross_chassis_stretch, drawers_spanned, RackAddr};
use std::cmp::Reverse;

/// Snapshot of the rack's unattached GPU slots, in global (chassis-major)
/// slot order, plus the rack's drawer count so policies can iterate the
/// global drawer axis.
#[derive(Debug, Clone)]
pub struct FreeView {
    free: Vec<RackAddr>,
    n_drawers: usize,
}

impl FreeView {
    pub fn new(mut free: Vec<RackAddr>, n_drawers: usize) -> FreeView {
        free.sort_unstable();
        FreeView { free, n_drawers }
    }

    /// The paper's single-chassis view (chassis 0, 2 drawers).
    pub fn single_chassis(free: Vec<SlotAddr>) -> FreeView {
        FreeView::new(free.into_iter().map(RackAddr::local).collect(), 2)
    }

    pub fn total(&self) -> usize {
        self.free.len()
    }

    pub fn slots(&self) -> &[RackAddr] {
        &self.free
    }

    /// Global drawers in the rack (2 per chassis).
    pub fn n_drawers(&self) -> usize {
        self.n_drawers
    }

    /// Free slots inside one global drawer, ascending.
    pub fn in_drawer(&self, drawer: usize) -> Vec<RackAddr> {
        self.free
            .iter()
            .copied()
            .filter(|s| s.global_drawer() == drawer)
            .collect()
    }
}

/// One slot a serving replica could land on: a partially-used serving
/// slot of the same tenant (`shared`), or a wholly free slot.
#[derive(Debug, Clone, Copy)]
pub struct SliceSlot {
    pub addr: RackAddr,
    /// Unclaimed sevenths of the slot's compute.
    pub free_sevenths: u8,
    /// Already attached for serving this tenant (placing here costs no
    /// new whole slot).
    pub shared: bool,
}

/// The fractional-capacity view a replica placement chooses from, in
/// global slot order, plus the per-global-drawer wholly-free GPU counts
/// (so packing policies can keep training's contiguous holes whole).
#[derive(Debug, Clone)]
pub struct SliceView {
    pub slots: Vec<SliceSlot>,
    pub free_gpus: Vec<usize>,
}

/// What a policy sees of one running job when choosing a preemption
/// victim: identity, tier, and the slots a preemption would free.
#[derive(Debug, Clone)]
pub struct RunningView {
    pub id: u64,
    pub tenant: u32,
    pub priority: u8,
    pub slots: Vec<RackAddr>,
}

/// A slot-selection strategy. Returning `None` means "this job cannot (or
/// should not) be placed right now"; the cluster loop decides whether that
/// blocks the queue.
///
/// `Send` because [`crate::cluster::compare_policies`] ships each policy
/// to a parsweep worker for its replay; policies are stateless slot
/// selectors, so the bound costs implementors nothing.
pub trait PlacePolicy: Send {
    fn name(&self) -> &'static str;
    fn place(&self, job: &JobSpec, free: &FreeView, probes: &mut ProbeCache)
        -> Option<Vec<RackAddr>>;

    /// Pick the slot for one serving replica of `slice`/7 of a GPU. The
    /// default mirrors [`FifoFirstFit`]: the first slot that fits, in
    /// global order, blind to fragmentation.
    fn place_replica(&self, slice: u8, view: &SliceView) -> Option<RackAddr> {
        view.slots.iter().find(|s| s.free_sevenths >= slice).map(|s| s.addr)
    }

    /// May the cluster shrink elastic training jobs to compose a replica
    /// for a service at risk of violating its SLO?
    fn evict_for_slo(&self) -> bool {
        false
    }

    /// Pick the running job a capacity-blocked `job` may checkpoint-
    /// preempt, or `None` to let it wait. The contract: the victim's tier
    /// must be **strictly below** `job.priority` (the cluster loop
    /// enforces this; anything else could preempt in cycles). The default
    /// sacrifices the cheapest eligible victim — fewest held slots, ties
    /// to the lowest id — so high tiers displace as little work as
    /// possible.
    fn choose_victim(&self, job: &JobSpec, running: &[RunningView]) -> Option<u64> {
        running
            .iter()
            .filter(|r| r.priority < job.priority)
            .min_by_key(|r| (r.slots.len(), r.id))
            .map(|r| r.id)
    }

    /// Propose a live-migration target for a running job currently on
    /// `current`, or `None` to leave it in place. The cluster's defrag
    /// pass only accepts same-size placements spanning strictly fewer
    /// global drawers (and only when the move beats its rollback +
    /// re-composition cost). The default relocates a drawer-spanning gang
    /// to the first whole drawer that fits it; single-drawer gangs never
    /// move.
    fn migrate(
        &self,
        job: &JobSpec,
        current: &[RackAddr],
        free: &FreeView,
        probes: &mut ProbeCache,
    ) -> Option<Vec<RackAddr>> {
        let _ = (job, probes);
        if drawers_spanned(current) <= 1 {
            return None;
        }
        let k = current.len();
        (0..free.n_drawers()).map(|d| free.in_drawer(d)).find(|slots| slots.len() >= k).map(
            |mut slots| {
                slots.truncate(k);
                slots
            },
        )
    }
}

/// Every built-in training policy, in the order the comparison tables
/// print them. ([`serving_policies`] appends the serving-aware one.)
pub fn all_policies() -> Vec<Box<dyn PlacePolicy>> {
    vec![
        Box::new(FifoFirstFit),
        Box::new(BestFit),
        Box::new(FragAware),
        Box::new(TopologyAware),
    ]
}

/// The policies mixed (training + serving) comparisons run:
/// [`all_policies`] plus [`SloAwarePack`].
pub fn serving_policies() -> Vec<Box<dyn PlacePolicy>> {
    let mut v = all_policies();
    v.push(Box::new(SloAwarePack));
    v
}

/// Look a policy up by its `name()` (searches the serving superset).
pub fn policy_by_name(name: &str) -> Option<Box<dyn PlacePolicy>> {
    serving_policies().into_iter().find(|p| p.name() == name)
}

pub struct FifoFirstFit;

impl PlacePolicy for FifoFirstFit {
    fn name(&self) -> &'static str {
        "fifo-first-fit"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<RackAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        Some(free.slots()[..k].to_vec())
    }
}

pub struct BestFit;

impl PlacePolicy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<RackAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        let nd = free.n_drawers();
        let per: Vec<Vec<RackAddr>> = (0..nd).map(|d| free.in_drawer(d)).collect();
        // Tightest single drawer anywhere in the rack that fits.
        if let Some(d) = (0..nd)
            .filter(|&d| per[d].len() >= k)
            .min_by_key(|&d| (per[d].len(), d))
        {
            return Some(per[d][..k].to_vec());
        }
        // No drawer fits alone: drain drawers fullest-first (ties toward
        // the lower global drawer), spilling across drawers — and chassis —
        // as the remainder demands.
        let mut order: Vec<usize> = (0..nd).collect();
        order.sort_by_key(|&d| (Reverse(per[d].len()), d));
        let mut slots: Vec<RackAddr> = Vec::with_capacity(k);
        for d in order {
            if slots.len() == k {
                break;
            }
            slots.extend(per[d].iter().copied().take(k - slots.len()));
        }
        Some(slots)
    }
}

pub struct FragAware;

impl PlacePolicy for FragAware {
    fn name(&self) -> &'static str {
        "frag-aware"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<RackAddr>> {
        let k = usize::from(job.gpus);
        // Whole-drawer placements only: a drawer must fit the entire job.
        // Among fitting drawers, prefer an exact fit, then the tightest —
        // large contiguous holes stay whole for the jobs that need them.
        (0..free.n_drawers())
            .map(|d| free.in_drawer(d))
            .filter(|slots| slots.len() >= k)
            .min_by_key(|slots| (slots.len() != k, slots.len()))
            .map(|slots| slots[..k].to_vec())
    }
}

pub struct TopologyAware;

/// Score a placement split into per-chassis parts: each part is priced by
/// its per-chassis probe (entries are chassis-pure) and the slowest part
/// bounds the gang; spanning the rack tier multiplies in the analytic
/// [`cross_chassis_stretch`]. Scores are negative training times, so the
/// stretch makes spanning candidates strictly worse.
fn score_spanning(probes: &mut ProbeCache, job: &JobSpec, parts: &[Shape]) -> f64 {
    let worst = parts
        .iter()
        .map(|&s| probes.price(job.benchmark, s).score)
        .fold(f64::INFINITY, f64::min);
    worst * cross_chassis_stretch(parts.len(), 100)
}

impl PlacePolicy for TopologyAware {
    fn name(&self) -> &'static str {
        "topology-aware"
    }

    fn place(
        &self,
        job: &JobSpec,
        free: &FreeView,
        probes: &mut ProbeCache,
    ) -> Option<Vec<RackAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        let nd = free.n_drawers();
        let per: Vec<Vec<RackAddr>> = (0..nd).map(|d| free.in_drawer(d)).collect();
        // 1. A whole drawer anywhere in the rack: the unbeatable shape
        // under this cost model (no root-complex hop, no rack hop), so
        // whole-drawer candidates only tie with each other — the lowest
        // global drawer wins, matching the single-chassis tie-break.
        if let Some(d) = (0..nd).find(|&d| per[d].len() >= k) {
            probes.price(job.benchmark, Shape::new(k as u8, 0));
            return Some(per[d][..k].to_vec());
        }
        // 2. Intra-chassis splits: within each chassis that can hold the
        // gang, the least-split spill and the balanced split — the probe
        // decides which split shape hurts less. Candidates are
        // (take-from-primary, primary drawer, secondary drawer).
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
        for c in 0..nd / 2 {
            let (d0, d1) = (2 * c, 2 * c + 1);
            if per[d0].len() + per[d1].len() < k {
                continue;
            }
            let (fuller, other) = if per[d0].len() >= per[d1].len() { (d0, d1) } else { (d1, d0) };
            let spill = per[fuller].len().min(k);
            candidates.push((spill, fuller, other));
            let balanced = k.div_ceil(2);
            if balanced < spill && k - balanced <= per[other].len() {
                candidates.push((balanced, fuller, other));
            }
        }
        if !candidates.is_empty() {
            // Highest probe score wins; ties resolve to fewer drawers
            // spanned, then the lower primary drawer, so the choice is
            // deterministic.
            let (take, pd, sd) = candidates
                .into_iter()
                .map(|(take, pd, sd)| {
                    let shape = Shape::new(take as u8, (k - take) as u8);
                    (probes.price(job.benchmark, shape).score, take, pd, sd)
                })
                .max_by(|(sa, ta, da, _), (sb, tb, db, _)| {
                    sa.partial_cmp(sb)
                        .expect("finite probe scores")
                        .then(ta.cmp(tb))
                        .then(db.cmp(da))
                })
                .map(|(_, take, pd, sd)| (take, pd, sd))?;
            let mut slots: Vec<RackAddr> = per[pd].iter().copied().take(take).collect();
            slots.extend(per[sd].iter().copied().take(k - take));
            debug_assert_eq!(slots.len(), k);
            return Some(slots);
        }
        // 3. No chassis can hold the gang alone: it must span the rack
        // tier. Price the fewest-chassis greedy assembly (freest chassis
        // first, fuller drawer first within each) against a balanced
        // two-chassis split, and take the better — the stretch factor
        // penalizes every extra chassis part.
        let n_chassis = nd / 2;
        let chassis_free = |c: usize| per[2 * c].len() + per[2 * c + 1].len();
        let mut order: Vec<usize> = (0..n_chassis).collect();
        order.sort_by_key(|&c| (Reverse(chassis_free(c)), c));
        let take_in_chassis = |c: usize, want: usize| -> (Vec<RackAddr>, Shape) {
            let (d0, d1) = (2 * c, 2 * c + 1);
            let (fuller, other) = if per[d0].len() >= per[d1].len() { (d0, d1) } else { (d1, d0) };
            let t0 = per[fuller].len().min(want);
            let t1 = per[other].len().min(want - t0);
            let mut v: Vec<RackAddr> = per[fuller].iter().copied().take(t0).collect();
            v.extend(per[other].iter().copied().take(t1));
            (v, Shape::new(t0 as u8, t1 as u8))
        };
        let assemble = |plan: &[(usize, usize)]| -> (Vec<RackAddr>, Vec<Shape>) {
            let mut slots = Vec::with_capacity(k);
            let mut parts = Vec::new();
            for &(c, want) in plan {
                if want == 0 {
                    continue;
                }
                let (v, shape) = take_in_chassis(c, want);
                slots.extend(v);
                parts.push(shape);
            }
            (slots, parts)
        };
        // Greedy: drain the freest chassis, then the next, until filled.
        let mut greedy_plan: Vec<(usize, usize)> = Vec::new();
        let mut left = k;
        for &c in &order {
            let take = chassis_free(c).min(left);
            greedy_plan.push((c, take));
            left -= take;
            if left == 0 {
                break;
            }
        }
        if left > 0 {
            return None;
        }
        let (greedy_slots, greedy_parts) = assemble(&greedy_plan);
        let mut best = (
            score_spanning(probes, job, &greedy_parts),
            greedy_parts.len(),
            greedy_slots,
        );
        // Balanced across the two freest chassis, when both halves fit.
        if order.len() >= 2 {
            let hi = k.div_ceil(2);
            if chassis_free(order[0]) >= hi && chassis_free(order[1]) >= k - hi {
                let (slots, parts) = assemble(&[(order[0], hi), (order[1], k - hi)]);
                let score = score_spanning(probes, job, &parts);
                // Strictly better only: ties keep the greedy (fewer-part)
                // assembly.
                if score > best.0 || (score == best.0 && parts.len() < best.1) {
                    best = (score, parts.len(), slots);
                }
            }
        }
        debug_assert_eq!(best.2.len(), k);
        Some(best.2)
    }
}

/// The serving-aware policy: training places best-fit (tightest drawer),
/// replicas pack onto fragmented fractional capacity training can't use —
/// partially-used serving slots first, then the tightest drawer's highest
/// slot, keeping low-address contiguous runs whole for training gangs —
/// and SLO pressure may evict (elastically shrink) training.
pub struct SloAwarePack;

impl PlacePolicy for SloAwarePack {
    fn name(&self) -> &'static str {
        "slo-aware-pack"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, probes: &mut ProbeCache)
        -> Option<Vec<RackAddr>> {
        BestFit.place(job, free, probes)
    }

    fn place_replica(&self, slice: u8, view: &SliceView) -> Option<RackAddr> {
        view.slots
            .iter()
            .filter(|s| s.free_sevenths >= slice)
            .min_by_key(|s| {
                (
                    !s.shared,
                    view.free_gpus[s.addr.global_drawer()],
                    Reverse(s.addr),
                )
            })
            .map(|s| s.addr)
    }

    fn evict_for_slo(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TenantId;
    use desim::SimTime;
    use dlmodels::Benchmark;

    fn job(gpus: u8) -> JobSpec {
        JobSpec {
            id: 0,
            tenant: TenantId(0),
            benchmark: Benchmark::ResNet50,
            gpus,
            min_gpus: gpus,
            priority: 1,
            arrival: SimTime::ZERO,
            iters: 8,
        }
    }

    fn ra(drawer: u8, slot: u8) -> RackAddr {
        RackAddr::new(0, drawer, slot)
    }

    fn spans(slots: &[RackAddr]) -> bool {
        rack::drawers_spanned(slots) > 1
    }

    /// d0 has slots {2,3}, d1 has {0,1,2,3} free.
    fn fragmented() -> FreeView {
        FreeView::single_chassis(vec![
            SlotAddr::new(0, 2),
            SlotAddr::new(0, 3),
            SlotAddr::new(1, 0),
            SlotAddr::new(1, 1),
            SlotAddr::new(1, 2),
            SlotAddr::new(1, 3),
        ])
    }

    #[test]
    fn first_fit_splits_across_drawers() {
        let got = FifoFirstFit
            .place(&job(4), &fragmented(), &mut ProbeCache::new(2))
            .unwrap();
        assert!(spans(&got), "first-fit fragments: {got:?}");
    }

    #[test]
    fn best_fit_packs_the_tightest_drawer() {
        let mut probes = ProbeCache::new(2);
        let got = BestFit.place(&job(2), &fragmented(), &mut probes).unwrap();
        assert_eq!(got, vec![ra(0, 2), ra(0, 3)]);
        let got4 = BestFit.place(&job(4), &fragmented(), &mut probes).unwrap();
        assert!(!spans(&got4), "d1 fits the 4-GPU job whole");
    }

    #[test]
    fn frag_aware_waits_rather_than_split() {
        let mut probes = ProbeCache::new(2);
        assert!(FragAware.place(&job(8), &fragmented(), &mut probes).is_none());
        let got = FragAware.place(&job(4), &fragmented(), &mut probes).unwrap();
        assert!(!spans(&got));
    }

    #[test]
    fn topology_aware_keeps_comm_bound_jobs_whole() {
        let mut probes = ProbeCache::new(2);
        let mut j = job(4);
        j.benchmark = Benchmark::BertLarge;
        let got = TopologyAware.place(&j, &fragmented(), &mut probes).unwrap();
        assert!(!spans(&got), "probe scoring avoids the split");
        assert!(!probes.is_empty());
    }

    #[test]
    fn topology_aware_prices_competing_splits() {
        // 3 free in each drawer, a 4-GPU job: no whole-drawer fit, so the
        // policy must price the 3+1 spill against the 2+2 balanced split.
        let free = FreeView::single_chassis(vec![
            SlotAddr::new(0, 0),
            SlotAddr::new(0, 1),
            SlotAddr::new(0, 2),
            SlotAddr::new(1, 0),
            SlotAddr::new(1, 1),
            SlotAddr::new(1, 2),
        ]);
        let mut probes = ProbeCache::new(2);
        let mut j = job(4);
        j.benchmark = Benchmark::BertLarge;
        let got = TopologyAware.place(&j, &free, &mut probes).unwrap();
        assert_eq!(got.len(), 4);
        assert!(spans(&got), "a split is unavoidable here");
        assert!(probes.len() >= 2, "both split shapes were priced");
    }

    #[test]
    fn policies_reach_across_chassis() {
        // A 2-chassis rack, 3 slots free per chassis (all in drawer 0):
        // a 4-GPU job cannot fit any chassis, so placement must span the
        // rack tier.
        let free = FreeView::new(
            vec![
                RackAddr::new(0, 0, 0),
                RackAddr::new(0, 0, 1),
                RackAddr::new(0, 0, 2),
                RackAddr::new(1, 0, 0),
                RackAddr::new(1, 0, 1),
                RackAddr::new(1, 0, 2),
            ],
            4,
        );
        let mut probes = ProbeCache::new(2);
        for p in all_policies() {
            let got = p.place(&job(4), &free, &mut probes).unwrap_or_default();
            if p.name() == "frag-aware" {
                assert!(got.is_empty(), "frag-aware keeps waiting for a whole drawer");
            } else {
                assert_eq!(got.len(), 4, "{} must span chassis", p.name());
                assert!(rack::chassis_parts(&got).len() == 2, "{}: {got:?}", p.name());
            }
        }
    }

    #[test]
    fn topology_aware_prefers_one_chassis_over_the_rack_hop() {
        // Chassis 0 can hold the 4-gang split 2+2; chassis 1 has a whole
        // drawer free. The whole drawer wins (no hop at all). Remove it
        // and the policy stays inside chassis 0 rather than spanning the
        // rack tier.
        let mut slots = vec![
            RackAddr::new(0, 0, 0),
            RackAddr::new(0, 0, 1),
            RackAddr::new(0, 1, 0),
            RackAddr::new(0, 1, 1),
        ];
        let whole: Vec<RackAddr> = (0..4).map(|s| RackAddr::new(1, 0, s)).collect();
        slots.extend(&whole);
        let mut probes = ProbeCache::new(2);
        let got = TopologyAware
            .place(&job(4), &FreeView::new(slots.clone(), 4), &mut probes)
            .unwrap();
        assert_eq!(got, whole, "whole drawer on chassis 1 is unbeatable");
        slots.truncate(4);
        let got = TopologyAware
            .place(&job(4), &FreeView::new(slots, 4), &mut probes)
            .unwrap();
        assert_eq!(
            rack::chassis_parts(&got).len(),
            1,
            "intra-chassis split beats the rack hop: {got:?}"
        );
    }

    #[test]
    fn all_policies_refuse_impossible_demands() {
        let mut probes = ProbeCache::new(2);
        let tiny = FreeView::single_chassis(vec![SlotAddr::new(0, 0)]);
        for p in all_policies() {
            assert!(p.place(&job(2), &tiny, &mut probes).is_none(), "{}", p.name());
        }
        assert!(policy_by_name("best-fit").is_some());
        assert!(policy_by_name("slo-aware-pack").is_some());
        assert!(policy_by_name("nope").is_none());
    }

    fn slice_view() -> SliceView {
        SliceView {
            slots: vec![
                SliceSlot { addr: ra(0, 1), free_sevenths: 7, shared: false },
                SliceSlot { addr: ra(0, 6), free_sevenths: 3, shared: true },
                SliceSlot { addr: ra(1, 2), free_sevenths: 7, shared: false },
            ],
            free_gpus: vec![5, 2],
        }
    }

    #[test]
    fn default_replica_placement_is_first_fit() {
        let got = FifoFirstFit.place_replica(2, &slice_view()).unwrap();
        assert_eq!(got, ra(0, 1), "first slot in global order");
        assert!(!FifoFirstFit.evict_for_slo());
    }

    #[test]
    fn slo_aware_pack_fills_shared_slots_first() {
        let got = SloAwarePack.place_replica(2, &slice_view()).unwrap();
        assert_eq!(got, ra(0, 6), "partial serving slot wins");
        // Too big for the shared slot: falls to the tightest drawer's
        // free slot, not the global first fit.
        let got4 = SloAwarePack.place_replica(4, &slice_view()).unwrap();
        assert_eq!(got4, ra(1, 2), "tightest drawer, high slot");
        assert!(SloAwarePack.evict_for_slo());
        assert!(SloAwarePack
            .place_replica(4, &SliceView { slots: vec![], free_gpus: vec![0, 0] })
            .is_none());
    }

    #[test]
    fn default_victim_is_the_cheapest_strictly_lower_tier() {
        let rv = |id: u64, priority: u8, n: usize| RunningView {
            id,
            tenant: 0,
            priority,
            slots: (0..n as u8).map(|s| ra(0, s)).collect(),
        };
        let running = [rv(3, 1, 4), rv(5, 1, 2), rv(7, 2, 1), rv(9, 1, 2)];
        let mut head = job(8);
        head.priority = 2;
        // Cheapest low-tier victim: 2 slots, lowest id — never the
        // equal-tier job 7 even though it is cheapest overall.
        assert_eq!(FifoFirstFit.choose_victim(&head, &running), Some(5));
        head.priority = 1;
        assert_eq!(FifoFirstFit.choose_victim(&head, &running), None, "no strictly lower tier");
    }

    #[test]
    fn default_migration_compacts_spanning_gangs_only() {
        let mut probes = ProbeCache::new(2);
        // d0 holds {2,3}+d1 holds {0,1,2,3} free; a gang on d0{0,1}+d1{4,5}
        // spans and fits whole into d1.
        let current = vec![ra(0, 0), ra(0, 1), ra(1, 4), ra(1, 5)];
        let got = FifoFirstFit.migrate(&job(4), &current, &fragmented(), &mut probes).unwrap();
        assert_eq!(got.len(), 4);
        assert!(!spans(&got), "default migration lands a whole drawer: {got:?}");
        // A single-drawer gang never moves; nor does one no drawer fits.
        let compact = vec![ra(0, 0), ra(0, 1)];
        assert!(FifoFirstFit.migrate(&job(2), &compact, &fragmented(), &mut probes).is_none());
        let wide = vec![
            ra(0, 0),
            ra(0, 1),
            ra(0, 4),
            ra(0, 5),
            ra(1, 4),
            ra(1, 5),
            ra(1, 6),
            ra(1, 7),
        ];
        assert!(FifoFirstFit.migrate(&job(8), &wide, &fragmented(), &mut probes).is_none());
    }

    #[test]
    fn serving_policies_superset() {
        let names: Vec<&str> = serving_policies().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["fifo-first-fit", "best-fit", "frag-aware", "topology-aware", "slo-aware-pack"]
        );
        assert_eq!(all_policies().len(), 4, "training tables keep their four rows");
    }
}
