//! Placement policies: given a job and the chassis's current free slots,
//! choose the slots to compose — or decline and let the job wait.
//!
//! All policies see the same queue in the same order (the cluster loop
//! owns queue discipline); they differ **only** in slot selection:
//!
//! * [`FifoFirstFit`] — the naive baseline: first free slots in global
//!   slot order, splitting across drawers whenever the first drawer is
//!   fragmented.
//! * [`BestFit`] — classic best-fit packing: the *tightest* drawer that
//!   still fits the job, spilling only when no single drawer fits.
//! * [`FragAware`] — keeps Falcon drawers whole: never splits a job
//!   across drawers, preferring to let it queue until a whole-drawer
//!   placement opens.
//! * [`TopologyAware`] — prices every candidate shape with a cached
//!   micro-probe ([`crate::probe`]) and picks the best
//!   [`composable_core::Objective::TrainingTime`] score.

use crate::probe::{ProbeCache, Shape};
use crate::trace::JobSpec;
use falcon::SlotAddr;

/// Snapshot of the chassis's unattached GPU slots, in global slot order.
#[derive(Debug, Clone)]
pub struct FreeView {
    free: Vec<SlotAddr>,
}

impl FreeView {
    pub fn new(mut free: Vec<SlotAddr>) -> FreeView {
        free.sort();
        FreeView { free }
    }

    pub fn total(&self) -> usize {
        self.free.len()
    }

    pub fn slots(&self) -> &[SlotAddr] {
        &self.free
    }

    /// Free slots inside one drawer, ascending.
    pub fn in_drawer(&self, drawer: u8) -> Vec<SlotAddr> {
        self.free
            .iter()
            .copied()
            .filter(|s| s.drawer.0 == drawer)
            .collect()
    }
}

/// One slot a serving replica could land on: a partially-used serving
/// slot of the same tenant (`shared`), or a wholly free slot.
#[derive(Debug, Clone, Copy)]
pub struct SliceSlot {
    pub addr: SlotAddr,
    /// Unclaimed sevenths of the slot's compute.
    pub free_sevenths: u8,
    /// Already attached for serving this tenant (placing here costs no
    /// new whole slot).
    pub shared: bool,
}

/// The fractional-capacity view a replica placement chooses from, in
/// global slot order, plus the per-drawer wholly-free GPU counts (so
/// packing policies can keep training's contiguous holes whole).
#[derive(Debug, Clone)]
pub struct SliceView {
    pub slots: Vec<SliceSlot>,
    pub free_gpus: [usize; 2],
}

/// A slot-selection strategy. Returning `None` means "this job cannot (or
/// should not) be placed right now"; the cluster loop decides whether that
/// blocks the queue.
///
/// `Send` because [`crate::cluster::compare_policies`] ships each policy
/// to a parsweep worker for its replay; policies are stateless slot
/// selectors, so the bound costs implementors nothing.
pub trait PlacePolicy: Send {
    fn name(&self) -> &'static str;
    fn place(&self, job: &JobSpec, free: &FreeView, probes: &mut ProbeCache)
        -> Option<Vec<SlotAddr>>;

    /// Pick the slot for one serving replica of `slice`/7 of a GPU. The
    /// default mirrors [`FifoFirstFit`]: the first slot that fits, in
    /// global order, blind to fragmentation.
    fn place_replica(&self, slice: u8, view: &SliceView) -> Option<SlotAddr> {
        view.slots.iter().find(|s| s.free_sevenths >= slice).map(|s| s.addr)
    }

    /// May the cluster shrink elastic training jobs to compose a replica
    /// for a service at risk of violating its SLO?
    fn evict_for_slo(&self) -> bool {
        false
    }
}

/// Every built-in training policy, in the order the comparison tables
/// print them. ([`serving_policies`] appends the serving-aware one.)
pub fn all_policies() -> Vec<Box<dyn PlacePolicy>> {
    vec![
        Box::new(FifoFirstFit),
        Box::new(BestFit),
        Box::new(FragAware),
        Box::new(TopologyAware),
    ]
}

/// The policies mixed (training + serving) comparisons run:
/// [`all_policies`] plus [`SloAwarePack`].
pub fn serving_policies() -> Vec<Box<dyn PlacePolicy>> {
    let mut v = all_policies();
    v.push(Box::new(SloAwarePack));
    v
}

/// Look a policy up by its `name()` (searches the serving superset).
pub fn policy_by_name(name: &str) -> Option<Box<dyn PlacePolicy>> {
    serving_policies().into_iter().find(|p| p.name() == name)
}

pub struct FifoFirstFit;

impl PlacePolicy for FifoFirstFit {
    fn name(&self) -> &'static str {
        "fifo-first-fit"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<SlotAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        Some(free.slots()[..k].to_vec())
    }
}

pub struct BestFit;

impl PlacePolicy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<SlotAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        let per: Vec<Vec<SlotAddr>> = (0..2).map(|d| free.in_drawer(d)).collect();
        // Tightest single drawer that fits.
        if let Some(d) = (0..2)
            .filter(|&d| per[d].len() >= k)
            .min_by_key(|&d| (per[d].len(), d))
        {
            return Some(per[d][..k].to_vec());
        }
        // No drawer fits alone: drain the fuller drawer, spill the rest.
        let first = if per[0].len() >= per[1].len() { 0 } else { 1 };
        let mut slots: Vec<SlotAddr> = per[first].clone();
        slots.extend(per[1 - first].iter().copied().take(k - slots.len().min(k)));
        slots.truncate(k);
        Some(slots)
    }
}

pub struct FragAware;

impl PlacePolicy for FragAware {
    fn name(&self) -> &'static str {
        "frag-aware"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, _: &mut ProbeCache) -> Option<Vec<SlotAddr>> {
        let k = usize::from(job.gpus);
        // Whole-drawer placements only: a drawer must fit the entire job.
        // Among fitting drawers, prefer an exact fit, then the tightest —
        // large contiguous holes stay whole for the jobs that need them.
        (0..2)
            .map(|d| free.in_drawer(d))
            .filter(|slots| slots.len() >= k)
            .min_by_key(|slots| (slots.len() != k, slots.len()))
            .map(|slots| slots[..k].to_vec())
    }
}

pub struct TopologyAware;

impl PlacePolicy for TopologyAware {
    fn name(&self) -> &'static str {
        "topology-aware"
    }

    fn place(
        &self,
        job: &JobSpec,
        free: &FreeView,
        probes: &mut ProbeCache,
    ) -> Option<Vec<SlotAddr>> {
        let k = usize::from(job.gpus);
        if free.total() < k {
            return None;
        }
        let per: Vec<Vec<SlotAddr>> = (0..2).map(|d| free.in_drawer(d)).collect();
        // Candidates as (slots from `drawer`, drawer): each whole-drawer
        // fit; failing those, the least-split spill and the balanced
        // split — the probe decides which split shape hurts less.
        let mut candidates: Vec<(usize, usize)> = (0..2)
            .filter(|&d| per[d].len() >= k)
            .map(|d| (k, d))
            .collect();
        if candidates.is_empty() {
            let fuller = if per[0].len() >= per[1].len() { 0 } else { 1 };
            let spill = per[fuller].len().min(k);
            candidates.push((spill, fuller));
            let balanced = k.div_ceil(2);
            if balanced < spill && k - balanced <= per[1 - fuller].len() {
                candidates.push((balanced, fuller));
            }
        }
        // Highest probe score wins; ties resolve to fewer drawers spanned,
        // then the lower drawer, so the choice is deterministic.
        let (take, drawer) = candidates
            .into_iter()
            .map(|(take, d)| {
                let shape = Shape::new(take as u8, (k - take) as u8);
                (probes.price(job.benchmark, shape).score, take, d)
            })
            .max_by(|(sa, ta, da), (sb, tb, db)| {
                sa.partial_cmp(sb)
                    .expect("finite probe scores")
                    .then(ta.cmp(tb))
                    .then(db.cmp(da))
            })
            .map(|(_, take, d)| (take, d))?;
        let mut slots: Vec<SlotAddr> = per[drawer].iter().copied().take(take).collect();
        slots.extend(per[1 - drawer].iter().copied().take(k - take));
        debug_assert_eq!(slots.len(), k);
        Some(slots)
    }
}

/// The serving-aware policy: training places best-fit (tightest drawer),
/// replicas pack onto fragmented fractional capacity training can't use —
/// partially-used serving slots first, then the tightest drawer's highest
/// slot, keeping low-address contiguous runs whole for training gangs —
/// and SLO pressure may evict (elastically shrink) training.
pub struct SloAwarePack;

impl PlacePolicy for SloAwarePack {
    fn name(&self) -> &'static str {
        "slo-aware-pack"
    }

    fn place(&self, job: &JobSpec, free: &FreeView, probes: &mut ProbeCache)
        -> Option<Vec<SlotAddr>> {
        BestFit.place(job, free, probes)
    }

    fn place_replica(&self, slice: u8, view: &SliceView) -> Option<SlotAddr> {
        view.slots
            .iter()
            .filter(|s| s.free_sevenths >= slice)
            .min_by_key(|s| {
                (
                    !s.shared,
                    view.free_gpus[usize::from(s.addr.drawer.0)],
                    std::cmp::Reverse(s.addr),
                )
            })
            .map(|s| s.addr)
    }

    fn evict_for_slo(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TenantId;
    use desim::SimTime;
    use dlmodels::Benchmark;

    fn job(gpus: u8) -> JobSpec {
        JobSpec {
            id: 0,
            tenant: TenantId(0),
            benchmark: Benchmark::ResNet50,
            gpus,
            min_gpus: gpus,
            priority: 1,
            arrival: SimTime::ZERO,
            iters: 8,
        }
    }

    /// d0 has slots {2,3}, d1 has {0,1,2,3} free.
    fn fragmented() -> FreeView {
        FreeView::new(vec![
            SlotAddr::new(0, 2),
            SlotAddr::new(0, 3),
            SlotAddr::new(1, 0),
            SlotAddr::new(1, 1),
            SlotAddr::new(1, 2),
            SlotAddr::new(1, 3),
        ])
    }

    #[test]
    fn first_fit_splits_across_drawers() {
        let got = FifoFirstFit
            .place(&job(4), &fragmented(), &mut ProbeCache::new(2))
            .unwrap();
        assert!(Shape::of(&got).spans(), "first-fit fragments: {got:?}");
    }

    #[test]
    fn best_fit_packs_the_tightest_drawer() {
        let mut probes = ProbeCache::new(2);
        let got = BestFit.place(&job(2), &fragmented(), &mut probes).unwrap();
        assert_eq!(got, vec![SlotAddr::new(0, 2), SlotAddr::new(0, 3)]);
        let got4 = BestFit.place(&job(4), &fragmented(), &mut probes).unwrap();
        assert!(!Shape::of(&got4).spans(), "d1 fits the 4-GPU job whole");
    }

    #[test]
    fn frag_aware_waits_rather_than_split() {
        let mut probes = ProbeCache::new(2);
        assert!(FragAware.place(&job(8), &fragmented(), &mut probes).is_none());
        let got = FragAware.place(&job(4), &fragmented(), &mut probes).unwrap();
        assert!(!Shape::of(&got).spans());
    }

    #[test]
    fn topology_aware_keeps_comm_bound_jobs_whole() {
        let mut probes = ProbeCache::new(2);
        let mut j = job(4);
        j.benchmark = Benchmark::BertLarge;
        let got = TopologyAware.place(&j, &fragmented(), &mut probes).unwrap();
        assert!(!Shape::of(&got).spans(), "probe scoring avoids the split");
        assert!(!probes.is_empty());
    }

    #[test]
    fn topology_aware_prices_competing_splits() {
        // 3 free in each drawer, a 4-GPU job: no whole-drawer fit, so the
        // policy must price the 3+1 spill against the 2+2 balanced split.
        let free = FreeView::new(vec![
            SlotAddr::new(0, 0),
            SlotAddr::new(0, 1),
            SlotAddr::new(0, 2),
            SlotAddr::new(1, 0),
            SlotAddr::new(1, 1),
            SlotAddr::new(1, 2),
        ]);
        let mut probes = ProbeCache::new(2);
        let mut j = job(4);
        j.benchmark = Benchmark::BertLarge;
        let got = TopologyAware.place(&j, &free, &mut probes).unwrap();
        assert_eq!(got.len(), 4);
        assert!(Shape::of(&got).spans(), "a split is unavoidable here");
        assert!(probes.len() >= 2, "both split shapes were priced");
    }

    #[test]
    fn all_policies_refuse_impossible_demands() {
        let mut probes = ProbeCache::new(2);
        let tiny = FreeView::new(vec![SlotAddr::new(0, 0)]);
        for p in all_policies() {
            assert!(p.place(&job(2), &tiny, &mut probes).is_none(), "{}", p.name());
        }
        assert!(policy_by_name("best-fit").is_some());
        assert!(policy_by_name("slo-aware-pack").is_some());
        assert!(policy_by_name("nope").is_none());
    }

    fn slice_view() -> SliceView {
        SliceView {
            slots: vec![
                SliceSlot { addr: SlotAddr::new(0, 1), free_sevenths: 7, shared: false },
                SliceSlot { addr: SlotAddr::new(0, 6), free_sevenths: 3, shared: true },
                SliceSlot { addr: SlotAddr::new(1, 2), free_sevenths: 7, shared: false },
            ],
            free_gpus: [5, 2],
        }
    }

    #[test]
    fn default_replica_placement_is_first_fit() {
        let got = FifoFirstFit.place_replica(2, &slice_view()).unwrap();
        assert_eq!(got, SlotAddr::new(0, 1), "first slot in global order");
        assert!(!FifoFirstFit.evict_for_slo());
    }

    #[test]
    fn slo_aware_pack_fills_shared_slots_first() {
        let got = SloAwarePack.place_replica(2, &slice_view()).unwrap();
        assert_eq!(got, SlotAddr::new(0, 6), "partial serving slot wins");
        // Too big for the shared slot: falls to the tightest drawer's
        // free slot, not the global first fit.
        let got4 = SloAwarePack.place_replica(4, &slice_view()).unwrap();
        assert_eq!(got4, SlotAddr::new(1, 2), "tightest drawer, high slot");
        assert!(SloAwarePack.evict_for_slo());
        assert!(SloAwarePack.place_replica(4, &SliceView { slots: vec![], free_gpus: [0, 0] })
            .is_none());
    }

    #[test]
    fn serving_policies_superset() {
        let names: Vec<&str> = serving_policies().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["fifo-first-fit", "best-fit", "frag-aware", "topology-aware", "slo-aware-pack"]
        );
        assert_eq!(all_policies().len(), 4, "training tables keep their four rows");
    }
}
