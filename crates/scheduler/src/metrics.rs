//! Schedule-quality metrics: per-job outcomes and the cluster-level
//! report (JCT, queueing delay, makespan, utilization, fragmentation,
//! per-tenant fairness), with JSON export and a policy-comparison table.

use composable_core::report::table;
use desim::json::{FromJson, JsonError, ToJson, Value};
use desim::{Dur, SimTime};

/// The lifecycle record of one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    pub id: u64,
    pub tenant: u32,
    pub benchmark: String,
    /// GPUs requested at submit.
    pub gpus: u8,
    /// GPUs held at completion (smaller than `gpus` after elastic shrink).
    pub final_gpus: u8,
    pub priority: u8,
    pub arrival: SimTime,
    pub start: SimTime,
    pub finish: SimTime,
    /// Did the placement ever span both drawers?
    pub spanned: bool,
    pub shrunk: bool,
}

impl JobOutcome {
    /// Job completion time: arrival → finish.
    pub fn jct(&self) -> Dur {
        self.finish.since(self.arrival)
    }

    /// Time spent queued before the first GPU was attached.
    pub fn queue_delay(&self) -> Dur {
        self.start.since(self.arrival)
    }
}

impl ToJson for JobOutcome {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("id", Value::from_u64(self.id)),
            ("tenant", Value::from_u64(u64::from(self.tenant))),
            ("benchmark", Value::str(self.benchmark.clone())),
            ("gpus", Value::from_u64(u64::from(self.gpus))),
            ("final_gpus", Value::from_u64(u64::from(self.final_gpus))),
            ("priority", Value::from_u64(u64::from(self.priority))),
            ("arrival_ns", self.arrival.to_json()),
            ("start_ns", self.start.to_json()),
            ("finish_ns", self.finish.to_json()),
            ("spanned", Value::Bool(self.spanned)),
            ("shrunk", Value::Bool(self.shrunk)),
        ])
    }
}

impl FromJson for JobOutcome {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(JobOutcome {
            id: v.get("id")?.as_u64()?,
            tenant: v.get("tenant")?.as_u32()?,
            benchmark: String::from_json(v.get("benchmark")?)?,
            gpus: v.get("gpus")?.as_u8()?,
            final_gpus: v.get("final_gpus")?.as_u8()?,
            priority: v.get("priority")?.as_u8()?,
            arrival: SimTime::from_json(v.get("arrival_ns")?)?,
            start: SimTime::from_json(v.get("start_ns")?)?,
            finish: SimTime::from_json(v.get("finish_ns")?)?,
            spanned: v.get("spanned")?.as_bool()?,
            shrunk: v.get("shrunk")?.as_bool()?,
        })
    }
}

/// Fault-recovery accounting for a replay under an injected
/// [`crate::fault::FaultPlan`]. Absent (`None` on [`ScheduleReport`]) for
/// fault-free replays, so their serialized reports are byte-identical to
/// pre-fault-model ones.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryMetrics {
    /// Fault events applied (strikes, not heals).
    pub fault_events: u32,
    /// Job displacements: each time a running job lost its slots to a
    /// fault and had to be re-placed. One job can count several times.
    pub evacuations: u32,
    /// Drawer evacuations triggered through the BMC thermal path.
    pub thermal_trips: u32,
    /// Mean time from a fault striking a job to that job making progress
    /// again on its replacement placement (including re-composition).
    pub mean_recovery: Dur,
    pub p95_recovery: Dur,
    /// GPU-seconds of training redone because evacuation rolled jobs back
    /// to their last checkpoint.
    pub work_lost_gpu_secs: f64,
    /// Faulty-replay mean JCT over the fault-free baseline's (1.0 = no
    /// slowdown). Filled by [`crate::cluster::compare_policies_faulty`];
    /// 0.0 when no baseline was run.
    pub jct_inflation: f64,
}

impl RecoveryMetrics {
    /// Fold per-evacuation recovery durations into the summary.
    pub fn assemble(
        fault_events: u32,
        evacuations: u32,
        thermal_trips: u32,
        recovery_times: &[Dur],
        work_lost_gpu_secs: f64,
    ) -> RecoveryMetrics {
        RecoveryMetrics {
            fault_events,
            evacuations,
            thermal_trips,
            mean_recovery: mean_dur(recovery_times.iter().copied()),
            p95_recovery: percentile_dur(
                recovery_times.iter().map(|d| d.as_nanos()).collect(),
                0.95,
            ),
            work_lost_gpu_secs: round4(work_lost_gpu_secs),
            jct_inflation: 0.0,
        }
    }
}

impl ToJson for RecoveryMetrics {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("fault_events", Value::from_u64(u64::from(self.fault_events))),
            ("evacuations", Value::from_u64(u64::from(self.evacuations))),
            ("thermal_trips", Value::from_u64(u64::from(self.thermal_trips))),
            ("mean_recovery_ns", self.mean_recovery.to_json()),
            ("p95_recovery_ns", self.p95_recovery.to_json()),
            ("work_lost_gpu_secs", Value::Num(self.work_lost_gpu_secs)),
            ("jct_inflation", Value::Num(self.jct_inflation)),
        ])
    }
}

impl FromJson for RecoveryMetrics {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(RecoveryMetrics {
            fault_events: v.get("fault_events")?.as_u32()?,
            evacuations: v.get("evacuations")?.as_u32()?,
            thermal_trips: v.get("thermal_trips")?.as_u32()?,
            mean_recovery: Dur::from_json(v.get("mean_recovery_ns")?)?,
            p95_recovery: Dur::from_json(v.get("p95_recovery_ns")?)?,
            work_lost_gpu_secs: v.get("work_lost_gpu_secs")?.as_f64()?,
            jct_inflation: v.get("jct_inflation")?.as_f64()?,
        })
    }
}

/// Preemption/migration accounting for a replay with priority tiers,
/// defragmentation, or SLO relocation enabled. Absent (`None` on
/// [`ScheduleReport`]) when none of those knobs are on, so legacy
/// serialized reports stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationMetrics {
    /// Checkpoint-preempt-resume events: a running low-tier job rolled
    /// back to its checkpoint and re-queued to make room for a
    /// higher-tier arrival.
    pub preemptions: u32,
    /// Live migrations: a running job detached and re-attached at a new
    /// placement (defragmentation passes).
    pub migrations: u32,
    /// SLO-clawback relocations: training moved (not shrunk) to free a
    /// slot for serving.
    pub relocations: u32,
    /// GPU-seconds of training redone because preemption or migration
    /// rolled jobs back to their last checkpoint.
    pub work_lost_gpu_secs: f64,
}

impl MigrationMetrics {
    pub fn assemble(
        preemptions: u32,
        migrations: u32,
        relocations: u32,
        work_lost_gpu_secs: f64,
    ) -> MigrationMetrics {
        MigrationMetrics {
            preemptions,
            migrations,
            relocations,
            work_lost_gpu_secs: round4(work_lost_gpu_secs),
        }
    }
}

impl ToJson for MigrationMetrics {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("preemptions", Value::from_u64(u64::from(self.preemptions))),
            ("migrations", Value::from_u64(u64::from(self.migrations))),
            ("relocations", Value::from_u64(u64::from(self.relocations))),
            ("work_lost_gpu_secs", Value::Num(self.work_lost_gpu_secs)),
        ])
    }
}

impl FromJson for MigrationMetrics {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(MigrationMetrics {
            preemptions: v.get("preemptions")?.as_u32()?,
            migrations: v.get("migrations")?.as_u32()?,
            relocations: v.get("relocations")?.as_u32()?,
            work_lost_gpu_secs: v.get("work_lost_gpu_secs")?.as_f64()?,
        })
    }
}

/// The lifecycle record of one inference service over its whole window.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    pub id: u64,
    pub tenant: u32,
    pub benchmark: String,
    /// MIG-style slice size in sevenths of a GPU.
    pub slice: u8,
    pub generated: u64,
    pub completed: u64,
    pub dropped: u64,
    /// Completed requests that finished within the SLO.
    pub within_slo: u64,
    pub p50_latency: Dur,
    pub p99_latency: Dur,
    pub slo: Dur,
    /// within_slo / generated (1.0 when no requests were generated).
    pub attainment: f64,
    /// Within-SLO completions per second of the service window.
    pub goodput_rps: f64,
    /// Replica-seconds held, weighted by slice fraction (GPU-seconds).
    pub replica_secs: f64,
    pub peak_replicas: u8,
    /// Replicas lost to drawer faults and re-placed.
    pub failovers: u32,
}

impl ToJson for ServiceOutcome {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("id", Value::from_u64(self.id)),
            ("tenant", Value::from_u64(u64::from(self.tenant))),
            ("benchmark", Value::str(self.benchmark.clone())),
            ("slice", Value::from_u64(u64::from(self.slice))),
            ("generated", Value::from_u64(self.generated)),
            ("completed", Value::from_u64(self.completed)),
            ("dropped", Value::from_u64(self.dropped)),
            ("within_slo", Value::from_u64(self.within_slo)),
            ("p50_latency_ns", self.p50_latency.to_json()),
            ("p99_latency_ns", self.p99_latency.to_json()),
            ("slo_ns", self.slo.to_json()),
            ("attainment", Value::Num(self.attainment)),
            ("goodput_rps", Value::Num(self.goodput_rps)),
            ("replica_secs", Value::Num(self.replica_secs)),
            ("peak_replicas", Value::from_u64(u64::from(self.peak_replicas))),
            ("failovers", Value::from_u64(u64::from(self.failovers))),
        ])
    }
}

impl FromJson for ServiceOutcome {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(ServiceOutcome {
            id: v.get("id")?.as_u64()?,
            tenant: v.get("tenant")?.as_u32()?,
            benchmark: String::from_json(v.get("benchmark")?)?,
            slice: v.get("slice")?.as_u8()?,
            generated: v.get("generated")?.as_u64()?,
            completed: v.get("completed")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
            within_slo: v.get("within_slo")?.as_u64()?,
            p50_latency: Dur::from_json(v.get("p50_latency_ns")?)?,
            p99_latency: Dur::from_json(v.get("p99_latency_ns")?)?,
            slo: Dur::from_json(v.get("slo_ns")?)?,
            attainment: v.get("attainment")?.as_f64()?,
            goodput_rps: v.get("goodput_rps")?.as_f64()?,
            replica_secs: v.get("replica_secs")?.as_f64()?,
            peak_replicas: v.get("peak_replicas")?.as_u8()?,
            failovers: v.get("failovers")?.as_u32()?,
        })
    }
}

/// Serving-side accounting for a mixed replay. Absent (`None` on
/// [`ScheduleReport`]) for training-only replays, so their serialized
/// reports stay byte-identical to pre-serving ones.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    pub n_services: u32,
    pub generated: u64,
    pub completed: u64,
    pub dropped: u64,
    /// Pooled request-latency percentiles across every service.
    pub p50_latency: Dur,
    pub p99_latency: Dur,
    /// Pooled SLO attainment: Σ within_slo / Σ generated.
    pub attainment: f64,
    /// Pooled goodput: Σ per-service goodput (each over its own window).
    pub goodput_rps: f64,
    /// Slice-weighted GPU-seconds held by replicas.
    pub replica_secs: f64,
    pub failovers: u32,
    pub services: Vec<ServiceOutcome>,
}

impl ServeMetrics {
    /// Fold per-service outcomes and the pooled latency samples into the
    /// summary. `services` may arrive in any order; the report stores
    /// them by id.
    pub fn assemble(mut services: Vec<ServiceOutcome>, all_latencies_ns: Vec<u64>) -> ServeMetrics {
        services.sort_by_key(|s| s.id);
        let generated: u64 = services.iter().map(|s| s.generated).sum();
        let within: u64 = services.iter().map(|s| s.within_slo).sum();
        ServeMetrics {
            n_services: services.len() as u32,
            generated,
            completed: services.iter().map(|s| s.completed).sum(),
            dropped: services.iter().map(|s| s.dropped).sum(),
            p50_latency: percentile_dur(all_latencies_ns.clone(), 0.50),
            p99_latency: percentile_dur(all_latencies_ns, 0.99),
            attainment: round4(if generated > 0 {
                within as f64 / generated as f64
            } else {
                1.0
            }),
            goodput_rps: round4(services.iter().map(|s| s.goodput_rps).sum()),
            replica_secs: round4(services.iter().map(|s| s.replica_secs).sum()),
            failovers: services.iter().map(|s| s.failovers).sum(),
            services,
        }
    }
}

impl ToJson for ServeMetrics {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("n_services", Value::from_u64(u64::from(self.n_services))),
            ("generated", Value::from_u64(self.generated)),
            ("completed", Value::from_u64(self.completed)),
            ("dropped", Value::from_u64(self.dropped)),
            ("p50_latency_ns", self.p50_latency.to_json()),
            ("p99_latency_ns", self.p99_latency.to_json()),
            ("attainment", Value::Num(self.attainment)),
            ("goodput_rps", Value::Num(self.goodput_rps)),
            ("replica_secs", Value::Num(self.replica_secs)),
            ("failovers", Value::from_u64(u64::from(self.failovers))),
            ("services", self.services.to_json()),
        ])
    }
}

impl FromJson for ServeMetrics {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(ServeMetrics {
            n_services: v.get("n_services")?.as_u32()?,
            generated: v.get("generated")?.as_u64()?,
            completed: v.get("completed")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
            p50_latency: Dur::from_json(v.get("p50_latency_ns")?)?,
            p99_latency: Dur::from_json(v.get("p99_latency_ns")?)?,
            attainment: v.get("attainment")?.as_f64()?,
            goodput_rps: v.get("goodput_rps")?.as_f64()?,
            replica_secs: v.get("replica_secs")?.as_f64()?,
            failovers: v.get("failovers")?.as_u32()?,
            services: Vec::<ServiceOutcome>::from_json(v.get("services")?)?,
        })
    }
}

/// Jain's fairness index over per-tenant shares: 1.0 when every tenant
/// received the same amount, approaching `1/n` under total capture.
pub fn jain_fairness(shares: &[f64]) -> f64 {
    let sum: f64 = shares.iter().sum();
    let sq: f64 = shares.iter().map(|x| x * x).sum();
    if sq <= 0.0 || shares.is_empty() {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sq)
}

/// The cluster-level result of replaying one trace under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    pub policy: String,
    pub trace: String,
    pub pool_gpus: u32,
    pub n_jobs: u32,
    pub makespan: Dur,
    pub mean_jct: Dur,
    pub p95_jct: Dur,
    pub mean_queue_delay: Dur,
    /// Busy GPU-seconds over pool-GPU-seconds of the makespan.
    pub gpu_util: f64,
    /// Share of busy GPU-seconds spent in drawer-spanning placements —
    /// the fragmentation cost made visible.
    pub frag_share: f64,
    /// Jain's index over per-tenant GPU-seconds.
    pub fairness: f64,
    pub shrunk_jobs: u32,
    /// MCS audit-log length: every grant/attach/detach of the replay.
    pub audit_entries: u64,
    pub tenant_gpu_secs: Vec<f64>,
    /// Present only when the replay injected faults.
    pub recovery: Option<RecoveryMetrics>,
    /// Present only when preemption, defrag, or SLO relocation was on.
    pub migration: Option<MigrationMetrics>,
    /// Present only when the trace carried inference services.
    pub serve: Option<ServeMetrics>,
    pub jobs: Vec<JobOutcome>,
}

pub(crate) fn mean_dur(ds: impl Iterator<Item = Dur>) -> Dur {
    let v: Vec<Dur> = ds.collect();
    if v.is_empty() {
        return Dur::ZERO;
    }
    let total: u64 = v.iter().map(|d| d.as_nanos()).sum();
    Dur::from_nanos(total / v.len() as u64)
}

pub(crate) fn percentile_dur(mut ns: Vec<u64>, p: f64) -> Dur {
    if ns.is_empty() {
        return Dur::ZERO;
    }
    ns.sort_unstable();
    let rank = ((p * ns.len() as f64).ceil() as usize).clamp(1, ns.len());
    Dur::from_nanos(ns[rank - 1])
}

/// Round a share/ratio to a stable number of decimals so reports (and the
/// golden files built from them) don't encode float noise.
pub(crate) fn round4(x: f64) -> f64 {
    (x * 1e4).round() / 1e4
}

impl ScheduleReport {
    /// Fold completed-job outcomes and the loop's resource accounting into
    /// the summary metrics. `outcomes` may arrive in completion order; the
    /// report stores them by id.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        policy: impl Into<String>,
        trace: impl Into<String>,
        pool_gpus: u32,
        mut outcomes: Vec<JobOutcome>,
        makespan: Dur,
        busy_gpu_secs: f64,
        span_gpu_secs: f64,
        tenant_gpu_secs: Vec<f64>,
        audit_entries: u64,
        recovery: Option<RecoveryMetrics>,
        migration: Option<MigrationMetrics>,
        serve: Option<ServeMetrics>,
    ) -> ScheduleReport {
        outcomes.sort_by_key(|o| o.id);
        let cap = pool_gpus as f64 * makespan.as_secs_f64();
        ScheduleReport {
            policy: policy.into(),
            trace: trace.into(),
            pool_gpus,
            n_jobs: outcomes.len() as u32,
            makespan,
            mean_jct: mean_dur(outcomes.iter().map(|o| o.jct())),
            p95_jct: percentile_dur(outcomes.iter().map(|o| o.jct().as_nanos()).collect(), 0.95),
            mean_queue_delay: mean_dur(outcomes.iter().map(|o| o.queue_delay())),
            gpu_util: round4(if cap > 0.0 { busy_gpu_secs / cap } else { 0.0 }),
            frag_share: round4(if busy_gpu_secs > 0.0 {
                span_gpu_secs / busy_gpu_secs
            } else {
                0.0
            }),
            fairness: round4(jain_fairness(&tenant_gpu_secs)),
            shrunk_jobs: outcomes.iter().filter(|o| o.shrunk).count() as u32,
            audit_entries,
            tenant_gpu_secs: tenant_gpu_secs.into_iter().map(round4).collect(),
            recovery,
            migration,
            serve,
            jobs: outcomes,
        }
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().emit_pretty()
    }

    pub fn from_json_str(s: &str) -> Result<ScheduleReport, JsonError> {
        ScheduleReport::from_json(&Value::parse(s)?)
    }
}

impl ToJson for ScheduleReport {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("policy", Value::str(self.policy.clone())),
            ("trace", Value::str(self.trace.clone())),
            ("pool_gpus", Value::from_u64(u64::from(self.pool_gpus))),
            ("n_jobs", Value::from_u64(u64::from(self.n_jobs))),
            ("makespan_ns", self.makespan.to_json()),
            ("mean_jct_ns", self.mean_jct.to_json()),
            ("p95_jct_ns", self.p95_jct.to_json()),
            ("mean_queue_delay_ns", self.mean_queue_delay.to_json()),
            ("gpu_util", Value::Num(self.gpu_util)),
            ("frag_share", Value::Num(self.frag_share)),
            ("fairness", Value::Num(self.fairness)),
            ("shrunk_jobs", Value::from_u64(u64::from(self.shrunk_jobs))),
            ("audit_entries", Value::from_u64(self.audit_entries)),
            (
                "tenant_gpu_secs",
                Value::Arr(self.tenant_gpu_secs.iter().map(|s| Value::Num(*s)).collect()),
            ),
        ];
        // Serialized only for faulty replays: fault-free reports keep
        // their pre-fault-model bytes (the cluster_fifo golden).
        if let Some(r) = &self.recovery {
            fields.push(("recovery", r.to_json()));
        }
        // Same contract for preemption/migration: replays with every knob
        // off keep their pre-priority-model bytes (all five goldens).
        if let Some(m) = &self.migration {
            fields.push(("migration", m.to_json()));
        }
        // Same contract for serving: training-only reports (the
        // cluster_fifo / cluster_faults goldens) keep their bytes.
        if let Some(s) = &self.serve {
            fields.push(("serve", s.to_json()));
        }
        fields.push(("jobs", self.jobs.to_json()));
        Value::obj(fields)
    }
}

impl FromJson for ScheduleReport {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(ScheduleReport {
            policy: String::from_json(v.get("policy")?)?,
            trace: String::from_json(v.get("trace")?)?,
            pool_gpus: v.get("pool_gpus")?.as_u32()?,
            n_jobs: v.get("n_jobs")?.as_u32()?,
            makespan: Dur::from_json(v.get("makespan_ns")?)?,
            mean_jct: Dur::from_json(v.get("mean_jct_ns")?)?,
            p95_jct: Dur::from_json(v.get("p95_jct_ns")?)?,
            mean_queue_delay: Dur::from_json(v.get("mean_queue_delay_ns")?)?,
            gpu_util: v.get("gpu_util")?.as_f64()?,
            frag_share: v.get("frag_share")?.as_f64()?,
            fairness: v.get("fairness")?.as_f64()?,
            shrunk_jobs: v.get("shrunk_jobs")?.as_u32()?,
            audit_entries: v.get("audit_entries")?.as_u64()?,
            tenant_gpu_secs: Vec::<f64>::from_json(v.get("tenant_gpu_secs")?)?,
            recovery: match v.get("recovery") {
                Ok(rv) => Some(RecoveryMetrics::from_json(rv)?),
                Err(_) => None,
            },
            migration: match v.get("migration") {
                Ok(mv) => Some(MigrationMetrics::from_json(mv)?),
                Err(_) => None,
            },
            serve: match v.get("serve") {
                Ok(sv) => Some(ServeMetrics::from_json(sv)?),
                Err(_) => None,
            },
            jobs: Vec::<JobOutcome>::from_json(v.get("jobs")?)?,
        })
    }
}

/// Render the `repro cluster` policy-comparison table.
pub fn comparison_table(reports: &[ScheduleReport]) -> String {
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.1}", r.mean_jct.as_secs_f64()),
                format!("{:.1}", r.p95_jct.as_secs_f64()),
                format!("{:.1}", r.mean_queue_delay.as_secs_f64()),
                format!("{:.1}", r.makespan.as_secs_f64()),
                format!("{:.1}", r.gpu_util * 100.0),
                format!("{:.1}", r.frag_share * 100.0),
                format!("{:.3}", r.fairness),
                format!("{}", r.shrunk_jobs),
            ]
        })
        .collect();
    table(
        &[
            "policy",
            "mean JCT (s)",
            "p95 JCT (s)",
            "queue (s)",
            "makespan (s)",
            "GPU util %",
            "split %",
            "fairness",
            "shrunk",
        ],
        &rows,
    )
}

/// Render the `repro serve` policy-comparison table: serving quality on
/// the left, the training-side cost of achieving it on the right.
pub fn serve_comparison_table(reports: &[ScheduleReport]) -> String {
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let s = r.serve.as_ref();
            vec![
                r.policy.clone(),
                s.map_or_else(|| "-".into(), |s| format!("{:.1}", s.p99_latency.as_secs_f64() * 1e3)),
                s.map_or_else(|| "-".into(), |s| format!("{:.4}", s.attainment)),
                s.map_or_else(|| "-".into(), |s| format!("{:.1}", s.goodput_rps)),
                s.map_or_else(|| "-".into(), |s| format!("{}", s.dropped)),
                s.map_or_else(|| "-".into(), |s| format!("{:.1}", s.replica_secs)),
                format!("{:.1}", r.mean_jct.as_secs_f64()),
                format!("{}", r.shrunk_jobs),
            ]
        })
        .collect();
    table(
        &[
            "policy",
            "p99 (ms)",
            "attainment",
            "goodput (req/s)",
            "drops",
            "replica GPU-s",
            "train mean JCT (s)",
            "shrunk",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, arrival_s: u64, start_s: u64, finish_s: u64) -> JobOutcome {
        JobOutcome {
            id,
            tenant: (id % 2) as u32,
            benchmark: "ResNet-50".to_string(),
            gpus: 2,
            final_gpus: 2,
            priority: 1,
            arrival: SimTime::from_secs(arrival_s),
            start: SimTime::from_secs(start_s),
            finish: SimTime::from_secs(finish_s),
            spanned: id == 1,
            shrunk: false,
        }
    }

    #[test]
    fn jct_and_queue_delay() {
        let o = outcome(0, 2, 5, 9);
        assert_eq!(o.jct(), Dur::from_secs(7));
        assert_eq!(o.queue_delay(), Dur::from_secs(3));
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[1.0, 1.0]), 1.0);
        assert!((jain_fairness(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn assemble_and_round_trip() {
        let r = ScheduleReport::assemble(
            "best-fit",
            "t",
            16,
            vec![outcome(1, 0, 0, 4), outcome(0, 0, 1, 3)],
            Dur::from_secs(4),
            24.0,
            8.0,
            vec![12.0, 12.0],
            42,
            None,
            None,
            None,
        );
        assert_eq!(r.jobs[0].id, 0, "stored by id");
        assert_eq!(r.n_jobs, 2);
        assert_eq!(r.mean_jct, Dur::from_nanos(3_500_000_000));
        assert_eq!(r.p95_jct, Dur::from_secs(4));
        assert!((r.gpu_util - 0.375).abs() < 1e-9);
        assert!((r.frag_share - 1.0 / 3.0).abs() < 1e-4);
        assert_eq!(r.fairness, 1.0);
        let back = ScheduleReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn comparison_table_lists_each_policy() {
        let r = ScheduleReport::assemble(
            "fifo-first-fit",
            "t",
            16,
            vec![outcome(0, 0, 1, 3)],
            Dur::from_secs(3),
            4.0,
            0.0,
            vec![4.0, 0.0],
            7,
            None,
            None,
            None,
        );
        let t = comparison_table(&[r]);
        assert!(t.contains("fifo-first-fit"));
        assert!(t.contains("mean JCT (s)"));
    }

    #[test]
    fn recovery_block_round_trips_and_stays_absent_when_fault_free() {
        let base = ScheduleReport::assemble(
            "best-fit",
            "t",
            16,
            vec![outcome(0, 0, 1, 3)],
            Dur::from_secs(3),
            4.0,
            0.0,
            vec![4.0, 0.0],
            7,
            None,
            None,
            None,
        );
        assert!(
            !base.to_json_string().contains("recovery"),
            "fault-free reports must keep their pre-fault-model bytes"
        );
        let mut faulty = base.clone();
        let mut rec = RecoveryMetrics::assemble(
            3,
            2,
            1,
            &[Dur::from_secs(2), Dur::from_secs(6)],
            12.345678,
        );
        rec.jct_inflation = 1.25;
        assert_eq!(rec.mean_recovery, Dur::from_secs(4));
        assert_eq!(rec.p95_recovery, Dur::from_secs(6));
        assert_eq!(rec.work_lost_gpu_secs, 12.3457, "round4 keeps bytes stable");
        faulty.recovery = Some(rec);
        let back = ScheduleReport::from_json_str(&faulty.to_json_string()).unwrap();
        assert_eq!(back, faulty);
        assert_eq!(back.recovery.as_ref().unwrap().evacuations, 2);
    }

    #[test]
    fn migration_block_round_trips_and_stays_absent_by_default() {
        let base = ScheduleReport::assemble(
            "best-fit",
            "t",
            16,
            vec![outcome(0, 0, 1, 3)],
            Dur::from_secs(3),
            4.0,
            0.0,
            vec![4.0, 0.0],
            7,
            None,
            None,
            None,
        );
        assert!(
            !base.to_json_string().contains("migration"),
            "knob-free reports must keep their pre-priority-model bytes"
        );
        let mig = MigrationMetrics::assemble(3, 2, 1, 9.876543);
        assert_eq!(mig.work_lost_gpu_secs, 9.8765, "round4 keeps bytes stable");
        let mut tiered = base.clone();
        tiered.migration = Some(mig);
        let back = ScheduleReport::from_json_str(&tiered.to_json_string()).unwrap();
        assert_eq!(back, tiered);
        assert_eq!(back.migration.as_ref().unwrap().preemptions, 3);
    }

    fn service(id: u64, generated: u64, within: u64) -> ServiceOutcome {
        ServiceOutcome {
            id,
            tenant: (id % 2) as u32,
            benchmark: "MobileNetV2".to_string(),
            slice: 1,
            generated,
            completed: generated,
            dropped: 0,
            within_slo: within,
            p50_latency: Dur::from_millis(12),
            p99_latency: Dur::from_millis(40),
            slo: Dur::from_millis(60),
            attainment: round4(within as f64 / generated as f64),
            goodput_rps: 10.0,
            replica_secs: 6.0,
            peak_replicas: 2,
            failovers: 0,
        }
    }

    #[test]
    fn serve_block_round_trips_and_stays_absent_when_training_only() {
        let base = ScheduleReport::assemble(
            "slo-aware-pack",
            "t",
            16,
            vec![outcome(0, 0, 1, 3)],
            Dur::from_secs(3),
            4.0,
            0.0,
            vec![4.0, 0.0],
            7,
            None,
            None,
            None,
        );
        assert!(
            !base.to_json_string().contains("serve"),
            "training-only reports must keep their pre-serving bytes"
        );
        let pooled = ServeMetrics::assemble(
            vec![service(3, 100, 90), service(2, 100, 100)],
            vec![5_000_000, 1_000_000, 9_000_000, 2_000_000],
        );
        assert_eq!(pooled.services[0].id, 2, "stored by id");
        assert_eq!(pooled.n_services, 2);
        assert_eq!(pooled.generated, 200);
        assert_eq!(pooled.attainment, 0.95, "pooled, not averaged");
        assert_eq!(pooled.goodput_rps, 20.0);
        assert_eq!(pooled.p50_latency, Dur::from_millis(2));
        assert_eq!(pooled.p99_latency, Dur::from_millis(9));
        let mut mixed = base.clone();
        mixed.serve = Some(pooled);
        let back = ScheduleReport::from_json_str(&mixed.to_json_string()).unwrap();
        assert_eq!(back, mixed);
        let t = serve_comparison_table(&[mixed, base]);
        assert!(t.contains("slo-aware-pack"));
        assert!(t.contains("attainment"));
        assert!(t.contains('-'), "serve-less rows render placeholders");
    }

    #[test]
    fn empty_serve_metrics_are_well_defined() {
        let m = ServeMetrics::assemble(vec![], vec![]);
        assert_eq!(m.attainment, 1.0);
        assert_eq!(m.p99_latency, Dur::ZERO);
        assert_eq!(m.generated, 0);
    }
}
