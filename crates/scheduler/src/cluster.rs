//! The cluster event loop: co-simulates concurrent training jobs on one
//! shared Falcon 4016 test bed.
//!
//! The test bed is the chassis in **advanced mode** — 2 drawers × 8 slots
//! of V100 PCIe GPUs — shared by two tenants. Each tenant's host server is
//! cabled into both drawers (tenant 0 on ports H1/H2, tenant 1 on H3/H4),
//! so every placement decision is a real composition: job start and finish
//! drive MCS-audited `grant`/`attach`/`detach` calls against the chassis,
//! and tenant isolation comes from the MCS role model, not scheduler
//! bookkeeping.
//!
//! Time advances by discrete events (job arrival, job finish). Running
//! jobs progress at a rate set by (a) a probe-measured mean iteration
//! time for their placement *shape* — so drawer-spanning placements are
//! genuinely slower for communication-bound models — and (b) a
//! deterministic interference dilation per co-resident job sharing a
//! drawer's switch ASIC. Rates are piecewise constant between events.
//!
//! When the queue head cannot be placed for lack of capacity, the
//! scheduler may *shrink* a running elastic job (e.g. 8 → 4 GPUs) through
//! the same detach path, stretching the victim's remaining iterations so
//! total work in GPU-iterations is conserved.

use crate::metrics::{JobOutcome, ScheduleReport};
use crate::policy::{FreeView, PlacePolicy};
use crate::probe::{ProbeCache, Shape};
use crate::trace::{JobSpec, Trace};
use desim::{Dur, SimTime};
use devices::gpu::GpuSpec;
use falcon::{
    DrawerId, Falcon4016, HostId, HostPort, ManagementCenter, McsError, Mode, Role, SlotAddr,
    SlotDevice, UserId,
};
use std::collections::BTreeMap;
use std::fmt;

/// GPUs in the shared pool (2 drawers × 8 slots).
pub const POOL_GPUS: usize = 16;
/// The chassis has four host ports; two per tenant means two tenants.
pub const MAX_TENANTS: u32 = 2;

const ADMIN: UserId = UserId(0);

fn tenant_user(t: u32) -> UserId {
    UserId(t + 1)
}

fn tenant_host(t: u32) -> HostId {
    HostId(t + 1)
}

/// Knobs of the cluster simulation (not of any single policy).
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Concurrent GPUs one tenant may hold across its jobs.
    pub quota_gpus_per_tenant: usize,
    /// Shrink elastic jobs when the queue head is capacity-blocked.
    pub elastic: bool,
    /// Iterations per placement-pricing probe.
    pub probe_iters: u64,
    /// Fractional slowdown per co-resident job sharing a drawer.
    pub interference: f64,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            quota_gpus_per_tenant: 12,
            elastic: true,
            probe_iters: 3,
            interference: 0.05,
        }
    }
}

/// Typed admission and replay failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerError {
    EmptyTrace,
    TooManyTenants { job: u64, tenant: u32 },
    BadDemand { job: u64, gpus: u8 },
    QuotaUnsatisfiable { job: u64, gpus: u8, quota: usize },
    BadElasticRange { job: u64, min_gpus: u8, gpus: u8 },
    ZeroLength { job: u64 },
    /// The policy declined the job even on an otherwise idle pool.
    Unplaceable { job: u64, policy: String },
    Mcs(McsError),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::EmptyTrace => write!(f, "trace has no jobs"),
            SchedulerError::TooManyTenants { job, tenant } => {
                write!(f, "job {job}: tenant {tenant} exceeds the {MAX_TENANTS}-tenant test bed")
            }
            SchedulerError::BadDemand { job, gpus } => {
                write!(f, "job {job}: demand {gpus} outside 1..={POOL_GPUS} GPUs")
            }
            SchedulerError::QuotaUnsatisfiable { job, gpus, quota } => {
                write!(f, "job {job}: demand {gpus} can never fit tenant quota {quota}")
            }
            SchedulerError::BadElasticRange { job, min_gpus, gpus } => {
                write!(f, "job {job}: min_gpus {min_gpus} outside 1..={gpus}")
            }
            SchedulerError::ZeroLength { job } => write!(f, "job {job}: zero iterations"),
            SchedulerError::Unplaceable { job, policy } => {
                write!(f, "policy {policy} never places job {job}; trace cannot drain")
            }
            SchedulerError::Mcs(e) => write!(f, "mcs: {e}"),
        }
    }
}

impl std::error::Error for SchedulerError {}

impl From<McsError> for SchedulerError {
    fn from(e: McsError) -> Self {
        SchedulerError::Mcs(e)
    }
}

/// A job currently holding GPUs.
struct Running {
    spec: JobSpec,
    slots: Vec<SlotAddr>,
    started: SimTime,
    remaining_iters: f64,
    /// Alone-on-the-bed mean iteration time for the current shape (s).
    base_iter_secs: f64,
    /// Iterations per second including interference dilation.
    rate: f64,
    last_progress: SimTime,
    finish_at: SimTime,
    ever_spanned: bool,
    shrunk: bool,
}

/// One trace replay under one policy on one fresh test bed.
pub struct ClusterSim {
    mcs: ManagementCenter,
    policy: Box<dyn PlacePolicy>,
    cfg: SchedulerConfig,
    trace: Trace,
    probes: ProbeCache,
}

impl ClusterSim {
    pub fn new(
        trace: Trace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
    ) -> Result<ClusterSim, SchedulerError> {
        if trace.jobs.is_empty() {
            return Err(SchedulerError::EmptyTrace);
        }
        for j in &trace.jobs {
            if j.tenant.0 >= MAX_TENANTS {
                return Err(SchedulerError::TooManyTenants { job: j.id, tenant: j.tenant.0 });
            }
            if j.gpus == 0 || usize::from(j.gpus) > POOL_GPUS {
                return Err(SchedulerError::BadDemand { job: j.id, gpus: j.gpus });
            }
            if usize::from(j.gpus) > cfg.quota_gpus_per_tenant {
                return Err(SchedulerError::QuotaUnsatisfiable {
                    job: j.id,
                    gpus: j.gpus,
                    quota: cfg.quota_gpus_per_tenant,
                });
            }
            if j.min_gpus == 0 || j.min_gpus > j.gpus {
                return Err(SchedulerError::BadElasticRange {
                    job: j.id,
                    min_gpus: j.min_gpus,
                    gpus: j.gpus,
                });
            }
            if j.iters == 0 {
                return Err(SchedulerError::ZeroLength { job: j.id });
            }
        }

        // The shared test bed: advanced-mode chassis, a V100 in every
        // slot, both tenants' hosts cabled into both drawers.
        let mut chassis = Falcon4016::new("cluster-falcon", Mode::Advanced);
        for d in 0..2u8 {
            for s in 0..8u8 {
                chassis
                    .insert_device(SlotAddr::new(d, s), SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()))
                    .expect("fresh chassis slot");
            }
        }
        let cabling = [
            (HostPort::H1, 0u32, 0u8),
            (HostPort::H2, 0, 1),
            (HostPort::H3, 1, 0),
            (HostPort::H4, 1, 1),
        ];
        for (port, tenant, drawer) in cabling {
            chassis
                .connect_host(port, tenant_host(tenant), DrawerId(drawer))
                .expect("advanced mode takes two hosts per drawer");
        }
        let mcs = ManagementCenter::new(chassis);
        mcs.add_user(ADMIN, Role::Admin);
        for t in 0..MAX_TENANTS {
            mcs.add_user(tenant_user(t), Role::User);
        }

        let probe_iters = cfg.probe_iters;
        Ok(ClusterSim {
            mcs,
            policy,
            cfg,
            trace: trace.sorted(),
            probes: ProbeCache::new(probe_iters),
        })
    }

    /// [`ClusterSim::new`] with a pre-warmed (or persisted) probe cache.
    /// Probes are deterministic, so seeding the cache can only skip
    /// simulations, never change the report.
    pub fn with_probe_cache(
        trace: Trace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
        probes: ProbeCache,
    ) -> Result<ClusterSim, SchedulerError> {
        let mut sim = ClusterSim::new(trace, policy, cfg)?;
        sim.probes = probes;
        Ok(sim)
    }

    /// Replay the trace to completion. Deterministic: equal traces,
    /// policies, and configs yield byte-identical reports.
    pub fn run(self) -> Result<ScheduleReport, SchedulerError> {
        self.run_report().map(|(report, _)| report)
    }

    /// [`run`](Self::run), also returning the probe cache so callers can
    /// [`ProbeCache::absorb`] it into a shared cache or persist it.
    pub fn run_report(mut self) -> Result<(ScheduleReport, ProbeCache), SchedulerError> {
        let jobs = std::mem::take(&mut self.trace.jobs);
        let trace_name = self.trace.name.clone();
        let policy_name = self.policy.name();

        let mut next_arrival = 0usize;
        let mut pending: Vec<JobSpec> = Vec::new();
        let mut running: BTreeMap<u64, Running> = BTreeMap::new();
        let mut now = SimTime::ZERO;
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut busy_gpu_secs = 0.0;
        let mut span_gpu_secs = 0.0;
        let mut tenant_gpu_secs = vec![0.0f64; MAX_TENANTS as usize];
        let mut makespan = SimTime::ZERO;

        loop {
            let next_finish = running.values().map(|r| r.finish_at).min();
            let t = match (jobs.get(next_arrival).map(|j| j.arrival), next_finish) {
                (Some(a), Some(f)) => a.min(f),
                (Some(a), None) => a,
                (None, Some(f)) => f,
                (None, None) => break,
            };

            // Advance resource accounting and job progress to t.
            let dt = t.since(now).as_secs_f64();
            if dt > 0.0 {
                for r in running.values_mut() {
                    let g = r.slots.len() as f64;
                    busy_gpu_secs += g * dt;
                    if Shape::of(&r.slots).spans() {
                        span_gpu_secs += g * dt;
                    }
                    tenant_gpu_secs[r.spec.tenant.0 as usize] += g * dt;
                    r.remaining_iters = (r.remaining_iters - r.rate * dt).max(0.0);
                    r.last_progress = t;
                }
            }
            now = t;

            while next_arrival < jobs.len() && jobs[next_arrival].arrival == t {
                Self::enqueue(&mut pending, jobs[next_arrival].clone());
                next_arrival += 1;
            }

            let finished: Vec<u64> = running
                .iter()
                .filter(|(_, r)| r.finish_at <= t)
                .map(|(&id, _)| id)
                .collect();
            let mut membership_changed = !finished.is_empty();
            for id in finished {
                let r = running.remove(&id).expect("id from the running set");
                for &slot in &r.slots {
                    self.mcs.detach(now, tenant_user(r.spec.tenant.0), slot)?;
                }
                makespan = makespan.max(now);
                outcomes.push(JobOutcome {
                    id: r.spec.id,
                    tenant: r.spec.tenant.0,
                    benchmark: r.spec.benchmark.label().to_string(),
                    gpus: r.spec.gpus,
                    final_gpus: r.slots.len() as u8,
                    priority: r.spec.priority,
                    arrival: r.spec.arrival,
                    start: r.started,
                    finish: now,
                    spanned: r.ever_spanned,
                    shrunk: r.shrunk,
                });
            }

            if self.schedule_pass(now, &mut pending, &mut running)? {
                membership_changed = true;
            }
            if membership_changed {
                self.recompute_rates(&mut running);
            }
            self.assert_conservation(&running);
        }

        if let Some(stuck) = pending.first() {
            return Err(SchedulerError::Unplaceable {
                job: stuck.id,
                policy: policy_name.to_string(),
            });
        }
        let audit = self.mcs.export_audit(ADMIN)?.len() as u64;
        let report = ScheduleReport::assemble(
            policy_name,
            trace_name,
            POOL_GPUS as u32,
            outcomes,
            makespan.since(SimTime::ZERO),
            busy_gpu_secs,
            span_gpu_secs,
            tenant_gpu_secs,
            audit,
        );
        Ok((report, self.probes))
    }

    /// Queue discipline: priority (desc), then arrival, then id. The
    /// policy never reorders the queue — it only picks slots.
    fn enqueue(pending: &mut Vec<JobSpec>, job: JobSpec) {
        let key = |j: &JobSpec| (std::cmp::Reverse(j.priority), j.arrival, j.id);
        let pos = pending.partition_point(|j| key(j) <= key(&job));
        pending.insert(pos, job);
    }

    fn free_view(&self) -> FreeView {
        self.mcs.with_chassis(|c| {
            FreeView::new(
                c.occupied_slots()
                    .filter(|&(a, d)| matches!(d, SlotDevice::Gpu(_)) && c.owner_of(a).is_none())
                    .map(|(a, _)| a)
                    .collect(),
            )
        })
    }

    /// Place as many queued jobs as the policy allows, in strict queue
    /// order: the first quota-eligible job that cannot be placed blocks
    /// the line (no backfill — that keeps every admitted job free of
    /// starvation), except that quota-blocked jobs are stepped over.
    fn schedule_pass(
        &mut self,
        now: SimTime,
        pending: &mut Vec<JobSpec>,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let mut changed = false;
        loop {
            let free = self.free_view();
            let mut used = vec![0usize; MAX_TENANTS as usize];
            for r in running.values() {
                used[r.spec.tenant.0 as usize] += r.slots.len();
            }
            let head = pending.iter().enumerate().find(|(_, j)| {
                used[j.tenant.0 as usize] + usize::from(j.gpus) <= self.cfg.quota_gpus_per_tenant
            });
            let Some((i, job)) = head else { break };
            match self.policy.place(job, &free, &mut self.probes) {
                Some(slots) => {
                    debug_assert_eq!(slots.len(), usize::from(job.gpus));
                    let spec = pending.remove(i);
                    self.start_job(now, spec, slots, running)?;
                    changed = true;
                }
                None => {
                    // Shrink only on a genuine capacity shortage; if the
                    // policy is holding out for a better-shaped placement,
                    // clawing back a victim's GPUs would not unblock it.
                    if !self.cfg.elastic || free.total() >= usize::from(job.gpus) {
                        break;
                    }
                    if !self.try_shrink(now, running)? {
                        break;
                    }
                    changed = true;
                }
            }
        }
        Ok(changed)
    }

    fn start_job(
        &mut self,
        now: SimTime,
        spec: JobSpec,
        slots: Vec<SlotAddr>,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<(), SchedulerError> {
        let user = tenant_user(spec.tenant.0);
        let host = tenant_host(spec.tenant.0);
        for &slot in &slots {
            self.mcs.grant(now, ADMIN, slot, user)?;
            self.mcs.attach(now, user, slot, host)?;
        }
        let shape = Shape::of(&slots);
        let base = self.probes.price(spec.benchmark, shape).mean_iter.as_secs_f64();
        running.insert(
            spec.id,
            Running {
                remaining_iters: spec.iters as f64,
                base_iter_secs: base,
                rate: 1.0 / base,
                last_progress: now,
                finish_at: SimTime::MAX, // recompute_rates sets the real value
                started: now,
                ever_spanned: shape.spans(),
                shrunk: false,
                slots,
                spec,
            },
        );
        Ok(())
    }

    /// Claw back GPUs from the running elastic job holding the most slots
    /// (ties to the lowest id), releasing whole-drawer remainders first.
    fn try_shrink(
        &mut self,
        now: SimTime,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let victim = running
            .values()
            .filter(|r| r.slots.len() > usize::from(r.spec.min_gpus))
            .max_by_key(|r| (r.slots.len(), std::cmp::Reverse(r.spec.id)))
            .map(|r| r.spec.id);
        let Some(id) = victim else { return Ok(false) };
        let r = running.get_mut(&id).expect("victim is running");
        let old = r.slots.len();
        let new = usize::from(r.spec.min_gpus).max(old / 2);
        debug_assert!(new < old);
        // Keep the drawer where the job holds more slots; release the rest
        // (highest slots first) so the freed hole is as whole as possible.
        let in_d0 = r.slots.iter().filter(|s| s.drawer.0 == 0).count();
        let major = if in_d0 * 2 >= old { 0u8 } else { 1 };
        r.slots.sort_by_key(|s| (s.drawer.0 != major, s.slot));
        let released = r.slots.split_off(new);
        for &slot in &released {
            self.mcs.detach(now, tenant_user(r.spec.tenant.0), slot)?;
        }
        // Constant total work in GPU-iterations: fewer GPUs, more
        // remaining iterations at the new (cheaper per-iteration) shape.
        r.remaining_iters *= old as f64 / new as f64;
        r.base_iter_secs = self
            .probes
            .price(r.spec.benchmark, Shape::of(&r.slots))
            .mean_iter
            .as_secs_f64();
        r.shrunk = true;
        Ok(true)
    }

    /// Resource-conservation invariants, checked at every event: no slot
    /// is double-booked, the scheduler's view matches the chassis
    /// attachment table exactly, the pool is never oversubscribed, and no
    /// tenant exceeds its quota. Cheap (≤ 16 attachments), so it runs in
    /// release builds too.
    fn assert_conservation(&self, running: &BTreeMap<u64, Running>) {
        let mut booked = std::collections::BTreeSet::new();
        let mut used = vec![0usize; MAX_TENANTS as usize];
        for r in running.values() {
            for &slot in &r.slots {
                assert!(booked.insert(slot), "slot {slot} double-booked");
            }
            used[r.spec.tenant.0 as usize] += r.slots.len();
        }
        assert!(booked.len() <= POOL_GPUS, "pool oversubscribed");
        for (t, &u) in used.iter().enumerate() {
            assert!(u <= self.cfg.quota_gpus_per_tenant, "tenant {t} over quota: {u}");
        }
        let attached: Vec<SlotAddr> =
            self.mcs.with_chassis(|c| c.attachments().map(|(a, _)| a).collect());
        assert_eq!(
            attached.len(),
            booked.len(),
            "scheduler view diverged from chassis attachments"
        );
        assert!(attached.iter().all(|a| booked.contains(a)));
    }

    /// Rates are piecewise constant between events: every membership or
    /// placement change re-prices each running job as its alone-on-bed
    /// iteration rate diluted by co-residents sharing a drawer switch.
    fn recompute_rates(&mut self, running: &mut BTreeMap<u64, Running>) {
        let drawers: Vec<(u64, [bool; 2])> = running
            .values()
            .map(|r| {
                let d0 = r.slots.iter().any(|s| s.drawer.0 == 0);
                let d1 = r.slots.iter().any(|s| s.drawer.0 == 1);
                (r.spec.id, [d0, d1])
            })
            .collect();
        for r in running.values_mut() {
            let mine = drawers
                .iter()
                .find(|(id, _)| *id == r.spec.id)
                .map(|(_, d)| *d)
                .expect("job listed");
            let neighbors = drawers
                .iter()
                .filter(|(id, d)| *id != r.spec.id && ((d[0] && mine[0]) || (d[1] && mine[1])))
                .count();
            let dilation = 1.0 + self.cfg.interference * neighbors as f64;
            r.rate = 1.0 / (r.base_iter_secs * dilation);
            r.finish_at = r.last_progress + Dur::from_secs_f64(r.remaining_iters / r.rate);
        }
    }
}

/// Replay `trace` under each named policy (see [`crate::policy`]) on a
/// fresh test bed and return the reports in policy order. Replays run on
/// [`parsweep::default_jobs`] workers against a throwaway shared cache;
/// use [`compare_policies_cached`] to control worker count and keep the
/// cache.
pub fn compare_policies(
    trace: &Trace,
    policies: Vec<Box<dyn PlacePolicy>>,
    cfg: &SchedulerConfig,
) -> Result<Vec<ScheduleReport>, SchedulerError> {
    let mut cache = ProbeCache::new(cfg.probe_iters);
    compare_policies_cached(trace, policies, cfg, parsweep::default_jobs(), &mut cache)
}

/// Replay `trace` under each policy on a fresh test bed, fanning the
/// replays across `jobs` parsweep workers, and return the reports **in
/// policy order** (never completion order).
///
/// Each replay gets a [`ProbeCache::split`] of the shared `cache` —
/// pre-warmed with [`crate::probe::warm_set_for_trace`], itself priced in
/// parallel — and its additions are [`ProbeCache::absorb`]ed back in
/// policy order afterwards. Probes are pure, so every replay prices a
/// shape identically whether it hits the shared cache or re-simulates:
/// reports are byte-identical to the serial path for any `jobs`.
pub fn compare_policies_cached(
    trace: &Trace,
    policies: Vec<Box<dyn PlacePolicy>>,
    cfg: &SchedulerConfig,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<ScheduleReport>, SchedulerError> {
    cache.warm(&crate::probe::warm_set_for_trace(trace), jobs);
    let replays: Vec<parsweep::Job<'_, Result<(ScheduleReport, ProbeCache), SchedulerError>>> =
        policies
            .into_iter()
            .map(|p| {
                let split = cache.split();
                let label = format!("replay {} under {}", trace.name, p.name());
                parsweep::Job::new(label, move || {
                    ClusterSim::with_probe_cache(trace.clone(), p, cfg.clone(), split)?
                        .run_report()
                })
            })
            .collect();
    let mut reports = Vec::new();
    for outcome in parsweep::run(jobs, replays) {
        let (report, probes) = outcome?;
        cache.absorb(probes);
        reports.push(report);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{all_policies, FifoFirstFit, FragAware};
    use crate::trace::{seeded_two_tenant, JobSpec, TenantId};
    use dlmodels::Benchmark;

    fn tiny_trace() -> Trace {
        seeded_two_tenant(6, 11)
    }

    #[test]
    fn replay_completes_every_job() {
        let trace = tiny_trace();
        let n = trace.jobs.len() as u32;
        let report = ClusterSim::new(trace, Box::new(FifoFirstFit), SchedulerConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.n_jobs, n);
        assert!(report.makespan > Dur::ZERO);
        assert!(report.gpu_util > 0.0 && report.gpu_util <= 1.0);
        for o in &report.jobs {
            assert!(o.start >= o.arrival);
            assert!(o.finish > o.start);
        }
        // Every start/finish left an MCS audit trail.
        assert!(report.audit_entries > 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = SchedulerConfig::default();
        let a = ClusterSim::new(tiny_trace(), Box::new(FragAware), cfg.clone())
            .unwrap()
            .run()
            .unwrap();
        let b = ClusterSim::new(tiny_trace(), Box::new(FragAware), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn admission_rejects_bad_specs() {
        let mut t = tiny_trace();
        t.jobs[0].gpus = 0;
        let r = ClusterSim::new(t, Box::new(FifoFirstFit), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::BadDemand { .. })));

        let mut t = tiny_trace();
        t.jobs[0].tenant = TenantId(5);
        let r = ClusterSim::new(t, Box::new(FifoFirstFit), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::TooManyTenants { .. })));

        let mut t = tiny_trace();
        t.jobs[0].gpus = 14;
        t.jobs[0].min_gpus = 14;
        let r = ClusterSim::new(t, Box::new(FifoFirstFit), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::QuotaUnsatisfiable { .. })));
    }

    #[test]
    fn quota_caps_a_tenant() {
        // One tenant floods the cluster; its concurrent GPUs never exceed
        // the quota, so the queue drains in arrival order under the cap.
        let jobs: Vec<JobSpec> = (0..4)
            .map(|id| JobSpec {
                id,
                tenant: TenantId(0),
                benchmark: Benchmark::MobileNetV2,
                gpus: 4,
                min_gpus: 4,
                priority: 1,
                arrival: SimTime::ZERO,
                iters: 6,
            })
            .collect();
        let trace = Trace { name: "flood".into(), jobs };
        let cfg = SchedulerConfig { quota_gpus_per_tenant: 8, ..SchedulerConfig::default() };
        let report = ClusterSim::new(trace, Box::new(FifoFirstFit), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.n_jobs, 4);
        // With an 8-GPU cap only two 4-GPU jobs run at once: the last two
        // must start strictly after the first two.
        let mut starts: Vec<SimTime> = report.jobs.iter().map(|o| o.start).collect();
        starts.sort();
        assert!(starts[2] > starts[0]);
    }

    #[test]
    fn elastic_shrink_fires_under_pressure() {
        // An 8-GPU elastic job holds the pool busy enough that a burst of
        // arrivals forces a claw-back.
        let mut jobs = vec![JobSpec {
            id: 0,
            tenant: TenantId(0),
            benchmark: Benchmark::ResNet50,
            gpus: 8,
            min_gpus: 4,
            priority: 1,
            arrival: SimTime::ZERO,
            iters: 48,
        }];
        for id in 1..4 {
            jobs.push(JobSpec {
                id,
                tenant: TenantId(1),
                benchmark: Benchmark::MobileNetV2,
                gpus: 4,
                min_gpus: 4,
                priority: 1,
                arrival: SimTime::from_millis(100),
                iters: 6,
            });
        }
        let trace = Trace { name: "pressure".into(), jobs };
        let report = ClusterSim::new(trace, Box::new(FifoFirstFit), SchedulerConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let big = report.jobs.iter().find(|o| o.id == 0).unwrap();
        assert!(big.shrunk, "the elastic job should have been clawed back");
        assert_eq!(big.final_gpus, 4);
        assert_eq!(report.shrunk_jobs, 1);
    }

    #[test]
    fn all_policies_drain_the_same_trace() {
        let reports =
            compare_policies(&tiny_trace(), all_policies(), &SchedulerConfig::default()).unwrap();
        assert_eq!(reports.len(), 4);
        let n = tiny_trace().jobs.len() as u32;
        for r in &reports {
            assert_eq!(r.n_jobs, n, "{} lost jobs", r.policy);
            assert!((0.0..=1.0).contains(&r.fairness));
        }
    }
}
