//! The cluster event loop: co-simulates concurrent training jobs on a
//! shared composable test bed — one Falcon 4016 chassis, or a rack of up
//! to eight behind an inter-chassis fabric tier (see [`rack`]).
//!
//! Each chassis runs in **advanced mode** — 2 drawers × 8 slots of V100
//! PCIe GPUs — shared by two tenants. Each tenant's host server is cabled
//! into both drawers of every chassis (tenant 0 on ports H1/H2, tenant 1
//! on H3/H4), so every placement decision is a real composition: job start
//! and finish drive MCS-audited `grant`/`attach`/`detach` calls against
//! the owning chassis, and tenant isolation comes from the MCS role model,
//! not scheduler bookkeeping. Gangs that span chassis pay the analytic
//! [`rack::cross_chassis_stretch`] for crossing the rack switch; on one
//! chassis that stretch is exactly 1.0 and replays are byte-identical to
//! the pre-rack code.
//!
//! Time advances by discrete events (job arrival, job finish). Running
//! jobs progress at a rate set by (a) a probe-measured mean iteration
//! time for their placement *shape* — so drawer-spanning placements are
//! genuinely slower for communication-bound models — and (b) a
//! deterministic interference dilation per co-resident job sharing a
//! drawer's switch ASIC. Rates are piecewise constant between events.
//!
//! When the queue head cannot be placed for lack of capacity, the
//! scheduler may *shrink* a running elastic job (e.g. 8 → 4 GPUs) through
//! the same detach path, stretching the victim's remaining iterations so
//! total work in GPU-iterations is conserved.
//!
//! A replay may also carry a [`FaultPlan`] (see [`crate::fault`]): drawer
//! outages, slot deaths, link degradation, and BMC thermal trips strike
//! and heal mid-replay as first-class events. Each strike is an
//! MCS-audited `fail`/`force-detach`; evacuated jobs roll back to their
//! last checkpoint, wait out a re-composition latency, and are re-placed
//! by the same policy — so recovery quality is a measurable property of
//! the placement policy, reported in [`crate::metrics::RecoveryMetrics`].

use crate::fault::{FaultKind, FaultPlan, CHECKPOINT_ITERS, RECOMPOSE_LATENCY};
use crate::metrics::{JobOutcome, MigrationMetrics, RecoveryMetrics, ScheduleReport};
use crate::policy::{FreeView, PlacePolicy, RunningView};
use crate::probe::{degraded_key, ProbeCache};
use crate::serve::{MixedTrace, ServeState, SLICES_PER_GPU};
use crate::trace::{JobSpec, Trace};
use desim::{Dur, SimTime};
use devices::gpu::GpuSpec;
use falcon::{
    Bmc, DrawerId, Falcon4016, HostId, HostPort, ManagementCenter, McsError, Mode, Role, Severity,
    SlotAddr, SlotDevice, UserId,
};
use rack::{chassis_parts, cross_chassis_stretch, drawers_spanned, Rack, RackAddr, RackTopology};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// GPUs in the shared pool (2 drawers × 8 slots).
pub const POOL_GPUS: usize = 16;
/// The chassis has four host ports; two per tenant means two tenants.
pub const MAX_TENANTS: u32 = 2;

pub(crate) const ADMIN: UserId = UserId(0);

pub(crate) fn tenant_user(t: u32) -> UserId {
    UserId(t + 1)
}

fn tenant_host(t: u32) -> HostId {
    HostId(t + 1)
}

/// Does this gang pay a root-complex or rack-tier hop?
fn spans(slots: &[RackAddr]) -> bool {
    drawers_spanned(slots) > 1
}

/// Knobs of the cluster simulation (not of any single policy).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Concurrent GPUs one tenant may hold across its jobs.
    pub quota_gpus_per_tenant: usize,
    /// Shrink elastic jobs when the queue head is capacity-blocked.
    pub elastic: bool,
    /// Iterations per placement-pricing probe.
    pub probe_iters: u64,
    /// Fractional slowdown per co-resident job sharing a drawer.
    pub interference: f64,
    /// Run the full rack-wide + per-chassis conservation audit every N
    /// events; the O(1) ledger check covers the events in between. 1 =
    /// audit every event (the historical behavior).
    pub audit_every: u64,
    /// Re-price only jobs a link-health change can actually affect
    /// (touching the degraded chassis, or multi-chassis gangs for a
    /// rack-tier degrade). Exact: unaffected placements price to the same
    /// bits either way.
    pub incremental_reprice: bool,
    /// Absorb per-service serving micro events (arrivals, batch
    /// completions, launches) inside epochs between global events instead
    /// of surfacing each as a global event, sharding services across the
    /// replay's workers. Epoch dilation is frozen at epoch start, so this
    /// is a (deterministic) modeling change — off by default to keep
    /// existing replays byte-identical.
    pub shard_serving: bool,
    /// Let a capacity-blocked queue head preempt the cheapest
    /// strictly-lower-tier running job (chosen by
    /// [`PlacePolicy::choose_victim`]): the victim checkpoints, detaches
    /// through the MCS, and re-queues at its priority position. Off by
    /// default — existing replays never preempt.
    pub preempt: bool,
    /// Periodic migration-based defragmentation: when the queue is empty,
    /// relocate at most one drawer-spanning job per event to a placement
    /// spanning fewer drawers (chosen by [`PlacePolicy::migrate`]),
    /// paying the checkpoint rollback and [`RECOMPOSE_LATENCY`].
    pub defrag: bool,
    /// SLO clawback relocates training instead of shrinking it in place:
    /// the victim's gang re-places one GPU smaller through the policy,
    /// compacting over its own freed slots, instead of merely releasing
    /// its highest-address slot.
    pub relocate_slo: bool,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            quota_gpus_per_tenant: 12,
            elastic: true,
            probe_iters: 3,
            interference: 0.05,
            audit_every: 1,
            incremental_reprice: true,
            shard_serving: false,
            preempt: false,
            defrag: false,
            relocate_slo: false,
        }
    }
}

/// Typed admission and replay failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerError {
    EmptyTrace,
    TooManyTenants { job: u64, tenant: u32 },
    BadDemand { job: u64, gpus: u8, pool: usize },
    QuotaUnsatisfiable { job: u64, gpus: u8, quota: usize },
    BadElasticRange { job: u64, min_gpus: u8, gpus: u8 },
    ZeroLength { job: u64 },
    /// Two jobs in one trace share an id; completion accounting would
    /// silently merge them.
    DuplicateJobId { id: u64 },
    /// A service spec in a mixed trace is outside the serving envelope.
    BadService { id: u64, msg: String },
    /// The policy declined the job even on an otherwise idle pool.
    Unplaceable { job: u64, policy: String },
    /// The fault plan failed [`FaultPlan::validate`].
    BadFault { msg: String },
    Mcs(McsError),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::EmptyTrace => write!(f, "trace has no jobs"),
            SchedulerError::TooManyTenants { job, tenant } => {
                write!(f, "job {job}: tenant {tenant} exceeds the {MAX_TENANTS}-tenant test bed")
            }
            SchedulerError::BadDemand { job, gpus, pool } => {
                write!(f, "job {job}: demand {gpus} outside 1..={pool} GPUs")
            }
            SchedulerError::QuotaUnsatisfiable { job, gpus, quota } => {
                write!(f, "job {job}: demand {gpus} can never fit tenant quota {quota}")
            }
            SchedulerError::BadElasticRange { job, min_gpus, gpus } => {
                write!(f, "job {job}: min_gpus {min_gpus} outside 1..={gpus}")
            }
            SchedulerError::ZeroLength { job } => write!(f, "job {job}: zero iterations"),
            SchedulerError::DuplicateJobId { id } => {
                write!(f, "job id {id} appears more than once in the trace")
            }
            SchedulerError::BadService { id, msg } => write!(f, "service {id}: {msg}"),
            SchedulerError::Unplaceable { job, policy } => {
                write!(f, "policy {policy} never places job {job}; trace cannot drain")
            }
            SchedulerError::BadFault { msg } => write!(f, "fault plan: {msg}"),
            SchedulerError::Mcs(e) => write!(f, "mcs: {e}"),
        }
    }
}

impl std::error::Error for SchedulerError {}

impl From<McsError> for SchedulerError {
    fn from(e: McsError) -> Self {
        SchedulerError::Mcs(e)
    }
}

/// A job currently holding GPUs.
struct Running {
    spec: JobSpec,
    slots: Vec<RackAddr>,
    started: SimTime,
    remaining_iters: f64,
    /// Alone-on-the-bed mean iteration time for the current shape (s).
    base_iter_secs: f64,
    /// Iterations per second including interference dilation.
    rate: f64,
    last_progress: SimTime,
    finish_at: SimTime,
    /// No progress accrues before this instant — the re-composition
    /// latency after a fault evacuation. Equals `started` for initial
    /// placements, so fault-free replays are unaffected.
    resume_at: SimTime,
    /// Iterations completed on the current placement; evacuation rolls
    /// the job back to the last [`CHECKPOINT_ITERS`] multiple of this.
    iters_since_placement: f64,
    ever_spanned: bool,
    shrunk: bool,
}

/// Residual state of a preempted job while it waits in the queue: the
/// checkpoint-rolled-back remaining work plus the flags its eventual
/// [`JobOutcome`] must carry. The job itself re-enters `pending` as a
/// spec sized to its pre-preemption allocation; `start_job` restores this
/// state (instead of starting fresh) when the queue re-places it.
struct Suspended {
    remaining_iters: f64,
    started: SimTime,
    /// The originally requested gang size (the re-queued spec's `gpus` is
    /// the current allocation, which a prior shrink may have reduced).
    gpus: u8,
    min_gpus: u8,
    ever_spanned: bool,
    shrunk: bool,
}

/// Preemption/migration counters of one replay (reported as
/// [`MigrationMetrics`] when any of the preempt/defrag/relocate knobs is
/// on; absent otherwise so legacy reports stay byte-identical).
#[derive(Default)]
struct MigState {
    preemptions: u32,
    migrations: u32,
    relocations: u32,
    work_lost_gpu_secs: f64,
}

/// The one fault-timeline action type: each plan event strikes once and
/// heals once.
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Strike(usize),
    Heal(usize),
}

/// Mutable failure-injection state of one replay.
#[derive(Default)]
struct FaultState {
    /// Active-fault refcount per slot: a slot is failed while any active
    /// event covers it, so overlapping outages compose.
    slot_down: BTreeMap<RackAddr, u32>,
    /// Active intra-chassis link degrades, by plan-event index →
    /// (global drawer, percent).
    degrades: BTreeMap<usize, (u8, u8)>,
    /// Active inter-chassis (rack-tier) degrades, by plan-event index →
    /// percent.
    rack_degrades: BTreeMap<usize, u8>,
    /// Slots whose refcount each strike incremented, for its heal.
    touched_by_event: Vec<Vec<RackAddr>>,
    /// Evacuated jobs awaiting re-placement, with their fault times.
    displaced: Vec<(SimTime, Running)>,
    recovery_times: Vec<Dur>,
    evacuations: u32,
    thermal_trips: u32,
    work_lost_gpu_secs: f64,
}

/// Reusable buffers of the replay loop, hoisted out of the per-event path
/// so steady-state events allocate nothing.
#[derive(Default)]
struct LoopScratch {
    finished: Vec<u64>,
    tod: Vec<usize>,
    job_masks: Vec<u64>,
    svc_masks: Vec<u64>,
    reprice_ids: Vec<u64>,
}

/// Which running jobs a link-health change can re-price. Skipping the
/// rest is exact, not approximate: a job's price depends only on the
/// drawer healths of the chassis it touches, plus the rack-tier stretch —
/// and [`cross_chassis_stretch`] is exactly 1.0 for single-chassis gangs
/// regardless of rack health.
#[derive(Clone, Copy)]
enum RepriceScope {
    /// Jobs touching this chassis (an intra-chassis link degrade).
    Chassis(u8),
    /// Multi-chassis gangs only (a rack-tier degrade).
    RackTier,
}

/// One trace replay under one policy on one fresh test bed.
pub struct ClusterSim {
    rack: Rack,
    topo: RackTopology,
    policy: Box<dyn PlacePolicy>,
    cfg: SchedulerConfig,
    trace: Trace,
    probes: ProbeCache,
    faults: FaultPlan,
    /// One BMC per chassis, indexed like [`Rack::mcs`].
    bmc: Vec<Bmc>,
    fstate: FaultState,
    mig: MigState,
    /// Preempted jobs awaiting re-placement, keyed by job id; every entry
    /// has a matching spec in the pending queue.
    suspended: BTreeMap<u64, Suspended>,
    serve: ServeState,
    /// O(1) mirror of the running set's slot holdings (total and per
    /// tenant), updated at every attach/detach. The cheap between-audit
    /// conservation check compares it against the rack's attachment
    /// count; the full audit re-derives and cross-checks it.
    ledger_slots: usize,
    ledger_tenant: Vec<usize>,
    /// Events replayed so far — drives the `audit_every` cadence.
    events_seen: u64,
    /// Worker count for intra-replay serving shards (see
    /// [`SchedulerConfig::shard_serving`]).
    workers: usize,
    scratch: LoopScratch,
}

impl ClusterSim {
    pub fn new(
        trace: Trace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
    ) -> Result<ClusterSim, SchedulerError> {
        Self::new_on(RackTopology::SINGLE, trace, policy, cfg)
    }

    /// [`ClusterSim::new`] on an explicit rack topology: `topo.chassis`
    /// Falcon 4016s behind the inter-chassis fabric tier.
    pub fn new_on(
        topo: RackTopology,
        trace: Trace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
    ) -> Result<ClusterSim, SchedulerError> {
        if trace.jobs.is_empty() {
            return Err(SchedulerError::EmptyTrace);
        }
        Self::build(topo, trace, policy, cfg)
    }

    /// Admission + test-bed construction shared by the training-only and
    /// mixed entry points (only the latter may have zero jobs).
    fn build(
        topo: RackTopology,
        trace: Trace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
    ) -> Result<ClusterSim, SchedulerError> {
        assert!(
            topo.is_supported(),
            "topology {topo} outside {}",
            rack::supported_envelope()
        );
        let mut ids: Vec<u64> = trace.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(SchedulerError::DuplicateJobId { id: w[0] });
        }
        for j in &trace.jobs {
            if j.tenant.0 >= MAX_TENANTS {
                return Err(SchedulerError::TooManyTenants { job: j.id, tenant: j.tenant.0 });
            }
            if j.gpus == 0 || usize::from(j.gpus) > topo.total_gpus() {
                return Err(SchedulerError::BadDemand {
                    job: j.id,
                    gpus: j.gpus,
                    pool: topo.total_gpus(),
                });
            }
            if usize::from(j.gpus) > cfg.quota_gpus_per_tenant {
                return Err(SchedulerError::QuotaUnsatisfiable {
                    job: j.id,
                    gpus: j.gpus,
                    quota: cfg.quota_gpus_per_tenant,
                });
            }
            if j.min_gpus == 0 || j.min_gpus > j.gpus {
                return Err(SchedulerError::BadElasticRange {
                    job: j.id,
                    min_gpus: j.min_gpus,
                    gpus: j.gpus,
                });
            }
            if j.iters == 0 {
                return Err(SchedulerError::ZeroLength { job: j.id });
            }
        }

        // The shared test bed: one advanced-mode chassis per rack
        // position, a V100 in every slot, both tenants' hosts cabled into
        // both drawers of every chassis. Chassis 0 keeps the historical
        // name so single-chassis replays stay byte-identical.
        let mut centers = Vec::with_capacity(usize::from(topo.chassis));
        for c in 0..topo.chassis {
            let name = if c == 0 {
                "cluster-falcon".to_string()
            } else {
                format!("cluster-falcon{c}")
            };
            let mut chassis = Falcon4016::new(name, Mode::Advanced);
            for d in 0..2u8 {
                for s in 0..8u8 {
                    chassis
                        .insert_device(
                            SlotAddr::new(d, s),
                            SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()),
                        )
                        .expect("fresh chassis slot");
                }
            }
            let cabling = [
                (HostPort::H1, 0u32, 0u8),
                (HostPort::H2, 0, 1),
                (HostPort::H3, 1, 0),
                (HostPort::H4, 1, 1),
            ];
            for (port, tenant, drawer) in cabling {
                chassis
                    .connect_host(port, tenant_host(tenant), DrawerId(drawer))
                    .expect("advanced mode takes two hosts per drawer");
            }
            centers.push(ManagementCenter::new(chassis));
        }
        let rack = Rack::new(centers);
        rack.add_user(ADMIN, Role::Admin);
        for t in 0..MAX_TENANTS {
            rack.add_user(tenant_user(t), Role::User);
        }

        let probe_iters = cfg.probe_iters;
        let n_drawers = topo.n_drawers();
        Ok(ClusterSim {
            rack,
            topo,
            policy,
            cfg,
            trace: trace.sorted(),
            probes: ProbeCache::new_for(probe_iters, topo),
            faults: FaultPlan::none(),
            bmc: (0..topo.chassis).map(|_| Bmc::falcon_defaults()).collect(),
            fstate: FaultState::default(),
            mig: MigState::default(),
            suspended: BTreeMap::new(),
            serve: ServeState::empty_for(n_drawers),
            ledger_slots: 0,
            ledger_tenant: vec![0; MAX_TENANTS as usize],
            events_seen: 0,
            workers: 1,
            scratch: LoopScratch::default(),
        })
    }

    /// Set the worker count for intra-replay serving shards. Only takes
    /// effect under [`SchedulerConfig::shard_serving`]; the replay is
    /// byte-identical at any worker count.
    pub fn with_workers(mut self, workers: usize) -> ClusterSim {
        self.workers = workers.max(1);
        self
    }

    /// Admit a mixed workload: training jobs plus latency-SLO inference
    /// services sharing the bed. Service-only traces are legal; a trace
    /// with neither jobs nor services is not.
    pub fn new_mixed(
        mixed: MixedTrace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
    ) -> Result<ClusterSim, SchedulerError> {
        Self::new_mixed_on(RackTopology::SINGLE, mixed, policy, cfg)
    }

    /// [`ClusterSim::new_mixed`] on an explicit rack topology.
    pub fn new_mixed_on(
        topo: RackTopology,
        mixed: MixedTrace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
    ) -> Result<ClusterSim, SchedulerError> {
        let mixed = mixed.sorted();
        if mixed.jobs.is_empty() && mixed.services.is_empty() {
            return Err(SchedulerError::EmptyTrace);
        }
        let mut sids: Vec<u64> = mixed.services.iter().map(|s| s.id).collect();
        sids.sort_unstable();
        if let Some(w) = sids.windows(2).find(|w| w[0] == w[1]) {
            return Err(SchedulerError::BadService {
                id: w[0],
                msg: "service id appears more than once".to_string(),
            });
        }
        for s in &mixed.services {
            let bad = |msg: &str| SchedulerError::BadService { id: s.id, msg: msg.to_string() };
            if s.tenant.0 >= MAX_TENANTS {
                return Err(bad("tenant outside the two-tenant test bed"));
            }
            if !matches!(s.slice, 1 | 2 | 4 | 7) {
                return Err(bad("slice must be 1, 2, 4, or 7 sevenths"));
            }
            debug_assert_eq!(SLICES_PER_GPU, 7);
            if !(s.rate_rps > 0.0 && s.rate_rps.is_finite()) {
                return Err(bad("rate must be positive and finite"));
            }
            if s.duration == Dur::ZERO {
                return Err(bad("zero-length service window"));
            }
            if s.slo == Dur::ZERO {
                return Err(bad("zero SLO"));
            }
            if s.max_batch == 0 {
                return Err(bad("max_batch must be at least 1"));
            }
            if s.min_replicas == 0 || s.min_replicas > s.max_replicas {
                return Err(bad("replica range must satisfy 1 <= min <= max"));
            }
        }
        let mut sim = Self::build(topo, mixed.training(), policy, cfg)?;
        sim.serve = ServeState::new_for(mixed.services, topo.n_drawers());
        Ok(sim)
    }

    /// [`ClusterSim::new_mixed`] with a pre-warmed probe cache.
    pub fn with_probe_cache_mixed(
        mixed: MixedTrace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
        probes: ProbeCache,
    ) -> Result<ClusterSim, SchedulerError> {
        Self::with_probe_cache_mixed_on(RackTopology::SINGLE, mixed, policy, cfg, probes)
    }

    /// [`ClusterSim::new_mixed_on`] with a pre-warmed probe cache.
    pub fn with_probe_cache_mixed_on(
        topo: RackTopology,
        mixed: MixedTrace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
        probes: ProbeCache,
    ) -> Result<ClusterSim, SchedulerError> {
        let mut sim = ClusterSim::new_mixed_on(topo, mixed, policy, cfg)?;
        sim.probes = probes;
        Ok(sim)
    }

    /// Inject `plan` into the replay: its events strike and heal as
    /// first-class events of the loop. Rejects plans outside this rack's
    /// envelope with [`SchedulerError::BadFault`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Result<ClusterSim, SchedulerError> {
        plan.validate_for(&self.topo).map_err(|msg| SchedulerError::BadFault { msg })?;
        self.faults = plan.sorted();
        Ok(self)
    }

    /// [`ClusterSim::new`] with a pre-warmed (or persisted) probe cache.
    /// Probes are deterministic, so seeding the cache can only skip
    /// simulations, never change the report.
    pub fn with_probe_cache(
        trace: Trace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
        probes: ProbeCache,
    ) -> Result<ClusterSim, SchedulerError> {
        Self::with_probe_cache_on(RackTopology::SINGLE, trace, policy, cfg, probes)
    }

    /// [`ClusterSim::new_on`] with a pre-warmed (or persisted) probe cache.
    pub fn with_probe_cache_on(
        topo: RackTopology,
        trace: Trace,
        policy: Box<dyn PlacePolicy>,
        cfg: SchedulerConfig,
        probes: ProbeCache,
    ) -> Result<ClusterSim, SchedulerError> {
        let mut sim = ClusterSim::new_on(topo, trace, policy, cfg)?;
        sim.probes = probes;
        Ok(sim)
    }

    /// Replay the trace to completion. Deterministic: equal traces,
    /// policies, and configs yield byte-identical reports.
    pub fn run(self) -> Result<ScheduleReport, SchedulerError> {
        self.run_report().map(|(report, _)| report)
    }

    /// [`run`](Self::run), also returning the probe cache so callers can
    /// [`ProbeCache::absorb`] it into a shared cache or persist it.
    pub fn run_report(mut self) -> Result<(ScheduleReport, ProbeCache), SchedulerError> {
        let jobs = std::mem::take(&mut self.trace.jobs);
        let trace_name = self.trace.name.clone();
        let policy_name = self.policy.name();

        // The fault timeline: every plan event strikes once and heals
        // once, interleaved by (time, plan order) so simultaneous events
        // apply deterministically.
        let mut timeline: Vec<(SimTime, u64, FaultAction)> = Vec::new();
        for (i, e) in self.faults.events.iter().enumerate() {
            timeline.push((e.at, 2 * i as u64, FaultAction::Strike(i)));
            timeline.push((e.heals_at(), 2 * i as u64 + 1, FaultAction::Heal(i)));
        }
        timeline.sort_by_key(|&(t, seq, _)| (t, seq));
        let mut next_fault = 0usize;
        self.fstate.touched_by_event = vec![Vec::new(); self.faults.events.len()];

        let mut next_arrival = 0usize;
        let mut pending: Vec<JobSpec> = Vec::new();
        let mut running: BTreeMap<u64, Running> = BTreeMap::new();
        let mut now = SimTime::ZERO;
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut busy_gpu_secs = 0.0;
        let mut span_gpu_secs = 0.0;
        let mut tenant_gpu_secs = vec![0.0f64; MAX_TENANTS as usize];
        let mut makespan = SimTime::ZERO;

        loop {
            let next_finish = running.values().map(|r| r.finish_at).min();
            let next_fault_at = timeline.get(next_fault).map(|&(t, _, _)| t);
            let next_arrival_at = jobs.get(next_arrival).map(|j| j.arrival);
            // Heals are event sources too: a queued or displaced job may be
            // placeable only once capacity returns, so the loop must keep
            // advancing through the timeline even with nothing running.
            let serve_next = if !self.serve.has_services() || self.serve.idle() {
                // No services, or all of them retired: the serving side
                // can never produce another event.
                None
            } else if self.cfg.shard_serving {
                // Sharded loop: training cannot act before `cap`, so every
                // service absorbs its own micro events up to there and only
                // boundaries (starts, ends, reclaims, scale-ups) surface as
                // global events.
                let cap =
                    [next_arrival_at, next_finish, next_fault_at].into_iter().flatten().min();
                let mut tod = std::mem::take(&mut self.scratch.tod);
                self.training_on_drawer_into(&running, &mut tod);
                let b =
                    self.serve.run_epoch(now, cap, self.cfg.interference, &tod, self.workers);
                self.scratch.tod = tod;
                b
            } else {
                self.serve.next_event()
            };
            let t = [next_arrival_at, next_finish, next_fault_at, serve_next]
                .into_iter()
                .flatten()
                .min();
            let Some(t) = t else { break };
            assert!(t >= now, "event time regressed: {t} < {now}");

            // Advance resource accounting and job progress to t. Held
            // GPUs count as busy even inside the re-composition window —
            // the bed is occupied either way — but training progress only
            // accrues from `resume_at`.
            let dt = t.since(now).as_secs_f64();
            if dt > 0.0 {
                for r in running.values_mut() {
                    let g = r.slots.len() as f64;
                    busy_gpu_secs += g * dt;
                    if spans(&r.slots) {
                        span_gpu_secs += g * dt;
                    }
                    tenant_gpu_secs[r.spec.tenant.0 as usize] += g * dt;
                    let eff = t.since(now.max(r.resume_at)).as_secs_f64();
                    if eff > 0.0 {
                        let done = (r.rate * eff).min(r.remaining_iters);
                        r.remaining_iters -= done;
                        r.iters_since_placement += done;
                    }
                    r.last_progress = t;
                }
                self.serve.accrue(now, t, &mut busy_gpu_secs, &mut tenant_gpu_secs);
            }
            now = t;

            while next_arrival < jobs.len() && jobs[next_arrival].arrival == t {
                Self::enqueue(&mut pending, jobs[next_arrival].clone());
                next_arrival += 1;
            }

            let mut finished = std::mem::take(&mut self.scratch.finished);
            finished.clear();
            finished.extend(running.iter().filter(|(_, r)| r.finish_at <= t).map(|(&id, _)| id));
            let mut membership_changed = !finished.is_empty();
            for id in finished.drain(..) {
                let r = running.remove(&id).expect("id from the running set");
                for &slot in &r.slots {
                    self.rack.detach(now, tenant_user(r.spec.tenant.0), slot)?;
                }
                self.unbook(r.spec.tenant.0, r.slots.len());
                makespan = makespan.max(now);
                outcomes.push(JobOutcome {
                    id: r.spec.id,
                    tenant: r.spec.tenant.0,
                    benchmark: r.spec.benchmark.label().to_string(),
                    gpus: r.spec.gpus,
                    final_gpus: r.slots.len() as u8,
                    priority: r.spec.priority,
                    arrival: r.spec.arrival,
                    start: r.started,
                    finish: now,
                    spanned: r.ever_spanned,
                    shrunk: r.shrunk,
                });
            }
            self.scratch.finished = finished;

            while next_fault < timeline.len() && timeline[next_fault].0 <= t {
                let (_, _, action) = timeline[next_fault];
                next_fault += 1;
                let changed = match action {
                    FaultAction::Strike(i) => self.apply_fault(now, i, &mut running)?,
                    FaultAction::Heal(i) => self.heal_fault(now, i, &mut running)?,
                };
                membership_changed |= changed;
            }

            // Once every service has retired (`idle`), the serving step
            // and placement pass are guaranteed no-ops — skip them (and
            // the per-drawer training census they would need).
            if self.serve.has_services() && !self.serve.idle() {
                let mut tod = std::mem::take(&mut self.scratch.tod);
                self.training_on_drawer_into(&running, &mut tod);
                let stepped = self.serve.step(now, &self.rack, self.cfg.interference, &tod)?;
                self.scratch.tod = tod;
                if stepped {
                    membership_changed = true;
                }
                if self.serve_place_pass(now, &mut running)? {
                    membership_changed = true;
                }
            }
            if self.schedule_pass(now, &mut pending, &mut running)? {
                membership_changed = true;
            }
            // Defragment only when nothing is waiting: queued or displaced
            // jobs have first claim on free capacity, and relocating under
            // them could steal the hole they are about to take.
            if self.cfg.defrag
                && pending.is_empty()
                && self.fstate.displaced.is_empty()
                && self.defrag_pass(now, &mut running)?
            {
                membership_changed = true;
            }
            if membership_changed {
                self.recompute_rates(&mut running);
            }
            // Amortized invariant checking: the full rack-wide and
            // per-chassis audit runs every `audit_every` events (and at
            // terminal states); the O(1) ledger check covers the rest.
            self.events_seen += 1;
            if self.events_seen % self.cfg.audit_every.max(1) == 0 {
                self.assert_conservation(&running);
            } else {
                self.check_ledger();
            }
        }

        self.assert_conservation(&running);
        self.serve.assert_drained();
        makespan = makespan.max(self.serve.last_activity());
        if let Some((_, stuck)) = self.fstate.displaced.first() {
            return Err(SchedulerError::Unplaceable {
                job: stuck.spec.id,
                policy: policy_name.to_string(),
            });
        }
        if let Some(stuck) = pending.first() {
            return Err(SchedulerError::Unplaceable {
                job: stuck.id,
                policy: policy_name.to_string(),
            });
        }
        // Every suspended entry shadows a pending spec, so a drained queue
        // means every preempted job resumed and finished.
        assert!(self.suspended.is_empty(), "preempted job never resumed");
        let recovery = if self.faults.is_empty() {
            None
        } else {
            Some(RecoveryMetrics::assemble(
                self.faults.events.len() as u32,
                self.fstate.evacuations,
                self.fstate.thermal_trips,
                &self.fstate.recovery_times,
                self.fstate.work_lost_gpu_secs,
            ))
        };
        // The migration block reports only when one of its levers was
        // armed: legacy configs keep their reports byte-identical.
        let migration = if self.cfg.preempt || self.cfg.defrag || self.cfg.relocate_slo {
            Some(MigrationMetrics::assemble(
                self.mig.preemptions,
                self.mig.migrations,
                self.mig.relocations,
                self.mig.work_lost_gpu_secs,
            ))
        } else {
            None
        };
        let audit = self.rack.audit_len(ADMIN)? as u64;
        let report = ScheduleReport::assemble(
            policy_name,
            trace_name,
            self.topo.total_gpus() as u32,
            outcomes,
            makespan.since(SimTime::ZERO),
            busy_gpu_secs,
            span_gpu_secs,
            tenant_gpu_secs,
            audit,
            recovery,
            migration,
            self.serve.assemble(),
        );
        Ok((report, self.probes))
    }

    /// Queue discipline: priority (desc), then arrival, then id. The
    /// policy never reorders the queue — it only picks slots.
    fn enqueue(pending: &mut Vec<JobSpec>, job: JobSpec) {
        let key = |j: &JobSpec| (std::cmp::Reverse(j.priority), j.arrival, j.id);
        let pos = pending.partition_point(|j| key(j) <= key(&job));
        pending.insert(pos, job);
    }

    fn free_view(&self) -> FreeView {
        let mut free: Vec<RackAddr> = Vec::new();
        for c in 0..self.topo.chassis {
            self.rack.with_chassis(c, |ch| {
                free.extend(
                    ch.occupied_slots()
                        .filter(|&(a, d)| {
                            matches!(d, SlotDevice::Gpu(_))
                                && ch.owner_of(a).is_none()
                                && !ch.is_failed(a)
                        })
                        .map(|(a, _)| RackAddr { chassis: c, slot: a }),
                );
            });
        }
        FreeView::new(free, self.topo.n_drawers())
    }

    /// Effective link health per global drawer under the active
    /// intra-chassis degrades (the minimum over overlapping events; 100
    /// when none).
    fn link_health(&self) -> Vec<u8> {
        let mut h = vec![100u8; self.topo.n_drawers()];
        for &(gd, pct) in self.fstate.degrades.values() {
            h[usize::from(gd)] = h[usize::from(gd)].min(pct);
        }
        h
    }

    /// Effective rack-tier link health under the active inter-chassis
    /// degrades (the minimum over overlapping events; 100 when none).
    fn rack_health(&self) -> u8 {
        self.fstate.rack_degrades.values().fold(100u8, |h, &pct| h.min(pct))
    }

    /// Alone-on-bed mean iteration time (s) for a placement under the
    /// current link health. A multi-chassis gang prices as its slowest
    /// per-chassis part stretched by [`cross_chassis_stretch`]: probe
    /// entries stay per-chassis-pure, so single-chassis prices (stretch
    /// exactly 1.0) are bit-identical to the pre-rack code.
    fn price_base(&mut self, benchmark: dlmodels::Benchmark, slots: &[RackAddr]) -> f64 {
        let health = self.link_health();
        let parts = chassis_parts(slots);
        let mut worst = 0.0f64;
        for (c, part) in &parts {
            let d0 = usize::from(*c) * 2;
            let (shape, h) = degraded_key(part, health[d0], health[d0 + 1]);
            let p = self.probes.price_degraded(benchmark, shape, h).mean_iter.as_secs_f64();
            worst = worst.max(p);
        }
        worst * cross_chassis_stretch(parts.len(), self.rack_health())
    }

    /// Re-price running jobs after a link-health change; under
    /// [`SchedulerConfig::incremental_reprice`], only jobs inside `scope`.
    /// Skipped jobs would have priced to the same bits: prices are pure in
    /// (benchmark, per-chassis shape, that chassis's drawer healths, rack
    /// health), and single-chassis gangs ignore rack health entirely.
    /// Rates are rebuilt by the `recompute_rates` the caller triggers.
    fn reprice_all(&mut self, running: &mut BTreeMap<u64, Running>, scope: RepriceScope) {
        let mut ids = std::mem::take(&mut self.scratch.reprice_ids);
        ids.clear();
        ids.extend(running.keys().copied());
        for id in ids.drain(..) {
            let (benchmark, slots) = {
                let r = &running[&id];
                let affected = !self.cfg.incremental_reprice
                    || match scope {
                        RepriceScope::Chassis(c) => r.slots.iter().any(|s| s.chassis == c),
                        RepriceScope::RackTier => {
                            r.slots.iter().any(|s| s.chassis != r.slots[0].chassis)
                        }
                    };
                if !affected {
                    continue;
                }
                (r.spec.benchmark, r.slots.clone())
            };
            let base = self.price_base(benchmark, &slots);
            running.get_mut(&id).expect("listed id").base_iter_secs = base;
        }
        self.scratch.reprice_ids = ids;
    }

    /// Record `n` training slots attached for `tenant` in the O(1) ledger.
    fn book(&mut self, tenant: u32, n: usize) {
        self.ledger_slots += n;
        self.ledger_tenant[tenant as usize] += n;
    }

    /// Record `n` training slots detached for `tenant` in the O(1) ledger.
    fn unbook(&mut self, tenant: u32, n: usize) {
        self.ledger_slots -= n;
        self.ledger_tenant[tenant as usize] -= n;
    }

    /// The cheap between-audit conservation check: the training ledger
    /// plus serving's slot count must equal the rack's attachment count
    /// exactly, the pool must not be oversubscribed, and no tenant may
    /// exceed quota. O(chassis count), no allocation.
    fn check_ledger(&self) {
        let total = self.ledger_slots + self.serve.n_slots();
        assert_eq!(
            total,
            self.rack.n_attachments(),
            "ledger diverged from rack attachments"
        );
        assert!(total <= self.topo.total_gpus(), "pool oversubscribed");
        let serve_used = self.serve.slots_per_tenant();
        for (t, &u) in self.ledger_tenant.iter().enumerate() {
            assert!(
                u + serve_used[t] <= self.cfg.quota_gpus_per_tenant,
                "tenant {t} over quota: {u} training + {} serving",
                serve_used[t]
            );
        }
    }

    /// Apply plan event `i`: fail hardware, evacuate affected jobs through
    /// the MCS, and roll them back to their last checkpoint. Returns true
    /// if rates must be recomputed.
    fn apply_fault(
        &mut self,
        now: SimTime,
        i: usize,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let (chassis, kind) = {
            let e = &self.faults.events[i];
            (e.chassis, e.kind)
        };
        let fail_slots: Vec<RackAddr> = match kind {
            FaultKind::DrawerOutage { drawer } => {
                (0..8).map(|s| RackAddr::new(chassis, drawer, s)).collect()
            }
            FaultKind::SlotDeath { drawer, slot } => vec![RackAddr::new(chassis, drawer, slot)],
            FaultKind::LinkDegrade { drawer, pct } => {
                self.fstate.degrades.insert(i, (chassis * 2 + drawer, pct));
                self.reprice_all(running, RepriceScope::Chassis(chassis));
                return Ok(true);
            }
            FaultKind::RackLinkDegrade { pct } => {
                self.fstate.rack_degrades.insert(i, pct);
                self.reprice_all(running, RepriceScope::RackTier);
                return Ok(true);
            }
            FaultKind::ThermalTrip { drawer } => {
                // The genuine BMC path: the drawer's fan fails under full
                // load, the thermal model crosses its critical threshold,
                // and the *observed* Critical event drives the evacuation.
                let sensor = format!("drawer{drawer}");
                let bmc = &mut self.bmc[usize::from(chassis)];
                let before = bmc.events_at_least(Severity::Critical).len();
                bmc.set_fan_failed(now, &sensor, true);
                bmc.report_load(now, &sensor, 1.0);
                if bmc.events_at_least(Severity::Critical).len() > before {
                    self.fstate.thermal_trips += 1;
                    (0..8).map(|s| RackAddr::new(chassis, drawer, s)).collect()
                } else {
                    Vec::new()
                }
            }
        };

        for &slot in &fail_slots {
            let count = self.fstate.slot_down.entry(slot).or_insert(0);
            *count += 1;
            if *count == 1 {
                self.rack.fail_slot(now, ADMIN, slot)?;
            }
        }
        self.fstate.touched_by_event[i] = fail_slots;

        // Evacuate every running job touching a failed slot: force-detach
        // its whole gang (the collective is dead without the lost ranks),
        // roll back to the last checkpoint, and queue it for re-placement.
        let failed_now: BTreeSet<RackAddr> = self.rack.failed_slots().into_iter().collect();
        // Serving replicas on failed slots fail over: their requests
        // re-queue onto survivors and the placement pass re-composes.
        let serve_evacuated = self.serve.evacuate_failed(now, &self.rack, &failed_now)?;
        let affected: Vec<u64> = running
            .iter()
            .filter(|(_, r)| r.slots.iter().any(|s| failed_now.contains(s)))
            .map(|(&id, _)| id)
            .collect();
        let evacuated = !affected.is_empty();
        for id in affected {
            let mut r = running.remove(&id).expect("id from the running set");
            for &slot in &r.slots {
                self.rack.force_detach(now, ADMIN, slot)?;
            }
            self.unbook(r.spec.tenant.0, r.slots.len());
            let lost = r.iters_since_placement % CHECKPOINT_ITERS as f64;
            r.remaining_iters += lost;
            self.fstate.work_lost_gpu_secs += lost * r.base_iter_secs * r.slots.len() as f64;
            self.fstate.evacuations += 1;
            self.fstate.displaced.push((now, r));
        }
        Ok(evacuated || serve_evacuated)
    }

    /// Reverse plan event `i`: repair slots whose last covering fault
    /// ended, restore fans, lift degrades.
    fn heal_fault(
        &mut self,
        now: SimTime,
        i: usize,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let (chassis, kind) = {
            let e = &self.faults.events[i];
            (e.chassis, e.kind)
        };
        if matches!(kind, FaultKind::LinkDegrade { .. } | FaultKind::RackLinkDegrade { .. }) {
            self.fstate.degrades.remove(&i);
            self.fstate.rack_degrades.remove(&i);
            let scope = match kind {
                FaultKind::LinkDegrade { .. } => RepriceScope::Chassis(chassis),
                _ => RepriceScope::RackTier,
            };
            self.reprice_all(running, scope);
            return Ok(true);
        }
        if let FaultKind::ThermalTrip { drawer } = kind {
            let sensor = format!("drawer{drawer}");
            let bmc = &mut self.bmc[usize::from(chassis)];
            bmc.set_fan_failed(now, &sensor, false);
            bmc.report_load(now, &sensor, 0.0);
        }
        for slot in std::mem::take(&mut self.fstate.touched_by_event[i]) {
            let count = self.fstate.slot_down.get_mut(&slot).expect("refcounted slot");
            *count -= 1;
            if *count == 0 {
                self.fstate.slot_down.remove(&slot);
                self.rack.repair_slot(now, ADMIN, slot)?;
            }
        }
        Ok(false)
    }

    /// Place as many queued jobs as the policy allows, in strict queue
    /// order: the first quota-eligible job that cannot be placed blocks
    /// the line (no backfill — that keeps every admitted job free of
    /// starvation), except that quota-blocked jobs are stepped over.
    fn schedule_pass(
        &mut self,
        now: SimTime,
        pending: &mut Vec<JobSpec>,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let mut changed = false;
        if self.replace_displaced(now, running)? {
            changed = true;
        }
        // Displaced jobs were admitted long ago: while any waits, the
        // pending queue stays blocked behind them (no backfill).
        if !self.fstate.displaced.is_empty() {
            return Ok(changed);
        }
        loop {
            let free = self.free_view();
            // Tenant usage comes from the O(1) ledger (training) plus the
            // serving slot counters — the full audit proves both exact.
            let head = pending.iter().enumerate().find(|(_, j)| {
                let t = j.tenant.0 as usize;
                self.ledger_tenant[t]
                    + self.serve.slots_per_tenant()[t]
                    + usize::from(j.gpus)
                    <= self.cfg.quota_gpus_per_tenant
            });
            let Some((i, job)) = head else { break };
            match self.policy.place(job, &free, &mut self.probes) {
                Some(slots) => {
                    debug_assert_eq!(slots.len(), usize::from(job.gpus));
                    let spec = pending.remove(i);
                    self.start_job(now, spec, slots, running)?;
                    changed = true;
                }
                None => {
                    // Preempt or shrink only on a genuine capacity
                    // shortage; if the policy is holding out for a
                    // better-shaped placement, clawing back a victim's
                    // GPUs would not unblock it.
                    let shortage = free.total() < usize::from(job.gpus);
                    if shortage && self.cfg.preempt {
                        let head = job.clone();
                        if self.preempt_for(now, &head, pending, running)? {
                            changed = true;
                            continue;
                        }
                    }
                    if !self.cfg.elastic || !shortage {
                        break;
                    }
                    if !self.try_shrink(now, running, false)? {
                        break;
                    }
                    changed = true;
                }
            }
        }
        Ok(changed)
    }

    /// Re-place fault-evacuated jobs, in admission order (priority desc,
    /// arrival, id). A re-placed job pays [`RECOMPOSE_LATENCY`] before
    /// progressing; its recovery time runs fault → resume. When capacity
    /// is genuinely gone, a displaced elastic job shrinks itself (then
    /// claws back other elastic jobs) before giving up until the next
    /// event.
    fn replace_displaced(
        &mut self,
        now: SimTime,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let mut changed = false;
        self.fstate
            .displaced
            .sort_by_key(|(_, r)| (std::cmp::Reverse(r.spec.priority), r.spec.arrival, r.spec.id));
        let mut i = 0;
        while i < self.fstate.displaced.len() {
            let free = self.free_view();
            let (want, tenant, min_gpus, probe_spec) = {
                let (_, r) = &self.fstate.displaced[i];
                (
                    r.slots.len(),
                    r.spec.tenant.0,
                    usize::from(r.spec.min_gpus),
                    JobSpec { gpus: r.slots.len() as u8, ..r.spec.clone() },
                )
            };
            let used = self.ledger_tenant[tenant as usize]
                + self.serve.slots_per_tenant()[tenant as usize];
            if used + want > self.cfg.quota_gpus_per_tenant {
                // Pending jobs of this tenant may have filled the quota
                // while the job was displaced; step over, retry on the
                // next completion.
                i += 1;
                continue;
            }
            match self.policy.place(&probe_spec, &free, &mut self.probes) {
                Some(slots) => {
                    debug_assert_eq!(slots.len(), want);
                    let (fault_at, mut r) = self.fstate.displaced.remove(i);
                    let user = tenant_user(tenant);
                    let host = tenant_host(tenant);
                    for &slot in &slots {
                        self.rack.grant(now, ADMIN, slot, user)?;
                        self.rack.attach(now, user, slot, host)?;
                    }
                    self.book(tenant, slots.len());
                    r.slots = slots;
                    r.base_iter_secs = self.price_base(r.spec.benchmark, &r.slots);
                    r.resume_at = now + RECOMPOSE_LATENCY;
                    r.iters_since_placement = 0.0;
                    r.last_progress = now;
                    r.ever_spanned |= spans(&r.slots);
                    self.fstate.recovery_times.push(r.resume_at.since(fault_at));
                    running.insert(r.spec.id, r);
                    changed = true;
                }
                None => {
                    let shortage = free.total() < want;
                    if self.cfg.elastic && shortage && want > min_gpus {
                        // Surviving capacity cannot hold the old gang:
                        // resume smaller, conserving GPU-iterations.
                        let r = &mut self.fstate.displaced[i].1;
                        let new = min_gpus.max(want / 2);
                        r.remaining_iters *= want as f64 / new as f64;
                        r.slots.truncate(new);
                        r.shrunk = true;
                        continue;
                    }
                    if self.cfg.elastic && shortage && self.try_shrink(now, running, false)? {
                        changed = true;
                        continue;
                    }
                    break;
                }
            }
        }
        Ok(changed)
    }

    /// Checkpoint-preempt the victim [`PlacePolicy::choose_victim`] picks
    /// for the capacity-blocked queue head: roll the victim back to its
    /// last checkpoint, detach its whole gang through the MCS, and
    /// re-queue it at its current allocation. Queue discipline (priority
    /// desc) re-places it behind every higher tier, and a victim's tier is
    /// strictly below the head's, so a preempted job can never preempt its
    /// preemptor — the pass terminates.
    fn preempt_for(
        &mut self,
        now: SimTime,
        head: &JobSpec,
        pending: &mut Vec<JobSpec>,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let views: Vec<RunningView> = running
            .values()
            .map(|r| RunningView {
                id: r.spec.id,
                tenant: r.spec.tenant.0,
                priority: r.spec.priority,
                slots: r.slots.clone(),
            })
            .collect();
        let Some(vid) = self.policy.choose_victim(head, &views) else { return Ok(false) };
        // A policy may only sacrifice strictly lower tiers; anything else
        // could cycle (preemptor and victim trading places forever).
        if !running.get(&vid).is_some_and(|r| r.spec.priority < head.priority) {
            return Ok(false);
        }
        let mut r = running.remove(&vid).expect("victim is running");
        for &slot in &r.slots {
            self.rack.detach(now, tenant_user(r.spec.tenant.0), slot)?;
        }
        self.unbook(r.spec.tenant.0, r.slots.len());
        let lost = r.iters_since_placement % CHECKPOINT_ITERS as f64;
        r.remaining_iters += lost;
        self.mig.work_lost_gpu_secs += lost * r.base_iter_secs * r.slots.len() as f64;
        self.mig.preemptions += 1;
        let held = r.slots.len() as u8;
        self.suspended.insert(
            r.spec.id,
            Suspended {
                remaining_iters: r.remaining_iters,
                started: r.started,
                gpus: r.spec.gpus,
                min_gpus: r.spec.min_gpus,
                ever_spanned: r.ever_spanned,
                shrunk: r.shrunk,
            },
        );
        // Re-queue sized to the held allocation (a prior shrink may have
        // reduced it below the original request).
        let spec = JobSpec { gpus: held, min_gpus: r.spec.min_gpus.min(held), ..r.spec };
        Self::enqueue(pending, spec);
        Ok(true)
    }

    /// Live-migrate running job `id` onto `new_slots`: detach the slots it
    /// leaves, grant/attach the ones it gains (both MCS-audited), roll the
    /// job back to its last checkpoint, re-price the new shape — paying
    /// the rack-tier stretch if the new gang spans chassis — and hold
    /// progress until [`RECOMPOSE_LATENCY`] passes. Slots shared between
    /// the old and new placements stay attached throughout.
    fn migrate_job(
        &mut self,
        now: SimTime,
        id: u64,
        new_slots: Vec<RackAddr>,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<(), SchedulerError> {
        let (tenant, old_slots) = {
            let r = &running[&id];
            (r.spec.tenant.0, r.slots.clone())
        };
        let user = tenant_user(tenant);
        let host = tenant_host(tenant);
        let keep: BTreeSet<RackAddr> = new_slots.iter().copied().collect();
        for slot in old_slots.iter().filter(|s| !keep.contains(s)) {
            self.rack.detach(now, user, *slot)?;
        }
        let had: BTreeSet<RackAddr> = old_slots.iter().copied().collect();
        for slot in new_slots.iter().filter(|s| !had.contains(s)) {
            self.rack.grant(now, ADMIN, *slot, user)?;
            self.rack.attach(now, user, *slot, host)?;
        }
        self.unbook(tenant, old_slots.len());
        self.book(tenant, new_slots.len());
        let r = running.get_mut(&id).expect("migrating a running job");
        let lost = r.iters_since_placement % CHECKPOINT_ITERS as f64;
        r.remaining_iters += lost;
        self.mig.work_lost_gpu_secs += lost * r.base_iter_secs * old_slots.len() as f64;
        r.slots = new_slots;
        let (benchmark, slots) = (r.spec.benchmark, r.slots.clone());
        let base = self.price_base(benchmark, &slots);
        let r = running.get_mut(&id).expect("migrating a running job");
        r.base_iter_secs = base;
        r.resume_at = now + RECOMPOSE_LATENCY;
        r.iters_since_placement = 0.0;
        r.last_progress = now;
        r.ever_spanned |= spans(&r.slots);
        Ok(())
    }

    /// Migration-based defragmentation: relocate at most one
    /// drawer-spanning job per event onto the placement
    /// [`PlacePolicy::migrate`] proposes, but only when the move is a net
    /// win — the rolled-back remainder at the new shape, plus the
    /// re-composition latency, beats the remainder at the old shape. The
    /// net-win gate (and the strictly-fewer-drawers requirement) prevents
    /// relocation thrash.
    fn defrag_pass(
        &mut self,
        now: SimTime,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let free = self.free_view();
        let ids: Vec<u64> = running.keys().copied().collect();
        for id in ids {
            let (spec, slots, resume_at, remaining, lost, old_base) = {
                let r = &running[&id];
                (
                    r.spec.clone(),
                    r.slots.clone(),
                    r.resume_at,
                    r.remaining_iters,
                    r.iters_since_placement % CHECKPOINT_ITERS as f64,
                    r.base_iter_secs,
                )
            };
            // Mid-recompose jobs are already paying a relocation; spanning
            // is the only fragmentation this pass exists to reduce.
            if resume_at > now || drawers_spanned(&slots) <= 1 {
                continue;
            }
            let Some(new_slots) = self.policy.migrate(&spec, &slots, &free, &mut self.probes)
            else {
                continue;
            };
            if new_slots.len() != slots.len()
                || drawers_spanned(&new_slots) >= drawers_spanned(&slots)
            {
                continue;
            }
            let new_base = self.price_base(spec.benchmark, &new_slots);
            let old_secs = remaining * old_base;
            let new_secs = (remaining + lost) * new_base + RECOMPOSE_LATENCY.as_secs_f64();
            // Tunable policies can demand a migration clear the bar by a
            // margin; 1.0 (every preset) is the exact legacy gate.
            let margin = self.policy.defrag_margin();
            if new_secs * margin >= old_secs {
                continue;
            }
            self.migrate_job(now, id, new_slots, running)?;
            self.mig.migrations += 1;
            return Ok(true);
        }
        Ok(false)
    }

    /// Running training jobs touching each global drawer — the serving
    /// side's interference neighbors.
    fn training_on_drawer(&self, running: &BTreeMap<u64, Running>) -> Vec<usize> {
        let mut c = Vec::new();
        self.training_on_drawer_into(running, &mut c);
        c
    }

    /// [`Self::training_on_drawer`] into a reusable buffer, counting via
    /// per-job drawer bitmasks instead of a fresh bool vector per job.
    fn training_on_drawer_into(&self, running: &BTreeMap<u64, Running>, out: &mut Vec<usize>) {
        let nd = self.topo.n_drawers();
        debug_assert!(nd <= 64, "drawer mask overflow");
        out.clear();
        out.resize(nd, 0);
        for r in running.values() {
            let mut m = 0u64;
            for s in &r.slots {
                m |= 1u64 << s.global_drawer();
            }
            while m != 0 {
                out[m.trailing_zeros() as usize] += 1;
                m &= m - 1;
            }
        }
    }

    /// Compose replicas for every service below its replica target. The
    /// policy picks a fractional slot from the tenant's partially-used
    /// serving slots plus (under quota) wholly free slots; fresh slots go
    /// through the full MCS grant/attach path. Policies with
    /// [`PlacePolicy::evict_for_slo`] may claw back elastic training
    /// capacity when a pressured service cannot place otherwise.
    fn serve_place_pass(
        &mut self,
        now: SimTime,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let mut changed = false;
        loop {
            let wants = self.serve.placement_wants();
            if wants.is_empty() {
                break;
            }
            let mut progressed = false;
            for (i, tenant, slice, start) in wants {
                loop {
                    let free = self.free_view();
                    let mut free_gpus = vec![0usize; self.topo.n_drawers()];
                    for s in free.slots() {
                        free_gpus[s.global_drawer()] += 1;
                    }
                    let used = self.ledger_tenant[tenant as usize]
                        + self.serve.slots_per_tenant()[tenant as usize];
                    let at_quota = used + 1 > self.cfg.quota_gpus_per_tenant;
                    let view =
                        self.serve.slice_view(tenant, free.slots(), free_gpus, at_quota);
                    match self.policy.place_replica(slice, &view) {
                        Some(slot) => {
                            if !self.serve.uses_slot(slot) {
                                let user = tenant_user(tenant);
                                self.rack.grant(now, ADMIN, slot, user)?;
                                self.rack.attach(now, user, slot, tenant_host(tenant))?;
                            }
                            // The initial composition at the service start
                            // is pre-planned; scale-ups and failovers pay
                            // the re-composition latency.
                            let ready_at = if now == start {
                                now
                            } else {
                                now + RECOMPOSE_LATENCY
                            };
                            self.serve.add_replica(i, slot, ready_at);
                            progressed = true;
                            changed = true;
                            break;
                        }
                        None => {
                            if self.cfg.elastic
                                && self.policy.evict_for_slo()
                                && self.serve.under_pressure(i, now, self.policy.slo_claw_band())
                            {
                                // Relocation claws back the same single
                                // slot but lets the victim re-place as a
                                // compact gang; in-place shrink is the
                                // fallback (and the legacy behavior).
                                if self.cfg.relocate_slo && self.try_relocate(now, running)? {
                                    changed = true;
                                    continue;
                                }
                                if self.try_shrink(now, running, true)? {
                                    changed = true;
                                    continue;
                                }
                            }
                            break;
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        if changed {
            let tod = self.training_on_drawer(running);
            self.serve.try_launch_all(now, self.cfg.interference, &tod);
        }
        Ok(changed)
    }

    fn start_job(
        &mut self,
        now: SimTime,
        spec: JobSpec,
        slots: Vec<RackAddr>,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<(), SchedulerError> {
        let user = tenant_user(spec.tenant.0);
        let host = tenant_host(spec.tenant.0);
        for &slot in &slots {
            self.rack.grant(now, ADMIN, slot, user)?;
            self.rack.attach(now, user, slot, host)?;
        }
        self.book(spec.tenant.0, slots.len());
        let base = self.price_base(spec.benchmark, &slots);
        // A preempted job resumes rather than starts: its checkpointed
        // remainder, original request, and outcome flags carry over, and
        // it pays the re-composition latency before progressing again.
        let mut spec = spec;
        let (remaining, started, resume_at, ever_spanned, shrunk) =
            match self.suspended.remove(&spec.id) {
                Some(s) => {
                    spec.gpus = s.gpus;
                    spec.min_gpus = s.min_gpus;
                    (
                        s.remaining_iters,
                        s.started,
                        now + RECOMPOSE_LATENCY,
                        s.ever_spanned || spans(&slots),
                        s.shrunk,
                    )
                }
                None => (spec.iters as f64, now, now, spans(&slots), false),
            };
        running.insert(
            spec.id,
            Running {
                remaining_iters: remaining,
                base_iter_secs: base,
                rate: 1.0 / base,
                last_progress: now,
                finish_at: SimTime::MAX, // recompute_rates sets the real value
                started,
                resume_at,
                iters_since_placement: 0.0,
                ever_spanned,
                shrunk,
                slots,
                spec,
            },
        );
        Ok(())
    }

    /// SLO clawback by relocation: the same victim [`Self::try_shrink`]
    /// would pick re-places its whole gang one GPU smaller through the
    /// policy, compacting over the free pool *plus its own slots* — the
    /// net effect is one freed slot for the pressured replica, but the
    /// victim keeps a policy-shaped placement instead of a shrink hole.
    /// Pays the checkpoint rollback and re-composition latency that any
    /// migration pays.
    fn try_relocate(
        &mut self,
        now: SimTime,
        running: &mut BTreeMap<u64, Running>,
    ) -> Result<bool, SchedulerError> {
        let victim = running
            .values()
            .filter(|r| r.slots.len() > usize::from(r.spec.min_gpus) && r.resume_at <= now)
            .max_by_key(|r| (r.slots.len(), std::cmp::Reverse(r.spec.id)))
            .map(|r| r.spec.id);
        let Some(id) = victim else { return Ok(false) };
        let (spec, old_slots) = {
            let r = &running[&id];
            (r.spec.clone(), r.slots.clone())
        };
        let old = old_slots.len();
        let new = old - 1;
        let free = self.free_view();
        let mut pool: Vec<RackAddr> = free.slots().to_vec();
        pool.extend(old_slots.iter().copied());
        pool.sort();
        pool.dedup();
        let view = FreeView::new(pool, self.topo.n_drawers());
        let probe_spec = JobSpec { gpus: new as u8, ..spec };
        let Some(new_slots) = self.policy.place(&probe_spec, &view, &mut self.probes) else {
            return Ok(false);
        };
        if new_slots.len() != new {
            return Ok(false);
        }
        // Constant total work in GPU-iterations across the resize, then
        // the audited re-composition.
        running.get_mut(&id).expect("victim is running").remaining_iters *=
            old as f64 / new as f64;
        self.migrate_job(now, id, new_slots, running)?;
        running.get_mut(&id).expect("victim is running").shrunk = true;
        self.mig.relocations += 1;
        Ok(true)
    }

    /// Claw back GPUs from the running elastic job holding the most slots
    /// (ties to the lowest id), releasing whole-drawer remainders first.
    ///
    /// Training-side pressure halves the victim's gang (the displaced job
    /// needs a real allocation); SLO-side pressure (`gentle`) releases a
    /// single slot, since an inference replica only ever needs one GPU.
    fn try_shrink(
        &mut self,
        now: SimTime,
        running: &mut BTreeMap<u64, Running>,
        gentle: bool,
    ) -> Result<bool, SchedulerError> {
        let victim = running
            .values()
            .filter(|r| r.slots.len() > usize::from(r.spec.min_gpus))
            .max_by_key(|r| (r.slots.len(), std::cmp::Reverse(r.spec.id)))
            .map(|r| r.spec.id);
        let Some(id) = victim else { return Ok(false) };
        let r = running.get_mut(&id).expect("victim is running");
        let old = r.slots.len();
        let floor = self.policy.shrink_floor(old, gentle);
        let new = usize::from(r.spec.min_gpus).max(floor);
        debug_assert!(new < old);
        // Keep the global drawer where the job holds the most slots (ties
        // to the lowest drawer); release the rest (highest addresses
        // first) so the freed hole is as whole as possible.
        let mut per = vec![0usize; self.topo.n_drawers()];
        for s in &r.slots {
            per[s.global_drawer()] += 1;
        }
        let major = per
            .iter()
            .enumerate()
            .max_by_key(|&(d, &n)| (n, std::cmp::Reverse(d)))
            .map(|(d, _)| d)
            .expect("victim holds at least one slot");
        r.slots
            .sort_by_key(|s| (s.global_drawer() != major, s.global_drawer(), s.slot.slot));
        let released = r.slots.split_off(new);
        let tenant = r.spec.tenant.0;
        for &slot in &released {
            self.rack.detach(now, tenant_user(tenant), slot)?;
        }
        self.unbook(tenant, released.len());
        // Constant total work in GPU-iterations: fewer GPUs, more
        // remaining iterations at the new (cheaper per-iteration) shape.
        r.remaining_iters *= old as f64 / new as f64;
        let (benchmark, slots) = (r.spec.benchmark, r.slots.clone());
        let base = self.price_base(benchmark, &slots);
        let r = running.get_mut(&id).expect("victim is running");
        r.base_iter_secs = base;
        r.shrunk = true;
        Ok(true)
    }

    /// Resource-conservation invariants, checked at every event: no slot
    /// is double-booked, the scheduler's view matches every chassis's
    /// attachment table exactly (rack-wide *and* per chassis), the pool is
    /// never oversubscribed, and no tenant exceeds its quota. Cheap (≤ 128
    /// attachments), so it runs in release builds too.
    fn assert_conservation(&self, running: &BTreeMap<u64, Running>) {
        let mut booked = std::collections::BTreeSet::new();
        let mut used = vec![0usize; MAX_TENANTS as usize];
        for r in running.values() {
            for &slot in &r.slots {
                assert!(booked.insert(slot), "slot {slot} double-booked");
            }
            used[r.spec.tenant.0 as usize] += r.slots.len();
        }
        // Serving slots are disjoint from training slots and count toward
        // the holding tenant's quota (a sliced slot occupies the whole
        // slot as far as composition goes).
        let serve_slots = self.serve.slots();
        for slot in &serve_slots {
            assert!(!booked.contains(slot), "slot {slot} booked by training and serving");
        }
        let serve_used = self.serve.slots_per_tenant();
        assert!(
            booked.len() + serve_slots.len() <= self.topo.total_gpus(),
            "pool oversubscribed"
        );
        for (t, &u) in used.iter().enumerate() {
            assert!(
                u + serve_used[t] <= self.cfg.quota_gpus_per_tenant,
                "tenant {t} over quota: {u} training + {} serving",
                serve_used[t]
            );
        }
        // The O(1) ledgers the cheap between-audit check leans on must
        // match the ground truth re-derived above.
        assert_eq!(self.ledger_slots, booked.len(), "training slot ledger diverged");
        for (t, &u) in used.iter().enumerate() {
            assert_eq!(self.ledger_tenant[t], u, "tenant {t} training ledger diverged");
        }
        assert_eq!(
            self.serve.audit_slots_per_tenant().as_slice(),
            serve_used,
            "serving tenant-slot counters diverged"
        );
        assert_eq!(serve_slots.len(), self.serve.n_slots(), "serving slot count diverged");
        let attached = self.rack.attachments();
        assert_eq!(
            attached.len(),
            booked.len() + serve_slots.len(),
            "scheduler view diverged from rack attachments"
        );
        assert!(attached.iter().all(|(a, _)| booked.contains(a) || serve_slots.contains(a)));
        // The same conservation law holds chassis by chassis: no chassis
        // carries an attachment the scheduler booked on another.
        for c in 0..self.topo.chassis {
            let on_c = attached.iter().filter(|(a, _)| a.chassis == c).count();
            let expected = booked.iter().filter(|a| a.chassis == c).count()
                + serve_slots.iter().filter(|a| a.chassis == c).count();
            assert_eq!(on_c, expected, "chassis {c} attachments diverged from bookings");
        }
        // Degraded-state invariants: no job runs on failed hardware, and
        // the rack's failed set matches the fault refcounts exactly.
        let failed = self.rack.failed_slots();
        for slot in &failed {
            assert!(!booked.contains(slot), "job occupies failed slot {slot}");
            assert!(!serve_slots.contains(slot), "replica occupies failed slot {slot}");
        }
        assert_eq!(
            failed,
            self.fstate.slot_down.keys().copied().collect::<Vec<_>>(),
            "rack failed set diverged from fault refcounts"
        );
    }

    /// Rates are piecewise constant between events: every membership or
    /// placement change re-prices each running job as its alone-on-bed
    /// iteration rate diluted by co-residents sharing a drawer switch.
    fn recompute_rates(&mut self, running: &mut BTreeMap<u64, Running>) {
        debug_assert!(self.topo.n_drawers() <= 64, "drawer mask overflow");
        // Per-job drawer occupancy as bitmasks in running-set (id) order —
        // neighbor counts are identical to the old bool-vector scan, so
        // dilation floats are bit-identical, with no per-job allocation.
        let mut masks = std::mem::take(&mut self.scratch.job_masks);
        masks.clear();
        masks.extend(running.values().map(|r| {
            let mut m = 0u64;
            for s in &r.slots {
                m |= 1u64 << s.global_drawer();
            }
            m
        }));
        // Each live service counts once as a neighbor to training jobs
        // sharing its drawer(s) — co-location costs both sides. Empty for
        // training-only replays, leaving their float math bit-identical.
        let mut svc_masks = std::mem::take(&mut self.scratch.svc_masks);
        svc_masks.clear();
        self.serve.live_service_drawer_masks_into(&mut svc_masks);
        for (j, r) in running.values_mut().enumerate() {
            let mine = masks[j];
            let neighbors = masks
                .iter()
                .enumerate()
                .filter(|&(k, &m)| k != j && m & mine != 0)
                .count()
                + svc_masks.iter().filter(|&&m| m & mine != 0).count();
            let dilation = 1.0 + self.cfg.interference * neighbors as f64;
            r.rate = 1.0 / (r.base_iter_secs * dilation);
            // Progress resumes only after any re-composition window.
            r.finish_at = r.last_progress.max(r.resume_at)
                + Dur::from_secs_f64(r.remaining_iters / r.rate);
        }
        self.scratch.job_masks = masks;
        self.scratch.svc_masks = svc_masks;
    }
}

/// Replay `trace` under each named policy (see [`crate::policy`]) on a
/// fresh test bed and return the reports in policy order. Replays run on
/// [`parsweep::default_jobs`] workers against a throwaway shared cache;
/// use [`compare_policies_cached`] to control worker count and keep the
/// cache.
pub fn compare_policies(
    trace: &Trace,
    policies: Vec<Box<dyn PlacePolicy>>,
    cfg: &SchedulerConfig,
) -> Result<Vec<ScheduleReport>, SchedulerError> {
    let mut cache = ProbeCache::new(cfg.probe_iters);
    compare_policies_cached(trace, policies, cfg, parsweep::default_jobs(), &mut cache)
}

/// Replay `trace` under each policy on a fresh test bed, fanning the
/// replays across `jobs` parsweep workers, and return the reports **in
/// policy order** (never completion order).
///
/// Each replay gets a [`ProbeCache::split`] of the shared `cache` —
/// pre-warmed with [`crate::probe::warm_set_for_trace`], itself priced in
/// parallel — and its additions are [`ProbeCache::absorb`]ed back in
/// policy order afterwards. Probes are pure, so every replay prices a
/// shape identically whether it hits the shared cache or re-simulates:
/// reports are byte-identical to the serial path for any `jobs`.
pub fn compare_policies_cached(
    trace: &Trace,
    policies: Vec<Box<dyn PlacePolicy>>,
    cfg: &SchedulerConfig,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<ScheduleReport>, SchedulerError> {
    compare_policies_cached_on(RackTopology::SINGLE, trace, policies, cfg, jobs, cache)
}

/// [`compare_policies_cached`] on an explicit rack topology: the same
/// replay semantics and parallel-determinism guarantee, on `topo.chassis`
/// chassis behind the rack tier.
pub fn compare_policies_cached_on(
    topo: RackTopology,
    trace: &Trace,
    policies: Vec<Box<dyn PlacePolicy>>,
    cfg: &SchedulerConfig,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<ScheduleReport>, SchedulerError> {
    cache.warm(&crate::probe::warm_set_for_trace(trace), jobs);
    let replays: Vec<parsweep::Job<'_, Result<(ScheduleReport, ProbeCache), SchedulerError>>> =
        policies
            .into_iter()
            .map(|p| {
                let split = cache.split();
                let label = format!("replay {} under {}", trace.name, p.name());
                parsweep::Job::new(label, move || {
                    ClusterSim::with_probe_cache_on(topo, trace.clone(), p, cfg.clone(), split)?
                        .run_report()
                })
            })
            .collect();
    let mut reports = Vec::new();
    for outcome in parsweep::run(jobs, replays) {
        let (report, probes) = outcome?;
        cache.absorb(probes);
        reports.push(report);
    }
    Ok(reports)
}

/// Replay a mixed (training + serving) workload under each policy on a
/// fresh test bed, fanning across `jobs` parsweep workers, and return the
/// reports **in policy order**. The probe cache is warmed from the
/// training side only — serving latencies are closed-form, not probed —
/// so reports are byte-identical to the serial path for any `jobs`.
pub fn compare_policies_mixed(
    mixed: &MixedTrace,
    policies: Vec<Box<dyn PlacePolicy>>,
    cfg: &SchedulerConfig,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<ScheduleReport>, SchedulerError> {
    compare_policies_mixed_on(RackTopology::SINGLE, mixed, policies, cfg, jobs, cache)
}

/// [`compare_policies_mixed`] on an explicit rack topology.
pub fn compare_policies_mixed_on(
    topo: RackTopology,
    mixed: &MixedTrace,
    policies: Vec<Box<dyn PlacePolicy>>,
    cfg: &SchedulerConfig,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<ScheduleReport>, SchedulerError> {
    let training = mixed.training();
    cache.warm(&crate::probe::warm_set_for_trace(&training), jobs);
    let replays: Vec<parsweep::Job<'_, Result<(ScheduleReport, ProbeCache), SchedulerError>>> =
        policies
            .into_iter()
            .map(|p| {
                let split = cache.split();
                let label = format!("mixed replay {} under {}", mixed.name, p.name());
                parsweep::Job::new(label, move || {
                    ClusterSim::with_probe_cache_mixed_on(topo, mixed.clone(), p, cfg.clone(), split)?
                        .run_report()
                })
            })
            .collect();
    let mut reports = Vec::new();
    for outcome in parsweep::run(jobs, replays) {
        let (report, probes) = outcome?;
        cache.absorb(probes);
        reports.push(report);
    }
    Ok(reports)
}

/// Replay `trace` under each policy twice — fault-free, then with `plan`
/// injected — across `jobs` parsweep workers, returning `(baseline,
/// faulty)` report pairs **in policy order**. Each faulty report's
/// [`RecoveryMetrics::jct_inflation`] is filled from its own baseline.
/// Both replays of a policy run in one worker (the faulty one reuses the
/// baseline's probe cache), so results are byte-identical for any `jobs`.
pub fn compare_policies_faulty(
    trace: &Trace,
    policies: Vec<Box<dyn PlacePolicy>>,
    plan: &FaultPlan,
    cfg: &SchedulerConfig,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<(ScheduleReport, ScheduleReport)>, SchedulerError> {
    compare_policies_faulty_on(RackTopology::SINGLE, trace, policies, plan, cfg, jobs, cache)
}

/// [`compare_policies_faulty`] on an explicit rack topology. The plan is
/// validated against `topo`, so inter-chassis events require a real rack.
pub fn compare_policies_faulty_on(
    topo: RackTopology,
    trace: &Trace,
    policies: Vec<Box<dyn PlacePolicy>>,
    plan: &FaultPlan,
    cfg: &SchedulerConfig,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<(ScheduleReport, ScheduleReport)>, SchedulerError> {
    plan.validate_for(&topo).map_err(|msg| SchedulerError::BadFault { msg })?;
    cache.warm(&crate::probe::warm_set_for_trace(trace), jobs);
    type Pair = (ScheduleReport, ScheduleReport, ProbeCache);
    let replays: Vec<parsweep::Job<'_, Result<Pair, SchedulerError>>> = policies
        .into_iter()
        .map(|p| {
            let split = cache.split();
            let name = p.name();
            let plan = plan.clone();
            let label = format!("faulty replay {} under {name}", trace.name);
            parsweep::Job::new(label, move || {
                let (baseline, probes) =
                    ClusterSim::with_probe_cache_on(topo, trace.clone(), p, cfg.clone(), split)?
                        .run_report()?;
                let faulty_policy =
                    crate::policy::policy_by_name(name).expect("policy is registered");
                let (mut faulty, probes) = ClusterSim::with_probe_cache_on(
                    topo,
                    trace.clone(),
                    faulty_policy,
                    cfg.clone(),
                    probes,
                )?
                .with_faults(plan)?
                .run_report()?;
                if let Some(rec) = faulty.recovery.as_mut() {
                    let base_jct = baseline.mean_jct.as_secs_f64();
                    if base_jct > 0.0 {
                        let inflation = faulty.mean_jct.as_secs_f64() / base_jct;
                        rec.jct_inflation = (inflation * 1e4).round() / 1e4;
                    }
                }
                Ok((baseline, faulty, probes))
            })
        })
        .collect();
    let mut reports = Vec::new();
    for outcome in parsweep::run(jobs, replays) {
        let (baseline, faulty, probes) = outcome?;
        cache.absorb(probes);
        reports.push((baseline, faulty));
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{all_policies, FifoFirstFit, FragAware};
    use crate::trace::{seeded_two_tenant, JobSpec, TenantId};
    use dlmodels::Benchmark;

    fn tiny_trace() -> Trace {
        seeded_two_tenant(6, 11)
    }

    #[test]
    fn replay_completes_every_job() {
        let trace = tiny_trace();
        let n = trace.jobs.len() as u32;
        let report = ClusterSim::new(trace, Box::new(FifoFirstFit), SchedulerConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.n_jobs, n);
        assert!(report.makespan > Dur::ZERO);
        assert!(report.gpu_util > 0.0 && report.gpu_util <= 1.0);
        for o in &report.jobs {
            assert!(o.start >= o.arrival);
            assert!(o.finish > o.start);
        }
        // Every start/finish left an MCS audit trail.
        assert!(report.audit_entries > 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = SchedulerConfig::default();
        let a = ClusterSim::new(tiny_trace(), Box::new(FragAware), cfg.clone())
            .unwrap()
            .run()
            .unwrap();
        let b = ClusterSim::new(tiny_trace(), Box::new(FragAware), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn admission_rejects_bad_specs() {
        let mut t = tiny_trace();
        t.jobs[0].gpus = 0;
        let r = ClusterSim::new(t, Box::new(FifoFirstFit), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::BadDemand { .. })));

        let mut t = tiny_trace();
        t.jobs[0].tenant = TenantId(5);
        let r = ClusterSim::new(t, Box::new(FifoFirstFit), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::TooManyTenants { .. })));

        let mut t = tiny_trace();
        t.jobs[0].gpus = 14;
        t.jobs[0].min_gpus = 14;
        let r = ClusterSim::new(t, Box::new(FifoFirstFit), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::QuotaUnsatisfiable { .. })));
    }

    #[test]
    fn quota_caps_a_tenant() {
        // One tenant floods the cluster; its concurrent GPUs never exceed
        // the quota, so the queue drains in arrival order under the cap.
        let jobs: Vec<JobSpec> = (0..4)
            .map(|id| JobSpec {
                id,
                tenant: TenantId(0),
                benchmark: Benchmark::MobileNetV2,
                gpus: 4,
                min_gpus: 4,
                priority: 1,
                arrival: SimTime::ZERO,
                iters: 6,
            })
            .collect();
        let trace = Trace { name: "flood".into(), jobs };
        let cfg = SchedulerConfig { quota_gpus_per_tenant: 8, ..SchedulerConfig::default() };
        let report = ClusterSim::new(trace, Box::new(FifoFirstFit), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.n_jobs, 4);
        // With an 8-GPU cap only two 4-GPU jobs run at once: the last two
        // must start strictly after the first two.
        let mut starts: Vec<SimTime> = report.jobs.iter().map(|o| o.start).collect();
        starts.sort();
        assert!(starts[2] > starts[0]);
    }

    #[test]
    fn elastic_shrink_fires_under_pressure() {
        // An 8-GPU elastic job holds the pool busy enough that a burst of
        // arrivals forces a claw-back.
        let mut jobs = vec![JobSpec {
            id: 0,
            tenant: TenantId(0),
            benchmark: Benchmark::ResNet50,
            gpus: 8,
            min_gpus: 4,
            priority: 1,
            arrival: SimTime::ZERO,
            iters: 48,
        }];
        for id in 1..4 {
            jobs.push(JobSpec {
                id,
                tenant: TenantId(1),
                benchmark: Benchmark::MobileNetV2,
                gpus: 4,
                min_gpus: 4,
                priority: 1,
                arrival: SimTime::from_millis(100),
                iters: 6,
            });
        }
        let trace = Trace { name: "pressure".into(), jobs };
        let report = ClusterSim::new(trace, Box::new(FifoFirstFit), SchedulerConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let big = report.jobs.iter().find(|o| o.id == 0).unwrap();
        assert!(big.shrunk, "the elastic job should have been clawed back");
        assert_eq!(big.final_gpus, 4);
        assert_eq!(report.shrunk_jobs, 1);
    }

    #[test]
    fn all_policies_drain_the_same_trace() {
        let reports =
            compare_policies(&tiny_trace(), all_policies(), &SchedulerConfig::default()).unwrap();
        assert_eq!(reports.len(), 4);
        let n = tiny_trace().jobs.len() as u32;
        for r in &reports {
            assert_eq!(r.n_jobs, n, "{} lost jobs", r.policy);
            assert!((0.0..=1.0).contains(&r.fairness));
        }
    }

    use crate::fault::{paper_fault_plan, FaultEvent, FaultKind, FaultPlan};

    fn faulty_report(trace: Trace, plan: FaultPlan) -> ScheduleReport {
        ClusterSim::new(trace, Box::new(FifoFirstFit), SchedulerConfig::default())
            .unwrap()
            .with_faults(plan)
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn drawer_outage_evacuates_and_recovers() {
        // One 8-GPU job starts at t=0 (fifo-first-fit fills drawer 0
        // first); drawer 0 dies mid-run and heals later.
        let trace = || Trace {
            name: "one-big".into(),
            jobs: vec![JobSpec {
                id: 0,
                tenant: TenantId(0),
                benchmark: Benchmark::ResNet50,
                gpus: 8,
                min_gpus: 4,
                priority: 1,
                arrival: SimTime::ZERO,
                iters: 64,
            }],
        };
        let plan = FaultPlan {
            name: "outage".into(),
            events: vec![FaultEvent {
                at: SimTime::from_secs(2),
                chassis: 0,
                kind: FaultKind::DrawerOutage { drawer: 0 },
                duration: Dur::from_secs(5),
            }],
        };
        let report = faulty_report(trace(), plan);
        assert_eq!(report.n_jobs, 1, "the job survives the outage");
        let rec = report.recovery.expect("faulty replay reports recovery");
        assert_eq!(rec.fault_events, 1);
        assert_eq!(rec.evacuations, 1);
        // Recovery includes the re-composition latency by construction.
        assert!(rec.mean_recovery >= RECOMPOSE_LATENCY, "{:?}", rec.mean_recovery);
        // The outage struck at 2 s ≈ several iterations in, so some work
        // rolled back to the last checkpoint.
        assert!(rec.work_lost_gpu_secs > 0.0);
        // The faulty JCT strictly exceeds the fault-free one.
        let baseline =
            ClusterSim::new(trace(), Box::new(FifoFirstFit), SchedulerConfig::default())
                .unwrap()
                .run()
                .unwrap();
        assert!(report.mean_jct > baseline.mean_jct);
    }

    #[test]
    fn thermal_trip_drives_evacuation_through_the_bmc() {
        let trace = Trace {
            name: "hot".into(),
            jobs: vec![JobSpec {
                id: 0,
                tenant: TenantId(0),
                benchmark: Benchmark::MobileNetV2,
                gpus: 4,
                min_gpus: 4,
                priority: 1,
                arrival: SimTime::ZERO,
                iters: 64,
            }],
        };
        let plan = FaultPlan {
            name: "trip".into(),
            events: vec![FaultEvent {
                at: SimTime::from_secs(1),
                chassis: 0,
                kind: FaultKind::ThermalTrip { drawer: 0 },
                duration: Dur::from_secs(3),
            }],
        };
        let rec = faulty_report(trace, plan).recovery.unwrap();
        assert_eq!(rec.thermal_trips, 1, "the BMC critical event must fire");
        assert_eq!(rec.evacuations, 1);
    }

    #[test]
    fn link_degrade_slows_jobs_without_evacuating() {
        let trace = Trace {
            name: "degraded".into(),
            jobs: vec![JobSpec {
                id: 0,
                tenant: TenantId(0),
                benchmark: Benchmark::BertLarge,
                gpus: 4,
                min_gpus: 4,
                priority: 1,
                arrival: SimTime::ZERO,
                iters: 32,
            }],
        };
        let clean = ClusterSim::new(
            trace.clone(),
            Box::new(FifoFirstFit),
            SchedulerConfig::default(),
        )
        .unwrap()
        .run()
        .unwrap();
        let plan = FaultPlan {
            name: "slow-links".into(),
            events: vec![FaultEvent {
                at: SimTime::from_secs(1),
                chassis: 0,
                kind: FaultKind::LinkDegrade { drawer: 0, pct: 50 },
                duration: Dur::from_secs(1_000),
            }],
        };
        let report = faulty_report(trace, plan);
        let rec = report.recovery.as_ref().unwrap();
        assert_eq!(rec.evacuations, 0, "degrade keeps the placement");
        assert_eq!(rec.mean_recovery, Dur::ZERO);
        assert!(
            report.mean_jct > clean.mean_jct,
            "half-bandwidth links must stretch the job: {:?} vs {:?}",
            report.mean_jct,
            clean.mean_jct
        );
    }

    #[test]
    fn faulty_replay_is_deterministic_and_fault_free_report_is_unchanged() {
        let cfg = SchedulerConfig::default();
        let a = ClusterSim::new(tiny_trace(), Box::new(FragAware), cfg.clone())
            .unwrap()
            .with_faults(paper_fault_plan())
            .unwrap()
            .run()
            .unwrap();
        let b = ClusterSim::new(tiny_trace(), Box::new(FragAware), cfg.clone())
            .unwrap()
            .with_faults(paper_fault_plan())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.to_json_string(), b.to_json_string());
        // An empty plan leaves the report byte-identical to no plan at
        // all: the recovery block only serializes when faults ran.
        let none = ClusterSim::new(tiny_trace(), Box::new(FragAware), cfg.clone())
            .unwrap()
            .with_faults(FaultPlan::none())
            .unwrap()
            .run()
            .unwrap();
        let plain = ClusterSim::new(tiny_trace(), Box::new(FragAware), cfg).unwrap().run().unwrap();
        assert_eq!(none.to_json_string(), plain.to_json_string());
        assert!(!plain.to_json_string().contains("\"recovery\""));
    }

    #[test]
    fn bad_fault_plans_are_rejected() {
        let plan = FaultPlan {
            name: "bad".into(),
            events: vec![FaultEvent {
                at: SimTime::ZERO,
                chassis: 0,
                kind: FaultKind::DrawerOutage { drawer: 7 },
                duration: Dur::from_secs(1),
            }],
        };
        let r = ClusterSim::new(tiny_trace(), Box::new(FifoFirstFit), SchedulerConfig::default())
            .unwrap()
            .with_faults(plan);
        assert!(matches!(r, Err(SchedulerError::BadFault { .. })));
    }

    use crate::policy::{serving_policies, SloAwarePack};
    use crate::serve::{seeded_pai_mix, MixedTrace, ServiceSpec};

    fn tiny_mix() -> MixedTrace {
        seeded_pai_mix(6, 4, 0x11)
    }

    #[test]
    fn mixed_replay_drains_jobs_and_services() {
        let mix = tiny_mix();
        let n = mix.jobs.len() as u32;
        let n_svcs = mix.services.len() as u32;
        let report = ClusterSim::new_mixed(mix, Box::new(SloAwarePack), SchedulerConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.n_jobs, n);
        let serve = report.serve.expect("mixed replay reports serving metrics");
        assert_eq!(serve.n_services, n_svcs);
        assert!(serve.generated > 0, "services saw traffic");
        assert_eq!(serve.generated, serve.completed + serve.dropped, "request conservation");
        assert!(serve.p99_latency >= serve.p50_latency);
        assert!((0.0..=1.0).contains(&serve.attainment));
        assert!(serve.replica_secs > 0.0);
        for s in &serve.services {
            assert_eq!(s.generated, s.completed + s.dropped, "service {}", s.id);
        }
    }

    #[test]
    fn mixed_replay_is_deterministic() {
        let cfg = SchedulerConfig::default();
        let a = ClusterSim::new_mixed(tiny_mix(), Box::new(SloAwarePack), cfg.clone())
            .unwrap()
            .run()
            .unwrap();
        let b = ClusterSim::new_mixed(tiny_mix(), Box::new(SloAwarePack), cfg)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn training_only_replays_never_serialize_a_serve_block() {
        let report = ClusterSim::new(tiny_trace(), Box::new(FifoFirstFit), SchedulerConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(report.serve.is_none());
        assert!(!report.to_json_string().contains("\"serve\""));
        // A mixed trace with zero services replays exactly like the plain
        // trace (the serving engine is a strict no-op when empty).
        let mix = MixedTrace {
            name: tiny_trace().name,
            jobs: tiny_trace().jobs,
            services: vec![],
        };
        let via_mixed =
            ClusterSim::new_mixed(mix, Box::new(FifoFirstFit), SchedulerConfig::default())
                .unwrap()
                .run()
                .unwrap();
        assert_eq!(via_mixed.to_json_string(), report.to_json_string());
    }

    #[test]
    fn mixed_admission_rejects_bad_specs() {
        let mut m = tiny_mix();
        m.services[0].slice = 3;
        let r = ClusterSim::new_mixed(m, Box::new(SloAwarePack), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::BadService { .. })));

        let mut m = tiny_mix();
        m.services[1].id = m.services[0].id;
        let r = ClusterSim::new_mixed(m, Box::new(SloAwarePack), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::BadService { .. })));

        let mut m = tiny_mix();
        m.jobs[1].id = m.jobs[0].id;
        let r = ClusterSim::new_mixed(m, Box::new(SloAwarePack), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::DuplicateJobId { .. })));

        let empty = MixedTrace { name: "void".into(), jobs: vec![], services: vec![] };
        let r = ClusterSim::new_mixed(empty, Box::new(SloAwarePack), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::EmptyTrace)));
    }

    #[test]
    fn duplicate_job_ids_rejected_at_admission() {
        let mut t = tiny_trace();
        t.jobs[1].id = t.jobs[0].id;
        let r = ClusterSim::new(t, Box::new(FifoFirstFit), SchedulerConfig::default());
        assert!(matches!(r, Err(SchedulerError::DuplicateJobId { .. })));
    }

    #[test]
    fn drawer_outage_fails_over_serving_replicas() {
        // A service-only mix: one long-lived service starts at t=0.
        // slo-aware-pack packs replicas at the highest address (drawer 1),
        // so that drawer dies mid-window and heals; replicas must fail
        // over to drawer 0.
        let mix = MixedTrace {
            name: "serve-outage".into(),
            jobs: vec![],
            services: vec![ServiceSpec {
                id: 0,
                tenant: TenantId(0),
                benchmark: Benchmark::MobileNetV2,
                slice: 1,
                slo: Dur::from_millis(60),
                rate_rps: 12.0,
                arrivals: crate::serve::ArrivalKind::Poisson,
                start: SimTime::ZERO,
                duration: Dur::from_secs(20),
                max_batch: 8,
                max_wait: Dur::from_millis(20),
                min_replicas: 1,
                max_replicas: 2,
            }],
        };
        let plan = FaultPlan {
            name: "serve-outage".into(),
            events: vec![FaultEvent {
                at: SimTime::from_secs(5),
                chassis: 0,
                kind: FaultKind::DrawerOutage { drawer: 1 },
                duration: Dur::from_secs(4),
            }],
        };
        let report =
            ClusterSim::new_mixed(mix, Box::new(SloAwarePack), SchedulerConfig::default())
                .unwrap()
                .with_faults(plan)
                .unwrap()
                .run()
                .unwrap();
        let serve = report.serve.expect("serving metrics present");
        assert_eq!(serve.failovers, 1, "the outage must displace the replica");
        assert_eq!(serve.generated, serve.completed + serve.dropped);
        assert!(serve.completed > 0, "service keeps serving on the other drawer");
    }

    #[test]
    fn compare_policies_mixed_is_parallel_deterministic() {
        let mix = tiny_mix();
        let cfg = SchedulerConfig::default();
        let mut c1 = ProbeCache::new(cfg.probe_iters);
        let serial =
            compare_policies_mixed(&mix, serving_policies(), &cfg, 1, &mut c1).unwrap();
        let mut c4 = ProbeCache::new(cfg.probe_iters);
        let parallel =
            compare_policies_mixed(&mix, serving_policies(), &cfg, 4, &mut c4).unwrap();
        assert_eq!(serial.len(), 5);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_json_string(), p.to_json_string());
        }
        assert_eq!(c1.save_json(), c4.save_json());
    }

    #[test]
    fn compare_policies_faulty_fills_inflation_and_is_parallel_deterministic() {
        let trace = tiny_trace();
        let cfg = SchedulerConfig::default();
        let plan = paper_fault_plan();
        let mut c1 = ProbeCache::new(cfg.probe_iters);
        let serial = compare_policies_faulty(&trace, all_policies(), &plan, &cfg, 1, &mut c1)
            .unwrap();
        let mut c4 = ProbeCache::new(cfg.probe_iters);
        let parallel = compare_policies_faulty(&trace, all_policies(), &plan, &cfg, 4, &mut c4)
            .unwrap();
        assert_eq!(serial.len(), 4);
        for ((sb, sf), (pb, pf)) in serial.iter().zip(&parallel) {
            assert_eq!(sb.to_json_string(), pb.to_json_string());
            assert_eq!(sf.to_json_string(), pf.to_json_string());
            assert!(sb.recovery.is_none());
            let rec = sf.recovery.as_ref().expect("faulty run reports recovery");
            assert!(rec.jct_inflation >= 1.0, "{}: {}", sf.policy, rec.jct_inflation);
        }
        assert_eq!(c1.save_json(), c4.save_json());
    }
}
