//! `scheduler` — cluster-level, trace-driven multi-job scheduling on the
//! composable test bed.
//!
//! The paper studies one tenant composing one host at a time; the natural
//! next question for a composable system is *cluster* behavior: many
//! training jobs, from multiple tenants, arriving over time and competing
//! for the same two drawers of pooled GPUs. This crate answers it with a
//! discrete-event scheduler that replays a workload trace on the Falcon
//! 4016 model, driving every placement through the chassis's real
//! management plane (MCS grant/attach/detach, audited) and pricing every
//! placement *shape* with a short simulated probe run — so the paper's
//! §V-B composition costs (drawer-spanning allreduce) show up directly in
//! scheduler-level metrics.
//!
//! Crate layout:
//! * [`trace`] — job specs, Poisson/heavy-tail synthetic generators, and
//!   JSON import/export.
//! * [`probe`] — cached micro-probes pricing a `(benchmark, shape)` pair.
//! * [`policy`] — placement policies behind one trait: FIFO first-fit,
//!   best-fit packing, fragmentation-aware, topology-aware (probe-scored
//!   with [`composable_core::Objective`]).
//! * [`cluster`] — the event loop: shared-chassis co-simulation,
//!   MCS-audited recomposition, elastic shrink, per-tenant quotas.
//! * [`fault`] — failure injection: seeded `FaultPlan`s of drawer/slot
//!   outages, link degradation, and BMC thermal trips replayed mid-trace.
//! * [`serve`] — latency-SLO inference serving: fractional-GPU (MIG-style)
//!   replica sets with dynamic batching and autoscaling, co-scheduled
//!   with training through the same event loop and MCS paths.
//! * the [`rack`] crate underneath — multi-chassis scale-out: global
//!   `chassis × drawer × slot` addressing, the inter-chassis fabric
//!   tier's cost model, and rack-wide conservation views, so the same
//!   loop runs 16-GPU single-chassis studies and 32–128-GPU racks.
//! * [`metrics`] — JCT / queueing / makespan / utilization /
//!   fragmentation / fairness / SLO-attainment reporting and the
//!   policy-comparison tables.

pub mod cluster;
pub mod fault;
pub mod metrics;
pub mod policy;
pub mod probe;
pub mod scenario;
pub mod serve;
pub mod trace;

pub use cluster::{
    compare_policies, compare_policies_cached, compare_policies_cached_on,
    compare_policies_faulty, compare_policies_faulty_on, compare_policies_mixed,
    compare_policies_mixed_on, ClusterSim, SchedulerConfig, SchedulerError, POOL_GPUS,
};
pub use fault::{
    paper_fault_plan, seeded_fault_plan, seeded_rack_fault_plan, FaultEvent, FaultKind, FaultPlan,
    CHECKPOINT_ITERS, RECOMPOSE_LATENCY,
};
pub use rack::{
    cross_chassis_stretch, supported_envelope, Rack, RackAddr, RackTopology, MAX_CHASSIS,
};
pub use metrics::{
    comparison_table, jain_fairness, serve_comparison_table, JobOutcome, MigrationMetrics,
    RecoveryMetrics, ScheduleReport, ServeMetrics, ServiceOutcome,
};
pub use policy::{
    all_policies, policy_by_name, policy_names, resolve_policy, serving_policies, FreeView,
    ParamPolicy, ParamsError, PlacePolicy, PolicyParams, RunningView, SliceSlot, SliceView,
    SloAwarePack, UnknownPolicy, POLICY_NAMES,
};
pub use probe::{warm_set_for_trace, Probe, ProbeCache, Shape};
pub use scenario::{
    run_matrix, run_scenario, run_scenario_with_policy, FaultSpec, MetricLevel, Scenario,
    ScenarioError, ScenarioReport, Topology, TraceSpec,
};
pub use serve::{
    batch_latency, request_times, seeded_pai_mix, ArrivalKind, MixedTrace, ServeState,
    ServiceSpec, SERVE_COMPUTE_EFF, SLICES_PER_GPU,
};
pub use trace::{
    priority_tier_from_label, priority_tier_label, seeded_two_tenant, JobSpec, PoissonMix,
    TenantId, Trace, PRIORITY_TIERS,
};
