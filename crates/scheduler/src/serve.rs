//! Latency-SLO inference serving co-scheduled with training on the
//! composable test bed.
//!
//! A [`ServiceSpec`] is a long-lived service: a fractional-GPU (MIG-style
//! 1/7, 2/7, 4/7, or full-slot) replica set serving an open-loop seeded
//! arrival stream ([`ArrivalKind::Poisson`] or diurnal) under a p99
//! latency SLO. [`MixedTrace`] interleaves services with the existing
//! training [`JobSpec`]s; the cluster event loop runs both on the rack.
//!
//! The serving data path per request: arrival → per-replica queue →
//! dynamic batch (launch when `max_batch` requests wait or the head has
//! waited `max_wait`, whichever first) → one fwd pass priced by
//! [`batch_latency`] against the V100 roofline scaled to the slice →
//! reply at batch completion. Replicas autoscale between `min_replicas`
//! and `max_replicas`: scale-ups and fault failovers pay
//! [`crate::fault::RECOMPOSE_LATENCY`] through the MCS attach path,
//! idle replicas above the floor are reclaimed after
//! [`SERVE_IDLE_SCALE_DOWN`]. Co-location is symmetric: training jobs
//! dilate serving batches and live services dilate training rates via the
//! same per-drawer interference model.

use crate::cluster::{tenant_user, ADMIN, MAX_TENANTS};
use crate::metrics::{percentile_dur, round4, ServeMetrics, ServiceOutcome};
use crate::policy::{SliceSlot, SliceView};
use crate::trace::{benchmark_from_label, JobSpec, PoissonMix, TenantId, Trace};
use desim::json::{FromJson, JsonError, ToJson, Value};
use desim::{Dur, SimRng, SimTime};
use devices::gpu::GpuSpec;
use dlmodels::{Benchmark, InferenceProfile};
use falcon::McsError;
use rack::{Rack, RackAddr};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// MIG-style slicing granularity of one GPU slot (V100 stands in for the
/// A100's 7 compute slices).
pub const SLICES_PER_GPU: u8 = 7;
/// Achievable fraction of peak tensor throughput for small serving
/// batches (far below training's large-batch efficiency).
pub const SERVE_COMPUTE_EFF: f64 = 0.35;
/// An idle replica above the service's floor is reclaimed after this.
pub const SERVE_IDLE_SCALE_DOWN: Dur = Dur::from_secs(4);
/// Per-replica queue cap, in batches: arrivals beyond it are dropped.
pub const SERVE_QUEUE_CAP_BATCHES: usize = 8;
/// Scale up when the backlog exceeds this many full batches per replica.
pub const SERVE_BACKLOG_SCALE_UP: usize = 2;
/// Hard cap on generated requests per service (seeded streams are finite).
const MAX_REQUESTS: usize = 200_000;
/// The sharded event loop fans services out across workers only when at
/// least this many are live — below it, thread spawn costs dominate.
const SHARD_MIN_SERVICES: usize = 8;

/// The open-loop arrival process of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Constant-rate Poisson arrivals.
    Poisson,
    /// Poisson thinned by a one-cycle sinusoid over the service window
    /// (peak 1.6× the mean rate) — a compressed day of traffic.
    Diurnal,
}

impl ArrivalKind {
    fn as_str(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Diurnal => "diurnal",
        }
    }

    fn from_str(s: &str) -> Option<ArrivalKind> {
        match s {
            "poisson" => Some(ArrivalKind::Poisson),
            "diurnal" => Some(ArrivalKind::Diurnal),
            _ => None,
        }
    }
}

/// One latency-SLO inference service in a mixed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    pub id: u64,
    pub tenant: TenantId,
    pub benchmark: Benchmark,
    /// Replica size in sevenths of a GPU slot: 1, 2, 4, or 7.
    pub slice: u8,
    /// p99 latency target per request.
    pub slo: Dur,
    /// Mean request rate (req/s) over the service window.
    pub rate_rps: f64,
    pub arrivals: ArrivalKind,
    /// The service goes live here; its first replicas compose at start.
    pub start: SimTime,
    /// Arrivals stop at `start + duration`; queued requests still drain.
    pub duration: Dur,
    /// Dynamic-batching knobs: launch a batch when `max_batch` requests
    /// wait, or when the oldest has waited `max_wait`.
    pub max_batch: u32,
    pub max_wait: Dur,
    pub min_replicas: u8,
    pub max_replicas: u8,
}

impl ServiceSpec {
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

impl ToJson for ServiceSpec {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("id", Value::from_u64(self.id)),
            ("tenant", Value::from_u64(u64::from(self.tenant.0))),
            ("benchmark", Value::str(self.benchmark.label())),
            ("slice", Value::from_u64(u64::from(self.slice))),
            ("slo_ns", self.slo.to_json()),
            ("rate_rps", Value::Num(self.rate_rps)),
            ("arrivals", Value::str(self.arrivals.as_str())),
            ("start_ns", self.start.to_json()),
            ("duration_ns", self.duration.to_json()),
            ("max_batch", Value::from_u64(u64::from(self.max_batch))),
            ("max_wait_ns", self.max_wait.to_json()),
            ("min_replicas", Value::from_u64(u64::from(self.min_replicas))),
            ("max_replicas", Value::from_u64(u64::from(self.max_replicas))),
        ])
    }
}

impl FromJson for ServiceSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let label = v.get("benchmark")?.as_str()?;
        let benchmark = benchmark_from_label(label)
            .ok_or_else(|| JsonError::decode(format!("unknown benchmark \"{label}\"")))?;
        let arrivals_str = v.get("arrivals")?.as_str()?;
        let arrivals = ArrivalKind::from_str(arrivals_str)
            .ok_or_else(|| JsonError::decode(format!("unknown arrivals \"{arrivals_str}\"")))?;
        Ok(ServiceSpec {
            id: v.get("id")?.as_u64()?,
            tenant: TenantId(v.get("tenant")?.as_u32()?),
            benchmark,
            slice: v.get("slice")?.as_u8()?,
            slo: Dur::from_json(v.get("slo_ns")?)?,
            rate_rps: v.get("rate_rps")?.as_f64()?,
            arrivals,
            start: SimTime::from_json(v.get("start_ns")?)?,
            duration: Dur::from_json(v.get("duration_ns")?)?,
            max_batch: v.get("max_batch")?.as_u32()?,
            max_wait: Dur::from_json(v.get("max_wait_ns")?)?,
            min_replicas: v.get("min_replicas")?.as_u8()?,
            max_replicas: v.get("max_replicas")?.as_u8()?,
        })
    }
}

/// A workload of training jobs and inference services sharing the bed.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedTrace {
    pub name: String,
    pub jobs: Vec<JobSpec>,
    pub services: Vec<ServiceSpec>,
}

impl MixedTrace {
    /// The training side as a plain [`Trace`] (for probe warming and for
    /// replaying the same jobs without services).
    pub fn training(&self) -> Trace {
        Trace { name: self.name.clone(), jobs: self.jobs.clone() }
    }

    /// Jobs by (arrival, id), services by (start, id).
    pub fn sorted(mut self) -> MixedTrace {
        self.jobs.sort_by_key(|j| (j.arrival, j.id));
        self.services.sort_by_key(|s| (s.start, s.id));
        self
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().emit_pretty()
    }

    /// Parse a mixed trace; duplicate job or service ids are rejected and
    /// both streams arrive sorted regardless of file order.
    pub fn from_json_str(s: &str) -> Result<MixedTrace, JsonError> {
        let t = MixedTrace::from_json(&Value::parse(s)?)?;
        let mut ids: Vec<u64> = t.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        if let Some(d) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(JsonError::decode(format!("duplicate job id {}", d[0])));
        }
        let mut sids: Vec<u64> = t.services.iter().map(|s| s.id).collect();
        sids.sort_unstable();
        if let Some(d) = sids.windows(2).find(|w| w[0] == w[1]) {
            return Err(JsonError::decode(format!("duplicate service id {}", d[0])));
        }
        Ok(t.sorted())
    }
}

impl ToJson for MixedTrace {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(self.name.clone())),
            ("jobs", self.jobs.to_json()),
            ("services", self.services.to_json()),
        ])
    }
}

impl FromJson for MixedTrace {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(MixedTrace {
            name: String::from_json(v.get("name")?)?,
            jobs: Vec::<JobSpec>::from_json(v.get("jobs")?)?,
            services: Vec::<ServiceSpec>::from_json(v.get("services")?)?,
        })
    }
}

/// The seeded PAI-style mixed workload `repro serve` replays: the
/// two-tenant Poisson training mix plus `n_services` services drawn from
/// a per-benchmark serving envelope (small models at high rates on thin
/// slices, BERT-class models at low rates on fat slices).
pub fn seeded_pai_mix(n_jobs: usize, n_services: usize, seed: u64) -> MixedTrace {
    let name = format!("pai-mix-{n_jobs}j{n_services}s-{seed:#x}");
    // A denser arrival process than the training-only traces: the PAI
    // clusters this mix imitates run near saturation, which is exactly
    // the regime where serving and training fight over composition.
    let mut jobs = PoissonMix {
        seed,
        n_jobs,
        tenants: MAX_TENANTS,
        mean_interarrival: Dur::from_millis(500),
    }
    .generate(name.clone())
    .jobs;
    // PAI-style elasticity: every multi-GPU training job tolerates a
    // half-gang shrink, so SLO-triggered eviction has victims to claw.
    for j in &mut jobs {
        if j.gpus >= 4 {
            j.min_gpus = j.gpus / 2;
        }
    }

    // (benchmark, slice, rate lo..hi req/s, slo ms, max_batch, max_wait ms),
    // weighted toward the small vision models like the training mix.
    type Row = (Benchmark, u8, f64, f64, u64, u32, u64);
    const ENVELOPE: [(Row, u32); 5] = [
        ((Benchmark::MobileNetV2, 1, 10.0, 18.0, 60, 8, 20), 3),
        ((Benchmark::ResNet50, 2, 6.0, 12.0, 120, 8, 30), 2),
        ((Benchmark::YoloV5L, 4, 3.0, 6.0, 250, 4, 50), 2),
        ((Benchmark::BertBase, 2, 4.0, 8.0, 200, 8, 40), 2),
        ((Benchmark::BertLarge, 4, 1.5, 3.0, 500, 4, 80), 1),
    ];

    let mut rng = SimRng::seed_from_u64(seed ^ 0x5E2E_C0DE);
    let services = (0..n_services as u64)
        .map(|id| {
            let total: u32 = ENVELOPE.iter().map(|&(_, w)| w).sum();
            let mut pick = rng.index(total as usize) as u32;
            let mut row = ENVELOPE[ENVELOPE.len() - 1].0;
            for &(r, w) in &ENVELOPE {
                if pick < w {
                    row = r;
                    break;
                }
                pick -= w;
            }
            let (benchmark, slice, lo, hi, slo_ms, max_batch, wait_ms) = row;
            let rate_rps = (rng.uniform(lo, hi) * 100.0).round() / 100.0;
            ServiceSpec {
                id,
                tenant: TenantId(id as u32 % MAX_TENANTS),
                benchmark,
                slice,
                slo: Dur::from_millis(slo_ms),
                rate_rps,
                arrivals: if id % 2 == 0 { ArrivalKind::Poisson } else { ArrivalKind::Diurnal },
                // Services go live while the training wave holds the bed
                // (4-14 s in), so every initial composition is contested.
                start: SimTime::from_millis(4_000 + rng.index(10_001) as u64),
                duration: Dur::from_millis(22_000 + rng.index(12_001) as u64),
                max_batch,
                max_wait: Dur::from_millis(wait_ms),
                min_replicas: 1,
                max_replicas: if slice == 1 { 3 } else { 2 },
            }
        })
        .collect();
    MixedTrace { name, jobs, services }.sorted()
}

/// The seeded request arrival stream of one service — a pure function of
/// the spec, so replays are byte-identical at any worker count.
pub fn request_times(spec: &ServiceSpec) -> Vec<SimTime> {
    let mut rng = SimRng::seed_from_u64(0x5E27E ^ spec.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let end = spec.end();
    let peak = match spec.arrivals {
        ArrivalKind::Poisson => spec.rate_rps,
        ArrivalKind::Diurnal => spec.rate_rps * 1.6,
    };
    let mut out = Vec::new();
    let mut t = spec.start;
    while out.len() < MAX_REQUESTS {
        let gap = -(1.0 - rng.unit()).ln() / peak;
        t = t + Dur::from_secs_f64(gap);
        if t >= end {
            break;
        }
        // Diurnal streams thin the peak-rate Poisson process by the
        // instantaneous rate: one sinusoidal cycle across the window.
        let accept = match spec.arrivals {
            ArrivalKind::Poisson => true,
            ArrivalKind::Diurnal => {
                let phase = t.since(spec.start).as_secs_f64() / spec.duration.as_secs_f64();
                let rate = spec.rate_rps * (1.0 + 0.6 * (std::f64::consts::TAU * phase).sin());
                rng.unit() < rate / peak
            }
        };
        if accept {
            out.push(t);
        }
    }
    out
}

/// Forward-pass latency of one batch on a `slice`/7 slot share: kernel
/// launches and H2D are fixed costs, the roofline term is the max of
/// compute and HBM time with both throughputs scaled to the slice, and
/// `dilation` applies the per-drawer co-residence interference.
pub fn batch_latency(
    profile: &InferenceProfile,
    gpu: &GpuSpec,
    slice: u8,
    batch: u32,
    dilation: f64,
) -> Dur {
    let frac = f64::from(slice) / f64::from(SLICES_PER_GPU);
    let compute = profile.flops(batch) / (gpu.fp16_flops * SERVE_COMPUTE_EFF * frac);
    let mem = profile.bytes(batch) / (gpu.hbm_bandwidth * gpu.hbm_efficiency * frac);
    let h2d = f64::from(batch) * profile.h2d_bytes_per_sample / gpu.dma_bandwidth;
    let launch = gpu.launch_overhead.as_secs_f64() * f64::from(profile.weighted_layers);
    Dur::from_secs_f64(dilation * (launch + h2d + compute.max(mem)))
}

/// One replica: a `slice`/7 share of one slot with its own request queue.
struct Replica {
    id: u32,
    slot: RackAddr,
    /// Usable from here (scale-ups pay the re-composition latency).
    ready_at: SimTime,
    /// Waiting requests, by arrival time.
    queue: VecDeque<SimTime>,
    /// The in-flight batch's request arrival times.
    batch: Vec<SimTime>,
    busy_until: Option<SimTime>,
    /// Pending idle-reclaim check, cleared by new work.
    idle_check: Option<SimTime>,
}

impl Replica {
    fn next_event(&self, svc_ended: bool, max_batch: u32, max_wait: Dur) -> Option<SimTime> {
        if let Some(b) = self.busy_until {
            return Some(b);
        }
        if let Some(&head) = self.queue.front() {
            let due = if svc_ended || self.queue.len() >= max_batch as usize {
                self.ready_at
            } else {
                self.ready_at.max(head + max_wait)
            };
            return Some(due);
        }
        self.idle_check
    }
}

/// Runtime state of one service.
struct SvcState {
    spec: ServiceSpec,
    profile: InferenceProfile,
    arrivals: Vec<SimTime>,
    cursor: usize,
    replicas: Vec<Replica>,
    /// Requests that arrived while the service had zero replicas.
    orphans: VecDeque<SimTime>,
    next_replica_id: u32,
    /// Replica count the placement pass drives toward.
    target: u8,
    started: bool,
    ended: bool,
    latencies_ns: Vec<u64>,
    within_slo: u64,
    generated: u64,
    completed: u64,
    dropped: u64,
    replica_secs: f64,
    failovers: u32,
    peak_replicas: u8,
}

impl SvcState {
    fn new(spec: ServiceSpec) -> SvcState {
        let profile = InferenceProfile::for_benchmark(spec.benchmark);
        let arrivals = request_times(&spec);
        SvcState {
            spec,
            profile,
            arrivals,
            cursor: 0,
            replicas: Vec::new(),
            orphans: VecDeque::new(),
            next_replica_id: 0,
            target: 0,
            started: false,
            ended: false,
            latencies_ns: Vec::new(),
            within_slo: 0,
            generated: 0,
            completed: 0,
            dropped: 0,
            replica_secs: 0.0,
            failovers: 0,
            peak_replicas: 0,
        }
    }

    fn queue_cap(&self) -> usize {
        SERVE_QUEUE_CAP_BATCHES * self.spec.max_batch as usize
    }

    /// Route one request to the shortest live queue (ties to the lowest
    /// replica id), to the orphan buffer when no replica exists, or drop
    /// it at the cap.
    fn dispatch(&mut self, arrived: SimTime) {
        let cap = self.queue_cap();
        if let Some(r) = self
            .replicas
            .iter_mut()
            .min_by_key(|r| (r.queue.len() + r.batch.len(), r.id))
        {
            if r.queue.len() >= cap {
                self.dropped += 1;
            } else {
                r.queue.push_back(arrived);
                r.idle_check = None;
            }
        } else if self.orphans.len() >= cap {
            self.dropped += 1;
        } else {
            self.orphans.push_back(arrived);
        }
    }

    /// Record the in-flight batch of replica `ri` completing at `done`.
    fn complete_batch(&mut self, ri: usize, done: SimTime, now: SimTime) {
        let r = &mut self.replicas[ri];
        r.busy_until = None;
        for arrived in r.batch.drain(..) {
            let lat = done.since(arrived);
            self.latencies_ns.push(lat.as_nanos());
            self.completed += 1;
            if lat <= self.spec.slo {
                self.within_slo += 1;
            }
        }
        if r.queue.is_empty() {
            r.idle_check = Some(now + SERVE_IDLE_SCALE_DOWN);
        }
    }

    /// Launch a batch on replica `ri` if it is ready and due. Returns the
    /// launch decision so callers can track activity.
    fn try_launch(&mut self, ri: usize, now: SimTime, dilation: f64, gpu: &GpuSpec) -> bool {
        let ended = self.ended;
        let (max_batch, max_wait, slice) =
            (self.spec.max_batch, self.spec.max_wait, self.spec.slice);
        let r = &mut self.replicas[ri];
        if r.busy_until.is_some() || r.queue.is_empty() || now < r.ready_at {
            return false;
        }
        let full = r.queue.len() >= max_batch as usize;
        let head_due = *r.queue.front().expect("nonempty queue") + max_wait <= now;
        if !(full || ended || head_due) {
            return false;
        }
        let n = r.queue.len().min(max_batch as usize);
        r.batch = r.queue.drain(..n).collect();
        let lat = batch_latency(&self.profile, gpu, slice, n as u32, dilation);
        r.busy_until = Some(now + lat);
        r.idle_check = None;
        true
    }

    fn backlog(&self) -> usize {
        self.replicas.iter().map(|r| r.queue.len()).sum::<usize>() + self.orphans.len()
    }

    fn scale_up_wanted(&self) -> bool {
        self.started
            && !self.ended
            && self.target < self.spec.max_replicas
            && self.backlog()
                > SERVE_BACKLOG_SCALE_UP * self.replicas.len().max(1) * self.spec.max_batch as usize
    }

    /// Earliest pending micro event of this service: an arrival, a batch
    /// completion, a due launch, or an idle check.
    fn next_micro(&self) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut fold = |x: SimTime| t = Some(t.map_or(x, |c: SimTime| c.min(x)));
        if let Some(&a) = self.arrivals.get(self.cursor) {
            fold(a);
        }
        for r in &self.replicas {
            if let Some(e) = r.next_event(self.ended, self.spec.max_batch, self.spec.max_wait) {
                fold(e);
            }
        }
        t
    }

    /// Advance this service through its own micro events (completions,
    /// arrivals, launches) strictly before `cap`, stopping at the first
    /// *boundary* — an event that needs the global loop because it changes
    /// replica/slot membership or the scale target. Returns the boundary
    /// time (if one falls before `cap`) and the latest completion folded
    /// into activity. Dilation is frozen per epoch (`dil`, one factor per
    /// global drawer); replica sets and training membership only change at
    /// global events, so the frozen factors are constant over the epoch.
    ///
    /// The per-service evolution is a pure function of (service state,
    /// frozen dilation, cap), so sharding services across workers cannot
    /// change the outcome — the replay is byte-identical at any `--jobs`.
    fn advance_until(
        &mut self,
        now: SimTime,
        cap: Option<SimTime>,
        dil: &[f64],
        gpu: &GpuSpec,
    ) -> (Option<SimTime>, SimTime) {
        let below = |t: SimTime| cap.map_or(true, |c| t < c);
        let mut last = SimTime::ZERO;
        if !self.started {
            // Nothing can happen before the start boundary: the arrival
            // stream begins strictly after `spec.start`.
            let s = self.spec.start;
            return (below(s).then_some(s), last);
        }
        let mut t_low = now;
        loop {
            if self.ended {
                // The drain tail (final completions, flush launches, idle
                // reclaims) all touch membership; hand each remaining
                // micro event to the global loop one at a time.
                return (self.next_micro().filter(|&t| below(t)), last);
            }
            if self.scale_up_wanted() {
                // The global step bumps the target and the placement pass
                // composes the replica — stop where the backlog crossed.
                return (below(t_low).then_some(t_low), last);
            }
            let end = self.spec.end();
            let tm = self.next_micro().map_or(end, |t| t.min(end));
            if !below(tm) {
                return (None, last);
            }
            if tm >= end {
                // Everything due at the end instant (arrival drain, the
                // ended flag, reclaims) runs through the legacy step.
                return (Some(end), last);
            }
            // Absorb the micro events at `tm`, in the legacy step() order:
            // completions, then arrivals, then reclaim checks, then
            // launches. The scale-up check re-runs at the loop top.
            for ri in 0..self.replicas.len() {
                if let Some(done) = self.replicas[ri].busy_until {
                    if done <= tm {
                        self.complete_batch(ri, done, tm);
                        last = last.max(done);
                    }
                }
            }
            while self.cursor < self.arrivals.len() && self.arrivals[self.cursor] <= tm {
                let a = self.arrivals[self.cursor];
                self.cursor += 1;
                self.generated += 1;
                self.dispatch(a);
            }
            // A reclaim removes a replica and possibly detaches a slot —
            // that is the global loop's job. A due check on a busy or
            // queued replica just clears, exactly like the legacy branch.
            let above_floor = self.replicas.len() > usize::from(self.spec.min_replicas);
            let mut reclaim = false;
            for r in &mut self.replicas {
                if r.idle_check.is_some_and(|c| c <= tm) {
                    if r.busy_until.is_none() && r.queue.is_empty() && above_floor {
                        reclaim = true; // leave idle_check set for the global step
                    } else {
                        r.idle_check = None;
                    }
                }
            }
            if reclaim {
                return (Some(tm), last);
            }
            for ri in 0..self.replicas.len() {
                let d = self.replicas[ri].slot.global_drawer();
                self.try_launch(ri, tm, dil[d], gpu);
            }
            t_low = tm;
        }
    }

    fn outcome(&self) -> ServiceOutcome {
        let dur = self.spec.duration.as_secs_f64();
        ServiceOutcome {
            id: self.spec.id,
            tenant: self.spec.tenant.0,
            benchmark: self.spec.benchmark.label().to_string(),
            slice: self.spec.slice,
            generated: self.generated,
            completed: self.completed,
            dropped: self.dropped,
            within_slo: self.within_slo,
            p50_latency: percentile_dur(self.latencies_ns.clone(), 0.50),
            p99_latency: percentile_dur(self.latencies_ns.clone(), 0.99),
            slo: self.spec.slo,
            attainment: round4(if self.generated == 0 {
                1.0
            } else {
                self.within_slo as f64 / self.generated as f64
            }),
            goodput_rps: round4(if dur > 0.0 { self.within_slo as f64 / dur } else { 0.0 }),
            replica_secs: round4(self.replica_secs),
            peak_replicas: self.peak_replicas,
            failovers: self.failovers,
        }
    }
}

/// A slot share held by serving replicas. All sharers are replicas of the
/// owning tenant (the slot is attached to that tenant's host).
struct SlotShare {
    tenant: u32,
    used_sevenths: u8,
}

/// All serving state of one replay, driven by the cluster event loop.
pub struct ServeState {
    svcs: Vec<SvcState>,
    /// Indices of services that can still do anything — not yet ended,
    /// or ended with replicas left to drain. A retired service (ended,
    /// drained, reclaimed) contributes nothing to any event-loop scan,
    /// so the hot paths iterate this list instead of every service; on
    /// PAI-magnitude traces most of the replay runs long after the
    /// serving window closed.
    active: Vec<usize>,
    slot_use: BTreeMap<RackAddr, SlotShare>,
    /// O(1) mirror of `slot_use`: whole slots held per tenant. The full
    /// conservation audit recounts and cross-checks it.
    tenant_slots: Vec<usize>,
    gpu: GpuSpec,
    n_drawers: usize,
    last_activity: SimTime,
    /// Per-epoch scratch (service-count per drawer, per-service drawer
    /// masks, frozen dilation rows), hoisted out of the event loop.
    epoch_counts: Vec<usize>,
    epoch_masks: Vec<u64>,
    epoch_dil: Vec<f64>,
}

impl ServeState {
    /// The training-only state: no services, no events, no accrual — a
    /// replay through it is byte-identical to the pre-serving loop.
    pub fn empty() -> ServeState {
        ServeState::new(Vec::new())
    }

    /// Training-only state sized to a rack with `n_drawers` drawers.
    pub fn empty_for(n_drawers: usize) -> ServeState {
        ServeState::new_for(Vec::new(), n_drawers)
    }

    pub fn new(specs: Vec<ServiceSpec>) -> ServeState {
        ServeState::new_for(specs, 2)
    }

    pub fn new_for(specs: Vec<ServiceSpec>, n_drawers: usize) -> ServeState {
        let svcs: Vec<SvcState> = specs.into_iter().map(SvcState::new).collect();
        ServeState {
            active: (0..svcs.len()).collect(),
            svcs,
            slot_use: BTreeMap::new(),
            tenant_slots: vec![0; MAX_TENANTS as usize],
            gpu: GpuSpec::v100_pcie_16gb(),
            n_drawers,
            last_activity: SimTime::ZERO,
            epoch_counts: Vec::new(),
            epoch_masks: Vec::new(),
            epoch_dil: Vec::new(),
        }
    }

    pub fn has_services(&self) -> bool {
        !self.svcs.is_empty()
    }

    /// True once no service can ever act again — every one has ended,
    /// drained its queue, and had all replicas reclaimed. From that point
    /// the serving side of the event loop is a guaranteed no-op.
    pub fn idle(&self) -> bool {
        self.active.is_empty()
    }

    /// Latest serving activity (batch completions and service ends) — the
    /// mixed-replay makespan folds this in.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// The earliest pending serving event: a service start or end, an
    /// arrival, a batch completion, a due launch, or an idle check.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut fold = |x: SimTime| t = Some(t.map_or(x, |c| c.min(x)));
        for svc in self.active.iter().map(|&i| &self.svcs[i]) {
            if !svc.started {
                fold(svc.spec.start);
            }
            if svc.started && !svc.ended {
                fold(svc.spec.end());
            }
            if let Some(&a) = svc.arrivals.get(svc.cursor) {
                fold(a);
            }
            for r in &svc.replicas {
                if let Some(e) = r.next_event(svc.ended, svc.spec.max_batch, svc.spec.max_wait) {
                    fold(e);
                }
            }
        }
        t
    }

    /// Accrue replica-seconds (as fractional GPU-seconds) over `now → t`
    /// into the loop's busy/tenant accounting. Exact no-op with no
    /// services, so training-only float accounting is bit-identical.
    pub fn accrue(&mut self, now: SimTime, t: SimTime, busy: &mut f64, tenant: &mut [f64]) {
        let dt = t.since(now).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        for &i in &self.active {
            let svc = &mut self.svcs[i];
            let n = svc.replicas.len() as f64;
            if n > 0.0 {
                let add = f64::from(svc.spec.slice) / f64::from(SLICES_PER_GPU) * n * dt;
                svc.replica_secs += add;
                *busy += add;
                tenant[svc.spec.tenant.0 as usize] += add;
            }
        }
    }

    /// Whole slots currently held by serving, per tenant (for quota
    /// accounting: a partially-used slot still occupies the whole slot).
    /// Served from the cached counters — O(1), no allocation.
    pub fn slots_per_tenant(&self) -> &[usize] {
        &self.tenant_slots
    }

    /// Recount per-tenant slots from `slot_use` ground truth; the full
    /// conservation audit asserts this equals the cached counters.
    pub fn audit_slots_per_tenant(&self) -> Vec<usize> {
        let mut v = vec![0usize; MAX_TENANTS as usize];
        for share in self.slot_use.values() {
            v[share.tenant as usize] += 1;
        }
        v
    }

    /// Number of slots currently held by serving.
    pub fn n_slots(&self) -> usize {
        self.slot_use.len()
    }

    /// Slots currently held by serving.
    pub fn slots(&self) -> BTreeSet<RackAddr> {
        self.slot_use.keys().copied().collect()
    }

    pub fn uses_slot(&self, slot: RackAddr) -> bool {
        self.slot_use.contains_key(&slot)
    }

    /// Drawer occupancy of each service with ≥1 live replica — each such
    /// service counts once as an interference neighbor to training jobs
    /// sharing the drawer.
    pub fn live_service_drawers(&self) -> Vec<Vec<bool>> {
        self.svcs
            .iter()
            .map(|svc| {
                let mut d = vec![false; self.n_drawers];
                for r in &svc.replicas {
                    d[r.slot.global_drawer()] = true;
                }
                d
            })
            .filter(|d| d.iter().any(|&x| x))
            .collect()
    }

    /// Drawer bitmasks of live services (one bit per global drawer), the
    /// allocation-free form of [`Self::live_service_drawers`] the hot
    /// training-rate recompute uses.
    pub fn live_service_drawer_masks_into(&self, out: &mut Vec<u64>) {
        debug_assert!(self.n_drawers <= 64, "drawer mask overflow");
        for svc in self.active.iter().map(|&i| &self.svcs[i]) {
            let mut m = 0u64;
            for r in &svc.replicas {
                m |= 1u64 << r.slot.global_drawer();
            }
            if m != 0 {
                out.push(m);
            }
        }
    }

    /// Fill the epoch scratch: per-drawer counts of services with a live
    /// replica there, plus each service's drawer bitmask. Retired
    /// services hold no replicas, so restricting the scan to the active
    /// list is exact; scratch buffers make this allocation-free on the
    /// per-event path.
    fn fill_occupancy_scratch(&mut self) {
        debug_assert!(self.n_drawers <= 64, "drawer mask overflow");
        self.epoch_counts.clear();
        self.epoch_counts.resize(self.n_drawers, 0);
        self.epoch_masks.clear();
        self.epoch_masks.resize(self.svcs.len(), 0);
        for &i in &self.active {
            let mut m = 0u64;
            for r in &self.svcs[i].replicas {
                m |= 1u64 << r.slot.global_drawer();
            }
            self.epoch_masks[i] = m;
            while m != 0 {
                self.epoch_counts[m.trailing_zeros() as usize] += 1;
                m &= m - 1;
            }
        }
    }

    /// Services wanting a replica placed: `(svc index, tenant, slice,
    /// start)` for each live service below its target.
    pub fn placement_wants(&self) -> Vec<(usize, u32, u8, SimTime)> {
        self.active
            .iter()
            .map(|&i| (i, &self.svcs[i]))
            .filter(|(_, s)| s.started && !s.ended && s.replicas.len() < usize::from(s.target))
            .map(|(i, s)| (i, s.spec.tenant.0, s.spec.slice, s.spec.start))
            .collect()
    }

    /// Is service `i` at risk of SLO violation right now? True when it has
    /// no replicas while live, or a queued request has already burned
    /// `band` of its SLO waiting (the policy's clawback band; 0.5 — half
    /// the SLO — for every hand-written policy). Drives SLO-triggered
    /// eviction (elastic shrink of training) under policies that opt in.
    pub fn under_pressure(&self, i: usize, now: SimTime, band: f64) -> bool {
        let svc = &self.svcs[i];
        if !svc.started || svc.ended {
            return false;
        }
        if svc.replicas.is_empty() {
            return true;
        }
        // The 0.5 fast path keeps the legacy integer arithmetic so preset
        // replays stay bit-exact; arbitrary bands go through f64.
        let aged = if band == 0.5 {
            Dur::from_nanos(svc.spec.slo.as_nanos() / 2)
        } else {
            Dur::from_nanos((svc.spec.slo.as_nanos() as f64 * band) as u64)
        };
        svc.replicas
            .iter()
            .any(|r| r.queue.front().is_some_and(|&h| now.since(h) > aged))
    }

    /// The fractional-capacity view for placing one replica of `tenant`:
    /// this tenant's partially-used serving slots plus (under quota)
    /// wholly free slots, in global slot order.
    pub fn slice_view(
        &self,
        tenant: u32,
        wholly_free: &[RackAddr],
        free_gpus: Vec<usize>,
        at_quota: bool,
    ) -> SliceView {
        let mut slots: Vec<SliceSlot> = self
            .slot_use
            .iter()
            .filter(|(_, share)| share.tenant == tenant && share.used_sevenths < SLICES_PER_GPU)
            .map(|(&addr, share)| SliceSlot {
                addr,
                free_sevenths: SLICES_PER_GPU - share.used_sevenths,
                shared: true,
            })
            .collect();
        if !at_quota {
            slots.extend(wholly_free.iter().map(|&addr| SliceSlot {
                addr,
                free_sevenths: SLICES_PER_GPU,
                shared: false,
            }));
        }
        slots.sort_by_key(|s| s.addr);
        SliceView { slots, free_gpus }
    }

    /// Register a placed replica on `slot` (the cluster has already
    /// attached the slot if it was fresh) and hand it any orphaned
    /// requests.
    pub fn add_replica(&mut self, i: usize, slot: RackAddr, ready_at: SimTime) {
        let svc = &mut self.svcs[i];
        let tenant = svc.spec.tenant.0;
        let share = self.slot_use.entry(slot).or_insert_with(|| {
            self.tenant_slots[tenant as usize] += 1;
            SlotShare { tenant, used_sevenths: 0 }
        });
        debug_assert_eq!(share.tenant, svc.spec.tenant.0, "slot shared across tenants");
        share.used_sevenths += svc.spec.slice;
        debug_assert!(share.used_sevenths <= SLICES_PER_GPU, "slot oversliced");
        let id = svc.next_replica_id;
        svc.next_replica_id += 1;
        let mut r = Replica {
            id,
            slot,
            ready_at,
            queue: VecDeque::new(),
            batch: Vec::new(),
            busy_until: None,
            idle_check: Some(ready_at + SERVE_IDLE_SCALE_DOWN),
        };
        while let Some(a) = svc.orphans.pop_front() {
            r.queue.push_back(a);
        }
        if !r.queue.is_empty() {
            r.idle_check = None;
        }
        svc.replicas.push(r);
        svc.peak_replicas = svc.peak_replicas.max(svc.replicas.len() as u8);
    }

    /// Release a `slice`/7 share; returns true when the slot emptied (the
    /// caller must detach it).
    fn release_slice(
        slot_use: &mut BTreeMap<RackAddr, SlotShare>,
        tenant_slots: &mut [usize],
        slot: RackAddr,
        slice: u8,
    ) -> bool {
        let share = slot_use.get_mut(&slot).expect("serve slot registered");
        share.used_sevenths -= slice;
        if share.used_sevenths == 0 {
            tenant_slots[share.tenant as usize] -= 1;
            slot_use.remove(&slot);
            true
        } else {
            false
        }
    }

    /// Process every serving event due at `now`: service starts, batch
    /// completions, arrivals, scale-up decisions, service ends, launches,
    /// and idle reclaims. Returns true when the replica/slot set changed
    /// (training rates must be recomputed).
    pub fn step(
        &mut self,
        now: SimTime,
        rack: &Rack,
        interference: f64,
        training_on_drawer: &[usize],
    ) -> Result<bool, McsError> {
        let mut changed = false;
        let mut last = self.last_activity;
        for idx in 0..self.active.len() {
            let i = self.active[idx];
            let svc = &mut self.svcs[i];
            if !svc.started && svc.spec.start <= now {
                svc.started = true;
                svc.target = svc.spec.min_replicas;
            }
            for ri in 0..svc.replicas.len() {
                if let Some(done) = svc.replicas[ri].busy_until {
                    if done <= now {
                        svc.complete_batch(ri, done, now);
                        last = last.max(done);
                    }
                }
            }
            while svc.cursor < svc.arrivals.len() && svc.arrivals[svc.cursor] <= now {
                let a = svc.arrivals[svc.cursor];
                svc.cursor += 1;
                svc.generated += 1;
                svc.dispatch(a);
            }
            // Scale up when the backlog exceeds the live replicas' batch
            // throughput headroom; the placement pass composes the new
            // replica (paying the re-composition latency).
            let backlog: usize =
                svc.replicas.iter().map(|r| r.queue.len()).sum::<usize>() + svc.orphans.len();
            if svc.started
                && !svc.ended
                && svc.target < svc.spec.max_replicas
                && backlog
                    > SERVE_BACKLOG_SCALE_UP
                        * svc.replicas.len().max(1)
                        * svc.spec.max_batch as usize
            {
                svc.target += 1;
            }
            if svc.started && !svc.ended && svc.spec.end() <= now {
                svc.ended = true;
                svc.target = 0;
                svc.dropped += svc.orphans.len() as u64;
                svc.orphans.clear();
                last = last.max(now);
            }
            // Reclaim idle replicas: all of them once the service ended,
            // those above the floor when their idle window expires.
            let mut ri = 0;
            while ri < svc.replicas.len() {
                let idle = svc.replicas[ri].busy_until.is_none()
                    && svc.replicas[ri].queue.is_empty();
                let check_due =
                    svc.replicas[ri].idle_check.is_some_and(|c| c <= now);
                let above_floor = svc.replicas.len() > usize::from(svc.spec.min_replicas);
                if idle && (svc.ended || (check_due && above_floor)) {
                    let r = svc.replicas.remove(ri);
                    if !svc.ended {
                        svc.target = svc.target.saturating_sub(1).max(svc.spec.min_replicas);
                    }
                    if Self::release_slice(
                        &mut self.slot_use,
                        &mut self.tenant_slots,
                        r.slot,
                        svc.spec.slice,
                    ) {
                        rack.detach(now, tenant_user(svc.spec.tenant.0), r.slot)?;
                    }
                    changed = true;
                } else {
                    if check_due {
                        svc.replicas[ri].idle_check = None;
                    }
                    ri += 1;
                }
            }
        }
        // Retire services that can never act again (ended, drained,
        // every replica reclaimed): the hot scans skip them from here on.
        self.active.retain(|&i| {
            let s = &self.svcs[i];
            let retired = s.ended && s.replicas.is_empty();
            if retired {
                debug_assert_eq!(s.cursor, s.arrivals.len(), "retired service left arrivals");
                debug_assert!(s.orphans.is_empty(), "retired service left orphans");
            }
            !retired
        });
        self.last_activity = last;
        self.try_launch_all(now, interference, training_on_drawer);
        Ok(changed)
    }

    /// Advance every service through its private micro events strictly
    /// before `cap` (the next training-side event), returning the earliest
    /// serving *boundary* — the next instant the global loop must handle
    /// (start, end, reclaim, scale-up). This is the sharded event loop:
    /// instead of surfacing every arrival/completion/launch as a global
    /// event, each service absorbs its own micro-traffic locally with
    /// dilation frozen at epoch start, and services fan out across
    /// `workers` when enough of them are live. Per-service evolution is
    /// independent of the sharding, so replays are byte-identical at any
    /// worker count.
    pub fn run_epoch(
        &mut self,
        now: SimTime,
        cap: Option<SimTime>,
        interference: f64,
        training_on_drawer: &[usize],
        workers: usize,
    ) -> Option<SimTime> {
        if self.active.is_empty() {
            return None;
        }
        // Freeze the per-(service, drawer) dilation factors for the epoch.
        // Replica sets and training membership only change at global
        // events, so these are constant until the next boundary. Rows are
        // indexed by absolute service index; only active rows are written
        // (and only active rows are read).
        self.fill_occupancy_scratch();
        let nd = self.n_drawers;
        let mut dil = std::mem::take(&mut self.epoch_dil);
        dil.clear();
        dil.resize(self.svcs.len() * nd, 1.0);
        for &i in &self.active {
            let m = self.epoch_masks[i];
            for d in 0..nd {
                let neighbors =
                    training_on_drawer[d] + self.epoch_counts[d] - ((m >> d) & 1) as usize;
                dil[i * nd + d] = 1.0 + interference * neighbors as f64;
            }
        }
        let gpu = self.gpu.clone();
        let mut boundary: Option<SimTime> = None;
        let mut last = self.last_activity;
        let fold = |b: Option<SimTime>, l: SimTime, bd: &mut Option<SimTime>| {
            if let Some(t) = b {
                *bd = Some(bd.map_or(t, |c| c.min(t)));
            }
            l
        };
        let live = self
            .active
            .iter()
            .filter(|&&i| self.svcs[i].started && !self.svcs[i].ended)
            .count();
        if workers > 1 && live >= SHARD_MIN_SERVICES {
            // Disjoint &mut views of the active services, chunked across
            // the workers. Per-service evolution is independent, so the
            // chunking cannot change a byte.
            let mut ai = self.active.iter().peekable();
            let mut refs: Vec<(usize, &mut SvcState)> = self
                .svcs
                .iter_mut()
                .enumerate()
                .filter(|t| {
                    if ai.peek().is_some_and(|&&a| a == t.0) {
                        ai.next();
                        true
                    } else {
                        false
                    }
                })
                .collect();
            let chunk = refs.len().div_ceil(workers);
            let dil = &dil;
            let gpu = &gpu;
            let jobs: Vec<parsweep::Job<'_, (Option<SimTime>, SimTime)>> = refs
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, part)| {
                    parsweep::Job::new(format!("serve-shard-{ci}"), move || {
                        let mut b: Option<SimTime> = None;
                        let mut l = SimTime::ZERO;
                        for (i, svc) in part.iter_mut() {
                            let (sb, sl) =
                                svc.advance_until(now, cap, &dil[*i * nd..(*i + 1) * nd], gpu);
                            if let Some(t) = sb {
                                b = Some(b.map_or(t, |c| c.min(t)));
                            }
                            l = l.max(sl);
                        }
                        (b, l)
                    })
                })
                .collect();
            for (b, l) in parsweep::run(workers, jobs) {
                last = last.max(fold(b, l, &mut boundary));
            }
        } else {
            for &i in &self.active {
                let (sb, sl) = self.svcs[i].advance_until(now, cap, &dil[i * nd..(i + 1) * nd], &gpu);
                last = last.max(fold(sb, sl, &mut boundary));
            }
        }
        self.epoch_dil = dil;
        self.last_activity = last;
        boundary
    }

    /// Launch every due batch. Dilation is frozen per batch at launch:
    /// 1 + interference × (training jobs + other live services sharing the
    /// replica's drawer).
    pub fn try_launch_all(
        &mut self,
        now: SimTime,
        interference: f64,
        training_on_drawer: &[usize],
    ) {
        self.fill_occupancy_scratch();
        let gpu = self.gpu.clone();
        for idx in 0..self.active.len() {
            let i = self.active[idx];
            let m = self.epoch_masks[i];
            for ri in 0..self.svcs[i].replicas.len() {
                let d = self.svcs[i].replicas[ri].slot.global_drawer();
                let neighbors =
                    training_on_drawer[d] + self.epoch_counts[d] - ((m >> d) & 1) as usize;
                let dilation = 1.0 + interference * neighbors as f64;
                self.svcs[i].try_launch(ri, now, dilation, &gpu);
            }
        }
    }

    /// Fail over replicas on `failed` slots: force-detach the serving
    /// slots through the MCS, re-queue their waiting and in-flight
    /// requests onto survivors (or the orphan buffer), and let the
    /// placement pass compose replacements.
    pub fn evacuate_failed(
        &mut self,
        now: SimTime,
        rack: &Rack,
        failed: &BTreeSet<RackAddr>,
    ) -> Result<bool, McsError> {
        let dead: Vec<RackAddr> =
            self.slot_use.keys().copied().filter(|s| failed.contains(s)).collect();
        if dead.is_empty() {
            return Ok(false);
        }
        for &slot in &dead {
            rack.force_detach(now, ADMIN, slot)?;
            if let Some(share) = self.slot_use.remove(&slot) {
                self.tenant_slots[share.tenant as usize] -= 1;
            }
        }
        for svc in &mut self.svcs {
            let (dead_reps, alive): (Vec<Replica>, Vec<Replica>) = svc
                .replicas
                .drain(..)
                .partition(|r| failed.contains(&r.slot));
            svc.replicas = alive;
            for r in dead_reps {
                svc.failovers += 1;
                for a in r.batch.into_iter().chain(r.queue) {
                    if svc.ended {
                        svc.dropped += 1;
                    } else {
                        svc.dispatch(a);
                    }
                }
            }
        }
        Ok(true)
    }

    /// End-of-replay invariants: every service drained (request
    /// conservation) and every serving slot released.
    pub fn assert_drained(&self) {
        for svc in &self.svcs {
            assert_eq!(svc.cursor, svc.arrivals.len(), "service {} left arrivals", svc.spec.id);
            assert!(svc.replicas.is_empty(), "service {} left replicas", svc.spec.id);
            assert!(svc.orphans.is_empty(), "service {} left orphans", svc.spec.id);
            assert_eq!(
                svc.generated,
                svc.completed + svc.dropped,
                "service {} leaked requests",
                svc.spec.id
            );
        }
        assert!(self.slot_use.is_empty(), "serving slots leaked");
    }

    /// Fold per-service accounting into the report block; `None` when the
    /// replay had no services (training-only reports keep their bytes).
    pub fn assemble(&self) -> Option<ServeMetrics> {
        if self.svcs.is_empty() {
            return None;
        }
        let services: Vec<ServiceOutcome> = self.svcs.iter().map(|s| s.outcome()).collect();
        let all: Vec<u64> =
            self.svcs.iter().flat_map(|s| s.latencies_ns.iter().copied()).collect();
        Some(ServeMetrics::assemble(services, all))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, arrivals: ArrivalKind) -> ServiceSpec {
        ServiceSpec {
            id,
            tenant: TenantId(id as u32 % 2),
            benchmark: Benchmark::ResNet50,
            slice: 2,
            slo: Dur::from_millis(120),
            rate_rps: 8.0,
            arrivals,
            start: SimTime::from_secs(1),
            duration: Dur::from_secs(10),
            max_batch: 8,
            max_wait: Dur::from_millis(30),
            min_replicas: 1,
            max_replicas: 2,
        }
    }

    #[test]
    fn arrival_stream_is_deterministic_and_in_window() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Diurnal] {
            let s = spec(3, kind);
            let a = request_times(&s);
            let b = request_times(&s);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert!(a.windows(2).all(|w| w[0] <= w[1]));
            assert!(a.iter().all(|&t| t >= s.start && t < s.end()));
            // Rate sanity: within a factor of 2 of the nominal mean.
            let n = a.len() as f64;
            assert!(n > 8.0 * 10.0 / 2.0 && n < 8.0 * 10.0 * 2.0, "{n} arrivals");
        }
    }

    #[test]
    fn different_service_ids_get_different_streams() {
        let a = request_times(&spec(1, ArrivalKind::Poisson));
        let b = request_times(&spec(2, ArrivalKind::Poisson));
        assert_ne!(a, b);
    }

    #[test]
    fn batch_latency_scales_sensibly() {
        let gpu = GpuSpec::v100_pcie_16gb();
        let p = InferenceProfile::for_benchmark(Benchmark::ResNet50);
        let one = batch_latency(&p, &gpu, 7, 1, 1.0);
        let eight = batch_latency(&p, &gpu, 7, 8, 1.0);
        assert!(eight > one, "bigger batches take longer");
        assert!(eight < Dur::from_nanos(8 * one.as_nanos()), "batching amortizes");
        let thin = batch_latency(&p, &gpu, 1, 1, 1.0);
        assert!(thin > one, "a 1/7 slice is slower than a full slot");
        let dilated = batch_latency(&p, &gpu, 7, 1, 1.5);
        let want = one.as_secs_f64() * 1.5;
        assert!((dilated.as_secs_f64() - want).abs() < 2e-9, "{dilated:?} vs {want}");
    }

    #[test]
    fn serving_latencies_sit_under_the_envelope_slos() {
        // Every envelope row must leave generous headroom between its
        // batch latency (max batch, moderate dilation, its slice) and its
        // SLO — otherwise attainment targets are unreachable by design.
        let gpu = GpuSpec::v100_pcie_16gb();
        let mix = seeded_pai_mix(0, 16, 7);
        for s in &mix.services {
            let p = InferenceProfile::for_benchmark(s.benchmark);
            let lat = batch_latency(&p, &gpu, s.slice, s.max_batch, 1.3);
            let budget = s.slo.saturating_sub(s.max_wait);
            assert!(
                Dur::from_nanos(2 * lat.as_nanos()) <= budget,
                "{:?}: batch {:?} vs SLO {:?}",
                s.benchmark,
                lat,
                s.slo
            );
        }
    }

    #[test]
    fn mixed_trace_round_trips_and_rejects_duplicates() {
        let mix = seeded_pai_mix(6, 4, 0xABC);
        let back = MixedTrace::from_json_str(&mix.to_json_string()).unwrap();
        assert_eq!(back, mix);

        let mut dup = mix.clone();
        dup.services[1].id = dup.services[0].id;
        assert!(MixedTrace::from_json_str(&dup.to_json_string()).is_err());
        let mut dupj = mix;
        dupj.jobs[1].id = dupj.jobs[0].id;
        assert!(MixedTrace::from_json_str(&dupj.to_json_string()).is_err());
    }

    #[test]
    fn pai_mix_is_deterministic_and_in_envelope() {
        let a = seeded_pai_mix(16, 8, 0x5E27E);
        let b = seeded_pai_mix(16, 8, 0x5E27E);
        assert_eq!(a, b);
        assert_eq!(a.jobs.len(), 16);
        assert_eq!(a.services.len(), 8);
        for s in &a.services {
            assert!(matches!(s.slice, 1 | 2 | 4 | 7));
            assert!(s.tenant.0 < MAX_TENANTS);
            assert!(s.rate_rps > 0.0);
            assert!(s.duration >= Dur::from_secs(22));
            assert!(s.start >= SimTime::from_secs(4));
            assert!(s.min_replicas >= 1 && s.min_replicas <= s.max_replicas);
        }
        assert_ne!(a, seeded_pai_mix(16, 8, 0x5E27F));
    }
}
