//! Placement pricing: cached micro-probes of job performance on candidate
//! slot *shapes*.
//!
//! A placement's quality on the Falcon test bed depends on how many
//! drawers it spans — GPU pairs inside one drawer peer over the drawer's
//! PCIe switch ASIC, while a split placement routes allreduce traffic
//! through the host root complex (the paper's §V-B cost). The scheduler
//! prices a candidate placement by *running* a short probe job on a
//! canonical composition of that shape via [`composable_core::system::
//! build_falcon_slots`] and caching the measured mean iteration time.
//! Slots within a drawer are symmetric, so the cache key is just
//! `(benchmark, per-drawer slot counts)` — a handful of probes price an
//! entire trace replay.

use composable_core::recommend::Objective;
use composable_core::system::build_falcon_slots;
use desim::Dur;
use devices::gpu::GpuSpec;
use dlmodels::Benchmark;
use falcon::SlotAddr;
use std::collections::BTreeMap;
use training::engine::{model_for, run_job};
use training::{max_feasible_batch, JobConfig};

/// Per-drawer slot counts of a placement, normalized so `d0 >= d1`
/// (drawers are symmetric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Shape {
    pub d0: u8,
    pub d1: u8,
}

impl Shape {
    pub fn new(a: u8, b: u8) -> Shape {
        Shape {
            d0: a.max(b),
            d1: a.min(b),
        }
    }

    pub fn of(slots: &[SlotAddr]) -> Shape {
        let in_d0 = slots.iter().filter(|s| s.drawer.0 == 0).count() as u8;
        Shape::new(in_d0, slots.len() as u8 - in_d0)
    }

    pub fn n_gpus(&self) -> usize {
        usize::from(self.d0) + usize::from(self.d1)
    }

    /// Does the placement span both drawers (pay the root-complex cost)?
    pub fn spans(&self) -> bool {
        self.d1 > 0
    }

    /// A canonical slot list with this shape (lowest slots per drawer).
    pub fn canonical_slots(&self) -> Vec<SlotAddr> {
        let mut slots = Vec::with_capacity(self.n_gpus());
        for s in 0..self.d0 {
            slots.push(SlotAddr::new(0, s));
        }
        for s in 0..self.d1 {
            slots.push(SlotAddr::new(1, s));
        }
        slots
    }
}

/// The priced outcome of one probe run.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Mean time per training iteration with the job alone on the bed.
    pub mean_iter: Dur,
    /// [`Objective::TrainingTime`] score (higher is better).
    pub score: f64,
}

/// Memoized probe runner. Probes are deterministic (fixed seed), so the
/// cache never changes an answer — it only avoids re-simulating.
pub struct ProbeCache {
    probe_iters: u64,
    map: BTreeMap<(&'static str, Shape), Probe>,
}

impl ProbeCache {
    pub fn new(probe_iters: u64) -> ProbeCache {
        ProbeCache {
            probe_iters: probe_iters.max(1),
            map: BTreeMap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Price `benchmark` on a placement of `shape`. Panics only if the
    /// model cannot fit the bed at batch size 1 — none of the paper's five
    /// benchmarks hits that on 16 GB V100s.
    pub fn price(&mut self, benchmark: Benchmark, shape: Shape) -> Probe {
        let iters = self.probe_iters;
        *self
            .map
            .entry((benchmark.label(), shape))
            .or_insert_with(|| run_probe(benchmark, shape, iters))
    }
}

fn run_probe(benchmark: Benchmark, shape: Shape, iters: u64) -> Probe {
    let gpu = GpuSpec::v100_pcie_16gb();
    let composed = build_falcon_slots(&gpu, &shape.canonical_slots());
    let n = shape.n_gpus();
    let mut cfg = JobConfig::paper_scaled(benchmark, n, iters);
    cfg.epochs = 1;
    cfg.checkpoint_each_epoch = false;
    cfg.seed = 0x5EED;
    // Clamp the paper batch to what fits: the global-batch benchmarks
    // (YOLO, BERT) divide across GPUs, so small placements would OOM a
    // 16 GB card without this (same gate as `runner::run`'s auto-batch).
    let model = model_for(benchmark);
    let fit = max_feasible_batch(&model, gpu.memory_bytes, cfg.precision, cfg.strategy, n);
    cfg.per_gpu_batch = cfg.per_gpu_batch.min(fit).max(1);
    let report = run_job(composed.topology, composed.cluster, cfg)
        .expect("probe fits after batch clamping");
    Probe {
        mean_iter: report.mean_iter,
        score: Objective::TrainingTime.score(&report, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_normalizes_and_classifies() {
        assert_eq!(Shape::new(1, 3), Shape::new(3, 1));
        assert!(Shape::new(2, 2).spans());
        assert!(!Shape::new(4, 0).spans());
        let s = Shape::of(&[SlotAddr::new(0, 5), SlotAddr::new(1, 0), SlotAddr::new(1, 2)]);
        assert_eq!(s, Shape { d0: 2, d1: 1 });
        assert_eq!(Shape::new(3, 1).canonical_slots().len(), 4);
    }

    #[test]
    fn split_placement_prices_slower_for_comm_bound_jobs() {
        let mut cache = ProbeCache::new(3);
        let whole = cache.price(Benchmark::BertLarge, Shape::new(4, 0));
        let split = cache.price(Benchmark::BertLarge, Shape::new(2, 2));
        assert!(
            split.mean_iter > whole.mean_iter,
            "cross-drawer allreduce must cost: whole={:?} split={:?}",
            whole.mean_iter,
            split.mean_iter
        );
        assert!(whole.score > split.score);
    }

    #[test]
    fn cache_memoizes_and_stays_deterministic() {
        let mut a = ProbeCache::new(3);
        let p1 = a.price(Benchmark::MobileNetV2, Shape::new(2, 0));
        let p2 = a.price(Benchmark::MobileNetV2, Shape::new(2, 0));
        assert_eq!(a.len(), 1);
        assert_eq!(p1.mean_iter, p2.mean_iter);
        let mut b = ProbeCache::new(3);
        assert_eq!(
            b.price(Benchmark::MobileNetV2, Shape::new(2, 0)).mean_iter,
            p1.mean_iter
        );
    }
}
