//! Placement pricing: cached micro-probes of job performance on candidate
//! slot *shapes*.
//!
//! A placement's quality on the Falcon test bed depends on how many
//! drawers it spans — GPU pairs inside one drawer peer over the drawer's
//! PCIe switch ASIC, while a split placement routes allreduce traffic
//! through the host root complex (the paper's §V-B cost). The scheduler
//! prices a candidate placement by *running* a short probe job on a
//! canonical composition of that shape via [`composable_core::system::
//! build_falcon_slots`] and caching the measured mean iteration time.
//! Slots within a drawer are symmetric, so the cache key is just
//! `(benchmark, per-drawer slot counts, per-drawer link health)` — a
//! handful of probes price an entire trace replay, including replays under
//! injected PCIe link degradation (see [`crate::fault`]).

use crate::fault::{CHECKPOINT_ITERS, FAULT_MODEL_VERSION, RECOMPOSE_LATENCY};
use crate::trace::{benchmark_from_label, Trace};
use composable_core::recommend::Objective;
use composable_core::system::build_falcon_slots;
use desim::json::Value;
use desim::Dur;
use devices::gpu::GpuSpec;
use dlmodels::Benchmark;
use falcon::SlotAddr;
use rack::RackTopology;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use training::engine::{model_for, run_job};
use training::{max_feasible_batch, JobConfig};

/// Version stamp of the persisted cache format; bump on layout changes.
/// Version 2 added the per-drawer link-health key dimension, so version-1
/// caches (priced before the fault model existed) load empty.
pub const CACHE_FORMAT_VERSION: u64 = 2;

/// Per-drawer slot counts of a placement, normalized so `d0 >= d1`
/// (drawers are symmetric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Shape {
    pub d0: u8,
    pub d1: u8,
}

impl Shape {
    pub fn new(a: u8, b: u8) -> Shape {
        Shape {
            d0: a.max(b),
            d1: a.min(b),
        }
    }

    pub fn of(slots: &[SlotAddr]) -> Shape {
        let in_d0 = slots.iter().filter(|s| s.drawer.0 == 0).count() as u8;
        Shape::new(in_d0, slots.len() as u8 - in_d0)
    }

    pub fn n_gpus(&self) -> usize {
        usize::from(self.d0) + usize::from(self.d1)
    }

    /// Does the placement span both drawers (pay the root-complex cost)?
    pub fn spans(&self) -> bool {
        self.d1 > 0
    }

    /// A canonical slot list with this shape (lowest slots per drawer).
    pub fn canonical_slots(&self) -> Vec<SlotAddr> {
        let mut slots = Vec::with_capacity(self.n_gpus());
        for s in 0..self.d0 {
            slots.push(SlotAddr::new(0, s));
        }
        for s in 0..self.d1 {
            slots.push(SlotAddr::new(1, s));
        }
        slots
    }
}

/// Effective PCIe bandwidth of each drawer's switch fabric, in percent,
/// aligned with [`Shape`]'s drawer order (`h0` is the health of the drawer
/// holding `d0` slots). Only values a fault plan can produce occur here —
/// 100 or one of [`crate::fault::DEGRADE_LEVELS`] — which bounds the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinkHealth {
    pub h0: u8,
    pub h1: u8,
}

impl LinkHealth {
    /// Both drawers at full bandwidth — the fault-free key.
    pub const FULL: LinkHealth = LinkHealth { h0: 100, h1: 100 };

    pub fn is_full(&self) -> bool {
        *self == LinkHealth::FULL
    }
}

/// The canonical `(Shape, LinkHealth)` cache key for a placement on
/// drawers with health `h0`/`h1` percent. Drawers are symmetric, so the
/// pair is normalized jointly: the fuller drawer leads (health breaking
/// count ties), and a drawer the placement doesn't touch contributes
/// `100` — its links carry none of this job's traffic.
pub fn degraded_key(slots: &[SlotAddr], health0: u8, health1: u8) -> (Shape, LinkHealth) {
    let c0 = slots.iter().filter(|s| s.drawer.0 == 0).count() as u8;
    let c1 = slots.len() as u8 - c0;
    let ((c0, h0), (c1, h1)) = if c1 > c0 || (c1 == c0 && health1 > health0) {
        ((c1, health1), (c0, health0))
    } else {
        ((c0, health0), (c1, health1))
    };
    let h0 = if c0 == 0 { 100 } else { h0 };
    let h1 = if c1 == 0 { 100 } else { h1 };
    (Shape { d0: c0, d1: c1 }, LinkHealth { h0, h1 })
}

/// The priced outcome of one probe run.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Mean time per training iteration with the job alone on the bed.
    pub mean_iter: Dur,
    /// [`Objective::TrainingTime`] score (higher is better).
    pub score: f64,
}

/// Memoized probe runner. Probes are deterministic (fixed seed), so the
/// cache never changes an answer — it only avoids re-simulating. Counting
/// actual simulations separately from entries makes "the second run probed
/// nothing" an assertable property.
pub struct ProbeCache {
    probe_iters: u64,
    topo: RackTopology,
    map: BTreeMap<ProbeKey, Probe>,
    probes_run: u64,
    /// Keys inserted since this cache was [`split`](Self::split) off —
    /// `Some` only for split children, so [`absorb`](Self::absorb) can
    /// merge append-only (visiting just the additions) instead of
    /// re-inserting the whole shared baseline. `None` for root caches,
    /// which fall back to the full-map merge.
    added: Option<Vec<ProbeKey>>,
}

/// The canonical cache key: benchmark label × placement shape × per-drawer
/// link health.
type ProbeKey = (&'static str, Shape, LinkHealth);

impl ProbeCache {
    /// A cache for the paper's single-chassis test bed.
    pub fn new(probe_iters: u64) -> ProbeCache {
        ProbeCache::new_for(probe_iters, RackTopology::SINGLE)
    }

    /// A cache whose persistence stamp is bound to `topo`. Entries are
    /// per-chassis-pure (multi-chassis placements are priced as the max
    /// over per-chassis parts times the rack-tier stretch), but the
    /// *stamp* folds the topology in so a file saved under one rack shape
    /// never silently seeds a differently-shaped run.
    pub fn new_for(probe_iters: u64, topo: RackTopology) -> ProbeCache {
        ProbeCache {
            probe_iters: probe_iters.max(1),
            topo,
            map: BTreeMap::new(),
            probes_run: 0,
            added: None,
        }
    }

    /// Record an insertion for the append-only absorb path.
    fn note_added(&mut self, key: ProbeKey) {
        if let Some(added) = &mut self.added {
            added.push(key);
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The iteration count this cache's prices were measured at. Prices
    /// are only comparable between caches built at the same count.
    pub fn probe_iters(&self) -> u64 {
        self.probe_iters
    }

    /// Probe simulations actually executed through this cache (misses in
    /// [`price`](Self::price) plus keys warmed by [`warm`](Self::warm)).
    /// Loaded entries never count.
    pub fn probes_run(&self) -> u64 {
        self.probes_run
    }

    /// Price `benchmark` on a placement of `shape` at full link health.
    /// Panics only if the model cannot fit the bed at batch size 1 — none
    /// of the paper's five benchmarks hits that on 16 GB V100s.
    pub fn price(&mut self, benchmark: Benchmark, shape: Shape) -> Probe {
        self.price_degraded(benchmark, shape, LinkHealth::FULL)
    }

    /// Price `benchmark` on `shape` with each drawer's switch fabric at
    /// `health` percent bandwidth. The `(shape, health)` pair must be
    /// canonical (see [`degraded_key`]); shapes from [`Shape::new`]/
    /// [`Shape::of`] with [`LinkHealth::FULL`] always are.
    pub fn price_degraded(&mut self, benchmark: Benchmark, shape: Shape, health: LinkHealth) -> Probe {
        if let Some(&p) = self.map.get(&(benchmark.label(), shape, health)) {
            return p;
        }
        let p = run_probe(benchmark, shape, health, self.probe_iters);
        self.probes_run += 1;
        self.map.insert((benchmark.label(), shape, health), p);
        self.note_added((benchmark.label(), shape, health));
        p
    }

    /// Price every not-yet-cached key across `jobs` parsweep workers.
    /// Probes are pure functions of `(benchmark, shape, probe_iters)` and
    /// results are inserted in canonical key order, so the resulting cache
    /// is byte-identical whatever `jobs` is.
    pub fn warm(&mut self, keys: &[(Benchmark, Shape)], jobs: usize) {
        let mut missing: Vec<(Benchmark, Shape)> = Vec::new();
        let mut seen: BTreeSet<(&'static str, Shape)> = BTreeSet::new();
        for &(b, s) in keys {
            if !self.map.contains_key(&(b.label(), s, LinkHealth::FULL)) && seen.insert((b.label(), s))
            {
                missing.push((b, s));
            }
        }
        let iters = self.probe_iters;
        let priced = parsweep::run(
            jobs,
            missing
                .iter()
                .map(|&(b, s)| {
                    parsweep::Job::new(format!("probe {} {}x{}", b.label(), s.d0, s.d1), move || {
                        run_probe(b, s, LinkHealth::FULL, iters)
                    })
                })
                .collect(),
        );
        for ((b, s), p) in missing.into_iter().zip(priced) {
            self.map.insert((b.label(), s, LinkHealth::FULL), p);
            self.note_added((b.label(), s, LinkHealth::FULL));
            self.probes_run += 1;
        }
    }

    /// A clone for one parallel replay: same entries and `probe_iters`,
    /// but a zeroed probe counter so [`absorb`](Self::absorb) can account
    /// exactly the simulations that replay added.
    pub fn split(&self) -> ProbeCache {
        ProbeCache {
            probe_iters: self.probe_iters,
            topo: self.topo,
            map: self.map.clone(),
            probes_run: 0,
            added: Some(Vec::new()),
        }
    }

    /// Merge a split cache back: union the entries (probes are
    /// deterministic, so colliding keys hold equal values — first write
    /// wins) and add the split's probe count to ours.
    ///
    /// A cache produced by [`split`](Self::split) tracks exactly the keys
    /// it added, so the merge is **append-only**: only those keys are
    /// visited, never the shared baseline (which is already ours). Caches
    /// from other origins fall back to the full-map merge.
    pub fn absorb(&mut self, other: ProbeCache) {
        self.probes_run += other.probes_run;
        match other.added {
            Some(keys) => {
                for k in keys {
                    let v = other.map[&k];
                    if let std::collections::btree_map::Entry::Vacant(e) = self.map.entry(k) {
                        e.insert(v);
                        self.note_added(k);
                    }
                }
            }
            None => {
                for (k, v) in other.map {
                    if let std::collections::btree_map::Entry::Vacant(e) = self.map.entry(k) {
                        e.insert(v);
                        self.note_added(k);
                    }
                }
            }
        }
    }

    /// Serialize to the versioned JSON persistence format (see DESIGN §9):
    /// entries in canonical key order under a `(version, probe_iters,
    /// model_hash)` stamp, so a cache from different model definitions or
    /// probe settings is rejected at load instead of silently reused.
    pub fn save_json(&self) -> String {
        let entries: Vec<Value> = self
            .map
            .iter()
            .map(|(&(label, shape, health), probe)| {
                Value::obj(vec![
                    ("benchmark", Value::str(label)),
                    ("d0", Value::from_u64(u64::from(shape.d0))),
                    ("d1", Value::from_u64(u64::from(shape.d1))),
                    ("h0", Value::from_u64(u64::from(health.h0))),
                    ("h1", Value::from_u64(u64::from(health.h1))),
                    ("mean_iter_ns", Value::from_u64(probe.mean_iter.as_nanos())),
                    ("score", Value::Num(probe.score)),
                ])
            })
            .collect();
        Value::obj(vec![
            ("version", Value::from_u64(CACHE_FORMAT_VERSION)),
            ("probe_iters", Value::from_u64(self.probe_iters)),
            ("model_hash", Value::str(model_hash_for(&self.topo))),
            ("entries", Value::Arr(entries)),
        ])
        .emit_pretty()
    }

    /// Parse a persisted cache. Any mismatch — version, `probe_iters`,
    /// model hash, unknown benchmark, malformed JSON — yields an **empty**
    /// cache: persistence is an accelerator, never a correctness input, so
    /// stale files degrade to re-probing rather than to wrong prices.
    pub fn load_str(s: &str, probe_iters: u64) -> ProbeCache {
        ProbeCache::load_str_for(s, probe_iters, RackTopology::SINGLE)
    }

    /// Parse a persisted cache for a run on `topo`. The stamp folds the
    /// topology (chassis count + inter-chassis tier parameters) into
    /// `model_hash`, so a cache saved from a 1-chassis run loads empty
    /// for a 4-chassis run instead of mispricing placements.
    pub fn load_str_for(s: &str, probe_iters: u64, topo: RackTopology) -> ProbeCache {
        let mut cache = ProbeCache::new_for(probe_iters, topo);
        let Ok(v) = Value::parse(s) else { return cache };
        let stamp_ok = v.get("version").and_then(|x| x.as_u64()) == Ok(CACHE_FORMAT_VERSION)
            && v.get("probe_iters").and_then(|x| x.as_u64()) == Ok(cache.probe_iters)
            && v.get("model_hash").and_then(|x| x.as_str().map(str::to_string))
                == Ok(model_hash_for(&topo));
        if !stamp_ok {
            return cache;
        }
        let Ok(entries) = v.get("entries").and_then(|e| e.as_arr().map(<[Value]>::to_vec))
        else {
            return cache;
        };
        for e in &entries {
            let decoded = (|| {
                let label = e.get("benchmark")?.as_str()?;
                let b = benchmark_from_label(label)
                    .ok_or_else(|| desim::json::JsonError::decode("unknown benchmark"))?;
                let shape = Shape::new(e.get("d0")?.as_u8()?, e.get("d1")?.as_u8()?);
                let health = LinkHealth {
                    h0: e.get("h0")?.as_u8()?,
                    h1: e.get("h1")?.as_u8()?,
                };
                let probe = Probe {
                    mean_iter: Dur::from_nanos(e.get("mean_iter_ns")?.as_u64()?),
                    score: e.get("score")?.as_f64()?,
                };
                Ok::<_, desim::json::JsonError>((b.label(), shape, health, probe))
            })();
            match decoded {
                Ok((label, shape, health, probe)) => {
                    cache.map.insert((label, shape, health), probe);
                }
                Err(_) => return ProbeCache::new_for(probe_iters, topo),
            }
        }
        cache
    }

    pub fn save_file(&self, path: &Path) -> std::io::Result<()> {
        let mut text = self.save_json();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Load from `path`; a missing or stale file yields an empty cache.
    pub fn load_file(path: &Path, probe_iters: u64) -> ProbeCache {
        ProbeCache::load_file_for(path, probe_iters, RackTopology::SINGLE)
    }

    /// Load from `path` for a run on `topo` (see
    /// [`load_str_for`](Self::load_str_for)).
    pub fn load_file_for(path: &Path, probe_iters: u64, topo: RackTopology) -> ProbeCache {
        match std::fs::read_to_string(path) {
            Ok(s) => ProbeCache::load_str_for(&s, probe_iters, topo),
            Err(_) => ProbeCache::new_for(probe_iters, topo),
        }
    }
}

/// Fingerprint of everything a probe's answer depends on besides its key:
/// the benchmark roster, each model's parameter count, the probe GPU's
/// memory (which gates batch clamping), the fault model's parameters
/// (degrade levels, recompose/checkpoint constants, model version) — a
/// degraded probe's price depends on how degradation maps to link
/// capacity, so a cache priced under a different fault model is stale —
/// and, for the single-chassis default, the rack topology fingerprint
/// (see [`model_hash_for`]). FNV-1a, hex.
pub fn model_hash() -> String {
    model_hash_for(&RackTopology::SINGLE)
}

/// [`model_hash`] bound to a rack topology: folds the chassis count and
/// the inter-chassis tier's parameters (stretch factor, bandwidth/latency
/// class, rack fabric version) so probe caches never cross-contaminate
/// between rack shapes or rack-model revisions.
pub fn model_hash_for(topo: &RackTopology) -> String {
    let mut extra = fault_model_fingerprint();
    extra.extend_from_slice(&topo.fingerprint());
    model_hash_with(&extra)
}

fn fault_model_fingerprint() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&FAULT_MODEL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&RECOMPOSE_LATENCY.as_nanos().to_le_bytes());
    bytes.extend_from_slice(&CHECKPOINT_ITERS.to_le_bytes());
    bytes.extend_from_slice(&crate::fault::DEGRADE_LEVELS);
    bytes
}

fn model_hash_with(extra_fingerprint: &[u8]) -> String {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for b in Benchmark::all() {
        eat(b.label().as_bytes());
        eat(&model_for(b).param_count().to_le_bytes());
    }
    eat(&GpuSpec::v100_pcie_16gb().memory_bytes.to_le_bytes());
    eat(extra_fingerprint);
    format!("{h:016x}")
}

/// The placement shapes a trace replay plausibly prices, derived from each
/// job's requested size and its elastic shrink chain (`g -> max(min_gpus,
/// g/2)`): the whole-drawer shape, the balanced split, and the one-drawer-
/// full spill. A heuristic, not a contract — shapes a policy picks that
/// are missing here are still priced lazily by [`ProbeCache::price`]; the
/// warm set only moves probing to the parallel phase.
pub fn warm_set_for_trace(trace: &Trace) -> Vec<(Benchmark, Shape)> {
    let mut keys: BTreeSet<(&'static str, Shape)> = BTreeSet::new();
    let mut out: Vec<(Benchmark, Shape)> = Vec::new();
    let mut add = |b: Benchmark, s: Shape| {
        if keys.insert((b.label(), s)) {
            out.push((b, s));
        }
    };
    for j in &trace.jobs {
        let mut n = usize::from(j.gpus).clamp(1, 16);
        loop {
            let n8 = n as u8;
            if n <= 8 {
                add(j.benchmark, Shape::new(n8, 0));
            } else {
                add(j.benchmark, Shape::new(8, n8 - 8));
            }
            if n > 1 {
                let hi = (n8 + 1) / 2;
                add(j.benchmark, Shape::new(hi, n8 - hi));
            }
            let next = usize::from(j.min_gpus).max(n / 2);
            if next >= n {
                break;
            }
            n = next;
        }
    }
    out.sort_by_key(|&(b, s)| (b.label(), s));
    out
}

fn run_probe(benchmark: Benchmark, shape: Shape, health: LinkHealth, iters: u64) -> Probe {
    let gpu = GpuSpec::v100_pcie_16gb();
    let mut composed = build_falcon_slots(&gpu, &shape.canonical_slots());
    // Injected link degradation: scale every link on the affected drawer's
    // switch ASIC. The flow allocator reads capacities live, so degraded
    // bandwidth shows up in the probe's allreduce time directly.
    for (drawer, pct) in [(0u8, health.h0), (1u8, health.h1)] {
        if pct >= 100 {
            continue;
        }
        let switch = composed
            .topology
            .find_node(&format!("falcon0.drawer{drawer}.switch"))
            .expect("canonical composition names its drawer switches");
        let mut seen = BTreeSet::new();
        let links: Vec<_> = composed
            .topology
            .links_of(switch)
            .iter()
            .map(|dl| dl.link)
            .filter(|&l| seen.insert(l))
            .collect();
        for l in links {
            composed.topology.scale_link_capacity(l, f64::from(pct) / 100.0);
        }
    }
    let n = shape.n_gpus();
    let mut cfg = JobConfig::paper_scaled(benchmark, n, iters);
    cfg.epochs = 1;
    cfg.checkpoint_each_epoch = false;
    cfg.seed = 0x5EED;
    // Clamp the paper batch to what fits: the global-batch benchmarks
    // (YOLO, BERT) divide across GPUs, so small placements would OOM a
    // 16 GB card without this (same gate as `runner::run`'s auto-batch).
    let model = model_for(benchmark);
    let fit = max_feasible_batch(&model, gpu.memory_bytes, cfg.precision, cfg.strategy, n);
    cfg.per_gpu_batch = cfg.per_gpu_batch.min(fit).max(1);
    let report = run_job(composed.topology, composed.cluster, cfg)
        .expect("probe fits after batch clamping");
    Probe {
        mean_iter: report.mean_iter,
        score: Objective::TrainingTime.score(&report, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_normalizes_and_classifies() {
        assert_eq!(Shape::new(1, 3), Shape::new(3, 1));
        assert!(Shape::new(2, 2).spans());
        assert!(!Shape::new(4, 0).spans());
        let s = Shape::of(&[SlotAddr::new(0, 5), SlotAddr::new(1, 0), SlotAddr::new(1, 2)]);
        assert_eq!(s, Shape { d0: 2, d1: 1 });
        assert_eq!(Shape::new(3, 1).canonical_slots().len(), 4);
    }

    #[test]
    fn split_placement_prices_slower_for_comm_bound_jobs() {
        let mut cache = ProbeCache::new(3);
        let whole = cache.price(Benchmark::BertLarge, Shape::new(4, 0));
        let split = cache.price(Benchmark::BertLarge, Shape::new(2, 2));
        assert!(
            split.mean_iter > whole.mean_iter,
            "cross-drawer allreduce must cost: whole={:?} split={:?}",
            whole.mean_iter,
            split.mean_iter
        );
        assert!(whole.score > split.score);
    }

    #[test]
    fn cache_memoizes_and_stays_deterministic() {
        let mut a = ProbeCache::new(3);
        let p1 = a.price(Benchmark::MobileNetV2, Shape::new(2, 0));
        let p2 = a.price(Benchmark::MobileNetV2, Shape::new(2, 0));
        assert_eq!(a.len(), 1);
        assert_eq!(a.probes_run(), 1, "the second price must be a cache hit");
        assert_eq!(p1.mean_iter, p2.mean_iter);
        let mut b = ProbeCache::new(3);
        assert_eq!(
            b.price(Benchmark::MobileNetV2, Shape::new(2, 0)).mean_iter,
            p1.mean_iter
        );
    }

    #[test]
    fn parallel_warm_matches_serial_and_counts_probes() {
        let keys = [
            (Benchmark::MobileNetV2, Shape::new(2, 0)),
            (Benchmark::MobileNetV2, Shape::new(1, 1)),
            (Benchmark::MobileNetV2, Shape::new(2, 0)), // duplicate: priced once
            (Benchmark::ResNet50, Shape::new(1, 0)),
        ];
        let mut serial = ProbeCache::new(2);
        serial.warm(&keys, 1);
        let mut parallel = ProbeCache::new(2);
        parallel.warm(&keys, 4);
        assert_eq!(serial.save_json(), parallel.save_json());
        assert_eq!(parallel.len(), 3);
        assert_eq!(parallel.probes_run(), 3);
        // Warmed keys are hits now; a new shape still probes lazily.
        parallel.price(Benchmark::MobileNetV2, Shape::new(1, 1));
        assert_eq!(parallel.probes_run(), 3);
        parallel.price(Benchmark::MobileNetV2, Shape::new(3, 0));
        assert_eq!(parallel.probes_run(), 4);
    }

    #[test]
    fn persistence_round_trips_with_zero_probes() {
        let mut cache = ProbeCache::new(2);
        cache.warm(
            &[
                (Benchmark::MobileNetV2, Shape::new(2, 0)),
                (Benchmark::BertBase, Shape::new(1, 1)),
            ],
            2,
        );
        let text = cache.save_json();
        let mut loaded = ProbeCache::load_str(&text, 2);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.probes_run(), 0, "loading must not count as probing");
        assert_eq!(loaded.save_json(), text, "save/load/save is a fixpoint");
        // Pricing a persisted key runs zero new simulations and returns
        // exactly the persisted value.
        let p = loaded.price(Benchmark::MobileNetV2, Shape::new(2, 0));
        assert_eq!(loaded.probes_run(), 0);
        assert_eq!(p.mean_iter, cache.price(Benchmark::MobileNetV2, Shape::new(2, 0)).mean_iter);
    }

    #[test]
    fn stale_or_malformed_cache_loads_empty() {
        let mut cache = ProbeCache::new(2);
        cache.warm(&[(Benchmark::MobileNetV2, Shape::new(1, 0))], 1);
        let good = cache.save_json();
        assert!(ProbeCache::load_str("not json", 2).is_empty());
        assert!(ProbeCache::load_str(&good, 3).is_empty(), "probe_iters mismatch");
        let bad_version = good.replace("\"version\": 2", "\"version\": 1");
        assert!(
            ProbeCache::load_str(&bad_version, 2).is_empty(),
            "pre-fault-model caches are stale"
        );
        let bad_hash = good.replace(&model_hash(), "0000000000000000");
        assert!(ProbeCache::load_str(&bad_hash, 2).is_empty(), "model hash mismatch");
    }

    #[test]
    fn model_hash_covers_fault_model_parameters() {
        // A cache priced under different degrade factors / recovery
        // constants must hash differently, so persisted prices invalidate
        // when the fault model changes.
        assert_ne!(model_hash(), model_hash_with(b""));
        assert_ne!(model_hash(), model_hash_with(&[0u8; 27]));
        let mut full = fault_model_fingerprint();
        full.extend_from_slice(&RackTopology::SINGLE.fingerprint());
        assert_eq!(model_hash(), model_hash_with(&full));
        // The fault fingerprint alone is not enough: the topology (and
        // rack-tier parameters) must be folded in too.
        assert_ne!(model_hash(), model_hash_with(&fault_model_fingerprint()));
    }

    #[test]
    fn cache_is_keyed_on_topology() {
        // A cache saved from a 1-chassis run must load *empty* for a
        // 4-chassis run — per-chassis prices would be reused, but the
        // stamp conservatively refuses cross-topology files so the two
        // runs can never share a mispriced state.
        let mut single = ProbeCache::new(2);
        single.warm(&[(Benchmark::MobileNetV2, Shape::new(1, 0))], 1);
        let text = single.save_json();
        let four = RackTopology::with_chassis(4);
        assert!(
            ProbeCache::load_str_for(&text, 2, four).is_empty(),
            "1-chassis cache must not seed a 4-chassis run"
        );
        // Same topology round-trips; the re-save under the new topology
        // stamps the new hash and then round-trips for that topology.
        assert_eq!(ProbeCache::load_str_for(&text, 2, RackTopology::SINGLE).len(), 1);
        let mut rack_cache = ProbeCache::new_for(2, four);
        rack_cache.warm(&[(Benchmark::MobileNetV2, Shape::new(1, 0))], 1);
        let rack_text = rack_cache.save_json();
        assert_ne!(rack_text, text, "stamps differ by topology");
        assert_eq!(ProbeCache::load_str_for(&rack_text, 2, four).len(), 1);
        assert!(ProbeCache::load_str(&rack_text, 2).is_empty());
    }

    #[test]
    fn degraded_key_normalizes_jointly() {
        let d0 = falcon::SlotAddr::new(0, 0);
        let d1 = falcon::SlotAddr::new(1, 0);
        // Larger drawer leads, carrying its own health with it.
        assert_eq!(
            degraded_key(&[d1, SlotAddr::new(1, 1)], 50, 75),
            (Shape { d0: 2, d1: 0 }, LinkHealth { h0: 75, h1: 100 })
        );
        // Count ties break toward the healthier drawer.
        assert_eq!(
            degraded_key(&[d0, d1], 25, 75),
            (Shape { d0: 1, d1: 1 }, LinkHealth { h0: 75, h1: 25 })
        );
        // Untouched drawers always read full health.
        assert_eq!(
            degraded_key(&[d0], 50, 25),
            (Shape { d0: 1, d1: 0 }, LinkHealth { h0: 50, h1: 100 })
        );
        // Fault-free keys coincide with the plain price() key.
        assert_eq!(degraded_key(&[d0, d1], 100, 100).1, LinkHealth::FULL);
    }

    #[test]
    fn degraded_links_price_slower_for_comm_bound_jobs() {
        let mut cache = ProbeCache::new(3);
        let full = cache.price(Benchmark::BertLarge, Shape::new(2, 0));
        let degraded = cache.price_degraded(
            Benchmark::BertLarge,
            Shape::new(2, 0),
            LinkHealth { h0: 50, h1: 100 },
        );
        assert!(
            degraded.mean_iter > full.mean_iter,
            "half-bandwidth switch must slow allreduce: full={:?} degraded={:?}",
            full.mean_iter,
            degraded.mean_iter
        );
        // Distinct keys: both entries coexist and the degraded one persists.
        assert_eq!(cache.len(), 2);
        let loaded = ProbeCache::load_str(&cache.save_json(), 3);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.save_json(), cache.save_json());
    }

    #[test]
    fn split_and_absorb_account_probes_exactly() {
        let mut shared = ProbeCache::new(2);
        shared.warm(&[(Benchmark::MobileNetV2, Shape::new(1, 0))], 1);
        assert_eq!(shared.probes_run(), 1);
        let mut replay = shared.split();
        assert_eq!(replay.probes_run(), 0);
        replay.price(Benchmark::MobileNetV2, Shape::new(1, 0)); // hit
        replay.price(Benchmark::MobileNetV2, Shape::new(2, 0)); // miss
        assert_eq!(replay.probes_run(), 1);
        shared.absorb(replay);
        assert_eq!(shared.probes_run(), 2);
        assert_eq!(shared.len(), 2);
    }

    /// The append-only absorb path: merging split caches with disjoint
    /// additions yields exactly the union of entries and the sum of probe
    /// counters, byte-identical to a cache that probed every key itself —
    /// and additions keep propagating through chained split/absorb.
    #[test]
    fn absorb_is_append_only_with_exact_merged_counters() {
        let base = (Benchmark::MobileNetV2, Shape::new(1, 0));
        let add_a = (Benchmark::MobileNetV2, Shape::new(2, 0));
        let add_b = (Benchmark::ResNet50, Shape::new(1, 0));
        let mut parent = ProbeCache::new(2);
        parent.warm(&[base], 1);
        let base_probes = parent.probes_run();

        // Two splits add disjoint key sets.
        let mut a = parent.split();
        let mut b = parent.split();
        a.warm(&[add_a], 1);
        b.warm(&[add_b], 1);
        let (ra, rb) = (a.probes_run(), b.probes_run());
        assert_eq!((ra, rb), (1, 1));
        parent.absorb(a);
        parent.absorb(b);
        assert_eq!(parent.probes_run(), base_probes + ra + rb, "counter is the exact sum");
        assert_eq!(parent.len(), 3, "merged map is the union");

        // Byte-identical to a cache that probed all three keys directly.
        let mut direct = ProbeCache::new(2);
        direct.warm(&[base, add_a, add_b], 1);
        assert_eq!(parent.save_json(), direct.save_json());

        // Overlapping additions collide on equal values: no growth, and
        // the counter still accounts the duplicate probe work.
        let mut c = parent.split();
        c.price(Benchmark::MobileNetV2, Shape::new(2, 0)); // hit: no probe
        assert_eq!(c.probes_run(), 0);
        parent.absorb(c);
        assert_eq!(parent.len(), 3);
        assert_eq!(parent.probes_run(), base_probes + ra + rb);

        // Chained: a grandchild's additions flow through its parent's
        // `added` log into the root on the second absorb.
        let mut mid = parent.split();
        let mut leaf = mid.split();
        leaf.warm(&[(Benchmark::ResNet50, Shape::new(2, 0))], 1);
        mid.absorb(leaf);
        parent.absorb(mid);
        assert_eq!(parent.len(), 4, "grandchild addition reached the root");
        assert_eq!(parent.probes_run(), base_probes + ra + rb + 1);
    }

    #[test]
    fn warm_set_covers_requested_and_shrunk_sizes() {
        let trace = crate::trace::seeded_two_tenant(12, 0xC10D);
        let set = warm_set_for_trace(&trace);
        assert!(!set.is_empty());
        // Canonically ordered and duplicate-free.
        let mut sorted = set.clone();
        sorted.sort_by_key(|&(b, s)| (b.label(), s));
        sorted.dedup_by_key(|&mut (b, s)| (b.label(), s));
        assert_eq!(set, sorted);
        // Every job's requested size appears as some shape.
        for j in &trace.jobs {
            assert!(
                set.iter()
                    .any(|&(b, s)| b == j.benchmark && s.n_gpus() == usize::from(j.gpus)),
                "no warm shape for job {} ({} GPUs)",
                j.id,
                j.gpus
            );
        }
    }
}
