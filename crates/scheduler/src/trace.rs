//! Job traces: training-job specs, synthetic trace generators, and JSON
//! import/export through [`desim::json`].
//!
//! The trace model follows the cluster-characterization literature
//! (Alibaba-PAI): a DL cluster's load is a stream of *heterogeneous* job
//! arrivals — mostly small jobs with a heavy tail of large ones — from
//! multiple tenants. Arrivals here are Poisson, GPU demands and job
//! lengths are drawn from a heavy-tailed mix over the paper's five
//! benchmarks, and every draw comes from a seeded [`SimRng`], so a trace
//! is a pure function of its generator parameters.

use desim::json::{FromJson, JsonError, ToJson, Value};
use desim::{Dur, SimRng, SimTime};
use dlmodels::Benchmark;
use std::fmt;

/// A tenant of the shared test bed. The chassis has four host ports, so
/// the scheduler's test bed supports two tenants, each cabled into both
/// drawers (see [`crate::cluster`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// The named priority tiers a job may carry, as `(label, tier)` pairs.
/// Tier 1 (`"low"`) is the default batch tier every legacy trace parses
/// to; higher tiers may preempt lower ones when the scheduler runs with
/// preemption enabled (see [`crate::cluster::SchedulerConfig::preempt`]).
pub const PRIORITY_TIERS: [(&str, u8); 3] = [("low", 1), ("high", 2), ("urgent", 3)];

/// Look a priority tier up by its label (`"low"` / `"high"` / `"urgent"`,
/// case-insensitive) — the form scenario JSON may spell tiers in.
pub fn priority_tier_from_label(label: &str) -> Option<u8> {
    PRIORITY_TIERS
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case(label))
        .map(|&(_, tier)| tier)
}

/// The label for a numeric tier, if it is one of the named tiers.
pub fn priority_tier_label(tier: u8) -> Option<&'static str> {
    PRIORITY_TIERS.iter().find(|&&(_, t)| t == tier).map(|&(name, _)| name)
}

/// Look a benchmark up by its paper label (the form traces serialize).
///
/// Matching is case-insensitive and ignores `-`/`_`, so the aliases that
/// show up in hand-written traces and goldens (`"resnet50"`,
/// `"resnet-50"`, `"bert_large"`, `"yolov5l"`, …) all resolve.
pub fn benchmark_from_label(label: &str) -> Option<Benchmark> {
    fn norm(s: &str) -> String {
        s.chars()
            .filter(|c| *c != '-' && *c != '_')
            .flat_map(char::to_lowercase)
            .collect()
    }
    let wanted = norm(label);
    Benchmark::all()
        .into_iter()
        .find(|b| norm(b.label()) == wanted)
        .or(match wanted.as_str() {
            "bertbase" => Some(Benchmark::BertBase),
            "bertlarge" => Some(Benchmark::BertLarge),
            _ => None,
        })
}

/// One training job in a cluster trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub id: u64,
    pub tenant: TenantId,
    pub benchmark: Benchmark,
    /// GPUs requested.
    pub gpus: u8,
    /// The smallest allocation the job tolerates; `min_gpus < gpus` marks
    /// the job elastic (eligible for mid-run shrink under pressure).
    pub min_gpus: u8,
    /// Larger runs first within the queue (ties broken by arrival, id).
    pub priority: u8,
    pub arrival: SimTime,
    /// Job length in training iterations *at the requested allocation*.
    /// When the allocation changes mid-run the remaining iterations scale
    /// inversely (constant total work in GPU-iterations).
    pub iters: u64,
}

impl JobSpec {
    pub fn shrinkable(&self) -> bool {
        self.min_gpus < self.gpus
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("id", Value::from_u64(self.id)),
            ("tenant", Value::from_u64(u64::from(self.tenant.0))),
            ("benchmark", Value::str(self.benchmark.label())),
            ("gpus", Value::from_u64(u64::from(self.gpus))),
            ("min_gpus", Value::from_u64(u64::from(self.min_gpus))),
            ("priority", Value::from_u64(u64::from(self.priority))),
            ("arrival_ns", self.arrival.to_json()),
            ("iters", Value::from_u64(self.iters)),
        ])
    }
}

impl FromJson for JobSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let label = v.get("benchmark")?.as_str()?;
        let benchmark = benchmark_from_label(label)
            .ok_or_else(|| JsonError::decode(format!("unknown benchmark \"{label}\"")))?;
        // `priority` is optional (legacy traces predate tiers and parse to
        // the default low tier) and accepts either a numeric tier or one of
        // the named tiers from [`PRIORITY_TIERS`].
        let priority = match v.get("priority") {
            Err(_) => 1,
            Ok(pv) => match pv.as_u8() {
                Ok(n) => n,
                Err(_) => {
                    let tier = pv.as_str()?;
                    priority_tier_from_label(tier).ok_or_else(|| {
                        JsonError::decode(format!(
                            "unknown priority tier \"{tier}\" (tiers: low=1, high=2, urgent=3)"
                        ))
                    })?
                }
            },
        };
        Ok(JobSpec {
            id: v.get("id")?.as_u64()?,
            tenant: TenantId(v.get("tenant")?.as_u32()?),
            benchmark,
            gpus: v.get("gpus")?.as_u8()?,
            min_gpus: v.get("min_gpus")?.as_u8()?,
            priority,
            arrival: SimTime::from_json(v.get("arrival_ns")?)?,
            iters: v.get("iters")?.as_u64()?,
        })
    }
}

/// A named stream of job arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub name: String,
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Jobs in arrival order (stable on ties by id) — the order the
    /// cluster event loop consumes them in.
    pub fn sorted(mut self) -> Trace {
        self.jobs.sort_by_key(|j| (j.arrival, j.id));
        self
    }

    pub fn n_tenants(&self) -> usize {
        let mut t: Vec<u32> = self.jobs.iter().map(|j| j.tenant.0).collect();
        t.sort_unstable();
        t.dedup();
        t.len()
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().emit_pretty()
    }

    /// Parse a trace from JSON. Duplicate job ids are rejected (two jobs
    /// with one id would silently alias in the cluster's id-keyed maps)
    /// and jobs arrive sorted regardless of file order.
    pub fn from_json_str(s: &str) -> Result<Trace, JsonError> {
        let trace = Trace::from_json(&Value::parse(s)?)?;
        let mut ids: Vec<u64> = trace.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(JsonError::decode(format!("duplicate job id {}", dup[0])));
        }
        Ok(trace.sorted())
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(self.name.clone())),
            ("jobs", self.jobs.to_json()),
        ])
    }
}

impl FromJson for Trace {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Trace {
            name: String::from_json(v.get("name")?)?,
            jobs: Vec::<JobSpec>::from_json(v.get("jobs")?)?,
        })
    }
}

/// Synthetic-trace generator: Poisson arrivals, heavy-tailed job mix.
#[derive(Debug, Clone)]
pub struct PoissonMix {
    pub seed: u64,
    pub n_jobs: usize,
    pub tenants: u32,
    pub mean_interarrival: Dur,
}

impl PoissonMix {
    /// The benchmark mix, weighted toward the small vision models with a
    /// heavy tail of BERT jobs (the PAI-style "many small, few huge"
    /// shape). Weights are in tenths.
    const BENCH_MIX: [(Benchmark, u32); 5] = [
        (Benchmark::MobileNetV2, 3),
        (Benchmark::ResNet50, 2),
        (Benchmark::YoloV5L, 2),
        (Benchmark::BertBase, 2),
        (Benchmark::BertLarge, 1),
    ];

    /// GPU-demand mix: mostly 1–2 GPUs, a tail of 4- and 8-GPU jobs.
    const GPU_MIX: [(u8, u32); 4] = [(1, 3), (2, 3), (4, 3), (8, 1)];

    fn weighted<T: Copy>(rng: &mut SimRng, table: &[(T, u32)]) -> T {
        let total: u32 = table.iter().map(|&(_, w)| w).sum();
        let mut pick = rng.index(total as usize) as u32;
        for &(v, w) in table {
            if pick < w {
                return v;
            }
            pick -= w;
        }
        table[table.len() - 1].0
    }

    pub fn generate(&self, name: impl Into<String>) -> Trace {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut at = SimTime::ZERO;
        let tenants = self.tenants.max(1);
        let jobs = (0..self.n_jobs as u64)
            .map(|id| {
                // Poisson process: exponential interarrival times.
                let gap = -self.mean_interarrival.as_secs_f64() * (1.0 - rng.unit()).ln();
                at = at + Dur::from_secs_f64(gap);
                let benchmark = Self::weighted(&mut rng, &Self::BENCH_MIX);
                let gpus = Self::weighted(&mut rng, &Self::GPU_MIX);
                // Heavy-tailed job length (bounded Pareto over iterations),
                // sized so the pool stays contended at the default
                // interarrival rate: most jobs run seconds, a few tens.
                let u = rng.unit().min(1.0 - 1e-9);
                let iters = ((24.0 * (1.0 / (1.0 - u)).powf(0.8)).round() as u64).clamp(16, 256);
                // The big jobs are elastic: they tolerate a half-pool claw-back.
                let min_gpus = if gpus >= 8 { gpus / 2 } else { gpus };
                let priority = if rng.chance(0.2) { 2 } else { 1 };
                JobSpec {
                    id,
                    tenant: TenantId(id as u32 % tenants),
                    benchmark,
                    gpus,
                    min_gpus,
                    priority,
                    arrival: at,
                    iters,
                }
            })
            .collect();
        Trace {
            name: name.into(),
            jobs,
        }
        .sorted()
    }
}

/// The seeded two-tenant trace the `repro cluster` replay and the golden
/// regression use: `n_jobs` arrivals from two tenants at a load that keeps
/// the 16-GPU pool contended.
pub fn seeded_two_tenant(n_jobs: usize, seed: u64) -> Trace {
    PoissonMix {
        seed,
        n_jobs,
        tenants: 2,
        mean_interarrival: Dur::from_millis(1500),
    }
    .generate(format!("two-tenant-{n_jobs}x{seed:#x}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_sorted() {
        let a = seeded_two_tenant(20, 7);
        let b = seeded_two_tenant(20, 7);
        assert_eq!(a, b);
        assert!(a.jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a.jobs.len(), 20);
        assert_eq!(a.n_tenants(), 2);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(seeded_two_tenant(20, 1), seeded_two_tenant(20, 2));
    }

    #[test]
    fn demands_and_lengths_are_in_envelope() {
        let t = seeded_two_tenant(64, 3);
        for j in &t.jobs {
            assert!(matches!(j.gpus, 1 | 2 | 4 | 8));
            assert!((16..=256).contains(&j.iters));
            assert!(j.min_gpus >= 1 && j.min_gpus <= j.gpus);
            assert_eq!(j.shrinkable(), j.gpus == 8);
        }
    }

    #[test]
    fn trace_json_round_trips() {
        let t = seeded_two_tenant(12, 9);
        let back = Trace::from_json_str(&t.to_json_string()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn label_lookup_accepts_common_aliases() {
        for (alias, want) in [
            ("MobileNetV2", Benchmark::MobileNetV2),
            ("mobilenet-v2", Benchmark::MobileNetV2),
            ("ResNet-50", Benchmark::ResNet50),
            ("resnet50", Benchmark::ResNet50),
            ("RESNET_50", Benchmark::ResNet50),
            ("YOLOv5-L", Benchmark::YoloV5L),
            ("yolov5l", Benchmark::YoloV5L),
            ("BERT", Benchmark::BertBase),
            ("bert-base", Benchmark::BertBase),
            ("BERT-L", Benchmark::BertLarge),
            ("bert_large", Benchmark::BertLarge),
        ] {
            assert_eq!(benchmark_from_label(alias), Some(want), "{alias}");
        }
        assert_eq!(benchmark_from_label("gpt-17"), None);
    }

    #[test]
    fn duplicate_job_ids_rejected() {
        let mut t = seeded_two_tenant(4, 5);
        t.jobs[2].id = t.jobs[1].id;
        let err = Trace::from_json_str(&t.to_json_string());
        assert!(err.is_err(), "duplicate ids must not parse");
    }

    #[test]
    fn out_of_order_json_is_sorted_on_parse() {
        let mut t = seeded_two_tenant(6, 5);
        t.jobs.reverse();
        let back = Trace::from_json_str(&t.to_json_string()).unwrap();
        assert!(back.jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(back, t.sorted());
    }

    #[test]
    fn missing_priority_defaults_to_low_tier() {
        let t = seeded_two_tenant(4, 5);
        let mut stripped = t.clone();
        for j in &mut stripped.jobs {
            j.priority = 1;
        }
        // Drop every "priority" line from the emitted JSON: legacy traces
        // that predate tiers must still parse, to the default low tier.
        let legacy: String = t
            .to_json_string()
            .lines()
            .filter(|l| !l.contains("\"priority\""))
            .collect::<Vec<_>>()
            .join("\n");
        let back = Trace::from_json_str(&legacy).unwrap();
        assert_eq!(back, stripped);
    }

    #[test]
    fn priority_tier_names_parse_and_round_trip() {
        for (label, tier) in PRIORITY_TIERS {
            assert_eq!(priority_tier_from_label(label), Some(tier));
            assert_eq!(priority_tier_from_label(&label.to_uppercase()), Some(tier));
            assert_eq!(priority_tier_label(tier), Some(label));
        }
        assert_eq!(priority_tier_from_label("platinum"), None);
        assert_eq!(priority_tier_label(0), None);

        let t = seeded_two_tenant(3, 5);
        let named = t.to_json_string().replace("\"priority\": 1", "\"priority\": \"low\"");
        assert_eq!(Trace::from_json_str(&named).unwrap(), t);
    }

    #[test]
    fn unknown_priority_tier_rejected_by_name() {
        let t = seeded_two_tenant(3, 5);
        let bad = t.to_json_string().replace("\"priority\": 1", "\"priority\": \"platinum\"");
        let err = Trace::from_json_str(&bad).unwrap_err();
        assert!(err.to_string().contains("platinum"), "error names the bad tier: {err}");
    }

    #[test]
    fn unknown_benchmark_label_rejected() {
        let t = seeded_two_tenant(2, 1);
        let bad = t.to_json_string().replace("MobileNetV2", "GPT-17");
        if bad.contains("GPT-17") {
            assert!(Trace::from_json_str(&bad).is_err());
        }
    }
}
