//! Declarative scenario harness: one JSON spec composing **topology ×
//! trace × fault plan × services × policies × metric level**, so a new
//! study is a checked-in data file instead of a new `repro` subcommand
//! (the Deep500 "recombinable experiment spec" idea, applied to the
//! composable test bed).
//!
//! A [`Scenario`] names everything a replay needs:
//!
//! * [`Topology`] — the test bed envelope: 1..=8 Falcon 4016 chassis
//!   (each 2 drawers × 8 slots) behind the inter-chassis rack tier (see
//!   [`rack`]). Shapes outside [`rack::supported_envelope`] parse but are
//!   rejected with a typed error instead of silently misread.
//! * [`TraceSpec`] — inline JSON jobs, a seeded Poisson generator, or the
//!   seeded PAI-style mixed generator (which brings its own services).
//! * [`FaultSpec`] — no faults, an inline [`FaultPlan`], or a seeded
//!   random plan.
//! * explicit [`ServiceSpec`]s appended to whatever the trace provides.
//! * a policy list (validated against [`policy_by_name`]).
//! * [`SchedulerConfig`] knobs, each defaulting when omitted.
//! * a [`MetricLevel`] — `full` keeps per-job / per-service arrays,
//!   `summary` strips them for sweep-sized output.
//!
//! [`Scenario::validate`] rejects malformed specs with typed
//! [`ScenarioError`]s (duplicate ids, out-of-range slices, fault events
//! beyond the trace horizon, unknown policies, unsupported topology).
//! [`run_scenario`] dispatches into the existing [`ClusterSim`] entry
//! points and [`run_matrix`] fans whole scenario files across parsweep
//! workers — both byte-identical at any worker count. A one-policy,
//! full-metrics scenario's canonical output is the bare
//! [`ScheduleReport`] JSON, byte-compatible with the pre-scenario
//! goldens; anything else wraps its reports in a [`ScenarioReport`]
//! object.

use crate::cluster::{ClusterSim, SchedulerConfig, SchedulerError};
use crate::fault::{seeded_fault_plan, seeded_rack_fault_plan, FaultPlan};
use crate::metrics::ScheduleReport;
use crate::policy::policy_by_name;
use crate::probe::{warm_set_for_trace, ProbeCache};
use crate::serve::{seeded_pai_mix, MixedTrace, ServiceSpec};
use crate::trace::{JobSpec, PoissonMix};
use desim::json::{FromJson, JsonError, ToJson, Value};
use desim::{Dur, SimTime};
use rack::RackTopology;
use std::fmt;

/// The test-bed envelope a scenario asks for: 1..=8 advanced-mode Falcon
/// 4016 chassis, each 2 drawers × 8 slots, behind the inter-chassis rack
/// tier. Other shapes parse but fail [`Scenario::validate`] with
/// [`ScenarioError::UnsupportedTopology`]; the runnable gate and the
/// error message both derive from [`rack::supported_envelope`], the
/// single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    pub chassis: u8,
    pub drawers: u8,
    pub slots_per_drawer: u8,
}

impl Default for Topology {
    fn default() -> Topology {
        Topology { chassis: 1, drawers: 2, slots_per_drawer: 8 }
    }
}

impl Topology {
    /// A scenario topology asking for `chassis` stock Falcon chassis.
    pub fn with_chassis(chassis: u8) -> Topology {
        Topology { chassis, ..Topology::default() }
    }

    /// The equivalent rack-crate geometry (field-for-field).
    pub fn rack(&self) -> RackTopology {
        RackTopology {
            chassis: self.chassis,
            drawers_per_chassis: self.drawers,
            slots_per_drawer: self.slots_per_drawer,
        }
    }
}

impl ToJson for Topology {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("chassis", Value::from_u64(u64::from(self.chassis))),
            ("drawers", Value::from_u64(u64::from(self.drawers))),
            ("slots_per_drawer", Value::from_u64(u64::from(self.slots_per_drawer))),
        ])
    }
}

impl FromJson for Topology {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let d = Topology::default();
        Ok(Topology {
            chassis: opt_u8(v, "chassis", d.chassis)?,
            drawers: opt_u8(v, "drawers", d.drawers)?,
            slots_per_drawer: opt_u8(v, "slots_per_drawer", d.slots_per_drawer)?,
        })
    }
}

/// Where a scenario's workload comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSpec {
    /// Jobs listed inline in the scenario file.
    Jobs { name: String, jobs: Vec<JobSpec> },
    /// The seeded Poisson/heavy-tail generator ([`PoissonMix`]). `name`
    /// defaults to `poisson-<n_jobs>x<seed:#x>`; the pinned studies set
    /// it explicitly to keep their legacy trace names (and so their
    /// report bytes).
    Poisson {
        seed: u64,
        n_jobs: usize,
        tenants: u32,
        mean_interarrival: Dur,
        name: Option<String>,
    },
    /// The seeded PAI-style mixed generator ([`seeded_pai_mix`]): a
    /// contended training wave plus `n_services` latency-SLO services.
    PaiMix { n_jobs: usize, n_services: usize, seed: u64 },
}

impl ToJson for TraceSpec {
    fn to_json(&self) -> Value {
        match self {
            TraceSpec::Jobs { name, jobs } => Value::obj(vec![
                ("kind", Value::str("jobs")),
                ("name", Value::str(name.clone())),
                ("jobs", jobs.to_json()),
            ]),
            TraceSpec::Poisson { seed, n_jobs, tenants, mean_interarrival, name } => {
                let mut fields = vec![
                    ("kind", Value::str("poisson")),
                    ("seed", Value::from_u64(*seed)),
                    ("n_jobs", Value::from_u64(*n_jobs as u64)),
                    ("tenants", Value::from_u64(u64::from(*tenants))),
                    ("mean_interarrival_ns", mean_interarrival.to_json()),
                ];
                if let Some(n) = name {
                    fields.push(("name", Value::str(n.clone())));
                }
                Value::obj(fields)
            }
            TraceSpec::PaiMix { n_jobs, n_services, seed } => Value::obj(vec![
                ("kind", Value::str("pai-mix")),
                ("n_jobs", Value::from_u64(*n_jobs as u64)),
                ("n_services", Value::from_u64(*n_services as u64)),
                ("seed", Value::from_u64(*seed)),
            ]),
        }
    }
}

impl FromJson for TraceSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.get("kind")?.as_str()? {
            "jobs" => Ok(TraceSpec::Jobs {
                name: String::from_json(v.get("name")?)?,
                jobs: Vec::<JobSpec>::from_json(v.get("jobs")?)?,
            }),
            "poisson" => Ok(TraceSpec::Poisson {
                seed: v.get("seed")?.as_u64()?,
                n_jobs: v.get("n_jobs")?.as_u64()? as usize,
                tenants: v.get("tenants")?.as_u32()?,
                mean_interarrival: Dur::from_json(v.get("mean_interarrival_ns")?)?,
                name: match v.get("name") {
                    Ok(n) => Some(String::from_json(n)?),
                    Err(_) => None,
                },
            }),
            "pai-mix" => Ok(TraceSpec::PaiMix {
                n_jobs: v.get("n_jobs")?.as_u64()? as usize,
                n_services: v.get("n_services")?.as_u64()? as usize,
                seed: v.get("seed")?.as_u64()?,
            }),
            other => Err(JsonError::decode(format!("unknown trace kind \"{other}\""))),
        }
    }
}

/// Where a scenario's fault plan comes from.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FaultSpec {
    /// Fault-free replay (the default when the field is omitted).
    #[default]
    None,
    /// Events listed inline in the scenario file.
    Inline(FaultPlan),
    /// A seeded random plan ([`seeded_fault_plan`]).
    Seeded { n_events: usize, horizon: Dur, seed: u64 },
}

impl ToJson for FaultSpec {
    fn to_json(&self) -> Value {
        match self {
            FaultSpec::None => Value::obj(vec![("kind", Value::str("none"))]),
            FaultSpec::Inline(plan) => Value::obj(vec![
                ("kind", Value::str("inline")),
                ("name", Value::str(plan.name.clone())),
                ("events", plan.events.to_json()),
            ]),
            FaultSpec::Seeded { n_events, horizon, seed } => Value::obj(vec![
                ("kind", Value::str("seeded")),
                ("n_events", Value::from_u64(*n_events as u64)),
                ("horizon_ns", horizon.to_json()),
                ("seed", Value::from_u64(*seed)),
            ]),
        }
    }
}

impl FromJson for FaultSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.get("kind")?.as_str()? {
            "none" => Ok(FaultSpec::None),
            "inline" => Ok(FaultSpec::Inline(FaultPlan {
                name: String::from_json(v.get("name")?)?,
                events: Vec::from_json(v.get("events")?)?,
            })),
            "seeded" => Ok(FaultSpec::Seeded {
                n_events: v.get("n_events")?.as_u64()? as usize,
                horizon: Dur::from_json(v.get("horizon_ns")?)?,
                seed: v.get("seed")?.as_u64()?,
            }),
            other => Err(JsonError::decode(format!("unknown fault kind \"{other}\""))),
        }
    }
}

/// How much detail the scenario's reports keep when serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricLevel {
    /// Everything, per-job and per-service arrays included — the level
    /// golden files pin.
    #[default]
    Full,
    /// Cluster- and pool-level numbers only: the per-job `jobs` array and
    /// per-service `services` array are stripped. The right level for
    /// many-scenario sweeps.
    Summary,
}

impl MetricLevel {
    fn as_str(self) -> &'static str {
        match self {
            MetricLevel::Full => "full",
            MetricLevel::Summary => "summary",
        }
    }

    fn from_str(s: &str) -> Option<MetricLevel> {
        match s {
            "full" => Some(MetricLevel::Full),
            "summary" => Some(MetricLevel::Summary),
            _ => None,
        }
    }
}

/// One declarative experiment: everything a replay needs, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    pub topology: Topology,
    pub trace: TraceSpec,
    pub faults: FaultSpec,
    /// Explicit services, appended to whatever the trace kind provides
    /// (ids must not collide with trace-provided services).
    pub services: Vec<ServiceSpec>,
    /// Policy names, resolved through [`policy_by_name`]. One replay per
    /// policy; report order is policy order.
    pub policies: Vec<String>,
    pub config: SchedulerConfig,
    pub metrics: MetricLevel,
}

/// Typed scenario-spec failures ([`Scenario::validate`] and the runners).
#[derive(Debug)]
pub enum ScenarioError {
    EmptyName,
    UnsupportedTopology(Topology),
    EmptyTrace { scenario: String },
    NoPolicies { scenario: String },
    UnknownPolicy { scenario: String, source: crate::policy::UnknownPolicy },
    DuplicatePolicy { scenario: String, policy: String },
    DuplicateJobId { scenario: String, id: u64 },
    DuplicateServiceId { scenario: String, id: u64 },
    /// A job's `priority` field is outside the supported tiers (1..=3).
    BadPriority { scenario: String, job: u64, priority: u8 },
    BadSlice { scenario: String, service: u64, slice: u8 },
    BadConfig { scenario: String, msg: String },
    BadFault { scenario: String, msg: String },
    /// A fault strikes after every job has arrived and every service
    /// window has closed — it could only ever hit an empty bed tail.
    FaultBeyondHorizon { scenario: String, event: usize, at: SimTime, horizon: SimTime },
    Json(JsonError),
    Scheduler(SchedulerError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyName => write!(f, "scenario has no name"),
            ScenarioError::UnsupportedTopology(t) => write!(
                f,
                "topology {}x{}x{} is outside the runnable envelope ({})",
                t.chassis,
                t.drawers,
                t.slots_per_drawer,
                rack::supported_envelope()
            ),
            ScenarioError::EmptyTrace { scenario } => {
                write!(f, "{scenario}: trace has neither jobs nor services")
            }
            ScenarioError::NoPolicies { scenario } => {
                write!(f, "{scenario}: at least one policy is required")
            }
            ScenarioError::UnknownPolicy { scenario, source } => {
                write!(f, "{scenario}: {source}")
            }
            ScenarioError::DuplicatePolicy { scenario, policy } => {
                write!(f, "{scenario}: policy \"{policy}\" listed more than once")
            }
            ScenarioError::DuplicateJobId { scenario, id } => {
                write!(f, "{scenario}: job id {id} appears more than once")
            }
            ScenarioError::DuplicateServiceId { scenario, id } => {
                write!(f, "{scenario}: service id {id} appears more than once")
            }
            ScenarioError::BadPriority { scenario, job, priority } => {
                write!(f, "{scenario}: job {job}: priority tier {priority} outside 1..=3")
            }
            ScenarioError::BadSlice { scenario, service, slice } => {
                write!(f, "{scenario}: service {service} slice {slice}/7 not in {{1,2,4,7}}")
            }
            ScenarioError::BadConfig { scenario, msg } => write!(f, "{scenario}: config: {msg}"),
            ScenarioError::BadFault { scenario, msg } => write!(f, "{scenario}: fault plan: {msg}"),
            ScenarioError::FaultBeyondHorizon { scenario, event, at, horizon } => write!(
                f,
                "{scenario}: fault event {event} strikes at {:.1}s, beyond the trace horizon {:.1}s",
                at.as_secs_f64(),
                horizon.as_secs_f64()
            ),
            ScenarioError::Json(e) => write!(f, "scenario json: {e}"),
            ScenarioError::Scheduler(e) => write!(f, "replay: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<JsonError> for ScenarioError {
    fn from(e: JsonError) -> Self {
        ScenarioError::Json(e)
    }
}

impl From<SchedulerError> for ScenarioError {
    fn from(e: SchedulerError) -> Self {
        ScenarioError::Scheduler(e)
    }
}

fn opt_u8(v: &Value, key: &str, default: u8) -> Result<u8, JsonError> {
    match v.get(key) {
        Ok(x) => x.as_u8(),
        Err(_) => Ok(default),
    }
}

impl Scenario {
    /// A scenario over the default bed, fault-free, full metrics — the
    /// base hand-written files start from.
    pub fn new(name: impl Into<String>, trace: TraceSpec, policies: Vec<String>) -> Scenario {
        Scenario {
            name: name.into(),
            topology: Topology::default(),
            trace,
            faults: FaultSpec::None,
            services: Vec::new(),
            policies,
            config: SchedulerConfig::default(),
            metrics: MetricLevel::Full,
        }
    }

    /// Expand generators: the concrete workload (jobs + services, sorted)
    /// and the concrete fault plan this spec describes.
    pub fn materialize(&self) -> (MixedTrace, FaultPlan) {
        let (name, jobs, mut services) = match &self.trace {
            TraceSpec::Jobs { name, jobs } => (name.clone(), jobs.clone(), Vec::new()),
            TraceSpec::Poisson { seed, n_jobs, tenants, mean_interarrival, name } => {
                let name = name
                    .clone()
                    .unwrap_or_else(|| format!("poisson-{n_jobs}x{seed:#x}"));
                let t = PoissonMix {
                    seed: *seed,
                    n_jobs: *n_jobs,
                    tenants: *tenants,
                    mean_interarrival: *mean_interarrival,
                }
                .generate(name.clone());
                (name, t.jobs, Vec::new())
            }
            TraceSpec::PaiMix { n_jobs, n_services, seed } => {
                let m = seeded_pai_mix(*n_jobs, *n_services, *seed);
                (m.name, m.jobs, m.services)
            }
        };
        services.extend(self.services.iter().cloned());
        let topo = self.topology.rack();
        let plan = match &self.faults {
            FaultSpec::None => FaultPlan::none(),
            FaultSpec::Inline(plan) => plan.clone().sorted(),
            // Single-chassis specs keep the legacy generator (and so their
            // pinned bytes); racks draw chassis-routed plans that can also
            // degrade the inter-chassis tier.
            FaultSpec::Seeded { n_events, horizon, seed } => {
                if topo.chassis > 1 {
                    seeded_rack_fault_plan(*n_events, *horizon, *seed, &topo)
                } else {
                    seeded_fault_plan(*n_events, *horizon, *seed)
                }
            }
        };
        (MixedTrace { name, jobs, services }.sorted(), plan)
    }

    /// The instant after which no new work can appear: the last job
    /// arrival or service-window close. Fault events striking beyond it
    /// are rejected — they could only hit the drained tail of the replay.
    pub fn horizon(mixed: &MixedTrace) -> SimTime {
        let jobs = mixed.jobs.iter().map(|j| j.arrival);
        let svcs = mixed.services.iter().map(ServiceSpec::end);
        jobs.chain(svcs).max().unwrap_or(SimTime::ZERO)
    }

    /// Check the spec against the runnable envelope; every rejection is a
    /// typed [`ScenarioError`]. Cheap enough to call before every run —
    /// the runners do.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::EmptyName);
        }
        if !self.topology.rack().is_supported() {
            return Err(ScenarioError::UnsupportedTopology(self.topology));
        }
        let scenario = || self.name.clone();
        if self.policies.is_empty() {
            return Err(ScenarioError::NoPolicies { scenario: scenario() });
        }
        for (i, p) in self.policies.iter().enumerate() {
            if let Err(source) = crate::policy::resolve_policy(p) {
                return Err(ScenarioError::UnknownPolicy { scenario: scenario(), source });
            }
            if self.policies[..i].contains(p) {
                return Err(ScenarioError::DuplicatePolicy {
                    scenario: scenario(),
                    policy: p.clone(),
                });
            }
        }
        if self.config.probe_iters == 0 {
            return Err(ScenarioError::BadConfig {
                scenario: scenario(),
                msg: "probe_iters must be at least 1".into(),
            });
        }
        if self.config.quota_gpus_per_tenant == 0 {
            return Err(ScenarioError::BadConfig {
                scenario: scenario(),
                msg: "quota_gpus_per_tenant must be at least 1".into(),
            });
        }
        if !(self.config.interference >= 0.0 && self.config.interference.is_finite()) {
            return Err(ScenarioError::BadConfig {
                scenario: scenario(),
                msg: format!("interference {} must be finite and >= 0", self.config.interference),
            });
        }
        if self.config.audit_every == 0 {
            return Err(ScenarioError::BadConfig {
                scenario: scenario(),
                msg: "audit_every must be at least 1".into(),
            });
        }
        let (mixed, plan) = self.materialize();
        if mixed.jobs.is_empty() && mixed.services.is_empty() {
            return Err(ScenarioError::EmptyTrace { scenario: scenario() });
        }
        let mut ids: Vec<u64> = mixed.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(ScenarioError::DuplicateJobId { scenario: scenario(), id: w[0] });
        }
        for j in &mixed.jobs {
            if !(1..=3).contains(&j.priority) {
                return Err(ScenarioError::BadPriority {
                    scenario: scenario(),
                    job: j.id,
                    priority: j.priority,
                });
            }
        }
        let mut sids: Vec<u64> = mixed.services.iter().map(|s| s.id).collect();
        sids.sort_unstable();
        if let Some(w) = sids.windows(2).find(|w| w[0] == w[1]) {
            return Err(ScenarioError::DuplicateServiceId { scenario: scenario(), id: w[0] });
        }
        for s in &mixed.services {
            if !matches!(s.slice, 1 | 2 | 4 | 7) {
                return Err(ScenarioError::BadSlice {
                    scenario: scenario(),
                    service: s.id,
                    slice: s.slice,
                });
            }
        }
        plan.validate_for(&self.topology.rack())
            .map_err(|msg| ScenarioError::BadFault { scenario: scenario(), msg })?;
        let horizon = Self::horizon(&mixed);
        for (i, e) in plan.events.iter().enumerate() {
            if e.at > horizon {
                return Err(ScenarioError::FaultBeyondHorizon {
                    scenario: scenario(),
                    event: i,
                    at: e.at,
                    horizon,
                });
            }
        }
        Ok(())
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().emit_pretty()
    }

    pub fn from_json_str(s: &str) -> Result<Scenario, JsonError> {
        Scenario::from_json(&Value::parse(s)?)
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(self.name.clone())),
            ("topology", self.topology.to_json()),
            ("trace", self.trace.to_json()),
            ("faults", self.faults.to_json()),
            ("services", self.services.to_json()),
            (
                "policies",
                Value::Arr(self.policies.iter().map(|p| Value::str(p.clone())).collect()),
            ),
            ("config", {
                let mut fields = vec![
                    (
                        "quota_gpus_per_tenant",
                        Value::from_u64(self.config.quota_gpus_per_tenant as u64),
                    ),
                    ("elastic", Value::Bool(self.config.elastic)),
                    ("probe_iters", Value::from_u64(self.config.probe_iters)),
                    ("interference", Value::Num(self.config.interference)),
                ];
                // Performance knobs are emitted only when non-default, so
                // pre-existing scenario files round-trip byte-identically.
                let defaults = SchedulerConfig::default();
                if self.config.audit_every != defaults.audit_every {
                    fields.push(("audit_every", Value::from_u64(self.config.audit_every)));
                }
                if self.config.incremental_reprice != defaults.incremental_reprice {
                    fields.push((
                        "incremental_reprice",
                        Value::Bool(self.config.incremental_reprice),
                    ));
                }
                if self.config.shard_serving != defaults.shard_serving {
                    fields.push(("shard_serving", Value::Bool(self.config.shard_serving)));
                }
                if self.config.preempt != defaults.preempt {
                    fields.push(("preempt", Value::Bool(self.config.preempt)));
                }
                if self.config.defrag != defaults.defrag {
                    fields.push(("defrag", Value::Bool(self.config.defrag)));
                }
                if self.config.relocate_slo != defaults.relocate_slo {
                    fields.push(("relocate_slo", Value::Bool(self.config.relocate_slo)));
                }
                Value::obj(fields)
            }),
            ("metrics", Value::str(self.metrics.as_str())),
        ])
    }
}

impl FromJson for Scenario {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let defaults = SchedulerConfig::default();
        let config = match v.get("config") {
            Ok(c) => SchedulerConfig {
                quota_gpus_per_tenant: match c.get("quota_gpus_per_tenant") {
                    Ok(x) => x.as_u64()? as usize,
                    Err(_) => defaults.quota_gpus_per_tenant,
                },
                elastic: match c.get("elastic") {
                    Ok(x) => x.as_bool()?,
                    Err(_) => defaults.elastic,
                },
                probe_iters: match c.get("probe_iters") {
                    Ok(x) => x.as_u64()?,
                    Err(_) => defaults.probe_iters,
                },
                interference: match c.get("interference") {
                    Ok(x) => x.as_f64()?,
                    Err(_) => defaults.interference,
                },
                audit_every: match c.get("audit_every") {
                    Ok(x) => x.as_u64()?,
                    Err(_) => defaults.audit_every,
                },
                incremental_reprice: match c.get("incremental_reprice") {
                    Ok(x) => x.as_bool()?,
                    Err(_) => defaults.incremental_reprice,
                },
                shard_serving: match c.get("shard_serving") {
                    Ok(x) => x.as_bool()?,
                    Err(_) => defaults.shard_serving,
                },
                preempt: match c.get("preempt") {
                    Ok(x) => x.as_bool()?,
                    Err(_) => defaults.preempt,
                },
                defrag: match c.get("defrag") {
                    Ok(x) => x.as_bool()?,
                    Err(_) => defaults.defrag,
                },
                relocate_slo: match c.get("relocate_slo") {
                    Ok(x) => x.as_bool()?,
                    Err(_) => defaults.relocate_slo,
                },
            },
            Err(_) => defaults,
        };
        Ok(Scenario {
            name: String::from_json(v.get("name")?)?,
            topology: match v.get("topology") {
                Ok(t) => Topology::from_json(t)?,
                Err(_) => Topology::default(),
            },
            trace: TraceSpec::from_json(v.get("trace")?)?,
            faults: match v.get("faults") {
                Ok(fs) => FaultSpec::from_json(fs)?,
                Err(_) => FaultSpec::None,
            },
            services: match v.get("services") {
                Ok(s) => Vec::<ServiceSpec>::from_json(s)?,
                Err(_) => Vec::new(),
            },
            policies: match v.get("policies")?.as_arr() {
                Ok(items) => items
                    .iter()
                    .map(|p| Ok(p.as_str()?.to_string()))
                    .collect::<Result<Vec<String>, JsonError>>()?,
                Err(e) => return Err(e),
            },
            config,
            metrics: match v.get("metrics") {
                Ok(m) => {
                    let s = m.as_str()?;
                    MetricLevel::from_str(s)
                        .ok_or_else(|| JsonError::decode(format!("unknown metric level \"{s}\"")))?
                }
                Err(_) => MetricLevel::Full,
            },
        })
    }
}

/// The canonical result of one scenario: one [`ScheduleReport`] per
/// policy, in policy order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    pub scenario: String,
    pub metrics: MetricLevel,
    pub reports: Vec<ScheduleReport>,
}

/// Strip the bulky per-entity arrays for [`MetricLevel::Summary`]: the
/// report's `jobs` array and, inside any `serve` block, its `services`
/// array.
fn summarize(report: Value) -> Value {
    match report {
        Value::Obj(pairs) => Value::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "jobs")
                .map(|(k, v)| if k == "serve" { (k, summarize_serve(v)) } else { (k, v) })
                .collect(),
        ),
        other => other,
    }
}

fn summarize_serve(serve: Value) -> Value {
    match serve {
        Value::Obj(pairs) => {
            Value::Obj(pairs.into_iter().filter(|(k, _)| k != "services").collect())
        }
        other => other,
    }
}

impl ScenarioReport {
    fn report_json(&self, r: &ScheduleReport) -> Value {
        match self.metrics {
            MetricLevel::Full => r.to_json(),
            MetricLevel::Summary => summarize(r.to_json()),
        }
    }

    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("scenario", Value::str(self.scenario.clone())),
            ("metrics", Value::str(self.metrics.as_str())),
            (
                "reports",
                Value::Arr(self.reports.iter().map(|r| self.report_json(r)).collect()),
            ),
        ])
    }

    /// The canonical serialized form. A one-policy, full-metrics scenario
    /// emits the bare [`ScheduleReport`] — byte-compatible with the
    /// goldens the pre-scenario `repro` subcommands pinned — everything
    /// else emits the wrapping object.
    pub fn canonical_json_string(&self) -> String {
        if self.reports.len() == 1 && self.metrics == MetricLevel::Full {
            self.reports[0].to_json_string()
        } else {
            self.to_json().emit_pretty()
        }
    }
}

/// Replay `scenario` under each of its policies across `jobs` parsweep
/// workers (probe cache warmed once, split per replay, absorbed back in
/// policy order — the [`crate::cluster::compare_policies_cached`]
/// pattern, so output is byte-identical at any worker count).
pub fn run_scenario(
    scenario: &Scenario,
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<ScenarioReport, ScenarioError> {
    scenario.validate()?;
    let topo = scenario.topology.rack();
    let (mixed, plan) = scenario.materialize();
    cache.warm(&warm_set_for_trace(&mixed.training()), jobs);
    let cfg = &scenario.config;
    let replays: Vec<parsweep::Job<'_, Result<(ScheduleReport, ProbeCache), SchedulerError>>> =
        scenario
            .policies
            .iter()
            .map(|name| {
                let split = cache.split();
                let policy = policy_by_name(name).expect("validated above");
                let mixed = mixed.clone();
                let plan = plan.clone();
                let label = format!("scenario {} under {name}", scenario.name);
                parsweep::Job::new(label, move || {
                    let sim = if mixed.services.is_empty() {
                        ClusterSim::with_probe_cache_on(
                            topo,
                            mixed.training(),
                            policy,
                            cfg.clone(),
                            split,
                        )?
                    } else {
                        ClusterSim::with_probe_cache_mixed_on(topo, mixed, policy, cfg.clone(), split)?
                    };
                    let sim = if plan.is_empty() { sim } else { sim.with_faults(plan)? };
                    // Intra-replay serving shards reuse the sweep's worker
                    // budget (byte-identical at any count, so over-asking
                    // while policies also fan out is only a scheduling
                    // matter, not a correctness one).
                    sim.with_workers(jobs).run_report()
                })
            })
            .collect();
    let mut reports = Vec::new();
    for outcome in parsweep::run(jobs, replays) {
        let (report, probes) = outcome?;
        cache.absorb(probes);
        reports.push(report);
    }
    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        metrics: scenario.metrics,
        reports,
    })
}

/// Replay `scenario` under one externally supplied `policy` instead of
/// the scenario's own policy list — the autotuner's evaluation path,
/// where the candidate under test is a [`crate::policy::ParamPolicy`]
/// that has no name the scenario file could carry. Runs serially
/// (callers fan out across *candidates*, one parsweep job each, so the
/// replay itself must not also claim workers) and returns the single
/// [`ScheduleReport`].
pub fn run_scenario_with_policy(
    scenario: &Scenario,
    policy: Box<dyn crate::policy::PlacePolicy>,
    cache: &mut ProbeCache,
) -> Result<ScheduleReport, ScenarioError> {
    scenario.validate()?;
    let topo = scenario.topology.rack();
    let (mixed, plan) = scenario.materialize();
    cache.warm(&warm_set_for_trace(&mixed.training()), 1);
    let cfg = &scenario.config;
    let split = cache.split();
    let sim = if mixed.services.is_empty() {
        ClusterSim::with_probe_cache_on(topo, mixed.training(), policy, cfg.clone(), split)?
    } else {
        ClusterSim::with_probe_cache_mixed_on(topo, mixed, policy, cfg.clone(), split)?
    };
    let sim = if plan.is_empty() { sim } else { sim.with_faults(plan)? };
    let (report, probes) = sim.with_workers(1).run_report()?;
    cache.absorb(probes);
    Ok(report)
}

/// Run a whole scenario matrix: each scenario is one parsweep job (its
/// policies replay serially inside it), results return **in scenario
/// order**. Splits of the shared probe cache are taken on the caller's
/// thread in submission order and absorbed back in the same order, so
/// the matrix — reports and cache — is byte-identical at any `jobs`.
///
/// A scenario whose `probe_iters` differs from the shared cache's prices
/// from (and discards) a private cache instead — persisted prices are
/// only reusable at the iteration count they were measured with.
pub fn run_matrix(
    scenarios: &[Scenario],
    jobs: usize,
    cache: &mut ProbeCache,
) -> Result<Vec<ScenarioReport>, ScenarioError> {
    for sc in scenarios {
        sc.validate()?;
    }
    let shared_iters = cache.probe_iters();
    let runs: Vec<parsweep::Job<'_, Result<(ScenarioReport, Option<ProbeCache>), ScenarioError>>> =
        scenarios
            .iter()
            .map(|sc| {
                let shareable = sc.config.probe_iters == shared_iters;
                let mut local = if shareable {
                    cache.split()
                } else {
                    ProbeCache::new(sc.config.probe_iters)
                };
                parsweep::Job::new(format!("scenario {}", sc.name), move || {
                    let report = run_scenario(sc, 1, &mut local)?;
                    Ok((report, shareable.then_some(local)))
                })
            })
            .collect();
    let mut reports = Vec::new();
    for outcome in parsweep::run(jobs, runs) {
        let (report, probes) = outcome?;
        if let Some(probes) = probes {
            cache.absorb(probes);
        }
        reports.push(report);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::paper_fault_plan;
    use crate::trace::seeded_two_tenant;
    use desim::Dur;

    /// The spec equivalent of `repro cluster`'s pinned study.
    fn fifo_scenario() -> Scenario {
        Scenario::new(
            "cluster_fifo",
            TraceSpec::Poisson {
                seed: 0xC10D,
                n_jobs: 20,
                tenants: 2,
                mean_interarrival: Dur::from_millis(1500),
                name: Some("two-tenant-20x0xc10d".into()),
            },
            vec!["fifo-first-fit".into()],
        )
    }

    #[test]
    fn poisson_spec_materializes_the_legacy_trace() {
        let (mixed, plan) = fifo_scenario().materialize();
        assert!(plan.is_empty());
        assert!(mixed.services.is_empty());
        assert_eq!(mixed.training(), seeded_two_tenant(20, 0xC10D));
    }

    #[test]
    fn scenario_json_round_trips_byte_identically() {
        let mut sc = fifo_scenario();
        sc.faults = FaultSpec::Inline(paper_fault_plan());
        sc.metrics = MetricLevel::Summary;
        let text = sc.to_json_string();
        let back = Scenario::from_json_str(&text).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn defaults_fill_omitted_fields() {
        let minimal = r#"{
            "name": "tiny",
            "trace": {"kind": "poisson", "seed": 7, "n_jobs": 4, "tenants": 2,
                      "mean_interarrival_ns": 1500000000},
            "policies": ["best-fit"]
        }"#;
        let sc = Scenario::from_json_str(minimal).unwrap();
        assert_eq!(sc.topology, Topology::default());
        assert_eq!(sc.faults, FaultSpec::None);
        assert!(sc.services.is_empty());
        assert_eq!(sc.metrics, MetricLevel::Full);
        assert_eq!(sc.config, SchedulerConfig::default());
        assert!(sc.validate().is_ok());
        let (mixed, _) = sc.materialize();
        assert_eq!(mixed.name, "poisson-4x0x7", "derived default trace name");
    }

    #[test]
    fn validate_rejects_unsupported_topology_and_unknown_policy() {
        // Any chassis count in the rack envelope is runnable now...
        let mut sc = fifo_scenario();
        sc.topology.chassis = 4;
        assert!(sc.validate().is_ok());
        // ...but zero chassis, a too-tall rack, and odd drawer shapes are
        // rejected with the envelope named in the message.
        for bad in [Topology::with_chassis(0), Topology::with_chassis(9)] {
            let mut sc = fifo_scenario();
            sc.topology = bad;
            let err = sc.validate().unwrap_err();
            assert!(matches!(err, ScenarioError::UnsupportedTopology(_)));
            assert!(
                err.to_string().contains(&rack::supported_envelope()),
                "message names the envelope: {err}"
            );
        }
        let mut sc = fifo_scenario();
        sc.topology.drawers = 3;
        assert!(matches!(sc.validate(), Err(ScenarioError::UnsupportedTopology(_))));
        let mut sc = fifo_scenario();
        sc.policies = vec!["round-robin".into()];
        assert!(matches!(sc.validate(), Err(ScenarioError::UnknownPolicy { .. })));
        let mut sc = fifo_scenario();
        sc.policies = vec!["fifo-first-fit".into(), "fifo-first-fit".into()];
        assert!(matches!(sc.validate(), Err(ScenarioError::DuplicatePolicy { .. })));
        let mut sc = fifo_scenario();
        sc.policies.clear();
        assert!(matches!(sc.validate(), Err(ScenarioError::NoPolicies { .. })));
    }

    #[test]
    fn validate_rejects_fault_beyond_horizon() {
        let mut sc = fifo_scenario();
        let (mixed, _) = sc.materialize();
        let horizon = Scenario::horizon(&mixed);
        let mut plan = paper_fault_plan();
        plan.events[0].at = horizon + Dur::from_secs(1);
        sc.faults = FaultSpec::Inline(plan);
        assert!(matches!(sc.validate(), Err(ScenarioError::FaultBeyondHorizon { .. })));
        // The pinned plan sits inside the horizon and passes.
        sc.faults = FaultSpec::Inline(paper_fault_plan());
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn one_policy_full_scenario_matches_the_legacy_replay_bytes() {
        let sc = fifo_scenario();
        let mut cache = ProbeCache::new(sc.config.probe_iters);
        let rep = run_scenario(&sc, 2, &mut cache).unwrap();
        let legacy = ClusterSim::new(
            seeded_two_tenant(20, 0xC10D),
            crate::policy::policy_by_name("fifo-first-fit").unwrap(),
            SchedulerConfig::default(),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(rep.canonical_json_string(), legacy.to_json_string());
    }

    #[test]
    fn summary_level_strips_per_entity_arrays() {
        let mut sc = fifo_scenario();
        sc.metrics = MetricLevel::Summary;
        let mut cache = ProbeCache::new(sc.config.probe_iters);
        let rep = run_scenario(&sc, 1, &mut cache).unwrap();
        let text = rep.canonical_json_string();
        assert!(text.contains("\"scenario\""), "summary wraps in the scenario object");
        assert!(!text.contains("\"jobs\""), "per-job array stripped: {text}");
        assert!(text.contains("\"mean_jct_ns\""), "cluster metrics kept");
    }

    #[test]
    fn matrix_preserves_scenario_order_and_shares_the_cache() {
        let mut small = fifo_scenario();
        small.name = "small".into();
        small.trace = TraceSpec::Poisson {
            seed: 0xC10D,
            n_jobs: 6,
            tenants: 2,
            mean_interarrival: Dur::from_millis(1500),
            name: None,
        };
        let mut odd_iters = small.clone();
        odd_iters.name = "odd-iters".into();
        odd_iters.config.probe_iters = 2;
        let scenarios = vec![small.clone(), odd_iters];
        let mut cache = ProbeCache::new(SchedulerConfig::default().probe_iters);
        let reps = run_matrix(&scenarios, 2, &mut cache).unwrap();
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].scenario, "small");
        assert_eq!(reps[1].scenario, "odd-iters");
        assert!(cache.len() > 0, "matching-iters scenario warmed the shared cache");
    }
}
