//! Property tests for the declarative scenario harness (testkit):
//!
//! * any *valid* random scenario — every trace kind, fault source,
//!   service set, policy subset, config corner — survives JSON
//!   export/import bit-exactly (struct equality AND byte-identical
//!   re-emission) and passes `validate()`;
//! * every malformed mutation of a valid scenario — duplicate job or
//!   service ids, out-of-range MIG slices, fault events beyond the trace
//!   horizon, unknown/duplicate/empty policy lists, unsupported
//!   topologies — is rejected by `validate()` with the matching *typed*
//!   [`ScenarioError`], never a panic or a silently-accepted spec.
//!
//! Scenarios are assembled from plain-integer raw material (the
//! `fault_props.rs` idiom) so testkit shrinking stays simple, and fault
//! times are derived from the materialized horizon so the valid cases
//! are valid *by construction*.

use desim::{Dur, SimTime};
use dlmodels::Benchmark;
use scheduler::serve::{ArrivalKind, ServiceSpec};
use scheduler::trace::{JobSpec, TenantId};
use scheduler::{
    seeded_fault_plan, FaultEvent, FaultKind, FaultSpec, MetricLevel, Scenario, ScenarioError,
    SchedulerConfig, Topology, TraceSpec,
};
use testkit::{
    bools, prop_assert, prop_assert_eq, property, tuple3, tuple5, u32_in, u64_in, u8_in, vec_of,
    Gen,
};

const POLICY_NAMES: [&str; 5] =
    ["fifo-first-fit", "best-fit", "frag-aware", "topology-aware", "slo-aware-pack"];

/// Raw material for inline jobs: (tenant, benchmark, demand-index,
/// arrival ms, iters). Ids are assigned by position, so they are unique
/// by construction.
fn raw_jobs() -> Gen<Vec<(u8, u8, u8, u32, u8)>> {
    vec_of(
        tuple5(u8_in(0..2), u8_in(0..5), u8_in(0..4), u32_in(0..30_000), u8_in(4..24)),
        1..8,
    )
}

/// Raw material for explicit services: (tenant, benchmark, slice-index,
/// start ms, duration s). Slice indices map into the valid {1, 2, 4, 7}.
fn raw_services() -> Gen<Vec<(u8, u8, u8, u32, u8)>> {
    vec_of(
        tuple5(u8_in(0..2), u8_in(0..5), u8_in(0..4), u32_in(0..20_000), u8_in(2..12)),
        0..4,
    )
}

/// (quota, elastic, probe_iters, interference-in-hundredths, summary?).
fn raw_config() -> Gen<(u8, bool, u8, u8, bool)> {
    tuple5(u8_in(1..17), bools(), u8_in(1..5), u8_in(0..100), bools())
}

fn build_jobs(raw: &[(u8, u8, u8, u32, u8)]) -> Vec<JobSpec> {
    raw.iter()
        .enumerate()
        .map(|(id, &(tenant, bench, demand, arrival_ms, iters))| {
            let gpus = [1u8, 2, 4, 8][usize::from(demand)];
            JobSpec {
                id: id as u64,
                tenant: TenantId(u32::from(tenant)),
                benchmark: Benchmark::all()[usize::from(bench)],
                gpus,
                min_gpus: if gpus == 8 { 4 } else { gpus },
                priority: 1 + tenant % 2,
                arrival: SimTime::from_millis(u64::from(arrival_ms)),
                iters: u64::from(iters),
            }
        })
        .collect()
}

/// Explicit services get ids from 1000 up so they can never collide with
/// trace-provided services (PAI-mix numbers its own from 0).
fn build_services(raw: &[(u8, u8, u8, u32, u8)]) -> Vec<ServiceSpec> {
    raw.iter()
        .enumerate()
        .map(|(i, &(tenant, bench, slice_idx, start_ms, dur_s))| ServiceSpec {
            id: 1000 + i as u64,
            tenant: TenantId(u32::from(tenant)),
            benchmark: Benchmark::all()[usize::from(bench)],
            slice: [1u8, 2, 4, 7][usize::from(slice_idx)],
            slo: Dur::from_millis(120),
            rate_rps: 2.0 + f64::from(tenant),
            arrivals: if dur_s % 2 == 0 { ArrivalKind::Poisson } else { ArrivalKind::Diurnal },
            start: SimTime::from_millis(u64::from(start_ms)),
            duration: Dur::from_secs(u64::from(dur_s)),
            max_batch: 8,
            max_wait: Dur::from_millis(40),
            min_replicas: 1,
            max_replicas: 2,
        })
        .collect()
}

/// The policy subset a 5-bit mask selects (nonzero masks only), in
/// canonical order — unique by construction.
fn policies_from_mask(mask: u8) -> Vec<String> {
    POLICY_NAMES
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, p)| p.to_string())
        .collect()
}

/// Assemble a valid scenario from raw parts. `fault_mode` 0 is
/// fault-free, 1 derives an inline plan from the materialized horizon
/// (events at fractions of it, so they always pass the horizon check),
/// 2 uses the seeded generator bounded by the same horizon.
fn build_scenario(
    kind: u8,
    seed: u64,
    cfg: (u8, bool, u8, u8, bool),
    mask: u8,
    jobs_raw: &[(u8, u8, u8, u32, u8)],
    services_raw: &[(u8, u8, u8, u32, u8)],
    fault_mode: u8,
) -> Scenario {
    let (quota, elastic, probe_iters, interference, summary) = cfg;
    let trace = match kind {
        0 => TraceSpec::Jobs { name: format!("inline-{seed:#x}"), jobs: build_jobs(jobs_raw) },
        1 => TraceSpec::Poisson {
            seed,
            n_jobs: 1 + (seed % 10) as usize,
            tenants: 1 + (seed % 2) as u32,
            mean_interarrival: Dur::from_millis(500 + seed % 2000),
            name: if seed % 2 == 0 { Some(format!("named-{seed:#x}")) } else { None },
        },
        _ => TraceSpec::PaiMix {
            n_jobs: 1 + (seed % 6) as usize,
            n_services: (seed % 4) as usize,
            seed,
        },
    };
    let mut sc = Scenario::new(format!("prop-{seed:#x}"), trace, policies_from_mask(mask));
    sc.services = build_services(services_raw);
    sc.config = SchedulerConfig {
        quota_gpus_per_tenant: usize::from(quota),
        elastic,
        probe_iters: u64::from(probe_iters),
        interference: f64::from(interference) / 100.0,
        // The priority/migration knobs ride the seed so the round-trip
        // property covers every emit-only-when-set combination.
        preempt: seed & 1 != 0,
        defrag: seed & 2 != 0,
        relocate_slo: seed & 4 != 0,
        ..SchedulerConfig::default()
    };
    sc.metrics = if summary { MetricLevel::Summary } else { MetricLevel::Full };
    let (mixed, _) = sc.materialize();
    let horizon = Scenario::horizon(&mixed);
    sc.faults = match fault_mode {
        0 => FaultSpec::None,
        1 => FaultSpec::Inline(
            scheduler::FaultPlan {
                name: "prop-inline".into(),
                events: (0..1 + seed % 3)
                    .map(|k| FaultEvent {
                        at: SimTime::from_nanos(horizon.as_nanos() * k / 4),
                        chassis: 0,
                        kind: if k % 2 == 0 {
                            FaultKind::SlotDeath { drawer: (k % 2) as u8, slot: (seed % 8) as u8 }
                        } else {
                            FaultKind::LinkDegrade { drawer: 0, pct: 50 }
                        },
                        duration: Dur::from_millis(500 + seed % 5000),
                    })
                    .collect(),
            }
            .sorted(),
        ),
        _ => FaultSpec::Seeded {
            n_events: 1 + (seed % 3) as usize,
            horizon: Dur::from_nanos(horizon.as_nanos()),
            seed,
        },
    };
    sc
}

property! {
    /// Any valid random scenario round-trips through JSON bit-exactly:
    /// parse(emit) equals the original struct, re-emission is
    /// byte-identical, and the round-tripped spec still validates.
    #[cases(64)]
    fn valid_scenarios_round_trip_byte_identically(
        shape in tuple3(u8_in(0..3), u64_in(0..1_000_000), u8_in(0..3)),
        cfg in raw_config(),
        mask in u8_in(1..32),
        jobs_raw in raw_jobs(),
        services_raw in raw_services()
    ) {
        let (kind, seed, fault_mode) = shape;
        let mut sc = build_scenario(kind, seed, cfg, mask, &jobs_raw, &services_raw, fault_mode);
        // Sweep the whole runnable envelope: every chassis count 1..=8 is
        // a valid, serializable topology (seeded fault specs switch to the
        // chassis-routed rack generator above one chassis).
        sc.topology = Topology::with_chassis(1 + (seed % 8) as u8);
        sc.validate().expect("constructed scenarios are valid");

        let text = sc.to_json_string();
        let back = Scenario::from_json_str(&text).expect("canonical emission parses");
        prop_assert_eq!(&back, &sc, "struct round-trip");
        prop_assert_eq!(back.to_json_string(), text, "byte round-trip");
        prop_assert!(back.validate().is_ok(), "round-tripped spec still validates");
    }

    /// The seeded parts of a scenario materialize deterministically: the
    /// same spec always expands to the same workload and fault plan.
    #[cases(64)]
    fn materialization_is_pure(
        shape in tuple3(u8_in(0..3), u64_in(0..1_000_000), u8_in(0..3)),
        cfg in raw_config(),
        mask in u8_in(1..32),
        jobs_raw in raw_jobs(),
        services_raw in raw_services()
    ) {
        let (kind, seed, fault_mode) = shape;
        let sc = build_scenario(kind, seed, cfg, mask, &jobs_raw, &services_raw, fault_mode);
        let (mixed_a, plan_a) = sc.materialize();
        let (mixed_b, plan_b) = sc.materialize();
        prop_assert_eq!(&mixed_a, &mixed_b);
        prop_assert_eq!(&plan_a, &plan_b);
        // Everything the spec promises shows up: explicit services are
        // appended to whatever the trace kind provides.
        prop_assert!(mixed_a.services.len() >= services_raw.len());
        prop_assert!(plan_a.validate().is_ok());
    }

    /// Every malformed mutation of a valid scenario is rejected with the
    /// matching typed error — duplicate ids, bad slices, fault events
    /// beyond the horizon, policy-list abuse, unsupported topology.
    #[cases(64)]
    fn validate_rejects_each_malformation(
        mutation in u8_in(0..8),
        seed in u64_in(0..1_000_000),
        cfg in raw_config(),
        jobs_raw in raw_jobs(),
        services_raw in raw_services()
    ) {
        // Base: inline jobs + at least one explicit service, all five
        // policies — so every mutation below has something to corrupt.
        let mut sc = build_scenario(0, seed, cfg, 0b11111, &jobs_raw, &services_raw, 0);
        if sc.services.is_empty() {
            sc.services = build_services(&[(0, 0, 0, 100, 4)]);
        }
        sc.validate().expect("base scenario is valid");

        match mutation {
            0 => {
                let TraceSpec::Jobs { jobs, .. } = &mut sc.trace else { unreachable!() };
                let dup = jobs[0].clone();
                jobs.push(dup);
                prop_assert!(
                    matches!(sc.validate(), Err(ScenarioError::DuplicateJobId { id: 0, .. })),
                    "duplicate job id -> DuplicateJobId, got {:?}", sc.validate()
                );
            }
            1 => {
                let dup = sc.services[0].clone();
                sc.services.push(dup);
                prop_assert!(
                    matches!(sc.validate(), Err(ScenarioError::DuplicateServiceId { .. })),
                    "duplicate service id -> DuplicateServiceId, got {:?}", sc.validate()
                );
            }
            2 => {
                sc.services[0].slice = [0u8, 3, 5, 6, 8, 9][(seed % 6) as usize];
                prop_assert!(
                    matches!(sc.validate(), Err(ScenarioError::BadSlice { .. })),
                    "slice outside {{1,2,4,7}} -> BadSlice, got {:?}", sc.validate()
                );
            }
            3 => {
                let (mixed, _) = sc.materialize();
                let horizon = Scenario::horizon(&mixed);
                sc.faults = FaultSpec::Inline(scheduler::FaultPlan {
                    name: "late".into(),
                    events: vec![FaultEvent {
                        at: horizon + Dur::from_nanos(1 + seed % 1_000_000),
                        chassis: 0,
                        kind: FaultKind::DrawerOutage { drawer: 0 },
                        duration: Dur::from_secs(1),
                    }],
                });
                prop_assert!(
                    matches!(sc.validate(), Err(ScenarioError::FaultBeyondHorizon { event: 0, .. })),
                    "fault after the last arrival -> FaultBeyondHorizon, got {:?}", sc.validate()
                );
            }
            4 => {
                sc.policies.push("round-robin".into());
                prop_assert!(
                    matches!(sc.validate(), Err(ScenarioError::UnknownPolicy { .. })),
                    "unknown policy -> UnknownPolicy, got {:?}", sc.validate()
                );
            }
            5 => {
                let dup = sc.policies[(seed % 5) as usize].clone();
                sc.policies.push(dup);
                prop_assert!(
                    matches!(sc.validate(), Err(ScenarioError::DuplicatePolicy { .. })),
                    "duplicate policy -> DuplicatePolicy, got {:?}", sc.validate()
                );
            }
            6 => {
                // Everything in 1..=8 chassis is runnable now; zero and
                // over-tall racks are the out-of-envelope shapes.
                sc.topology.chassis = if seed % 2 == 0 { 0 } else { 9 + (seed % 8) as u8 };
                prop_assert!(
                    matches!(sc.validate(), Err(ScenarioError::UnsupportedTopology(_))),
                    "out-of-envelope topology -> UnsupportedTopology, got {:?}", sc.validate()
                );
            }
            _ => {
                // Priority tiers live in 1..=3; zero and anything above
                // urgent is rejected naming the scenario and the job.
                let bad = if seed % 2 == 0 { 0u8 } else { 4 + (seed % 200) as u8 };
                let TraceSpec::Jobs { jobs, .. } = &mut sc.trace else { unreachable!() };
                jobs[0].priority = bad;
                prop_assert!(
                    matches!(
                        sc.validate(),
                        Err(ScenarioError::BadPriority { job: 0, priority, .. }) if priority == bad
                    ),
                    "tier outside 1..=3 -> BadPriority, got {:?}", sc.validate()
                );
            }
        }
    }

    /// Priority tiers at the scenario schema level: named tiers parse to
    /// their numeric values and re-emit canonically; an unknown tier
    /// label is rejected at parse time with an error naming the bogus
    /// tier; legacy scenarios — no `priority` fields, no
    /// preempt/defrag/relocate knobs — parse to the low tier with every
    /// knob off, and the knob-free canonical emission never mentions the
    /// priority machinery (the bytes predate it).
    #[cases(64)]
    fn priority_schema_accepts_tiers_and_rejects_strangers(
        seed in u64_in(0..1_000_000),
        jobs_raw in raw_jobs()
    ) {
        let mut sc = Scenario::new(
            format!("tiers-{seed:#x}"),
            TraceSpec::Jobs { name: "t".into(), jobs: build_jobs(&jobs_raw) },
            vec!["fifo-first-fit".into()],
        );
        sc.config.preempt = true;
        sc.validate().expect("base scenario is valid");
        let text = sc.to_json_string();
        prop_assert!(text.contains("\"preempt\": true"), "set knobs are emitted");

        // Named tiers are sugar for their numeric values.
        let named = text
            .replace("\"priority\": 1", "\"priority\": \"low\"")
            .replace("\"priority\": 2", "\"priority\": \"high\"");
        let back = Scenario::from_json_str(&named).expect("named tiers parse");
        prop_assert_eq!(&back, &sc, "labels decode to the same numeric tiers");

        // An unknown label is a parse error that names the bogus tier.
        // (Every generated job is tier 1 or 2, so one of these rewrites
        // the first priority field.)
        let bogus = match text.replacen("\"priority\": 1", "\"priority\": \"platinum\"", 1) {
            same if same == text => text.replacen("\"priority\": 2", "\"priority\": \"platinum\"", 1),
            changed => changed,
        };
        let err = Scenario::from_json_str(&bogus).expect_err("unknown tier rejected");
        prop_assert!(
            err.to_string().contains("platinum"),
            "the error names the unknown tier: {err}"
        );

        // Legacy spelling: no priority fields, no knobs. Parses to the
        // defaults (tier 1, knobs off) and its canonical emission stays
        // free of the priority vocabulary. (Knobs are dropped by
        // emitting a knob-free clone; priority lines sit mid-object, so
        // filtering them keeps the JSON well-formed.)
        let mut plain = sc.clone();
        plain.config.preempt = false;
        let legacy: String = plain
            .to_json_string()
            .lines()
            .filter(|l| !l.contains("\"priority\""))
            .collect::<Vec<_>>()
            .join("\n");
        let old = Scenario::from_json_str(&legacy).expect("legacy scenarios parse");
        let TraceSpec::Jobs { jobs, .. } = &old.trace else { unreachable!() };
        prop_assert!(jobs.iter().all(|j| j.priority == 1), "legacy jobs land on the low tier");
        prop_assert!(!old.config.preempt && !old.config.defrag && !old.config.relocate_slo);
        let re = old.to_json_string();
        for knob in ["\"preempt\"", "\"defrag\"", "\"relocate_slo\""] {
            prop_assert!(!re.contains(knob), "default knobs stay un-emitted: {knob}");
        }
    }

    /// Seeded fault specs validate iff their horizon parameter keeps the
    /// drawn strike times inside the trace horizon (the generator draws
    /// uniformly in [0, horizon], so a plan bounded by the trace horizon
    /// always passes and one stretched far beyond it eventually fails).
    #[cases(64)]
    fn seeded_fault_horizon_is_checked_against_the_trace(
        seed in u64_in(0..1_000_000),
        jobs_raw in raw_jobs()
    ) {
        let mut sc = Scenario::new(
            "horizon-check",
            TraceSpec::Jobs { name: "h".into(), jobs: build_jobs(&jobs_raw) },
            vec!["fifo-first-fit".into()],
        );
        let (mixed, _) = sc.materialize();
        let horizon = Scenario::horizon(&mixed);

        sc.faults = FaultSpec::Seeded {
            n_events: 3,
            horizon: Dur::from_nanos(horizon.as_nanos()),
            seed,
        };
        prop_assert!(sc.validate().is_ok(), "in-horizon seeded plan accepted");

        // A plan drawn over a horizon far past the trace must place at
        // least one of its three events beyond it — unless every draw
        // lands inside, which the explicit check below distinguishes.
        let stretched = Dur::from_nanos(horizon.as_nanos().max(1) * 1000);
        let plan = seeded_fault_plan(3, stretched, seed);
        sc.faults = FaultSpec::Seeded { n_events: 3, horizon: stretched, seed };
        let any_late = plan.events.iter().any(|e| e.at > horizon);
        if any_late {
            prop_assert!(
                matches!(sc.validate(), Err(ScenarioError::FaultBeyondHorizon { .. })),
                "late seeded event -> FaultBeyondHorizon, got {:?}", sc.validate()
            );
        } else {
            prop_assert!(sc.validate().is_ok());
        }
    }
}
