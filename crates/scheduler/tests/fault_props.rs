//! Chaos property tests for failure injection (testkit):
//!
//! * any valid `FaultPlan` — random kinds, targets, times, overlaps —
//!   replayed over a random trace under a random policy drains to
//!   completion with every job terminating (conservation invariants are
//!   asserted *inside* the event loop at every event of every replay; a
//!   violation in any intermediate degraded state panics the case);
//! * fault timelines are monotone: sorted plans have non-decreasing
//!   strike times and every heal lands strictly after its strike;
//! * `FaultPlan` JSON round-trips bit-exactly, seeded generation is
//!   deterministic.
//!
//! Probe prices are pooled across cases through a shared cache (probes
//! are pure, so sharing can only skip simulations, never change a
//! report).

use std::sync::Mutex;

use desim::{Dur, SimTime};
use dlmodels::Benchmark;
use scheduler::cluster::{ClusterSim, SchedulerConfig};
use scheduler::fault::DEGRADE_LEVELS;
use scheduler::policy::all_policies;
use scheduler::trace::{JobSpec, TenantId, Trace};
use scheduler::{
    seeded_fault_plan, seeded_rack_fault_plan, FaultEvent, FaultKind, FaultPlan, ProbeCache,
    RackTopology,
};
use testkit::{
    prop_assert, prop_assert_eq, property, tuple3, tuple5, u32_in, u64_in, u8_in, vec_of, Gen,
};

/// Raw material for one random job: (tenant, benchmark, demand-index,
/// arrival ms, iters). Small jobs keep 64-case chaos replays cheap.
fn raw_jobs() -> Gen<Vec<(u8, u8, u8, u32, u8)>> {
    vec_of(
        tuple5(u8_in(0..2), u8_in(0..5), u8_in(0..4), u32_in(0..30_000), u8_in(4..24)),
        1..9,
    )
}

/// Raw material for one fault event: (kind, drawer, aux, at ms, dur ms).
/// `aux` picks the slot for slot-death and the degrade level for
/// link-degrade. Plain integers so testkit shrinking stays simple.
fn raw_faults() -> Gen<Vec<(u8, u8, u8, u32, u32)>> {
    vec_of(
        tuple5(u8_in(0..4), u8_in(0..2), u8_in(0..8), u32_in(0..45_000), u32_in(1..20_000)),
        0..6,
    )
}

fn build_trace(raw: &[(u8, u8, u8, u32, u8)]) -> Trace {
    let jobs = raw
        .iter()
        .enumerate()
        .map(|(id, &(tenant, bench, demand, arrival_ms, iters))| {
            let gpus = [1u8, 2, 4, 8][usize::from(demand)];
            JobSpec {
                id: id as u64,
                tenant: TenantId(u32::from(tenant)),
                benchmark: Benchmark::all()[usize::from(bench)],
                gpus,
                min_gpus: if gpus == 8 { 4 } else { gpus },
                priority: 1 + tenant % 2,
                arrival: SimTime::from_millis(u64::from(arrival_ms)),
                iters: u64::from(iters),
            }
        })
        .collect();
    Trace { name: "fault-prop".into(), jobs }.sorted()
}

fn build_plan(raw: &[(u8, u8, u8, u32, u32)]) -> FaultPlan {
    let events = raw
        .iter()
        .map(|&(kind, drawer, aux, at_ms, dur_ms)| FaultEvent {
            at: SimTime::from_millis(u64::from(at_ms)),
            chassis: 0,
            kind: match kind {
                0 => FaultKind::DrawerOutage { drawer },
                1 => FaultKind::SlotDeath { drawer, slot: aux },
                2 => FaultKind::LinkDegrade {
                    drawer,
                    pct: DEGRADE_LEVELS[usize::from(aux) % DEGRADE_LEVELS.len()],
                },
                _ => FaultKind::ThermalTrip { drawer },
            },
            duration: Dur::from_millis(u64::from(dur_ms)),
        })
        .collect();
    FaultPlan { name: "chaos".into(), events }.sorted()
}

/// One probe cache for the whole suite; split into each case, absorbed
/// back after, so the 64 chaos replays price each (benchmark, shape,
/// link-health) triple at most once.
fn shared_cache() -> &'static Mutex<ProbeCache> {
    static CELL: std::sync::OnceLock<Mutex<ProbeCache>> = std::sync::OnceLock::new();
    CELL.get_or_init(|| Mutex::new(ProbeCache::new(SchedulerConfig::default().probe_iters)))
}

property! {
    /// Chaos: a random fault plan over a random trace under a random
    /// policy always drains; every job terminates exactly once with a
    /// coherent lifecycle, and the recovery block appears iff faults
    /// were injected. Conservation (no double-booking, chassis/scheduler
    /// attachment parity, failed-slot bookkeeping, quotas) is asserted
    /// inside the loop at every event, so a completed replay certifies
    /// every intermediate degraded state.
    #[cases(64)]
    fn chaos_replay_conserves_and_terminates(
        input in tuple3(raw_jobs(), raw_faults(), u8_in(0..4))
    ) {
        let (rjobs, rfaults, pol) = input;
        let trace = build_trace(&rjobs);
        let plan = build_plan(&rfaults);
        let n = trace.jobs.len();
        let n_events = plan.events.len();
        let probes = shared_cache().lock().unwrap().split();
        let sim = ClusterSim::with_probe_cache(
            trace,
            all_policies().remove(usize::from(pol)),
            SchedulerConfig::default(),
            probes,
        )
        .expect("valid trace")
        .with_faults(plan)
        .expect("valid plan");
        let (report, cache) = sim.run_report().expect("faulty replay drains");
        shared_cache().lock().unwrap().absorb(cache);

        prop_assert_eq!(report.jobs.len(), n, "all jobs terminate");
        let mut seen: Vec<u64> = report.jobs.iter().map(|o| o.id).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        for o in &report.jobs {
            prop_assert!(o.start >= o.arrival, "started before arrival");
            prop_assert!(o.finish > o.start, "zero-length run");
        }
        if n_events == 0 {
            prop_assert!(report.recovery.is_none(), "no recovery block without faults");
        } else {
            let r = report.recovery.as_ref().expect("recovery block present");
            prop_assert_eq!(r.fault_events, n_events as u32, "every strike applied");
            prop_assert!(
                r.evacuations == 0 || !r.mean_recovery.is_zero(),
                "evacuated jobs pay a nonzero recovery time"
            );
            prop_assert!(r.work_lost_gpu_secs >= 0.0);
        }
    }

    /// Rack chaos: seeded chassis-routed fault plans — drawer outages and
    /// thermal trips on either chassis, plus inter-chassis (rack-tier)
    /// link degradation — over a random trace on a 2-chassis rack always
    /// drain. Conservation is asserted inside the loop at every event,
    /// rack-wide *and* per chassis, so a completed replay certifies that
    /// faults on one chassis never corrupt the other's bookkeeping.
    #[cases(64)]
    fn rack_chaos_replay_conserves_and_terminates(
        input in tuple3(raw_jobs(), u64_in(0..1_000_000), u8_in(0..4))
    ) {
        let (rjobs, seed, pol) = input;
        let topo = RackTopology::with_chassis(2);
        let trace = build_trace(&rjobs);
        let plan = seeded_rack_fault_plan(4, Dur::from_secs(45), seed, &topo);
        plan.validate_for(&topo).expect("generated plans stay in the rack envelope");
        let n = trace.jobs.len();
        let n_events = plan.events.len();
        let probes = shared_cache().lock().unwrap().split();
        let sim = ClusterSim::with_probe_cache_on(
            topo,
            trace,
            all_policies().remove(usize::from(pol)),
            SchedulerConfig::default(),
            probes,
        )
        .expect("valid trace")
        .with_faults(plan)
        .expect("valid plan");
        let (report, cache) = sim.run_report().expect("rack replay drains");
        shared_cache().lock().unwrap().absorb(cache);

        prop_assert_eq!(report.pool_gpus, 32, "two chassis worth of pool");
        prop_assert_eq!(report.jobs.len(), n, "all jobs terminate");
        let mut seen: Vec<u64> = report.jobs.iter().map(|o| o.id).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        let r = report.recovery.as_ref().expect("recovery block present");
        prop_assert_eq!(r.fault_events, n_events as u32, "every strike applied");
        prop_assert!(r.work_lost_gpu_secs >= 0.0);
    }

    /// Migration under fire: the same rack chaos with checkpoint
    /// preemption and migration defrag switched on still drains — every
    /// job terminates exactly once, preempted gangs all resume (the
    /// event loop panics at drain otherwise), both the migration and
    /// recovery ledgers are coherent, and the whole replay is a pure
    /// function of its inputs (run twice, byte-identical reports), so
    /// fault timing can never race the preempt/defrag decisions.
    #[cases(64)]
    fn migration_under_faults_conserves_and_terminates(
        input in tuple3(raw_jobs(), u64_in(0..1_000_000), u8_in(0..4))
    ) {
        let (rjobs, seed, pol) = input;
        let topo = RackTopology::with_chassis(2);
        let trace = build_trace(&rjobs);
        let plan = seeded_rack_fault_plan(4, Dur::from_secs(45), seed, &topo);
        let n = trace.jobs.len();
        let cfg = SchedulerConfig { preempt: true, defrag: true, ..SchedulerConfig::default() };
        let run = || {
            let probes = shared_cache().lock().unwrap().split();
            let sim = ClusterSim::with_probe_cache_on(
                topo,
                trace.clone(),
                all_policies().remove(usize::from(pol)),
                cfg.clone(),
                probes,
            )
            .expect("valid trace")
            .with_faults(plan.clone())
            .expect("valid plan");
            let (report, cache) = sim.run_report().expect("migrating replay drains");
            shared_cache().lock().unwrap().absorb(cache);
            report
        };
        let report = run();

        prop_assert_eq!(report.jobs.len(), n, "all jobs terminate");
        let mut seen: Vec<u64> = report.jobs.iter().map(|o| o.id).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        for o in &report.jobs {
            prop_assert!(o.start >= o.arrival, "started before arrival");
            prop_assert!(o.finish > o.start, "zero-length run");
        }
        let mig = report.migration.as_ref().expect("preempt-enabled replay reports migration");
        prop_assert!(mig.work_lost_gpu_secs >= 0.0);
        let rec = report.recovery.as_ref().expect("recovery block present");
        prop_assert!(rec.work_lost_gpu_secs >= 0.0);
        prop_assert_eq!(
            run().to_json_string(),
            report.to_json_string(),
            "faults and migration decisions replay deterministically"
        );
    }

    /// Monotone event time: a sorted plan's strikes never step backwards
    /// and every heal lands strictly after its strike, for both the
    /// integer-raw generator and the seeded generator.
    #[cases(64)]
    fn fault_timelines_are_monotone(
        input in tuple3(raw_faults(), u64_in(0..1_000_000), u32_in(500..60_000))
    ) {
        let (rfaults, seed, horizon_ms) = input;
        let horizon = Dur::from_millis(u64::from(horizon_ms));
        for plan in [build_plan(&rfaults), seeded_fault_plan(4, horizon, seed)] {
            plan.validate().expect("generated plans stay in the envelope");
            for pair in plan.events.windows(2) {
                prop_assert!(pair[0].at <= pair[1].at, "strike times sorted");
            }
            for ev in &plan.events {
                prop_assert!(ev.heals_at() > ev.at, "heal strictly after strike");
            }
        }
        // Seeded generation is a pure function of its inputs.
        let again = seeded_fault_plan(4, horizon, seed);
        prop_assert_eq!(&seeded_fault_plan(4, horizon, seed), &again);
    }

    /// Fault plans survive JSON export/import bit-exactly.
    #[cases(64)]
    fn fault_plan_json_round_trips(
        input in tuple3(raw_faults(), u64_in(0..1_000_000), u8_in(0..7))
    ) {
        let (rfaults, seed, n_events) = input;
        for plan in [
            build_plan(&rfaults),
            seeded_fault_plan(usize::from(n_events), Dur::from_secs(50), seed),
        ] {
            let back = FaultPlan::from_json_str(&plan.to_json_string()).expect("parses");
            prop_assert_eq!(&back, &plan);
            prop_assert_eq!(back.to_json_string(), plan.to_json_string());
        }
    }
}
