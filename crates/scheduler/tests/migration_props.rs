//! Differential property suite for checkpoint preemption and live
//! migration (testkit):
//!
//! * **preempt ≡ evacuate** — preempting a job at instant `t` loses
//!   exactly the work a fault evacuation of the same slots at the same
//!   `t` loses: the same checkpoint rollback arithmetic runs in both
//!   paths, so the `migration` and `recovery` work-loss ledgers agree to
//!   the bit;
//! * **no stranded gangs** — random tiered traces under preemption (and
//!   random defragmentation) always drain with every job terminating
//!   once and a coherent lifecycle, on one chassis and on a rack
//!   (conservation is asserted inside the loop at every event, and the
//!   loop itself asserts every preempted job resumes);
//! * **priority is monotone** — raising one job's tier on a fixed seed
//!   never worsens that job's JCT;
//! * **cross-chassis costs more** — the rack-tier stretch is exactly 1.0
//!   for single-chassis placements and strictly above it (monotone in
//!   parts, anti-monotone in link health) for spanning ones, and an
//!   end-to-end replay of the same gang placed across chassis runs
//!   strictly longer than packed inside one.

use std::sync::Mutex;

use desim::{Dur, SimTime};
use dlmodels::Benchmark;
use scheduler::cluster::{ClusterSim, SchedulerConfig};
use scheduler::policy::{all_policies, policy_by_name};
use scheduler::trace::{JobSpec, TenantId, Trace};
use scheduler::{
    cross_chassis_stretch, FaultEvent, FaultKind, FaultPlan, ProbeCache, RackTopology,
};
use testkit::{
    prop_assert, prop_assert_eq, property, tuple2, tuple3, tuple4, tuple5, u32_in, u8_in, usize_in,
    vec_of,
};

fn job(id: u64, tenant: u32, bench: Benchmark, gpus: u8, priority: u8, at: SimTime, iters: u64) -> JobSpec {
    JobSpec {
        id,
        tenant: TenantId(tenant),
        benchmark: bench,
        gpus,
        min_gpus: gpus,
        priority,
        arrival: at,
        iters,
    }
}

/// One probe cache for the whole suite; split into each case, absorbed
/// back after, so replays price each (benchmark, shape) at most once.
fn shared_cache() -> &'static Mutex<ProbeCache> {
    static CELL: std::sync::OnceLock<Mutex<ProbeCache>> = std::sync::OnceLock::new();
    CELL.get_or_init(|| Mutex::new(ProbeCache::new(SchedulerConfig::default().probe_iters)))
}

fn replay(topo: RackTopology, trace: Trace, policy: &str, cfg: SchedulerConfig, plan: FaultPlan) -> scheduler::ScheduleReport {
    let probes = shared_cache().lock().unwrap().split();
    let sim = ClusterSim::with_probe_cache_on(
        topo,
        trace,
        policy_by_name(policy).expect("registered policy"),
        cfg,
        probes,
    )
    .expect("valid trace");
    let sim = if plan.is_empty() { sim } else { sim.with_faults(plan).expect("valid plan") };
    let (report, cache) = sim.run_report().expect("replay drains");
    shared_cache().lock().unwrap().absorb(cache);
    report
}

property! {
    /// Differential: preempting the drawer-1 gang at instant `t` (via a
    /// high-tier arrival) rolls back exactly the work a drawer-1 outage
    /// at the same `t` rolls back. Both runs share the byte-identical
    /// prefix — an urgent-tier holder on drawer 0 (too high to ever be a
    /// victim, too long to finish) plus a low-tier gang on drawer 1 — so
    /// the victim's placement, base iteration rate, and progress at `t`
    /// agree, and the `migration` / `recovery` work-loss ledgers must
    /// match to the bit (as must the preemption/evacuation counts).
    #[cases(64)]
    fn preemption_loses_exactly_what_evacuation_loses(
        input in tuple5(u8_in(8..255), u32_in(1_000..8_000), u8_in(8..33), u8_in(0..5), u8_in(0..5))
    ) {
        let (iters_v, t_ms, iters_h, bench_v, bench_h) = input;
        let t = SimTime::from_millis(u64::from(t_ms));
        let cfg = SchedulerConfig {
            quota_gpus_per_tenant: 16,
            elastic: false,
            preempt: true,
            ..SchedulerConfig::default()
        };
        // Tier-ordered first-fit puts the urgent holder (job 0) on drawer
        // 0 and the low-tier victim-to-be (job 1) on drawer 1. The holder
        // is effectively infinite, so drawer 0 never frees mid-case and
        // the only way the preemptor gets slots is through job 1.
        let base = vec![
            job(0, 0, Benchmark::ResNet50, 8, 3, SimTime::ZERO, 10_000),
            job(1, 1, Benchmark::all()[usize::from(bench_v)], 8, 1, SimTime::ZERO, u64::from(iters_v)),
        ];

        // Leg P: a high-tier 8-gang arrives at t. Job 0 (tier 3) is not
        // strictly lower than tier 2, so job 1 is the only legal victim.
        let mut with_high = base.clone();
        with_high.push(job(2, 0, Benchmark::all()[usize::from(bench_h)], 8, 2, t, u64::from(iters_h)));
        let p = replay(
            RackTopology::SINGLE,
            Trace { name: "preempt-leg".into(), jobs: with_high }.sorted(),
            "fifo-first-fit",
            cfg.clone(),
            FaultPlan::none(),
        );

        // Leg F: no preemptor; instead the victim's drawer dies at the
        // same t.
        let outage = FaultPlan {
            name: "outage-at-t".into(),
            events: vec![FaultEvent {
                at: t,
                chassis: 0,
                kind: FaultKind::DrawerOutage { drawer: 1 },
                duration: Dur::from_secs(2),
            }],
        };
        let f = replay(
            RackTopology::SINGLE,
            Trace { name: "evacuate-leg".into(), jobs: base }.sorted(),
            "fifo-first-fit",
            cfg,
            outage,
        );

        prop_assert_eq!(p.jobs.len(), 3, "preempt leg drains every job");
        prop_assert_eq!(f.jobs.len(), 2, "evacuate leg drains every job");
        let mig = p.migration.as_ref().expect("preempt-enabled replay reports migration");
        let rec = f.recovery.as_ref().expect("faulty replay reports recovery");
        // If job 1 outlived t it was preempted in P and evacuated in F;
        // if it finished first, both legs saw nothing to roll back.
        prop_assert_eq!(mig.preemptions, rec.evacuations, "same victim count at the same instant");
        prop_assert_eq!(
            mig.work_lost_gpu_secs,
            rec.work_lost_gpu_secs,
            "preemption and evacuation share the checkpoint rollback arithmetic"
        );
        prop_assert!(mig.work_lost_gpu_secs >= 0.0);
    }

    /// Preemption never strands a gang: random tiered traces with
    /// preemption on (and defragmentation on half the cases) drain on a
    /// random topology under a random policy — every job terminates
    /// exactly once with a coherent lifecycle, and the report carries
    /// the migration ledger. The event loop itself asserts that every
    /// preempted job resumed before the replay may end.
    #[cases(64)]
    fn tiered_chaos_never_strands_a_gang(
        input in tuple5(
            vec_of(tuple5(u8_in(0..2), u8_in(0..5), u8_in(0..4), u32_in(0..30_000), u8_in(4..24)), 1..9),
            vec_of(u8_in(1..4), 8..9),
            u8_in(0..4),
            u8_in(1..3),
            u8_in(0..2),
        )
    ) {
        let (rjobs, tiers, pol, chassis, defrag) = input;
        let jobs = rjobs
            .iter()
            .enumerate()
            .map(|(id, &(tenant, bench, demand, arrival_ms, iters))| {
                let gpus = [1u8, 2, 4, 8][usize::from(demand)];
                JobSpec {
                    id: id as u64,
                    tenant: TenantId(u32::from(tenant)),
                    benchmark: Benchmark::all()[usize::from(bench)],
                    gpus,
                    min_gpus: if gpus == 8 { 4 } else { gpus },
                    priority: tiers[id % tiers.len()],
                    arrival: SimTime::from_millis(u64::from(arrival_ms)),
                    iters: u64::from(iters),
                }
            })
            .collect::<Vec<_>>();
        let n = jobs.len();
        let cfg = SchedulerConfig {
            preempt: true,
            defrag: defrag == 1,
            ..SchedulerConfig::default()
        };
        let probes = shared_cache().lock().unwrap().split();
        let sim = ClusterSim::with_probe_cache_on(
            RackTopology::with_chassis(chassis),
            Trace { name: "tiered-chaos".into(), jobs }.sorted(),
            all_policies().remove(usize::from(pol)),
            cfg,
            probes,
        )
        .expect("valid trace");
        let (report, cache) = sim.run_report().expect("tiered replay drains");
        shared_cache().lock().unwrap().absorb(cache);

        prop_assert_eq!(report.jobs.len(), n, "all jobs terminate");
        let mut seen: Vec<u64> = report.jobs.iter().map(|o| o.id).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        for o in &report.jobs {
            prop_assert!(o.start >= o.arrival, "started before arrival");
            prop_assert!(o.finish > o.start, "zero-length run");
        }
        let mig = report.migration.as_ref().expect("preempt-enabled replay reports migration");
        prop_assert!(mig.work_lost_gpu_secs >= 0.0);
        prop_assert!(mig.preemptions == 0 || mig.work_lost_gpu_secs >= 0.0);
    }

    /// Priority is monotone: on a fixed seed of single-GPU jobs (uniform
    /// placement shape, interference off, so queue position and
    /// preemption are the *only* levers a tier moves), raising one job
    /// from the low tier to urgent never worsens that job's JCT.
    #[cases(64)]
    fn raising_a_tier_never_worsens_that_jobs_jct(
        input in tuple2(
            vec_of(tuple3(u32_in(0..20_000), u8_in(4..40), u8_in(0..5)), 3..10),
            usize_in(0..24),
        )
    ) {
        let (rjobs, pick) = input;
        let build = |raised: Option<usize>| {
            let jobs = rjobs
                .iter()
                .enumerate()
                .map(|(id, &(arrival_ms, iters, bench))| {
                    let priority = if raised == Some(id) { 3 } else { 1 };
                    job(
                        id as u64,
                        id as u32 % 2,
                        Benchmark::all()[usize::from(bench)],
                        1,
                        priority,
                        SimTime::from_millis(u64::from(arrival_ms)),
                        u64::from(iters),
                    )
                })
                .collect::<Vec<_>>();
            Trace { name: "monotone".into(), jobs }.sorted()
        };
        let cfg = SchedulerConfig {
            preempt: true,
            interference: 0.0,
            ..SchedulerConfig::default()
        };
        let target = pick % rjobs.len();
        let baseline = replay(
            RackTopology::SINGLE,
            build(None),
            "fifo-first-fit",
            cfg.clone(),
            FaultPlan::none(),
        );
        let raised = replay(
            RackTopology::SINGLE,
            build(Some(target)),
            "fifo-first-fit",
            cfg,
            FaultPlan::none(),
        );
        let jct = |r: &scheduler::ScheduleReport| {
            r.jobs.iter().find(|o| o.id == target as u64).expect("target terminates").jct()
        };
        prop_assert!(
            jct(&raised) <= jct(&baseline),
            "raising a job's tier must not worsen its own JCT"
        );
    }

    /// The rack-tier stretch is exactly 1.0 inside one chassis, strictly
    /// above 1.0 across chassis, monotone in the number of per-chassis
    /// parts, and anti-monotone in rack link health.
    #[cases(64)]
    fn cross_chassis_migration_pays_strictly_more_stretch(
        input in tuple4(usize_in(2..9), u8_in(1..101), u8_in(1..101), u8_in(1..101))
    ) {
        let (parts, h1, h2, h_single) = input;
        prop_assert_eq!(
            cross_chassis_stretch(1, h_single),
            1.0,
            "a single-chassis placement never crosses the rack switch"
        );
        prop_assert!(
            cross_chassis_stretch(parts, h1) > 1.0,
            "spanning chassis pays strictly more than staying inside one"
        );
        prop_assert!(
            cross_chassis_stretch(parts, h1) < cross_chassis_stretch(parts + 1, h1),
            "each extra chassis part costs strictly more"
        );
        let (lo, hi) = (h1.min(h2), h1.max(h2));
        prop_assert!(
            cross_chassis_stretch(parts, hi) <= cross_chassis_stretch(parts, lo),
            "healthier rack links never cost more"
        );
    }
}

/// End-to-end differential for the stretch. The engine prices a
/// multi-chassis gang as its *slowest per-chassis part* times the
/// rack-tier stretch, so the honest comparison holds the worst part
/// shape fixed: a 4-GPU single-drawer run of a benchmark vs an 8-GPU
/// gang of the same benchmark split 4+4 over the rack switch (each part
/// a 4-GPU single-drawer shape). Same per-part price, same iteration
/// count — the stretch is the only difference, and the spanning gang
/// must finish strictly later.
#[test]
fn spanning_two_chassis_runs_strictly_longer_than_one() {
    let cfg = SchedulerConfig {
        quota_gpus_per_tenant: 32,
        elastic: false,
        interference: 0.0,
        ..SchedulerConfig::default()
    };
    let big = 400u64;
    // Within one chassis: a lone 4-GPU run — the same worst part shape
    // the cross leg's gang prices from, with stretch exactly 1.0.
    let intra = vec![job(0, 0, Benchmark::BertLarge, 4, 1, SimTime::ZERO, big)];
    // Across chassis: fillers occupy 12 of chassis 0's 16 slots, so
    // first-fit splits the 8-gang 4+4 over the rack switch (chassis 0
    // drawer 1 tail + chassis 1 drawer 0 head).
    let cross = vec![
        job(0, 0, Benchmark::MobileNetV2, 8, 1, SimTime::ZERO, 4),
        job(1, 0, Benchmark::MobileNetV2, 4, 1, SimTime::ZERO, 4),
        job(2, 1, Benchmark::BertLarge, 8, 1, SimTime::ZERO, big),
    ];
    let topo = RackTopology::with_chassis(2);
    let run = |jobs: Vec<JobSpec>, id: u64, want_spanned: bool| {
        let report = replay(
            topo,
            Trace { name: "stretch".into(), jobs }.sorted(),
            "fifo-first-fit",
            cfg.clone(),
            FaultPlan::none(),
        );
        let o = report.jobs.iter().find(|o| o.id == id).expect("gang terminates").clone();
        assert_eq!(o.spanned, want_spanned, "placement shape is the premise of the comparison");
        o.finish.since(o.start)
    };
    let intra_dur = run(intra, 0, false);
    let cross_dur = run(cross, 2, true);
    assert!(
        cross_dur > intra_dur,
        "crossing the rack tier must cost strictly more: intra {:?} vs cross {:?}",
        intra_dur,
        cross_dur
    );
}
