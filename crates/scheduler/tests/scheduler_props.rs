//! Property tests on the cluster scheduler (testkit):
//!
//! * every admitted job completes — no starvation under any built-in
//!   policy with the strict-order queue (finite traces always drain);
//! * resource conservation — no slot double-booking, the chassis
//!   attachment table matches the scheduler's view, the pool and
//!   per-tenant quotas are never exceeded (checked *inside* the event
//!   loop at every event; a violation panics the replay);
//! * GPU-second accounting is consistent between the utilization,
//!   per-tenant, and fragmentation views;
//! * trace JSON round-trips identically;
//! * equal seeds replay to byte-identical reports.

use desim::{Dur, SimTime};
use dlmodels::Benchmark;
use scheduler::cluster::{ClusterSim, SchedulerConfig};
use scheduler::policy::all_policies;
use scheduler::trace::{JobSpec, PoissonMix, TenantId, Trace};
use scheduler::Shape;
use testkit::{prop_assert, prop_assert_eq, property, tuple2, tuple5, u32_in, u64_in, u8_in, vec_of, Gen};

/// Raw material for one random job: (tenant, benchmark, demand-index,
/// arrival ms, iters). Kept as plain integers so shrinking stays simple.
fn raw_jobs() -> Gen<Vec<(u8, u8, u8, u32, u8)>> {
    vec_of(
        tuple5(u8_in(0..2), u8_in(0..5), u8_in(0..4), u32_in(0..40_000), u8_in(4..28)),
        1..11,
    )
}

fn build_trace(raw: &[(u8, u8, u8, u32, u8)]) -> Trace {
    let jobs = raw
        .iter()
        .enumerate()
        .map(|(id, &(tenant, bench, demand, arrival_ms, iters))| {
            let gpus = [1u8, 2, 4, 8][usize::from(demand)];
            JobSpec {
                id: id as u64,
                tenant: TenantId(u32::from(tenant)),
                benchmark: Benchmark::all()[usize::from(bench)],
                gpus,
                min_gpus: if gpus == 8 { 4 } else { gpus },
                priority: 1 + tenant % 2,
                arrival: SimTime::from_millis(u64::from(arrival_ms)),
                iters: u64::from(iters),
            }
        })
        .collect();
    Trace { name: "prop".into(), jobs }.sorted()
}

property! {
    /// Every admitted job completes under every policy, with a coherent
    /// lifecycle (arrival <= start < finish) and conserved identity.
    #[cases(12)]
    fn every_admitted_job_completes(input in tuple2(raw_jobs(), u8_in(0..4))) {
        let (raw, pol) = input;
        let trace = build_trace(&raw);
        let n = trace.jobs.len();
        let policy = all_policies().remove(usize::from(pol));
        let report = ClusterSim::new(trace, policy, SchedulerConfig::default())
            .expect("valid trace")
            .run()
            .expect("replay drains");
        prop_assert_eq!(report.jobs.len(), n);
        let mut seen: Vec<u64> = report.jobs.iter().map(|o| o.id).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        for o in &report.jobs {
            prop_assert!(o.start >= o.arrival, "started before arrival");
            prop_assert!(o.finish > o.start, "zero-length run");
            if o.shrunk {
                prop_assert!(o.final_gpus < o.gpus && o.final_gpus >= o.gpus / 2);
            } else {
                prop_assert_eq!(o.final_gpus, o.gpus);
            }
        }
    }

    /// GPU-second accounting is conserved across its three views, and no
    /// tenant's integral share can exceed quota x makespan.
    #[cases(10)]
    fn gpu_seconds_are_conserved(raw in raw_jobs()) {
        let trace = build_trace(&raw);
        let cfg = SchedulerConfig::default();
        let report = ClusterSim::new(trace, all_policies().remove(0), cfg.clone())
            .expect("valid trace")
            .run()
            .expect("replay drains");
        let span = report.makespan.as_secs_f64();
        let busy = report.gpu_util * report.pool_gpus as f64 * span;
        let by_tenant: f64 = report.tenant_gpu_secs.iter().sum();
        // gpu_util is exported rounded to 4 decimals, so reconstructing
        // busy GPU-seconds from it carries up to 5e-5 x pool x makespan of
        // absolute error (plus the tenant vector's own rounding).
        let slack = 5e-5 * report.pool_gpus as f64 * span + 1e-3;
        prop_assert!((busy - by_tenant).abs() <= slack,
            "util view {busy} != tenant view {by_tenant} (slack {slack})");
        for &t in &report.tenant_gpu_secs {
            prop_assert!(t <= cfg.quota_gpus_per_tenant as f64 * span + 1e-6);
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&report.gpu_util));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&report.frag_share));
    }

    /// Traces survive JSON export/import bit-exactly, including via the
    /// Poisson generator.
    #[cases(64)]
    fn trace_json_round_trips(input in tuple2(u64_in(0..1_000_000), u8_in(1..24))) {
        let (seed, n) = input;
        let trace = PoissonMix {
            seed,
            n_jobs: usize::from(n),
            tenants: 2,
            mean_interarrival: Dur::from_millis(1500),
        }
        .generate("roundtrip");
        let back = Trace::from_json_str(&trace.to_json_string()).expect("parses");
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.to_json_string(), trace.to_json_string());
    }

    /// Equal traces and configs produce byte-identical reports.
    #[cases(4)]
    fn replay_is_byte_deterministic(input in tuple2(raw_jobs(), u8_in(0..4))) {
        let (raw, pol) = input;
        let run = || {
            ClusterSim::new(
                build_trace(&raw),
                all_policies().remove(usize::from(pol)),
                SchedulerConfig::default(),
            )
            .expect("valid trace")
            .run()
            .expect("replay drains")
            .to_json_string()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Placement shapes reported by outcomes stay inside the two-drawer bed.
#[test]
fn shapes_are_physical() {
    for a in 0..=8u8 {
        for b in 0..=8u8 {
            if a + b == 0 {
                continue;
            }
            let s = Shape::new(a, b);
            assert_eq!(s.n_gpus(), usize::from(a) + usize::from(b));
            assert_eq!(s.canonical_slots().len(), s.n_gpus());
            assert_eq!(Shape::of(&s.canonical_slots()), s);
        }
    }
}
