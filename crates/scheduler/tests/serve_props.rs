//! Property tests on the serving subsystem (testkit):
//!
//! * seeded request streams are pure functions of the spec — determinism,
//!   window containment, monotone ordering, rate sanity;
//! * batch latency is monotone in batch size and dilation, and a bigger
//!   slice is never slower;
//! * mixed traces survive JSON export/import bit-exactly;
//! * small mixed replays conserve requests (generated = completed +
//!   dropped), keep attainment in [0, 1], order percentiles (p99 ≥ p50),
//!   and replay byte-identically under every serving policy.

use desim::{Dur, SimTime};
use dlmodels::{Benchmark, InferenceProfile};
use scheduler::cluster::{ClusterSim, SchedulerConfig};
use scheduler::policy::serving_policies;
use scheduler::serve::{
    batch_latency, request_times, seeded_pai_mix, ArrivalKind, MixedTrace, ServiceSpec,
};
use scheduler::trace::TenantId;
use testkit::{prop_assert, prop_assert_eq, property, tuple2, tuple4, u32_in, u64_in, u8_in};

/// Build one arbitrary (but always admissible) service from raw integers.
fn build_service(id: u64, tenant: u8, bench: u8, slice_ix: u8, rate_x10: u32) -> ServiceSpec {
    let slice = [1u8, 2, 4, 7][usize::from(slice_ix) % 4];
    ServiceSpec {
        id,
        tenant: TenantId(u32::from(tenant % 2)),
        benchmark: Benchmark::all()[usize::from(bench) % 5],
        slice,
        slo: Dur::from_millis(200 + 100 * u64::from(slice)),
        rate_rps: f64::from(rate_x10.max(1)) / 10.0,
        arrivals: if id % 2 == 0 { ArrivalKind::Poisson } else { ArrivalKind::Diurnal },
        start: SimTime::from_millis(u64::from(rate_x10 % 5_000)),
        duration: Dur::from_millis(3_000 + u64::from(rate_x10 % 7_000)),
        max_batch: 4,
        max_wait: Dur::from_millis(20),
        min_replicas: 1,
        max_replicas: 2,
    }
}

property! {
    /// The arrival stream is a pure function of the spec: equal specs give
    /// equal streams, every timestamp lies in [start, end), the stream is
    /// sorted, and the realized count is loosely Poisson-plausible.
    #[cases(64)]
    fn request_streams_are_pure_and_contained(
        input in tuple4(u64_in(0..1_000_000), u8_in(0..5), u8_in(0..4), u32_in(10..400))
    ) {
        let (id, bench, slice_ix, rate_x10) = input;
        let spec = build_service(id, (id % 2) as u8, bench, slice_ix, rate_x10);
        let a = request_times(&spec);
        let b = request_times(&spec);
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert!(w[0] <= w[1], "stream must be sorted");
        }
        for &t in &a {
            prop_assert!(t >= spec.start && t < spec.end(), "arrival outside the window");
        }
        // Mean count is rate x duration; allow a generous 6-sigma band
        // (diurnal thinning preserves the mean rate by construction).
        let mean = spec.rate_rps * spec.duration.as_secs_f64();
        let slack = 6.0 * mean.sqrt() + 6.0;
        prop_assert!(
            (a.len() as f64 - mean).abs() <= slack,
            "count {} implausible for mean {mean:.1}",
            a.len()
        );
    }

    /// Batch latency is monotone: more samples, more dilation, or a
    /// smaller slice can never make a batch faster.
    #[cases(64)]
    fn batch_latency_is_monotone(
        input in tuple4(u8_in(0..5), u8_in(0..3), u32_in(1..16), u32_in(10..30))
    ) {
        let (bench, slice_ix, batch, dil_x10) = input;
        let gpu = devices::gpu::GpuSpec::v100_pcie_16gb();
        let profile = InferenceProfile::for_benchmark(Benchmark::all()[usize::from(bench)]);
        let slices = [1u8, 2, 4];
        let slice = slices[usize::from(slice_ix)];
        let dil = f64::from(dil_x10) / 10.0;
        let base = batch_latency(&profile, &gpu, slice, batch, dil);
        prop_assert!(batch_latency(&profile, &gpu, slice, batch + 1, dil) >= base);
        prop_assert!(batch_latency(&profile, &gpu, slice, batch, dil + 0.1) >= base);
        prop_assert!(batch_latency(&profile, &gpu, 7, batch, dil) <= base);
        prop_assert!(base > Dur::ZERO);
    }

    /// Mixed traces survive JSON export/import bit-exactly, including via
    /// the seeded PAI-style generator.
    #[cases(32)]
    fn mixed_trace_json_round_trips(input in tuple2(u64_in(0..1_000_000), u8_in(1..10))) {
        let (seed, n) = input;
        let mix = seeded_pai_mix(usize::from(n), usize::from(n), seed);
        let back = MixedTrace::from_json_str(&mix.to_json_string()).expect("parses");
        prop_assert_eq!(&back, &mix);
        prop_assert_eq!(back.to_json_string(), mix.to_json_string());
    }

    /// Small mixed replays drain, conserve every request, keep attainment
    /// and percentiles coherent, and are byte-deterministic — under every
    /// serving policy.
    #[cases(10)]
    fn mixed_replays_conserve_requests(
        input in tuple2(u64_in(0..100_000), u8_in(0..5))
    ) {
        let (seed, pol) = input;
        let mix = seeded_pai_mix(4, 3, seed);
        let run = || {
            ClusterSim::new_mixed(
                mix.clone(),
                serving_policies().remove(usize::from(pol)),
                SchedulerConfig::default(),
            )
            .expect("valid mixed trace")
            .run()
            .expect("mixed replay drains")
        };
        let report = run();
        let serve = report.serve.as_ref().expect("serve block present");
        prop_assert_eq!(serve.n_services, 3);
        prop_assert_eq!(serve.generated, serve.completed + serve.dropped);
        prop_assert!((0.0..=1.0).contains(&serve.attainment));
        prop_assert!(serve.p99_latency >= serve.p50_latency);
        for s in &serve.services {
            prop_assert_eq!(s.generated, s.completed + s.dropped);
            prop_assert!((0.0..=1.0).contains(&s.attainment));
            prop_assert!(s.p99_latency >= s.p50_latency);
            prop_assert!(s.peak_replicas >= 1 || s.generated == s.dropped);
        }
        prop_assert_eq!(report.to_json_string(), run().to_json_string());
    }
}
