//! Differential property tests for the replay-engine performance knobs
//! (DESIGN §14). Each knob trades per-event work for amortized or
//! incremental bookkeeping, and each is required to be *semantically
//! free*: the canonical report bytes must not depend on it.
//!
//! Invariants covered (testkit, 64 cases each):
//! * `audit_every` — amortized conservation auditing (O(1) ledger check
//!   between full audits) yields byte-identical reports at cadence 1
//!   (the exhaustive legacy behavior) and cadence 7, and the ledger
//!   itself survives every full audit's cross-check en route;
//! * `incremental_reprice` — fault-scoped repricing (only jobs touching
//!   the degraded chassis / rack tier) matches a full recompute of every
//!   running job, byte-for-byte;
//! * `shard_serving` — the epoch-sharded serving engine is worker-count
//!   independent: `--jobs 1` and `--jobs 4` produce identical bytes.
//!
//! Scenarios are PAI-mix based (training jobs + autoscaling services)
//! with seeded fault plans, so all five ledger book/unbook sites —
//! start, finish, evacuation, re-placement, elastic shrink — and both
//! fault reprice scopes are exercised.

use desim::Dur;
use scheduler::{run_scenario, FaultSpec, ProbeCache, Scenario, Topology, TraceSpec};
use testkit::{bools, property, tuple2, tuple5, u64_in, u8_in, prop_assert_eq, Gen};

/// Raw scenario shape: (seed, n_jobs, n_services, chassis, faulty).
fn shape() -> Gen<(u64, u8, u8, u8, bool)> {
    tuple5(u64_in(0..1_000_000), u8_in(2..14), u8_in(0..5), u8_in(1..5), bools())
}

/// A runnable PAI-mix scenario with enough going on to hit every ledger
/// transition: elastic training, services that scale, seeded faults.
fn build(seed: u64, n_jobs: u8, n_services: u8, chassis: u8, faulty: bool) -> Scenario {
    let mut sc = Scenario::new(
        format!("perf-knobs-{seed:#x}"),
        TraceSpec::PaiMix {
            n_jobs: usize::from(n_jobs),
            n_services: usize::from(n_services),
            seed,
        },
        vec!["slo-aware-pack".into()],
    );
    sc.topology = Topology::with_chassis(chassis);
    sc.config.elastic = true;
    if faulty {
        let (mixed, _) = sc.materialize();
        let horizon = Scenario::horizon(&mixed);
        sc.faults = FaultSpec::Seeded {
            n_events: 1 + (seed % 3) as usize,
            horizon: Dur::from_nanos(horizon.as_nanos()),
            seed: seed ^ 0xFA17,
        };
    }
    sc.validate().expect("constructed scenarios are valid");
    sc
}

/// Canonical report bytes for a scenario at a worker count. Each run gets
/// a fresh probe cache so cache warm-up cannot leak between the two sides
/// of a differential.
fn bytes(sc: &Scenario, jobs: usize) -> String {
    let mut cache = ProbeCache::new(sc.config.probe_iters);
    run_scenario(sc, jobs, &mut cache)
        .unwrap_or_else(|e| panic!("{}: {e}", sc.name))
        .canonical_json_string()
}

property! {
    /// Amortized auditing is invisible: cadence 7 (ledger check between
    /// full audits) reproduces cadence 1 (full audit every event)
    /// byte-for-byte, and every full audit's ledger cross-check passes.
    #[cases(64)]
    fn amortized_audit_is_byte_invisible(s in shape()) {
        let (seed, n_jobs, n_services, chassis, faulty) = s;
        let every = build(seed, n_jobs, n_services, chassis, faulty);
        let mut amortized = every.clone();
        amortized.config.audit_every = 7;
        prop_assert_eq!(bytes(&every, 1), bytes(&amortized, 1), "audit cadence changed the report");
    }

    /// Fault-scoped repricing matches a full recompute of every running
    /// job: prices are pure in (shape, drawer healths, rack health), so
    /// skipping unaffected jobs must not move a byte.
    #[cases(64)]
    fn incremental_reprice_matches_full_recompute(s in shape()) {
        let (seed, n_jobs, n_services, chassis, _) = s;
        // Always faulty — without faults there is nothing to reprice.
        let incremental = build(seed, n_jobs, n_services, chassis, true);
        let mut full = incremental.clone();
        full.config.incremental_reprice = false;
        prop_assert_eq!(
            bytes(&incremental, 1),
            bytes(&full, 1),
            "fault-scoped repricing diverged from the global recompute"
        );
    }

    /// The epoch-sharded serving engine is chunking-independent: each
    /// service's micro-events are priced from per-service state and an
    /// epoch-frozen dilation snapshot, so fanning services across 4
    /// workers is byte-identical to a serial pass.
    #[cases(64)]
    fn sharded_serving_is_worker_count_independent(
        s in shape(),
        extra in tuple2(u8_in(4..9), bools())
    ) {
        let (seed, n_jobs, _, chassis, faulty) = s;
        let (n_services, big_audit) = extra;
        // Always enough services to cross the shard fan-out threshold.
        let mut sc = build(seed, n_jobs, n_services, chassis, faulty);
        sc.config.shard_serving = true;
        if big_audit {
            sc.config.audit_every = 64;
        }
        prop_assert_eq!(
            bytes(&sc, 1),
            bytes(&sc, 4),
            "sharded serving depends on the worker count"
        );
    }
}
