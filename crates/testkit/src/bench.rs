//! Micro-benchmark harness: warmup, N timed iterations, robust summary
//! stats, one JSON line per benchmark.
//!
//! Replaces criterion for the workspace's `cargo bench` targets. Each
//! bench binary builds a [`Suite`], registers closures, and the harness
//! prints both a human-readable line and a machine-readable JSON line
//! (`desim::json`, so downstream tooling can parse without guessing):
//!
//! ```text
//! tables/table2_microbenchmarks   median 12.41ms  p95 12.52ms  min 12.39ms  (20 iters)
//! {"suite":"tables","bench":"table2_microbenchmarks","iters":20,...}
//! ```
//!
//! `TESTKIT_BENCH_ITERS` / `TESTKIT_BENCH_WARMUP` override the iteration
//! counts (e.g. set both low in CI smoke runs).

pub use std::hint::black_box;

use desim::json::Value;
use std::time::Instant;

/// Iteration counts for one suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    pub warmup_iters: u32,
    pub iters: u32,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            warmup_iters: 3,
            iters: 20,
        }
    }
}

/// Summary statistics over the timed iterations, in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchStats {
    pub name: String,
    pub iters: u32,
    pub min_ns: u128,
    pub median_ns: u128,
    pub p95_ns: u128,
    pub mean_ns: f64,
}

/// A wall-clock speedup ratio as a 2-decimal JSON number — or null when
/// the host has no parallelism to measure (`host_parallelism < 2`, where
/// serial-vs-parallel wall-clock is pure scheduling noise). The shared
/// convention for every `BENCH_*.json` speedup field; pair it with
/// [`suppressed_speedup_note`] so readers learn *why* a field is null.
pub fn speedup_or_null(host_parallelism: usize, ratio: f64) -> Value {
    if host_parallelism >= 2 {
        Value::Num((ratio * 100.0).round() / 100.0)
    } else {
        Value::Null
    }
}

/// The standard note accompanying a null speedup field: names the field
/// and the reason it was suppressed.
pub fn suppressed_speedup_note(field: &str) -> String {
    format!(
        "{field} suppressed (null): host parallelism < 2, so serial-vs-parallel \
         wall-clock is noise"
    )
}

fn fmt_ns(ns: u128) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Compute summary stats from raw per-iteration samples.
pub fn summarize(name: &str, samples: &mut [u128]) -> BenchStats {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let n = samples.len();
    let median_ns = if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    };
    // Nearest-rank p95 (clamped to the largest sample).
    let p95_idx = ((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1;
    BenchStats {
        name: name.to_string(),
        iters: n as u32,
        min_ns: samples[0],
        median_ns,
        p95_ns: samples[p95_idx],
        mean_ns: samples.iter().sum::<u128>() as f64 / n as f64,
    }
}

/// A named group of benchmarks sharing iteration options.
pub struct Suite {
    name: String,
    opts: BenchOpts,
    results: Vec<BenchStats>,
}

impl Suite {
    /// A suite with default options, honoring the `TESTKIT_BENCH_*`
    /// environment overrides.
    pub fn new(name: &str) -> Suite {
        Suite::with_opts(name, BenchOpts::default())
    }

    pub fn with_opts(name: &str, mut opts: BenchOpts) -> Suite {
        if let Some(n) = env_u32("TESTKIT_BENCH_ITERS") {
            opts.iters = n.max(1);
        }
        if let Some(n) = env_u32("TESTKIT_BENCH_WARMUP") {
            opts.warmup_iters = n;
        }
        Suite {
            name: name.to_string(),
            opts,
            results: Vec::new(),
        }
    }

    /// Time `f` (warmup first), record and print its stats. The closure's
    /// return value is passed through [`black_box`] so the optimizer
    /// cannot elide the measured work.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &BenchStats {
        for _ in 0..self.opts.warmup_iters {
            black_box(f());
        }
        let mut samples: Vec<u128> = Vec::with_capacity(self.opts.iters as usize);
        for _ in 0..self.opts.iters {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed().as_nanos());
        }
        let stats = summarize(id, &mut samples);
        println!(
            "{}/{:<40} median {:>9}  p95 {:>9}  min {:>9}  ({} iters)",
            self.name,
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            fmt_ns(stats.min_ns),
            stats.iters
        );
        println!("{}", self.json_line(&stats));
        self.results.push(stats);
        self.results.last().unwrap()
    }

    fn json_line(&self, s: &BenchStats) -> String {
        Value::obj(vec![
            ("suite", Value::str(&*self.name)),
            ("bench", Value::str(&*s.name)),
            ("iters", Value::from_u64(u64::from(s.iters))),
            ("min_ns", Value::from_u64(s.min_ns as u64)),
            ("median_ns", Value::from_u64(s.median_ns as u64)),
            ("p95_ns", Value::from_u64(s.p95_ns as u64)),
            ("mean_ns", Value::Num(s.mean_ns)),
        ])
        .emit()
    }

    /// All results recorded so far, in registration order.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }
}

fn env_u32(key: &str) -> Option<u32> {
    std::env::var(key).ok().and_then(|s| s.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_stats_are_order_statistics() {
        let mut samples: Vec<u128> = (1..=20).rev().collect();
        let s = summarize("x", &mut samples);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.median_ns, 10); // (10 + 11) / 2 floored
        assert_eq!(s.p95_ns, 19);
        assert!((s.mean_ns - 10.5).abs() < 1e-9);
        assert_eq!(s.iters, 20);
    }

    #[test]
    fn single_sample_summary() {
        let mut samples = vec![42u128];
        let s = summarize("x", &mut samples);
        assert_eq!(s.min_ns, 42);
        assert_eq!(s.median_ns, 42);
        assert_eq!(s.p95_ns, 42);
    }

    #[test]
    fn bench_runs_and_records() {
        let mut suite = Suite::with_opts(
            "t",
            BenchOpts {
                warmup_iters: 1,
                iters: 3,
            },
        );
        let mut calls = 0u32;
        suite.bench("count", || {
            calls += 1;
            calls
        });
        // 1 warmup + 3 timed (unless env overrides raised the counts).
        assert!(calls >= 4);
        assert_eq!(suite.results().len(), 1);
        let line = suite.json_line(&suite.results()[0]);
        let v = desim::json::Value::parse(&line).unwrap();
        assert_eq!(v.get("suite").unwrap().as_str().unwrap(), "t");
        assert_eq!(v.get("bench").unwrap().as_str().unwrap(), "count");
    }
}
